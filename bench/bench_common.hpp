// Shared helpers for the benchmark binaries.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "batch/esp_experiment.hpp"
#include "common/table.hpp"
#include "obs/registry.hpp"

namespace dbs::bench {

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==============================================================\n"
            << title << "\n"
            << "(reproduces " << paper_ref
            << " of Prabhakaran et al., ICPP'14)\n"
            << "==============================================================\n";
}

/// The paper's evaluation setup: 128 cores (16 nodes x 8), both depths 5.
inline batch::EspExperimentParams paper_esp_params() {
  return batch::EspExperimentParams{};
}

/// Down-samples a wait series for readable terminal output.
inline void print_wait_series(const std::vector<batch::RunResult>& runs,
                              std::size_t stride) {
  std::vector<std::string> header{"JobIdx"};
  for (const auto& r : runs) header.push_back(r.label + " wait[s]");
  TextTable table(header);
  const std::size_t n = runs.front().waits.size();
  for (std::size_t i = 0; i < n; i += stride) {
    std::vector<std::string> row{std::to_string(i)};
    for (const auto& r : runs)
      row.push_back(TextTable::num(r.waits[i].wait.as_seconds(), 0));
    table.add_row(row);
  }
  std::cout << table.to_string();
}

/// Snapshot the global metrics registry to the file named by the
/// DBS_METRICS_JSON environment variable, if set. Benchmark binaries call
/// this on exit so instrumented runs can be harvested without new flags.
inline void maybe_dump_metrics() {
  const char* path = std::getenv("DBS_METRICS_JSON");
  if (path == nullptr || *path == '\0') return;
  if (obs::Registry::global().write_json_file(path))
    std::cout << "wrote metrics snapshot to " << path << "\n";
  else
    std::cerr << "cannot open " << path << "\n";
}

}  // namespace dbs::bench
