// Table II: performance of the four evaluation configurations (Static,
// Dyn-HP, Dyn-500, Dyn-600) on the dynamic ESP workload. The four
// configurations are independent replications; DBS_BENCH_JOBS=N runs them
// on N threads (results and merged metrics are identical for every N).
#include "batch/parallel_runner.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header(
      "Performance comparison of the evaluation configurations", "Table II");

  const auto params = bench::paper_esp_params();
  const std::size_t jobs = batch::jobs_from_env(1);
  const std::vector<batch::RunResult> results =
      batch::run_esp_all(params, jobs, &obs::Registry::global());
  if (jobs > 1)
    std::cout << "(configurations ran as replications on " << jobs
              << " threads)\n";

  const double baseline_tp = results[0].summary.throughput_jobs_per_min;
  TextTable table(metrics::performance_header());
  for (std::size_t i = 0; i < results.size(); ++i)
    table.add_row(metrics::performance_row(
        results[i].label, results[i].summary, i == 0 ? 0.0 : baseline_tp));
  std::cout << table.to_string();

  std::cout << "\npaper reference:\n"
            << "| Static  | 265.78 |  0 | 77.45 | 0.86 | -    |\n"
            << "| Dyn-HP  | 238.78 | 43 | 85.02 | 0.96 | 11.3 |\n"
            << "| Dyn-500 | 248.85 | 20 | 82.26 | 0.92 | 6.8  |\n"
            << "| Dyn-600 | 241.06 | 27 | 83.57 | 0.95 | 10.2 |\n";

  TextTable extra({"Config", "Backfilled", "AvgWait [s]", "MaxWait [s]",
                   "SchedIters", "SimEvents"});
  for (const auto& r : results)
    extra.add_row({r.label,
                   TextTable::num(static_cast<std::int64_t>(r.summary.backfilled_jobs)),
                   TextTable::num(r.summary.avg_wait.as_seconds(), 0),
                   TextTable::num(r.summary.max_wait.as_seconds(), 0),
                   TextTable::num(static_cast<std::int64_t>(r.scheduler_iterations)),
                   TextTable::num(static_cast<std::int64_t>(r.events))});
  std::cout << "\n" << extra.to_string();
  bench::maybe_dump_metrics();
  return 0;
}
