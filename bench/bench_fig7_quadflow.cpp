// Fig. 7: execution times of the static and dynamic Quadflow test cases,
// broken down by adaptation phase.
#include "apps/quadflow_model.hpp"
#include "batch/quadflow_experiment.hpp"
#include "bench_common.hpp"

namespace {

void print_case(const dbs::amr::QuadflowCase& c) {
  using namespace dbs;
  std::cout << "\n--- " << c.name << " (cells/phase:";
  for (const auto n : c.cells_per_phase) std::cout << " " << n;
  std::cout << "; trigger " << c.threshold_cells_per_proc
            << " cells/proc) ---\n";

  const batch::QuadflowFigure fig = batch::quadflow_figure(c);
  std::vector<std::string> header{"Scenario"};
  for (std::size_t p = 0; p < c.cells_per_phase.size(); ++p)
    header.push_back("phase" + std::to_string(p) + " [h]");
  header.push_back("total [h]");
  TextTable table(header);
  for (const auto* s :
       {&fig.static_small, &fig.static_large, &fig.dynamic}) {
    std::vector<std::string> row{s->label};
    for (const Duration d : s->phase_durations)
      row.push_back(TextTable::num(d.as_seconds() / 3600.0, 2));
    row.push_back(TextTable::num(s->total().as_seconds() / 3600.0, 2));
    table.add_row(row);
  }
  std::cout << table.to_string();
  std::cout << "dynamic saving vs static-16: "
            << TextTable::num(fig.saving_percent, 1) << "% ("
            << TextTable::num((fig.static_small.total().as_seconds() -
                               fig.dynamic.total().as_seconds()) / 3600.0,
                              1)
            << " h)   [paper: FlatPlate 17% / ~3 h, Cylinder 33% / ~10 h]\n";

  // Validate the full batch-system path against the analytic model.
  const Duration batch_time = batch::quadflow_batch_turnaround(c, 16, 16, 6, 8);
  std::cout << "through the batch system (16 -> 32 cores on an idle "
               "6-node cluster): "
            << TextTable::num(batch_time.as_seconds() / 3600.0, 2) << " h\n";
}

}  // namespace

int main() {
  using namespace dbs;
  bench::print_header(
      "Quadflow static vs dynamic execution, per adaptation phase", "Fig. 7");
  print_case(amr::flat_plate_case());
  print_case(amr::cylinder_case());
  bench::maybe_dump_metrics();
  return 0;
}
