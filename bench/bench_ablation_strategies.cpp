// Ablation X4 (beyond the paper's evaluation): the alternative §II-B
// servicing strategies — idle-only (the paper's choice), preemption of
// backfilled jobs, and a reserved dynamic partition — on the dynamic ESP
// workload under the Dyn-600 policy.
#include "bench_common.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace dbs;
  bench::print_header(
      "Ablation: dynamic-request servicing strategies (Dyn-600)",
      "the §II-B design alternatives");

  struct Strategy {
    std::string name;
    bool preemption;
    bool malleable_steal;
    CoreCount partition;
    double preemptible_fraction;  // of the synthetic rigid load
    double malleable_fraction;
  };
  const std::vector<Strategy> strategies = {
      {"idle-only (paper)", false, false, 0, 0.0, 0.0},
      {"preemption", true, false, 0, 0.5, 0.0},
      {"malleable-steal", false, true, 0, 0.0, 0.5},
      {"partition-8", false, false, 8, 0.0, 0.0},
      {"partition-16", false, false, 16, 0.0, 0.0},
  };

  TextTable table({"Strategy", "Time [mins]", "Grants", "Requeues", "Shrinks",
                   "Util [%]", "AvgWait [s]"});
  for (const Strategy& s : strategies) {
    wl::SyntheticParams wp;
    wp.job_count = 300;
    wp.total_cores = 128;
    wp.evolving_fraction = 0.3;
    wp.preemptible_fraction = s.preemptible_fraction;
    wp.malleable_fraction = s.malleable_fraction;
    wp.seed = 11;
    batch::SystemConfig cfg;
    cfg.cluster.node_count = 16;
    cfg.cluster.cores_per_node = 8;
    cfg.scheduler.reservation_depth = 5;
    cfg.scheduler.reservation_delay_depth = 5;
    cfg.scheduler.allow_preemption = s.preemption;
    cfg.scheduler.allow_malleable_steal = s.malleable_steal;
    cfg.scheduler.dynamic_partition_cores = s.partition;
    cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
    cfg.scheduler.dfs.defaults.target_delay = Duration::seconds(600);
    const batch::RunResult r =
        batch::run_workload(cfg, wl::generate_synthetic(wp), s.name);
    std::int64_t grants = 0, requeues = 0, shrinks = 0;
    for (const auto& j : r.jobs) {
      grants += j.dyn_grants;
      requeues += j.requeues;
      shrinks += j.malleable_shrinks;
    }
    table.add_row({s.name,
                   TextTable::num(r.summary.makespan.as_minutes(), 2),
                   TextTable::num(grants), TextTable::num(requeues),
                   TextTable::num(shrinks),
                   TextTable::num(r.summary.utilization, 2),
                   TextTable::num(r.summary.avg_wait.as_seconds(), 0)});
  }
  std::cout << table.to_string()
            << "(a partition boosts grant rates but idles cores for static "
               "work — the guaranteeing-approach trade-off of §II-B)\n";
  bench::maybe_dump_metrics();
  return 0;
}
