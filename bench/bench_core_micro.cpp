// Microbenchmarks of the scheduler-core primitives: availability-profile
// algebra, planning/backfill, prioritization and the DFS admission check.
#include <benchmark/benchmark.h>

#include "apps/rigid.hpp"
#include "common/rng.hpp"
#include "core/backfill.hpp"
#include "core/dfs_engine.hpp"
#include "core/priority.hpp"
#include "exec/thread_pool.hpp"

namespace {

using namespace dbs;

core::AvailabilityProfile busy_profile(int holds, std::uint64_t seed) {
  Rng rng(seed);
  core::AvailabilityProfile p(Time::epoch(), 128);
  for (int i = 0; i < holds; ++i) {
    const auto from = rng.next_int(0, 5000);
    const auto len = rng.next_int(60, 1800);
    const auto cores = static_cast<CoreCount>(rng.next_int(1, 16));
    if (p.min_free(Time::from_seconds(from), Time::from_seconds(from + len)) >=
        cores)
      p.subtract(Time::from_seconds(from), Time::from_seconds(from + len),
                 cores);
  }
  return p;
}

void bm_profile_subtract(benchmark::State& state) {
  for (auto _ : state) {
    core::AvailabilityProfile p =
        busy_profile(static_cast<int>(state.range(0)), 42);
    benchmark::DoNotOptimize(p.free_at(Time::from_seconds(100)));
  }
}
BENCHMARK(bm_profile_subtract)->Arg(16)->Arg(64)->Arg(256);

/// Holds appended at strictly increasing times — the PhysicalProfileTracker
/// steady state, where every new hold starts at or after the last
/// breakpoint. Hits the subtract append-at-end fast path; compare against
/// bm_profile_subtract (random placement, generic splice) at equal counts.
void bm_profile_subtract_append(benchmark::State& state) {
  const int holds = static_cast<int>(state.range(0));
  for (auto _ : state) {
    core::AvailabilityProfile p(Time::epoch(), 128);
    for (int i = 0; i < holds; ++i)
      p.subtract(Time::from_seconds(i * 700),
                 Time::from_seconds(i * 700 + 600),
                 static_cast<CoreCount>(1 + i % 16));
    benchmark::DoNotOptimize(p.free_at(Time::from_seconds(100)));
  }
}
BENCHMARK(bm_profile_subtract_append)->Arg(16)->Arg(64)->Arg(256);

void bm_profile_earliest_fit(benchmark::State& state) {
  const core::AvailabilityProfile p =
      busy_profile(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    const Time t =
        p.earliest_fit(64, Duration::minutes(10), Time::epoch());
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(bm_profile_earliest_fit)->Arg(16)->Arg(64)->Arg(256);

std::vector<std::unique_ptr<rms::Job>> make_jobs(std::size_t count,
                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::unique_ptr<rms::Job>> jobs;
  for (std::size_t i = 0; i < count; ++i) {
    rms::JobSpec spec;
    spec.name = "j" + std::to_string(i);
    spec.cred = {"user" + std::to_string(i % 10), "g", "", "batch", ""};
    spec.cores = static_cast<CoreCount>(1 << rng.next_int(0, 6));
    spec.walltime = Duration::minutes(rng.next_int(5, 60));
    jobs.push_back(std::make_unique<rms::Job>(
        JobId{i}, spec,
        std::make_unique<apps::RigidApp>(Duration::minutes(5)),
        Time::epoch()));
  }
  return jobs;
}

void bm_plan_jobs(benchmark::State& state) {
  const auto storage = make_jobs(static_cast<std::size_t>(state.range(0)), 7);
  std::vector<const rms::Job*> jobs;
  for (const auto& j : storage) jobs.push_back(j.get());
  const core::AvailabilityProfile base = busy_profile(32, 42);
  const core::PlanOptions opts{Time::epoch(), 5, true, false};
  for (auto _ : state) {
    const core::Plan plan = core::plan_jobs(jobs, base, opts);
    benchmark::DoNotOptimize(plan.table.size());
  }
}
BENCHMARK(bm_plan_jobs)->Arg(10)->Arg(50)->Arg(200);

void bm_prioritize(benchmark::State& state) {
  const auto storage = make_jobs(static_cast<std::size_t>(state.range(0)), 7);
  std::vector<const rms::Job*> jobs;
  for (const auto& j : storage) jobs.push_back(j.get());
  const core::PriorityEngine engine({}, {}, nullptr);
  for (auto _ : state) {
    auto sorted = engine.prioritize(jobs, Time::from_seconds(3600));
    benchmark::DoNotOptimize(sorted.data());
  }
}
BENCHMARK(bm_prioritize)->Arg(50)->Arg(500);

void bm_dfs_admit(benchmark::State& state) {
  const auto storage = make_jobs(static_cast<std::size_t>(state.range(0)), 7);
  core::DfsConfig cfg;
  cfg.policy = core::DfsPolicy::SingleAndTargetDelay;
  cfg.defaults.target_delay = Duration::hours(1);
  cfg.defaults.single_delay = Duration::minutes(10);
  core::DfsEngine engine(cfg);
  std::vector<core::DelayedJob> delays;
  Rng rng(3);
  for (const auto& j : storage)
    delays.push_back({j.get(), Duration::seconds(rng.next_int(0, 600))});
  const Credentials requester{"evolver", "", "", "", ""};
  for (auto _ : state) {
    const auto verdict = engine.admit(requester, delays);
    benchmark::DoNotOptimize(verdict);
  }
}
BENCHMARK(bm_dfs_admit)->Arg(5)->Arg(20)->Arg(100);

/// ThreadPool dynamic-claim grain: n tiny tasks on 4 workers, grain as the
/// sweep axis. Grain 1 pays one fetch_add + completion RMW per task; larger
/// grains amortize it over the chunk — the shard fan-out runs K small
/// per-shard iterations with grain ceil(K/threads) for exactly this reason.
void bm_pool_grain(benchmark::State& state) {
  exec::ThreadPool pool(4);
  constexpr std::size_t kTasks = 4096;
  const auto grain = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint64_t> out(kTasks, 0);
  for (auto _ : state) {
    pool.parallel_for(
        kTasks,
        [&](std::size_t i, std::size_t) { out[i] = i * 2654435761u; },
        grain);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kTasks));
}
BENCHMARK(bm_pool_grain)->Arg(1)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

BENCHMARK_MAIN();
