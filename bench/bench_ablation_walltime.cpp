// Ablation X6: walltime overestimation (paper §III-D). Delay limits are
// checked against the evolving job's *walltime* end, but users pad their
// walltimes — so the measured delay overestimates the delay that actually
// occurs, and the same DFS limit becomes effectively stricter. The paper
// advises sites to "configure delay limits with moderately higher values";
// this sweep quantifies why: the Dyn-600 policy with increasingly padded
// walltimes admits fewer and fewer requests.
#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header(
      "Ablation: walltime overestimation vs fairness accuracy (Dyn-600)",
      "the §III-D walltime discussion");

  TextTable table({"Walltime factor", "Time [mins]", "Satisfied", "Util [%]",
                   "AvgWait [s]", "MaxWait [s]"});
  for (const double factor : {1.0, 1.2, 1.5, 2.0, 3.0}) {
    batch::EspExperimentParams params;
    params.workload.walltime_factor = factor;
    const batch::RunResult r = batch::run_esp(params, batch::EspConfig::Dyn600);
    table.add_row({TextTable::num(factor, 1),
                   TextTable::num(r.summary.makespan.as_minutes(), 2),
                   TextTable::num(static_cast<std::int64_t>(r.summary.satisfied_dyn_jobs)),
                   TextTable::num(r.summary.utilization, 2),
                   TextTable::num(r.summary.avg_wait.as_seconds(), 0),
                   TextTable::num(r.summary.max_wait.as_seconds(), 0)});
  }
  std::cout << table.to_string()
            << "(padded walltimes inflate both the dynamic holds and the\n"
               " measured delays: the same 600 s budget admits fewer\n"
               " requests — configure limits moderately higher, as the\n"
               " paper advises)\n";
  bench::maybe_dump_metrics();
  return 0;
}
