// Weak-scaling sweep of the sharded scheduler: K shards × per-shard queue
// depth, every shard an identical 16-node × 8-core partition fed the same
// per-shard load (equal-size jobs under least-loaded routing split the
// stream into exact round-robin, so shard k's queue depth is the depth
// argument regardless of K). Two benchmark families:
//
//   * bm_shard_iter/K/DEPTH — builds a ShardedSystem, routes K*DEPTH jobs
//     and runs all shards to completion on K pool threads. Manual time is
//     wall time / K, i.e. the per-shard share of the run: on a multi-core
//     host it falls with K (real speedup); on a single CPU the shards
//     serialize and it stays flat (parity — sharding adds no overhead).
//     Either way the curve across K must be flat-or-falling, which is
//     exactly what CI gates (`check_bench_regression.py --max-scaling`
//     groups the shard family by its FIRST numeric label, the shard
//     count). Counters report the machine-independent aggregates:
//     agg_jobs_per_sec (completed jobs / total wall) and
//     us_per_sched_iter (total wall / scheduler iterations summed over
//     shards).
//
//   * bm_shard_route/K — the router alone: a fixed 2048-job stream pushed
//     through ShardRouter::route at K shards. Routing runs on the single
//     ingest thread; per-job cost grows O(K) with the least-loaded argmin
//     scan, which is why CI's flatness gate filters on `shard_iter`, not
//     the whole shard family — this one is reported, not gated.
//
//   ./build/bench/bench_shard --benchmark_out=shard.json
//       --benchmark_out_format=json
//   python3 tools/check_bench_regression.py
//       bench/results/BENCH_2026-08-08_shard.json shard.json
//       --max-scaling 1.5 --scaling-filter shard
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>

#include "batch/sharded_system.hpp"
#include "core/shard_map.hpp"
#include "workload/esp.hpp"

namespace {

using namespace dbs;

constexpr std::size_t kNodesPerShard = 16;
constexpr CoreCount kCoresPerNode = 8;

/// `shards * depth` equal-size jobs on a fixed 10s submission cadence.
/// Equal cores per job make the least-loaded router deal them round-robin,
/// so every shard sees exactly `depth` jobs with the same arrival pattern:
/// weak scaling, per-shard load constant as K grows.
wl::Workload shard_workload(std::size_t shards, std::size_t depth) {
  wl::Workload w;
  const std::size_t total = shards * depth;
  for (std::size_t i = 0; i < total; ++i) {
    wl::SubmitSpec s;
    s.at = Time::from_seconds(static_cast<std::int64_t>(i) * 10);
    s.spec.name = "sj" + std::to_string(i);
    s.spec.cred = {"user" + std::to_string(i % 16), "grp", "", "batch", ""};
    s.spec.cores = 8;
    s.spec.walltime = Duration::minutes(30);
    s.behavior.static_runtime =
        Duration::minutes(static_cast<std::int64_t>(5 + (i * 7) % 13));
    w.total_cores += s.spec.cores;
    w.jobs.push_back(std::move(s));
  }
  return w;
}

void bm_shard_iter(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto depth = static_cast<std::size_t>(state.range(1));
  const wl::Workload workload = shard_workload(shards, depth);

  batch::SystemConfig base;
  base.cluster.node_count = kNodesPerShard * shards;
  base.cluster.cores_per_node = kCoresPerNode;

  batch::ShardConfig sc;
  sc.shards = shards;
  sc.map = batch::ShardMapKind::Range;
  sc.policy = core::RoutePolicy::LeastLoaded;
  sc.threads = shards;

  double wall_seconds = 0.0;
  std::uint64_t sched_iters = 0;
  std::uint64_t jobs_done = 0;
  for (auto _ : state) {
    batch::ShardedSystem sys(base, sc);
    sys.submit_workload(workload);
    const auto begin = std::chrono::steady_clock::now();
    sys.run();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count();
    // Per-shard share of the wall: the weak-scaling figure of merit.
    state.SetIterationTime(elapsed / static_cast<double>(shards));
    wall_seconds += elapsed;
    for (std::size_t k = 0; k < shards; ++k)
      sched_iters += sys.shard(k).scheduler().iterations();
    jobs_done += workload.jobs.size();
  }
  if (wall_seconds > 0.0) {
    state.counters["agg_jobs_per_sec"] =
        static_cast<double>(jobs_done) / wall_seconds;
    state.counters["us_per_sched_iter"] =
        wall_seconds * 1e6 / static_cast<double>(sched_iters);
  }
}
BENCHMARK(bm_shard_iter)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond)
    ->ArgsProduct({{1, 2, 4, 8}, {64, 256}});

void bm_shard_route(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  cluster::ClusterSpec spec;
  spec.node_count = kNodesPerShard * shards;
  spec.cores_per_node = kCoresPerNode;
  const core::ShardMap map = core::ShardMap::by_range(spec, shards);
  // Fixed total stream: K only changes the argmin scan, not the job count.
  const wl::Workload workload = shard_workload(1, 2048);
  for (auto _ : state) {
    core::ShardRouter router(map, core::RoutePolicy::LeastLoaded);
    std::uint64_t acc = 0;
    for (const auto& j : workload.jobs) acc += router.route(j.spec);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(workload.jobs.size()));
}
BENCHMARK(bm_shard_route)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
