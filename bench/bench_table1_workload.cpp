// Table I: the dynamic ESP job mix — sizes, counts, SET and DET — with the
// paper's published DET values next to our model's.
#include "bench_common.hpp"
#include "workload/esp.hpp"

int main() {
  using namespace dbs;
  bench::print_header("Dynamic ESP benchmark job mix", "Table I");

  const CoreCount machine = 128;
  TextTable table({"Job type", "User", "Size", "Cores", "Count", "SET [s]",
                   "DET paper [s]", "DET model [s]"});
  int total_jobs = 0;
  double total_core_seconds = 0.0;
  for (const auto& t : wl::esp_table()) {
    const CoreCount cores = wl::esp_cores(t, machine);
    const Duration det_model =
        t.evolving ? wl::model_det(t.set, cores, 4) : Duration::zero();
    table.add_row({std::string(1, t.letter), t.user,
                   TextTable::num(t.fraction, 5), TextTable::num(cores),
                   TextTable::num(t.count),
                   TextTable::num(t.set.as_seconds(), 0),
                   t.evolving ? TextTable::num(t.paper_det.as_seconds(), 0)
                              : "-",
                   t.evolving ? TextTable::num(det_model.as_seconds(), 0)
                              : "-"});
    total_jobs += t.count;
    total_core_seconds += static_cast<double>(cores) * t.set.as_seconds() *
                          t.count;
  }
  std::cout << table.to_string();
  std::cout << "total jobs: " << total_jobs
            << "   static work: " << TextTable::num(total_core_seconds / 3600.0, 1)
            << " core-hours on " << machine << " cores\n";

  const wl::Workload workload = wl::generate_esp(wl::EspParams{});
  std::cout << "generated workload: " << workload.jobs.size() << " jobs, "
            << workload.evolving_count() << " evolving ("
            << TextTable::num(100.0 * static_cast<double>(workload.evolving_count()) /
                                  static_cast<double>(workload.jobs.size()),
                              0)
            << "%), submission window "
            << workload.jobs[227].at.to_string() << ", Z jobs at "
            << workload.jobs[228].at.to_string() << "\n";
  bench::maybe_dump_metrics();
  return 0;
}
