// Concurrent-ingest throughput: N producer threads push submissions
// through the mutex-sharded IngestQueue while one consumer drains, stamps
// admissions (the service loop's monotone rule) and — in the WAL-on rows —
// appends + fsyncs every drained batch through a WalWriter, exactly the
// admit_pending() write path. The sweep crosses producers {1, 4, 16} with
// WAL {off, on}:
//
//   * producer scaling shows where shard contention bends the curve
//     (tickets are a single fetch_add; the shards only serialize per
//     slot), and
//   * the WAL-on/off gap is the durability tax — one fsync per drained
//     batch, so it shrinks as batches grow under load.
//
//   ./build/bench/bench_ingest --benchmark_out=ingest.json
//       --benchmark_out_format=json
//   python3 tools/check_bench_regression.py
//       bench/results/BENCH_2026-08-08_ingest.json ingest.json
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/time.hpp"
#include "rms/job.hpp"
#include "svc/ingest.hpp"
#include "svc/state_store.hpp"
#include "workload/esp.hpp"

namespace {

using namespace dbs;

constexpr std::uint64_t kRecords = 200000;

rms::JobSpec bench_spec() {
  rms::JobSpec s;
  s.name = "ingest_bench";
  s.cred = {"user", "grp", "", "batch", ""};
  s.cores = 8;
  s.walltime = Duration::seconds(3600);
  return s;
}

void bm_ingest(benchmark::State& state) {
  const auto producers = static_cast<std::size_t>(state.range(0));
  const bool wal_on = state.range(1) != 0;
  const std::uint64_t per_producer = kRecords / producers;
  const std::uint64_t total = per_producer * producers;

  const std::filesystem::path wal_dir =
      std::filesystem::temp_directory_path() / "dbs_bench_ingest";

  std::uint64_t drains = 0;
  std::uint64_t batches_synced = 0;
  for (auto _ : state) {
    std::filesystem::remove_all(wal_dir);
    std::filesystem::create_directories(wal_dir);

    svc::IngestQueue queue(8);
    std::unique_ptr<svc::WalWriter> wal;
    if (wal_on)
      wal = std::make_unique<svc::WalWriter>(
          svc::wal_path(wal_dir.string()));

    const rms::JobSpec spec = bench_spec();
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t t = 0; t < producers; ++t) {
      threads.emplace_back([&, t]() {
        while (!go.load(std::memory_order_acquire)) {}
        for (std::uint64_t i = 0; i < per_producer; ++i) {
          queue.submit(Time::from_micros(static_cast<std::int64_t>(
                           t * per_producer + i)),
                       spec, wl::Behavior{});
          if (i % 256 == 0) std::this_thread::yield();
        }
      });
    }

    // Consumer: the service loop's admission path minus the simulation —
    // drain, stamp monotone admissions, log + fsync the batch.
    const auto begin = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    std::uint64_t consumed = 0;
    Time last_admitted;
    std::vector<svc::IngestRecord> batch;
    while (consumed < total) {
      batch.clear();
      const std::size_t n = queue.drain(batch);
      if (n == 0) {
        std::this_thread::yield();
        continue;
      }
      for (auto& r : batch) {
        last_admitted = max(r.requested, last_admitted);
        r.admitted = last_admitted;
        if (wal) wal->append_ingest(r);
      }
      if (wal) {
        wal->sync();
        ++batches_synced;
      }
      consumed += n;
      ++drains;
    }
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin;

    for (auto& t : threads) t.join();
    if (queue.pushed() != total) state.SkipWithError("lost records");
    state.SetIterationTime(elapsed.count());
    state.counters["records_per_sec"] =
        static_cast<double>(total) / elapsed.count();
  }
  state.counters["drains"] =
      benchmark::Counter(static_cast<double>(drains),
                         benchmark::Counter::kAvgIterations);
  state.counters["batches_synced"] =
      benchmark::Counter(static_cast<double>(batches_synced),
                         benchmark::Counter::kAvgIterations);
  std::filesystem::remove_all(wal_dir);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::RegisterBenchmark("bm_ingest", bm_ingest)
      ->ArgsProduct({{1, 4, 16}, {0, 1}})
      ->ArgNames({"producers", "wal"})
      ->Iterations(3)
      ->UseManualTime()
      ->Unit(benchmark::kMillisecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbs::bench::maybe_dump_metrics();
  return 0;
}
