// Fig. 9: waiting times of type-L jobs in all four configurations.
#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header("Waiting times of type L jobs, all configurations",
                      "Fig. 9");

  const auto params = bench::paper_esp_params();
  const std::vector<batch::RunResult> runs = batch::run_esp_all(params);

  std::vector<std::string> header{"L job"};
  for (const auto& r : runs) header.push_back(r.label + " wait[s]");
  TextTable table(header);

  const auto series0 = runs[0].waits_of_type("L");
  for (std::size_t i = 0; i < series0.size(); ++i) {
    std::vector<std::string> row{std::to_string(i + 1)};
    for (const auto& r : runs) {
      const auto series = r.waits_of_type("L");
      row.push_back(TextTable::num(series[i].wait.as_seconds(), 0));
    }
    table.add_row(row);
  }
  std::cout << table.to_string();

  std::cout << "\nmean type-L waiting time per configuration:\n";
  for (const auto& r : runs) {
    Duration sum;
    const auto series = r.waits_of_type("L");
    for (const auto& w : series) sum += w.wait;
    std::cout << "  " << r.label << ": "
              << TextTable::num(
                     sum.as_seconds() / static_cast<double>(series.size()), 0)
              << " s\n";
  }
  std::cout << "(paper: half of the L jobs suffer under Dyn-HP; the fairness "
               "configurations recover them)\n";
  bench::maybe_dump_metrics();
  return 0;
}
