// Ablation X1: sweep of ReservationDelayDepth (the paper's new knob that
// controls how many StartLater jobs are protected by delay measurement)
// on the dynamic ESP workload under the Dyn-600 fairness policy. Sweep
// points are independent replications; DBS_BENCH_JOBS=N parallelizes them.
#include "batch/parallel_runner.hpp"
#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header(
      "Ablation: ReservationDelayDepth sweep (Dyn-600 policy)",
      "design knob of §III-C / Fig. 5");

  const std::vector<std::size_t> depths{0, 1, 2, 5, 10, 20};
  batch::ParallelRunner runner(batch::jobs_from_env(1));
  const std::vector<batch::RunResult> results = runner.map<batch::RunResult>(
      depths.size(),
      [&](std::size_t index, obs::Registry& registry) {
        batch::EspExperimentParams params;
        params.reservation_delay_depth = depths[index];
        return batch::run_esp(params, batch::EspConfig::Dyn600, &registry);
      },
      &obs::Registry::global());

  TextTable table({"DelayDepth", "Time [mins]", "Satisfied", "Util [%]",
                   "Throughput", "AvgWait [s]", "MaxWait [s]"});
  for (std::size_t i = 0; i < depths.size(); ++i) {
    const std::size_t depth = depths[i];
    const batch::RunResult& r = results[i];
    table.add_row({TextTable::num(static_cast<std::int64_t>(depth)),
                   TextTable::num(r.summary.makespan.as_minutes(), 2),
                   TextTable::num(static_cast<std::int64_t>(r.summary.satisfied_dyn_jobs)),
                   TextTable::num(r.summary.utilization, 2),
                   TextTable::num(r.summary.throughput_jobs_per_min, 2),
                   TextTable::num(r.summary.avg_wait.as_seconds(), 0),
                   TextTable::num(r.summary.max_wait.as_seconds(), 0)});
  }
  std::cout << table.to_string()
            << "(small depths protect fewer queued jobs -> more grants, "
               "less fairness; the paper used 5)\n";
  bench::maybe_dump_metrics();
  return 0;
}
