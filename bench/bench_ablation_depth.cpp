// Ablation X1: sweep of ReservationDelayDepth (the paper's new knob that
// controls how many StartLater jobs are protected by delay measurement)
// on the dynamic ESP workload under the Dyn-600 fairness policy.
#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header(
      "Ablation: ReservationDelayDepth sweep (Dyn-600 policy)",
      "design knob of §III-C / Fig. 5");

  TextTable table({"DelayDepth", "Time [mins]", "Satisfied", "Util [%]",
                   "Throughput", "AvgWait [s]", "MaxWait [s]"});
  for (const std::size_t depth : {0u, 1u, 2u, 5u, 10u, 20u}) {
    batch::EspExperimentParams params;
    params.reservation_delay_depth = depth;
    const batch::RunResult r = batch::run_esp(params, batch::EspConfig::Dyn600);
    table.add_row({TextTable::num(static_cast<std::int64_t>(depth)),
                   TextTable::num(r.summary.makespan.as_minutes(), 2),
                   TextTable::num(static_cast<std::int64_t>(r.summary.satisfied_dyn_jobs)),
                   TextTable::num(r.summary.utilization, 2),
                   TextTable::num(r.summary.throughput_jobs_per_min, 2),
                   TextTable::num(r.summary.avg_wait.as_seconds(), 0),
                   TextTable::num(r.summary.max_wait.as_seconds(), 0)});
  }
  std::cout << table.to_string()
            << "(small depths protect fewer queued jobs -> more grants, "
               "less fairness; the paper used 5)\n";
  bench::maybe_dump_metrics();
  return 0;
}
