// Ablation X2: DFSDECAY and DFSINTERVAL sweeps under the Dyn-500 policy —
// how much history the cumulative-delay accounting keeps.
#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header("Ablation: DFSDECAY and DFSINTERVAL sweeps (Dyn-500)",
                      "§III-D parameters");

  TextTable decay_table({"DFSDECAY", "Time [mins]", "Satisfied", "Util [%]",
                         "MaxWait [s]"});
  for (const double decay : {0.0, 0.2, 0.5, 0.8, 1.0}) {
    batch::EspExperimentParams params;
    batch::SystemConfig cfg =
        esp_system_config(params, batch::EspConfig::Dyn500);
    cfg.scheduler.dfs.decay = decay;
    wl::EspParams wp = params.workload;
    const wl::Workload workload = wl::generate_esp(wp);
    const batch::RunResult r = batch::run_workload(
        cfg, workload, "decay=" + TextTable::num(decay, 1));
    decay_table.add_row(
        {TextTable::num(decay, 1),
         TextTable::num(r.summary.makespan.as_minutes(), 2),
         TextTable::num(static_cast<std::int64_t>(r.summary.satisfied_dyn_jobs)),
         TextTable::num(r.summary.utilization, 2),
         TextTable::num(r.summary.max_wait.as_seconds(), 0)});
  }
  std::cout << decay_table.to_string()
            << "(decay 1.0 never forgets charged delays; 0.0 resets each "
               "interval)\n\n";

  TextTable interval_table({"DFSINTERVAL", "Time [mins]", "Satisfied",
                            "Util [%]", "MaxWait [s]"});
  for (const std::int64_t minutes : {15, 30, 60, 120, 240}) {
    batch::EspExperimentParams params;
    params.dfs_interval = Duration::minutes(minutes);
    const batch::RunResult r = batch::run_esp(params, batch::EspConfig::Dyn500);
    interval_table.add_row(
        {Duration::minutes(minutes).to_hms(),
         TextTable::num(r.summary.makespan.as_minutes(), 2),
         TextTable::num(static_cast<std::int64_t>(r.summary.satisfied_dyn_jobs)),
         TextTable::num(r.summary.utilization, 2),
         TextTable::num(r.summary.max_wait.as_seconds(), 0)});
  }
  std::cout << interval_table.to_string()
            << "(shorter intervals refresh the 500 s budget more often -> "
               "more grants)\n";
  bench::maybe_dump_metrics();
  return 0;
}
