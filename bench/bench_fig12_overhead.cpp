// Fig. 12: the overhead of a dynamic allocation of 1..10 nodes, from a job
// running on one statically allocated node, (i) on an idle system and
// (ii) with a rigid workload queued and ReservationDelayDepth = 5.
//
// Two measurements are reported:
//  - the virtual-time protocol overhead (daemon hops + dyn_join), which is
//    what the paper's wall clock measured end to end, and
//  - the real wall-clock cost of the scheduler's dynamic-allocation path
//    (delay measurement + fairness check + commit) via google-benchmark —
//    this is where the with-workload curve separates from the idle one.
#include <benchmark/benchmark.h>

#include "apps/rigid.hpp"
#include "batch/overhead_experiment.hpp"
#include "bench_common.hpp"
#include "core/backfill.hpp"
#include "core/delay_measurement.hpp"

namespace {

using namespace dbs;

/// Wall-clock microbenchmark of one dynamic-request evaluation against a
/// queue of `queued` protected jobs and a request of `nodes` nodes.
void bm_dynamic_request_path(benchmark::State& state) {
  const auto nodes = static_cast<CoreCount>(state.range(0));
  const auto queued = static_cast<std::size_t>(state.range(1));

  const Time now = Time::epoch();
  core::AvailabilityProfile planning(now, 128);
  planning.subtract(now, now + Duration::minutes(30), 8);  // the owner job

  std::vector<std::unique_ptr<rms::Job>> storage;
  std::vector<const rms::Job*> jobs;
  for (std::size_t i = 0; i < queued; ++i) {
    rms::JobSpec spec;
    spec.name = "q" + std::to_string(i);
    spec.cred = {"user" + std::to_string(i), "g", "", "batch", ""};
    spec.cores = 128;
    spec.walltime = Duration::minutes(20);
    storage.push_back(std::make_unique<rms::Job>(
        JobId{i}, spec, std::make_unique<apps::RigidApp>(Duration::minutes(20)),
        now));
    jobs.push_back(storage.back().get());
  }
  rms::JobSpec owner_spec;
  owner_spec.name = "owner";
  owner_spec.cred = {"evolver", "g", "", "batch", ""};
  owner_spec.cores = 8;
  owner_spec.walltime = Duration::minutes(30);
  rms::Job owner(JobId{1000}, owner_spec,
                 std::make_unique<apps::RigidApp>(Duration::minutes(30)), now);
  owner.mark_started(now, cluster::Placement{{{NodeId{0}, 8}}}, false);

  const core::PlanOptions opts{now, 5, true, false};
  const core::ReservationTable baseline =
      core::plan_jobs(jobs, planning, opts).table;
  core::DfsConfig dfs_cfg;
  dfs_cfg.policy = core::DfsPolicy::TargetDelay;
  dfs_cfg.defaults.target_delay = Duration::hours(10);
  core::DfsEngine dfs(dfs_cfg);
  const rms::DynRequest request{RequestId{1}, owner.id(), nodes * 8, now, 1,
                                now};

  for (auto _ : state) {
    const core::DynHold hold = core::make_hold(owner, request, now);
    auto m = core::measure_dynamic_request(
        hold, jobs, core::protected_subset(jobs, baseline, 5), baseline,
        planning, 120, opts);
    const auto verdict = dfs.admit(owner.spec().cred, m.delays);
    benchmark::DoNotOptimize(verdict);
    benchmark::DoNotOptimize(m.delays.data());
  }
  state.SetLabel(std::to_string(nodes) + " nodes, " + std::to_string(queued) +
                 " queued jobs");
}

void print_virtual_time_series() {
  bench::print_header(
      "Dynamic allocation overhead for 1-10 nodes (virtual time)", "Fig. 12");
  TextTable table({"Nodes", "idle system [ms]", "with workload [ms]"});
  batch::OverheadParams idle;
  batch::OverheadParams loaded;
  loaded.with_workload = true;
  const auto a = batch::measure_dyn_overhead(idle);
  const auto b = batch::measure_dyn_overhead(loaded);
  for (std::size_t i = 0; i < a.size(); ++i)
    table.add_row({TextTable::num(static_cast<std::int64_t>(a[i].nodes)),
                   TextTable::num(a[i].overhead.as_seconds() * 1000.0, 2),
                   TextTable::num(b[i].overhead.as_seconds() * 1000.0, 2)});
  std::cout << table.to_string()
            << "(paper: sub-second for up to 10 nodes; grows with node "
               "count, slightly higher with a workload)\n\n"
            << "wall-clock cost of the scheduler's dynamic-request path "
               "(google-benchmark):\n";
}

}  // namespace

BENCHMARK(bm_dynamic_request_path)
    ->ArgsProduct({{1, 2, 4, 6, 8, 10}, {0, 8}})
    ->Unit(benchmark::kMicrosecond);

int main(int argc, char** argv) {
  print_virtual_time_series();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  bench::maybe_dump_metrics();
  return 0;
}
