// Streaming replay throughput: full simulated replays of synthetic SWF
// traces at 100k / 1M / 10M jobs, with job retirement and streaming
// metrics on — the bounded-memory configuration dbsim uses for --swf.
//
// The trace is produced in-bench by SwfGenStream (lazily, O(1) memory —
// the 10M trace would be ~600 MB of text), so the numbers measure the
// parse + submit + schedule + retire pipeline, not disk I/O. Each scale
// runs exactly once with manual timing, and SetIterationTime records the
// *per-job* wall time: check_bench_regression.py's --max-scaling then
// gates jobs/sec staying flat as the trace grows 100x. The peak_rss_mb
// counter is the bounded-memory gate — VmHWM is monotonic within a
// process, so scales are registered ascending and the 10M row's reading
// may not exceed ~2x the 1M row's if retirement really holds memory at
// O(active + window).
//
//   ./build/bench/bench_replay --benchmark_out=replay.json
//       --benchmark_out_format=json
//   python3 tools/check_bench_regression.py
//       bench/results/BENCH_2026-08-08_replay.json replay.json
//       --max-scaling 2.0
#include <benchmark/benchmark.h>

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstring>

#include "batch/batch_system.hpp"
#include "bench_common.hpp"
#include "workload/swf/swf_gen.hpp"
#include "workload/swf/swf_source.hpp"

namespace {

using namespace dbs;

/// Peak resident set (MiB): VmHWM from /proc/self/status, falling back to
/// getrusage. Monotonic for the process lifetime — callers that compare
/// readings across runs must order the runs ascending by expected peak.
double peak_rss_mb() {
  if (std::FILE* f = std::fopen("/proc/self/status", "r")) {
    char line[256];
    while (std::fgets(line, sizeof(line), f) != nullptr) {
      long kb = 0;
      if (std::sscanf(line, "VmHWM: %ld kB", &kb) == 1) {
        std::fclose(f);
        return static_cast<double>(kb) / 1024.0;
      }
    }
    std::fclose(f);
  }
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // Linux: kilobytes
}

/// One full replay: generate-on-the-fly trace -> SwfSource -> streaming
/// submission into a 128-node (1024-core, the generator's MaxProcs)
/// system with retirement + streaming metrics, run to completion. The 1%
/// evolving overlay keeps the dynamic-admission stage on the hot path
/// without turning the replay into an ESP experiment.
void bm_replay_stream(benchmark::State& state) {
  const auto jobs = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    wl::swf::SwfGenParams gen;
    gen.jobs = jobs;
    gen.seed = 42;
    wl::swf::SwfGenStream trace(gen);

    wl::swf::SwfSourceConfig src_config;
    src_config.overlay_dynamic_fraction = 0.01;
    wl::swf::SwfSource source(trace, src_config);
    const wl::swf::SwfHeader& header = source.header();

    batch::SystemConfig config;
    const auto total = static_cast<CoreCount>(header.max_procs);
    config.cluster.cores_per_node = 8;
    config.cluster.node_count = static_cast<std::size_t>(
        (total + config.cluster.cores_per_node - 1) /
        config.cluster.cores_per_node);
    config.retire_finished_jobs = true;
    config.streaming_metrics = true;
    batch::BatchSystem system(config);
    source.set_max_cores(system.cluster().total_cores());

    const auto begin = std::chrono::steady_clock::now();
    system.submit_stream(source, /*window=*/1024);
    system.run();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - begin;

    const auto summary = metrics::summarize(system.recorder());
    if (summary.jobs_completed != source.yielded())
      state.SkipWithError("replay lost jobs");
    state.SetIterationTime(elapsed.count() / static_cast<double>(jobs));
    state.counters["jobs_per_sec"] =
        static_cast<double>(jobs) / elapsed.count();
    state.counters["peak_rss_mb"] = peak_rss_mb();
    state.counters["retired"] =
        static_cast<double>(system.server().jobs().retired_count());
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Ascending scales: VmHWM is a high-water mark, so each row's
  // peak_rss_mb must be dominated by its own replay, not a bigger earlier
  // one.
  benchmark::RegisterBenchmark("bm_replay_stream", bm_replay_stream)
      ->Arg(100000)
      ->Arg(1000000)
      ->Arg(10000000)
      ->Iterations(1)
      ->UseManualTime()
      ->Unit(benchmark::kMicrosecond);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbs::bench::maybe_dump_metrics();
  return 0;
}
