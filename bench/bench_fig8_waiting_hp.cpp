// Fig. 8: waiting time per job (submission order), Static vs Dyn-HP.
#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header(
      "Waiting times: static workload vs dynamic highest-priority", "Fig. 8");

  const auto params = bench::paper_esp_params();
  const std::vector<batch::RunResult> runs = {
      batch::run_esp(params, batch::EspConfig::Static),
      batch::run_esp(params, batch::EspConfig::DynHP)};
  bench::print_wait_series(runs, /*stride=*/5);

  // The paper's qualitative observation: jobs in the mid submission range
  // wait longer under Dyn-HP while many others improve.
  std::size_t worse = 0, better = 0, equal = 0;
  for (std::size_t i = 0; i < runs[0].waits.size(); ++i) {
    const auto d = runs[1].waits[i].wait - runs[0].waits[i].wait;
    if (d > Duration::seconds(1)) ++worse;
    else if (d < Duration::seconds(-1)) ++better;
    else ++equal;
  }
  std::cout << "\njobs waiting longer under Dyn-HP: " << worse
            << ", shorter: " << better << ", unchanged: " << equal << "\n"
            << "(paper: many jobs improve, but jobs ~70-125 wait longer)\n";
  bench::maybe_dump_metrics();
  return 0;
}
