// Node-count scaling sweep for the allocation core: 16 / 1k / 16k / 64k
// nodes over the placement kernels the scheduler hits every iteration —
// chunked allocate+release, release_all, held_by and the admission stage's
// can_allocate_chunked what-if probe — plus a full dbsim-style scheduler
// iteration at each size.
//
// Every kernel runs twice: against the production index-based Cluster
// (`/indexed`) and against the old scan-based allocator kept verbatim in
// tests/property/reference_allocator.hpp (`/scan`). The scan rows ARE the
// pre-index baseline, recorded in the same results file, so the speedup is
// reproducible from one binary:
//
//   ./build/bench/bench_scale --benchmark_out=scale.json
//       --benchmark_out_format=json
//   python3 tools/check_bench_regression.py
//       bench/results/BENCH_2026-08-06_scale.json scale.json
//       --scaling-report
#include <benchmark/benchmark.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "../tests/property/reference_allocator.hpp"
#include "apps/rigid.hpp"
#include "batch/batch_system.hpp"
#include "bench_common.hpp"
#include "cluster/cluster.hpp"

namespace {

using namespace dbs;

constexpr CoreCount kCoresPerNode = 8;
constexpr std::int64_t kNodeCounts[] = {16, 1024, 16384, 65536};

template <class C>
C make_cluster(std::size_t nodes);

template <>
cluster::Cluster make_cluster(std::size_t nodes) {
  return cluster::Cluster(cluster::ClusterSpec{nodes, kCoresPerNode});
}

template <>
cluster::testing::ReferenceCluster make_cluster(std::size_t nodes) {
  return {nodes, kCoresPerNode};
}

/// Loads the cluster to a steady ~50% occupancy with structure: fill ~75%
/// with FirstFit jobs of a non-node-multiple size (partial nodes at every
/// job boundary populate the mid buckets), then release every third job to
/// scatter free nodes through the id range. Identical placements on both
/// implementations (guaranteed by the differential fuzz suite), so both
/// sides of each kernel pair run against the same occupancy pattern.
/// Returns the surviving (job, placement) pairs.
template <class C>
std::vector<std::pair<JobId, cluster::Placement>> preload(C& c) {
  const auto total = static_cast<std::int64_t>(c.total_cores());
  const auto jobs = static_cast<std::size_t>(
      std::clamp<std::int64_t>(total / 64, 8, 1024));
  auto size = static_cast<CoreCount>(total * 3 / 4 / static_cast<std::int64_t>(jobs));
  if (size > 1 && size % kCoresPerNode == 0) --size;
  size = std::max<CoreCount>(size, 1);

  std::vector<std::pair<JobId, cluster::Placement>> live;
  live.reserve(jobs);
  for (std::size_t j = 0; j < jobs; ++j) {
    auto p = c.allocate(JobId{j}, size, cluster::AllocationPolicy::FirstFit);
    if (!p) break;
    live.emplace_back(JobId{j}, std::move(*p));
  }
  std::vector<std::pair<JobId, cluster::Placement>> kept;
  kept.reserve(live.size());
  for (std::size_t j = 0; j < live.size(); ++j) {
    if (j % 3 == 1)
      c.release(live[j].first, live[j].second);
    else
      kept.push_back(std::move(live[j]));
  }
  return kept;
}

constexpr JobId kProbeJob{1u << 20};

/// Pack-chunked allocation of 8 nodes x 8 ppn plus the symmetric release —
/// the static-job start path.
template <class C>
void bm_alloc_release(benchmark::State& state) {
  C c = make_cluster<C>(static_cast<std::size_t>(state.range(0)));
  (void)preload(c);
  for (auto _ : state) {
    auto p = c.allocate_chunked(kProbeJob, 64, kCoresPerNode,
                                cluster::AllocationPolicy::Pack);
    benchmark::DoNotOptimize(p);
    if (p) c.release(kProbeJob, *p);
  }
}

/// Spread allocation (descending bucket walk) plus release_all through the
/// per-job placement index — the dynamic-grant + job-exit path.
template <class C>
void bm_spread_release_all(benchmark::State& state) {
  C c = make_cluster<C>(static_cast<std::size_t>(state.range(0)));
  (void)preload(c);
  for (auto _ : state) {
    auto p = c.allocate(kProbeJob, 64, cluster::AllocationPolicy::Spread);
    benchmark::DoNotOptimize(p);
    const cluster::Placement freed = c.release_all(kProbeJob);
    benchmark::DoNotOptimize(freed.total_cores());
  }
}

/// held_by on a standing mid-range job — qstat/pbsnodes rendering and the
/// server's accounting queries.
template <class C>
void bm_held_by(benchmark::State& state) {
  C c = make_cluster<C>(static_cast<std::size_t>(state.range(0)));
  const auto live = preload(c);
  const JobId probe = live[live.size() / 2].first;
  for (auto _ : state) benchmark::DoNotOptimize(c.held_by(probe));
}

/// can_allocate_chunked — the what-if probe the dynamic-admission stage
/// issues per request (and PR 3's parallel measurement fan-out multiplies).
template <class C>
void bm_measure_request(benchmark::State& state) {
  C c = make_cluster<C>(static_cast<std::size_t>(state.range(0)));
  (void)preload(c);
  for (auto _ : state)
    benchmark::DoNotOptimize(c.can_allocate_chunked(64, kCoresPerNode));
}

rms::JobSpec sized_spec(const char* prefix, int i, CoreCount cores,
                        Duration walltime) {
  rms::JobSpec s;
  s.name = prefix;
  s.name += std::to_string(i);
  s.cred = {"alice", "grp", "", "batch", ""};
  s.cores = cores;
  s.walltime = walltime;
  return s;
}

/// One full dbsim-style scheduler iteration (gather, statistics,
/// prioritize, classify, admission, start/backfill) in dry-run mode at each
/// node count: a running base load plus a queue the planner must reserve
/// around. Workload size is fixed so the sweep isolates the node-count
/// dependence of one iteration.
void bm_sched_iteration(benchmark::State& state) {
  batch::SystemConfig cfg;
  cfg.cluster.node_count = static_cast<std::size_t>(state.range(0));
  cfg.cluster.cores_per_node = kCoresPerNode;
  cfg.scheduler.reservation_depth = 5;
  cfg.scheduler.reservation_delay_depth = 5;
  batch::BatchSystem sys(cfg);
  const CoreCount total = sys.cluster().total_cores();
  for (int i = 0; i < 8; ++i)
    sys.submit_now(
        sized_spec("run", i, std::max<CoreCount>(total / 16, 1),
                   Duration::minutes(90)),
        std::make_unique<apps::RigidApp>(Duration::minutes(60)));
  for (int i = 0; i < 32; ++i)
    sys.submit_now(
        sized_spec("q", i, std::max<CoreCount>(total / 4, 1),
                   Duration::minutes(30)),
        std::make_unique<apps::RigidApp>(Duration::minutes(20)));
  sys.run_until(Time::from_seconds(2));  // base load starts, the rest queues
  for (auto _ : state) {
    const auto decisions = sys.scheduler().dry_run_iteration();
    benchmark::DoNotOptimize(decisions.size());
  }
}

/// Deep-queue iteration sweep: a 1024-node system with a running base
/// load and a 1k/10k/100k-deep queue of mostly-unfitting jobs, measured as
/// dry-run iterations with incremental planning on (`/incremental`) and
/// off (`/rebuild`). The rebuild rows ARE the from-scratch baseline,
/// recorded in the same results file — the speedup is reproducible from
/// one binary, like the /indexed vs /scan allocator pairs above.
///
/// `fragmented` switches the base load from 8 big jobs to 256 small ones
/// with staggered walltimes: the physical profile grows hundreds of
/// breakpoints, the adversarial case for profile patching and staircase
/// rebuilds.
std::unique_ptr<batch::BatchSystem> make_deep_queue(std::size_t depth,
                                                    bool incremental,
                                                    bool fragmented) {
  batch::SystemConfig cfg;
  cfg.cluster.node_count = 1024;
  cfg.cluster.cores_per_node = kCoresPerNode;
  cfg.scheduler.reservation_depth = 5;
  cfg.scheduler.reservation_delay_depth = 5;
  cfg.scheduler.incremental_planning = incremental;
  auto sys = std::make_unique<batch::BatchSystem>(cfg);

  // Base running load: 4096 of 8192 cores busy either way.
  if (fragmented) {
    for (int i = 0; i < 256; ++i)
      sys->submit_now(sized_spec("run", i, 16,
                                 Duration::minutes(30 + (i * 7) % 90)),
                      std::make_unique<apps::RigidApp>(
                          Duration::minutes(25 + (i * 7) % 90)));
  } else {
    for (int i = 0; i < 8; ++i)
      sys->submit_now(sized_spec("run", i, 512, Duration::minutes(90)),
                      std::make_unique<apps::RigidApp>(Duration::minutes(60)));
  }
  sys->run_until(Time::from_seconds(2));  // the base load starts

  // The deep queue: bigger than the free 4096 cores (StartLater or skip),
  // with a sprinkle of fit-now jobs so every walk still plans backfills
  // and the tail staircase actually cycles.
  for (std::size_t i = 0; i < depth; ++i) {
    const bool tiny = i % 9973 == 0;
    const CoreCount cores =
        tiny ? 2 : static_cast<CoreCount>(4608 + (i % 5) * 512);
    const Duration wall = Duration::minutes(
        tiny ? 5 : static_cast<std::int64_t>(30 + (i % 11) * 5));
    sys->submit_now(sized_spec("q", static_cast<int>(i), cores, wall),
                    std::make_unique<apps::RigidApp>(wall));
  }
  return sys;
}

void bm_queue_depth(benchmark::State& state, bool incremental,
                    bool fragmented) {
  const auto sys = make_deep_queue(static_cast<std::size_t>(state.range(0)),
                                   incremental, fragmented);
  for (auto _ : state) {
    const auto decisions = sys->scheduler().dry_run_iteration();
    benchmark::DoNotOptimize(decisions.size());
  }
}

/// Steady-state churn at depth 100k: every iteration submits 8 jobs,
/// cancels the 8 oldest queued and flips one idle node down/up (<1% of
/// the queue changes), then runs a dry-run iteration — the O(Δ) target
/// case of the incremental planner.
void bm_queue_churn(benchmark::State& state, bool incremental) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  const auto sys = make_deep_queue(depth, incremental, /*fragmented=*/false);
  std::vector<JobId> pending;  // FIFO of queued job ids; index eats front
  pending.reserve(depth + 1024);
  for (std::size_t i = 0; i < depth; ++i)
    pending.push_back(JobId{8 + i});  // ids 0..7 are the running base load
  std::size_t head = 0;
  std::size_t next = depth;
  bool node_down = false;
  for (auto _ : state) {
    for (int k = 0; k < 8; ++k) {
      const CoreCount cores = static_cast<CoreCount>(4608 + (next % 5) * 512);
      pending.push_back(sys->submit_now(
          sized_spec("c", static_cast<int>(next), cores, Duration::minutes(30)),
          std::make_unique<apps::RigidApp>(Duration::minutes(30))));
      ++next;
    }
    for (int k = 0; k < 8 && head < pending.size(); ++k)
      sys->server().cancel(pending[head++]);
    if (node_down)
      sys->server().restore_node(NodeId{1023});
    else
      sys->server().node_failure(NodeId{1023});
    node_down = !node_down;
    const auto decisions = sys->scheduler().dry_run_iteration();
    benchmark::DoNotOptimize(decisions.size());
  }
}

template <class C>
void register_kernels(const char* impl) {
  const auto reg = [&](const char* kernel, void (*fn)(benchmark::State&)) {
    auto* b = benchmark::RegisterBenchmark(
        ("bm_scale_" + std::string(kernel) + "/" + impl).c_str(), fn);
    for (const std::int64_t n : kNodeCounts) b->Arg(n);
    b->Unit(benchmark::kMicrosecond);
  };
  reg("alloc_release", bm_alloc_release<C>);
  reg("spread_release_all", bm_spread_release_all<C>);
  reg("held_by", bm_held_by<C>);
  reg("measure_request", bm_measure_request<C>);
}

}  // namespace

int main(int argc, char** argv) {
  register_kernels<dbs::cluster::Cluster>("indexed");
  register_kernels<dbs::cluster::testing::ReferenceCluster>("scan");
  auto* iter = benchmark::RegisterBenchmark("bm_scale_sched_iteration/indexed",
                                            bm_sched_iteration);
  for (const std::int64_t n : kNodeCounts) iter->Arg(n);
  iter->Unit(benchmark::kMillisecond);

  for (const bool inc : {true, false}) {
    const std::string impl = inc ? "incremental" : "rebuild";
    auto* depth = benchmark::RegisterBenchmark(
        ("bm_scale_queue_depth/" + impl).c_str(), bm_queue_depth, inc,
        /*fragmented=*/false);
    for (const std::int64_t d : {1000, 10000, 100000}) depth->Arg(d);
    depth->Unit(benchmark::kMillisecond);

    auto* frag = benchmark::RegisterBenchmark(
        ("bm_scale_queue_frag/" + impl).c_str(), bm_queue_depth, inc,
        /*fragmented=*/true);
    for (const std::int64_t d : {10000, 100000}) frag->Arg(d);
    frag->Unit(benchmark::kMillisecond);

    benchmark::RegisterBenchmark(("bm_scale_queue_churn/" + impl).c_str(),
                                 bm_queue_churn, inc)
        ->Arg(100000)
        ->Unit(benchmark::kMillisecond);
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbs::bench::maybe_dump_metrics();
  return 0;
}
