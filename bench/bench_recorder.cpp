// Flight-recorder overhead: the fig. 12 evaluation machine (128 cores,
// both depths 5) running the ESP evolving workload with the recorder
// attached vs detached. The record-on/record-off pair is the bench-smoke
// regression gate for the capture path — recording every decision and
// lifecycle event must stay in the noise next to the scheduler itself.
// A writer microbenchmark isolates the per-record append cost.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "batch/batch_system.hpp"
#include "batch/esp_experiment.hpp"
#include "bench_common.hpp"
#include "obs/recorder/reader.hpp"
#include "obs/recorder/recorder.hpp"
#include "obs/recorder/writer.hpp"
#include "obs/registry.hpp"
#include "workload/esp.hpp"

namespace {

using namespace dbs;

const char* kRecordPath = "bench_recorder.tmp.dbsr";

/// One Dyn-HP ESP run (the workload every Table II/fig. 12 row shares),
/// optionally recorded. state.range(0): 0 = record off, 1 = record on.
void bm_esp_run(benchmark::State& state) {
  const bool record = state.range(0) != 0;
  const batch::EspExperimentParams params = bench::paper_esp_params();
  wl::EspParams wl_params = params.workload;
  wl_params.evolving_enabled = true;
  const wl::Workload workload = wl::generate_esp(wl_params);
  const batch::SystemConfig config =
      batch::esp_system_config(params, batch::EspConfig::DynHP);

  std::uint64_t records = 0;
  for (auto _ : state) {
    obs::Registry registry;
    obs::rec::FlightRecorder recorder;
    if (record)
      recorder.open(kRecordPath, params.workload.total_cores);
    batch::BatchSystem system(config);
    system.set_sinks({nullptr, &registry, record ? &recorder : nullptr});
    system.submit_workload(workload);
    system.run();
    if (record) {
      records = recorder.records_written();
      recorder.finalize();
    }
    benchmark::DoNotOptimize(system.scheduler().iterations());
  }
  state.SetLabel(record ? std::to_string(records) + " records/run"
                        : "recorder detached");
  std::remove(kRecordPath);
}
BENCHMARK(bm_esp_run)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Raw append cost: pack + index + buffer one record.
void bm_writer_append(benchmark::State& state) {
  obs::rec::RecordWriter writer;
  writer.open(kRecordPath, 128);
  obs::rec::PackedRecord r;
  r.type = obs::rec::RecordType::DecStartJob;
  r.cores = 8;
  r.flags = obs::rec::kFlagApplied;
  std::int64_t t = 0;
  std::uint32_t job = 0;
  for (auto _ : state) {
    r.t_us = t += 1000;
    r.job = job = (job + 1) & 1023;  // bounded job set, like a real run
    writer.append(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  writer.finalize();
  std::remove(kRecordPath);
}
BENCHMARK(bm_writer_append);

/// Full-file fold: sequential scan speed of the reader (records/s), on a
/// file shaped like a recorded ESP run.
void bm_reader_scan(benchmark::State& state) {
  {
    obs::rec::RecordWriter writer;
    writer.open(kRecordPath, 128);
    obs::rec::PackedRecord r;
    r.type = obs::rec::RecordType::Start;
    r.cores = 8;
    for (std::int64_t i = 0; i < 100'000; ++i) {
      r.t_us = i * 1000;
      r.job = static_cast<std::uint32_t>(i & 1023);
      writer.append(r);
    }
    writer.finalize();
  }
  obs::rec::RecordReader reader;
  if (!reader.open(kRecordPath)) {
    state.SkipWithError(reader.error().c_str());
    return;
  }
  for (auto _ : state) {
    std::uint64_t cores = 0;
    reader.scan_all(
        [&](const obs::rec::PackedRecord& r) { cores +=
            static_cast<std::uint64_t>(r.cores); });
    benchmark::DoNotOptimize(cores);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          100'000);
  std::remove(kRecordPath);
}
BENCHMARK(bm_reader_scan);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  dbs::bench::maybe_dump_metrics();
  return 0;
}
