// Fig. 11: waiting time per job — Static vs Dyn-HP vs Dyn-600.
#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header("Waiting times: Static vs Dyn-HP vs Dyn-600", "Fig. 11");

  const auto params = bench::paper_esp_params();
  const std::vector<batch::RunResult> runs = {
      batch::run_esp(params, batch::EspConfig::Static),
      batch::run_esp(params, batch::EspConfig::DynHP),
      batch::run_esp(params, batch::EspConfig::Dyn600)};
  bench::print_wait_series(runs, /*stride=*/5);

  std::cout << "\nsatisfied dynamic requests: Dyn-HP "
            << runs[1].summary.satisfied_dyn_jobs << ", Dyn-600 "
            << runs[2].summary.satisfied_dyn_jobs << " (paper: 43 vs 27)\n"
            << "utilization: Dyn-HP "
            << TextTable::num(runs[1].summary.utilization, 2) << "%, Dyn-600 "
            << TextTable::num(runs[2].summary.utilization, 2)
            << "% (paper: 85.02 vs 83.57 — the moderate policy approaches "
               "Dyn-HP performance)\n";
  bench::maybe_dump_metrics();
  return 0;
}
