// Ablation X3: evolving-job fraction sweep on synthetic workloads, plus the
// two speedup models (PaperDet vs ScaleRemaining) on the dynamic ESP run.
#include "bench_common.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace dbs;
  bench::print_header(
      "Ablation: evolving-job fraction and speedup-model sweeps",
      "workload sensitivity of §IV-B");

  TextTable mix({"Evolving %", "Time [mins]", "Grants", "Rejects", "Util [%]",
                 "AvgWait [s]"});
  for (const double frac : {0.0, 0.15, 0.3, 0.45, 0.6}) {
    wl::SyntheticParams wp;
    wp.job_count = 300;
    wp.total_cores = 128;
    wp.evolving_fraction = frac;
    wp.seed = 9;
    batch::SystemConfig cfg;
    cfg.cluster.node_count = 16;
    cfg.cluster.cores_per_node = 8;
    cfg.scheduler.reservation_depth = 5;
    cfg.scheduler.reservation_delay_depth = 5;
    cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
    cfg.scheduler.dfs.defaults.target_delay = Duration::seconds(600);
    const batch::RunResult r = batch::run_workload(
        cfg, wl::generate_synthetic(wp),
        "mix=" + TextTable::num(frac, 2));
    std::int64_t grants = 0, rejects = 0;
    for (const auto& j : r.jobs) {
      grants += j.dyn_grants;
      rejects += j.dyn_rejects;
    }
    mix.add_row({TextTable::num(100.0 * frac, 0),
                 TextTable::num(r.summary.makespan.as_minutes(), 2),
                 TextTable::num(grants), TextTable::num(rejects),
                 TextTable::num(r.summary.utilization, 2),
                 TextTable::num(r.summary.avg_wait.as_seconds(), 0)});
  }
  std::cout << mix.to_string() << "\n";

  TextTable model({"Speedup model", "Time [mins]", "Satisfied", "Util [%]",
                   "Throughput"});
  for (const apps::SpeedupModel m :
       {apps::SpeedupModel::PaperDet, apps::SpeedupModel::ScaleRemaining}) {
    batch::EspExperimentParams params;
    params.speedup = m;
    const batch::RunResult r = batch::run_esp(params, batch::EspConfig::DynHP);
    model.add_row(
        {std::string(apps::to_string(m)),
         TextTable::num(r.summary.makespan.as_minutes(), 2),
         TextTable::num(static_cast<std::int64_t>(r.summary.satisfied_dyn_jobs)),
         TextTable::num(r.summary.utilization, 2),
         TextTable::num(r.summary.throughput_jobs_per_min, 2)});
  }
  std::cout << model.to_string()
            << "(PaperDet reproduces Table I's DET exactly; ScaleRemaining "
               "scales only the remaining work)\n";
  bench::maybe_dump_metrics();
  return 0;
}
