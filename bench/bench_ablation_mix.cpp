// Ablation X3: evolving-job fraction sweep on synthetic workloads, plus the
// two speedup models (PaperDet vs ScaleRemaining) on the dynamic ESP run.
// Sweep points are independent replications; DBS_BENCH_JOBS=N parallelizes
// them.
#include "batch/parallel_runner.hpp"
#include "bench_common.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace dbs;
  bench::print_header(
      "Ablation: evolving-job fraction and speedup-model sweeps",
      "workload sensitivity of §IV-B");

  const std::vector<double> fractions{0.0, 0.15, 0.3, 0.45, 0.6};
  batch::ParallelRunner runner(batch::jobs_from_env(1));
  const std::vector<batch::RunResult> mix_results =
      runner.map<batch::RunResult>(
          fractions.size(),
          [&](std::size_t index, obs::Registry& registry) {
            wl::SyntheticParams wp;
            wp.job_count = 300;
            wp.total_cores = 128;
            wp.evolving_fraction = fractions[index];
            wp.seed = 9;
            batch::SystemConfig cfg;
            cfg.cluster.node_count = 16;
            cfg.cluster.cores_per_node = 8;
            cfg.scheduler.reservation_depth = 5;
            cfg.scheduler.reservation_delay_depth = 5;
            cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
            cfg.scheduler.dfs.defaults.target_delay = Duration::seconds(600);
            return batch::run_workload(
                cfg, wl::generate_synthetic(wp),
                "mix=" + TextTable::num(fractions[index], 2), &registry);
          },
          &obs::Registry::global());

  TextTable mix({"Evolving %", "Time [mins]", "Grants", "Rejects", "Util [%]",
                 "AvgWait [s]"});
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const batch::RunResult& r = mix_results[i];
    std::int64_t grants = 0, rejects = 0;
    for (const auto& j : r.jobs) {
      grants += j.dyn_grants;
      rejects += j.dyn_rejects;
    }
    mix.add_row({TextTable::num(100.0 * fractions[i], 0),
                 TextTable::num(r.summary.makespan.as_minutes(), 2),
                 TextTable::num(grants), TextTable::num(rejects),
                 TextTable::num(r.summary.utilization, 2),
                 TextTable::num(r.summary.avg_wait.as_seconds(), 0)});
  }
  std::cout << mix.to_string() << "\n";

  TextTable model({"Speedup model", "Time [mins]", "Satisfied", "Util [%]",
                   "Throughput"});
  for (const apps::SpeedupModel m :
       {apps::SpeedupModel::PaperDet, apps::SpeedupModel::ScaleRemaining}) {
    batch::EspExperimentParams params;
    params.speedup = m;
    const batch::RunResult r = batch::run_esp(params, batch::EspConfig::DynHP);
    model.add_row(
        {std::string(apps::to_string(m)),
         TextTable::num(r.summary.makespan.as_minutes(), 2),
         TextTable::num(static_cast<std::int64_t>(r.summary.satisfied_dyn_jobs)),
         TextTable::num(r.summary.utilization, 2),
         TextTable::num(r.summary.throughput_jobs_per_min, 2)});
  }
  std::cout << model.to_string()
            << "(PaperDet reproduces Table I's DET exactly; ScaleRemaining "
               "scales only the remaining work)\n";
  bench::maybe_dump_metrics();
  return 0;
}
