// Wall-clock benchmark of the multi-replication experiment runner: an ESP
// seed sweep (replication_seed-derived workload seeds) executed serially
// (jobs=1) and on 4 threads (jobs=4), plus the scheduler's internal
// measure_threads fan-out on a synthetic evolving-heavy workload.
//
// The jobs=1 and jobs=4 runs produce bit-identical results and merged
// metrics (verified by tests/exec/parallel_determinism_test.cpp); this
// bench quantifies the wall-clock ratio between them. Speedup scales with
// the machine's core count — on a single-core host both take the same
// time.
#include <benchmark/benchmark.h>

#include "batch/parallel_runner.hpp"
#include "bench_common.hpp"
#include "common/rng.hpp"
#include "workload/synthetic.hpp"

namespace {

using namespace dbs;

constexpr std::uint64_t kBaseSeed = 2014;

/// One small-but-real ESP replication: the paper's machine at 1/4 job scale
/// so a multi-replication sweep finishes in benchmark time.
batch::EspExperimentParams sweep_params(std::uint64_t seed) {
  batch::EspExperimentParams params;
  params.workload.seed = seed;
  return params;
}

/// A `replications`-point seed sweep of the Dyn-600 ESP run on `jobs`
/// threads. Each replication owns its full world (simulator, cluster,
/// registry); the merge is deterministic by replication index.
void bm_esp_seed_sweep(benchmark::State& state) {
  const auto jobs = static_cast<std::size_t>(state.range(0));
  const auto replications = static_cast<std::size_t>(state.range(1));
  std::size_t satisfied = 0;
  for (auto _ : state) {
    batch::ParallelRunner runner(jobs);
    obs::Registry merged;
    const std::vector<batch::RunResult> results =
        runner.map<batch::RunResult>(
            replications,
            [&](std::size_t index, obs::Registry& registry) {
              return batch::run_esp(
                  sweep_params(replication_seed(kBaseSeed, index)),
                  batch::EspConfig::Dyn600, &registry);
            },
            &merged);
    satisfied = 0;
    for (const batch::RunResult& r : results)
      satisfied += r.summary.satisfied_dyn_jobs;
    benchmark::DoNotOptimize(satisfied);
  }
  state.SetLabel(std::to_string(replications) + " replications on " +
                 std::to_string(jobs) + " thread(s), satisfied=" +
                 std::to_string(satisfied));
}

/// The scheduler-internal fan-out: a synthetic evolving-heavy workload run
/// with measure_threads = 1 vs 4 (identical decisions, different wall
/// clock when several dynamic requests queue up per iteration).
void bm_measure_threads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  wl::SyntheticParams wp;
  wp.job_count = 200;
  wp.total_cores = 128;
  wp.evolving_fraction = 0.5;
  wp.seed = 9;
  const wl::Workload workload = wl::generate_synthetic(wp);
  batch::SystemConfig cfg;
  cfg.cluster.node_count = 16;
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = 5;
  cfg.scheduler.reservation_delay_depth = 5;
  cfg.scheduler.dfs.policy = core::DfsPolicy::TargetDelay;
  cfg.scheduler.dfs.defaults.target_delay = Duration::seconds(600);
  cfg.scheduler.measure_threads = threads;
  for (auto _ : state) {
    obs::Registry registry;
    const batch::RunResult r =
        batch::run_workload(cfg, workload, "measure", &registry);
    benchmark::DoNotOptimize(r.summary.satisfied_dyn_jobs);
  }
  state.SetLabel("measure_threads=" + std::to_string(threads));
}

}  // namespace

BENCHMARK(bm_esp_seed_sweep)
    ->Args({1, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

BENCHMARK(bm_measure_threads)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  dbs::bench::maybe_dump_metrics();
  return 0;
}
