// Fig. 10: waiting time per job — Static vs Dyn-HP vs Dyn-500.
#include <cmath>

#include "bench_common.hpp"

int main() {
  using namespace dbs;
  bench::print_header("Waiting times: Static vs Dyn-HP vs Dyn-500", "Fig. 10");

  const auto params = bench::paper_esp_params();
  const std::vector<batch::RunResult> runs = {
      batch::run_esp(params, batch::EspConfig::Static),
      batch::run_esp(params, batch::EspConfig::DynHP),
      batch::run_esp(params, batch::EspConfig::Dyn500)};
  bench::print_wait_series(runs, /*stride=*/5);

  // Dispersion of the dynamic runs' waits relative to Static: the fairness
  // configuration tracks the static waits more closely than Dyn-HP.
  const auto mean_abs_delta = [&](const batch::RunResult& r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < r.waits.size(); ++i) {
      const Duration d = r.waits[i].wait - runs[0].waits[i].wait;
      sum += std::abs(d.as_seconds());
    }
    return sum / static_cast<double>(r.waits.size());
  };
  std::cout << "\nmean |wait - static wait|: Dyn-HP "
            << TextTable::num(mean_abs_delta(runs[1]), 0) << " s, Dyn-500 "
            << TextTable::num(mean_abs_delta(runs[2]), 0) << " s\n"
            << "(paper: waits are more uniform w.r.t. Static under Dyn-500)\n";
  bench::maybe_dump_metrics();
  return 0;
}
