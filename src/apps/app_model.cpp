#include "apps/app_model.hpp"

#include "apps/app_state_kind.hpp"
#include "apps/resilient.hpp"
#include "apps/rigid.hpp"
#include "common/assert.hpp"

namespace dbs::apps {

std::unique_ptr<rms::Application> make_application(const wl::Behavior& behavior,
                                                   SpeedupModel model) {
  if (behavior.evolving)
    return std::make_unique<EvolvingApp>(behavior, model);
  if (behavior.malleable)
    // Malleable jobs must adapt to scheduler-initiated reshapes: use the
    // work-conserving model (it never asks for cores on its own).
    return std::make_unique<ResilientApp>(behavior.static_runtime,
                                          /*reacquire=*/false);
  return std::make_unique<RigidApp>(behavior.static_runtime);
}

std::unique_ptr<rms::Application> restore_application(
    const rms::AppState& state) {
  switch (static_cast<AppStateKind>(state.kind)) {
    case AppStateKind::Rigid: return RigidApp::restore(state);
    case AppStateKind::Evolving: return EvolvingApp::restore(state);
    case AppStateKind::Resilient: return ResilientApp::restore(state);
  }
  DBS_REQUIRE(false, "unknown application state kind");
  return nullptr;
}

ScriptedApp::ScriptedApp(Duration base_runtime, std::vector<Step> steps)
    : base_runtime_(base_runtime), steps_(std::move(steps)) {
  DBS_REQUIRE(base_runtime_ > Duration::zero(), "runtime must be positive");
  Duration previous = Duration::zero() - Duration::micros(1);
  for (const Step& s : steps_) {
    DBS_REQUIRE((s.grow > 0) != (s.shrink > 0),
                "each step must either grow or shrink");
    DBS_REQUIRE(s.at_elapsed > previous, "steps must be strictly ordered");
    DBS_REQUIRE(s.remaining_scale > 0.0, "scale must be positive");
    previous = s.at_elapsed;
  }
}

rms::AppDecision ScriptedApp::decide(Time now) {
  rms::AppDecision d{finish_, std::nullopt, std::nullopt};
  if (next_step_ >= steps_.size()) return d;
  const Step& s = steps_[next_step_];
  const Time at = max(now, start_ + s.at_elapsed);
  if (s.grow > 0)
    d.ask = rms::DynAsk{at, s.grow, s.negotiation_timeout};
  else
    d.release = rms::DynRelease{at, s.shrink};
  return d;
}

rms::AppDecision ScriptedApp::on_start(Time now, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "started without cores");
  start_ = now;
  finish_ = now + base_runtime_;
  next_step_ = 0;
  grants_ = rejects_ = releases_ = 0;
  return decide(now);
}

rms::AppDecision ScriptedApp::on_grant(Time now, CoreCount) {
  DBS_ASSERT(next_step_ < steps_.size(), "grant without a pending step");
  ++grants_;
  finish_ = max(now, now + (finish_ - now).scaled(
                              steps_[next_step_].remaining_scale));
  ++next_step_;
  return decide(now);
}

rms::AppDecision ScriptedApp::on_reject(Time now, CoreCount) {
  DBS_ASSERT(next_step_ < steps_.size(), "reject without a pending step");
  ++rejects_;
  ++next_step_;  // scripted apps do not retry; move on
  return decide(now);
}

rms::AppDecision ScriptedApp::on_released(Time now, CoreCount) {
  DBS_ASSERT(next_step_ < steps_.size(), "release without a pending step");
  ++releases_;
  finish_ = max(now, now + (finish_ - now).scaled(
                              steps_[next_step_].remaining_scale));
  ++next_step_;
  return decide(now);
}

}  // namespace dbs::apps
