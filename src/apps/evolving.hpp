// The dynamic-ESP evolving job (paper §IV-B): modelled on the Quadflow
// Cylinder case, it requests `ask_cores` extra cores after 16 % of its
// static execution time, retries once at 25 % if rejected, and — on
// success — finishes earlier under a linear speedup model.
#pragma once

#include <memory>

#include "common/time.hpp"
#include "rms/application.hpp"
#include "workload/esp.hpp"

namespace dbs::apps {

/// How a successful grant shortens the execution.
enum class SpeedupModel {
  /// Total execution time becomes SET * S / (S + extra) — reproduces the
  /// paper's Table I DET values exactly.
  PaperDet,
  /// Only the remaining work scales: elapsed + (SET - elapsed) * S / (S +
  /// extra). More physical; used as an ablation.
  ScaleRemaining,
};

[[nodiscard]] std::string_view to_string(SpeedupModel m);

class EvolvingApp final : public rms::Application {
 public:
  EvolvingApp(wl::Behavior behavior, SpeedupModel model);

  rms::AppDecision on_start(Time now, CoreCount cores) override;
  rms::AppDecision on_grant(Time now, CoreCount total_cores) override;
  rms::AppDecision on_reject(Time now, CoreCount total_cores) override;
  rms::AppDecision on_released(Time now, CoreCount total_cores) override;
  [[nodiscard]] const char* name() const override { return "esp-evolving"; }

  /// Projected finish with the current allocation (valid after on_start).
  [[nodiscard]] Time finish() const { return finish_; }

  [[nodiscard]] bool save_state(rms::AppState& out) const override;
  [[nodiscard]] static std::unique_ptr<EvolvingApp> restore(
      const rms::AppState& state);

 private:
  wl::Behavior behavior_;
  SpeedupModel model_;
  Time start_;
  Time finish_;
  CoreCount base_cores_ = 0;
  int asks_resolved_ = 0;
};

}  // namespace dbs::apps
