// Application factory plus a scriptable model for tests and demos.
#pragma once

#include <memory>
#include <vector>

#include "apps/evolving.hpp"
#include "rms/application.hpp"
#include "workload/esp.hpp"

namespace dbs::apps {

/// Builds the Application matching a workload Behavior (rigid or evolving).
[[nodiscard]] std::unique_ptr<rms::Application> make_application(
    const wl::Behavior& behavior,
    SpeedupModel model = SpeedupModel::PaperDet);

/// Rebuilds an Application from serialized snapshot state (the inverse of
/// Application::save_state). Fails fast on an unknown kind — a snapshot
/// written by a newer build must not restore silently wrong.
[[nodiscard]] std::unique_ptr<rms::Application> restore_application(
    const rms::AppState& state);

/// A fully scripted application: a fixed sequence of grow/shrink actions at
/// given elapsed offsets, each optionally shortening/extending the runtime.
/// Used by tests and the deallocation example; models applications with
/// phase-dependent resource needs.
class ScriptedApp final : public rms::Application {
 public:
  struct Step {
    Duration at_elapsed;     ///< offset from job start
    CoreCount grow = 0;      ///< > 0: tm_dynget this many cores
    CoreCount shrink = 0;    ///< > 0: tm_dynfree this many cores
    /// Runtime change applied if the step succeeds (grant / release done):
    /// new remaining = old remaining scaled by this factor.
    double remaining_scale = 1.0;
    Duration negotiation_timeout = Duration::zero();
  };

  ScriptedApp(Duration base_runtime, std::vector<Step> steps);

  rms::AppDecision on_start(Time now, CoreCount cores) override;
  rms::AppDecision on_grant(Time now, CoreCount total_cores) override;
  rms::AppDecision on_reject(Time now, CoreCount total_cores) override;
  rms::AppDecision on_released(Time now, CoreCount total_cores) override;
  [[nodiscard]] const char* name() const override { return "scripted"; }

  [[nodiscard]] int grants() const { return grants_; }
  [[nodiscard]] int rejects() const { return rejects_; }
  [[nodiscard]] int releases() const { return releases_; }

 private:
  /// Decision carrying the next pending step (if any) and current finish.
  [[nodiscard]] rms::AppDecision decide(Time now);

  Duration base_runtime_;
  std::vector<Step> steps_;
  std::size_t next_step_ = 0;
  Time start_;
  Time finish_;
  int grants_ = 0;
  int rejects_ = 0;
  int releases_ = 0;
};

}  // namespace dbs::apps
