#include "apps/resilient.hpp"

#include <algorithm>

#include "apps/app_state_kind.hpp"
#include "common/assert.hpp"

namespace dbs::apps {

ResilientApp::ResilientApp(Duration runtime_on_initial, bool reacquire)
    : runtime_on_initial_(runtime_on_initial), reacquire_(reacquire) {
  DBS_REQUIRE(runtime_on_initial > Duration::zero(),
              "runtime must be positive");
}

rms::AppDecision ResilientApp::progress(Time now, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "cannot run on zero cores");
  const double done = (now - last_event_).as_seconds() *
                      static_cast<double>(last_cores_);
  remaining_work_ = std::max(0.0, remaining_work_ - done);
  last_event_ = now;
  last_cores_ = cores;
  const Time finish =
      now + Duration::seconds_f(remaining_work_ / static_cast<double>(cores));
  return {max(finish, now + Duration::micros(1)), std::nullopt, std::nullopt};
}

rms::AppDecision ResilientApp::on_start(Time now, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "started without cores");
  remaining_work_ = runtime_on_initial_.as_seconds() *
                    static_cast<double>(cores);
  last_event_ = now;
  last_cores_ = cores;
  losses_survived_ = 0;
  return progress(now, cores);
}

rms::AppDecision ResilientApp::on_grant(Time now, CoreCount total_cores) {
  return progress(now, total_cores);
}

rms::AppDecision ResilientApp::on_reject(Time now, CoreCount total_cores) {
  return progress(now, total_cores);
}

rms::AppDecision ResilientApp::on_released(Time now, CoreCount total_cores) {
  return progress(now, total_cores);
}

std::optional<rms::AppDecision> ResilientApp::on_nodes_lost(
    Time now, CoreCount lost_cores, CoreCount total_cores) {
  ++losses_survived_;
  rms::AppDecision d = progress(now, total_cores);
  if (reacquire_ && d.finish_at > now + Duration::micros(1))
    d.ask = rms::DynAsk{now, lost_cores, Duration::zero()};
  return d;
}

bool ResilientApp::save_state(rms::AppState& out) const {
  out.kind = static_cast<std::uint32_t>(AppStateKind::Resilient);
  out.ints = {runtime_on_initial_.as_micros(), reacquire_ ? 1 : 0,
              last_event_.as_micros(), static_cast<std::int64_t>(last_cores_),
              losses_survived_};
  out.doubles = {remaining_work_};
  return true;
}

std::unique_ptr<ResilientApp> ResilientApp::restore(
    const rms::AppState& state) {
  DBS_REQUIRE(
      state.kind == static_cast<std::uint32_t>(AppStateKind::Resilient) &&
          state.ints.size() == 5 && state.doubles.size() == 1,
      "malformed resilient app state");
  auto app = std::make_unique<ResilientApp>(Duration::micros(state.ints[0]),
                                            state.ints[1] != 0);
  app->last_event_ = Time::from_micros(state.ints[2]);
  app->last_cores_ = static_cast<CoreCount>(state.ints[3]);
  app->losses_survived_ = static_cast<int>(state.ints[4]);
  app->remaining_work_ = state.doubles[0];
  return app;
}

}  // namespace dbs::apps
