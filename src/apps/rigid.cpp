#include "apps/rigid.hpp"

#include "common/assert.hpp"

namespace dbs::apps {

RigidApp::RigidApp(Duration runtime) : runtime_(runtime) {
  DBS_REQUIRE(runtime > Duration::zero(), "runtime must be positive");
}

rms::AppDecision RigidApp::on_start(Time now, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "started without cores");
  finish_ = now + runtime_;
  return {finish_, std::nullopt, std::nullopt};
}

rms::AppDecision RigidApp::on_grant(Time, CoreCount) {
  DBS_ASSERT(false, "rigid app never asks for cores");
  return {finish_, std::nullopt, std::nullopt};
}

rms::AppDecision RigidApp::on_reject(Time, CoreCount) {
  DBS_ASSERT(false, "rigid app never asks for cores");
  return {finish_, std::nullopt, std::nullopt};
}

rms::AppDecision RigidApp::on_released(Time, CoreCount) {
  DBS_ASSERT(false, "rigid app never releases cores");
  return {finish_, std::nullopt, std::nullopt};
}

}  // namespace dbs::apps
