#include "apps/rigid.hpp"

#include "apps/app_state_kind.hpp"
#include "common/assert.hpp"

namespace dbs::apps {

RigidApp::RigidApp(Duration runtime) : runtime_(runtime) {
  DBS_REQUIRE(runtime > Duration::zero(), "runtime must be positive");
}

rms::AppDecision RigidApp::on_start(Time now, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "started without cores");
  finish_ = now + runtime_;
  return {finish_, std::nullopt, std::nullopt};
}

rms::AppDecision RigidApp::on_grant(Time, CoreCount) {
  DBS_ASSERT(false, "rigid app never asks for cores");
  return {finish_, std::nullopt, std::nullopt};
}

rms::AppDecision RigidApp::on_reject(Time, CoreCount) {
  DBS_ASSERT(false, "rigid app never asks for cores");
  return {finish_, std::nullopt, std::nullopt};
}

rms::AppDecision RigidApp::on_released(Time, CoreCount) {
  DBS_ASSERT(false, "rigid app never releases cores");
  return {finish_, std::nullopt, std::nullopt};
}

bool RigidApp::save_state(rms::AppState& out) const {
  out.kind = static_cast<std::uint32_t>(AppStateKind::Rigid);
  out.ints = {runtime_.as_micros(), finish_.as_micros()};
  out.doubles.clear();
  return true;
}

std::unique_ptr<RigidApp> RigidApp::restore(const rms::AppState& state) {
  DBS_REQUIRE(state.kind == static_cast<std::uint32_t>(AppStateKind::Rigid) &&
                  state.ints.size() == 2 && state.doubles.empty(),
              "malformed rigid app state");
  auto app = std::make_unique<RigidApp>(Duration::micros(state.ints[0]));
  app->finish_ = Time::from_micros(state.ints[1]);
  return app;
}

}  // namespace dbs::apps
