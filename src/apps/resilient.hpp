// A fault-tolerant, work-conserving application: it carries a fixed amount
// of work (core-seconds), executes it at a rate proportional to its current
// allocation, survives node failures on the remaining cores, and — the
// fault-tolerance use of dynamic allocation the paper's introduction
// motivates — immediately issues tm_dynget for spare nodes to replace the
// lost ones.
#pragma once

#include <memory>

#include "common/time.hpp"
#include "rms/application.hpp"

namespace dbs::apps {

class ResilientApp final : public rms::Application {
 public:
  /// `runtime_on_initial`: wall time the work takes on the initial
  /// allocation. With `reacquire` false the app survives losses but does
  /// not ask for replacements (pure shrink-and-continue).
  explicit ResilientApp(Duration runtime_on_initial, bool reacquire = true);

  rms::AppDecision on_start(Time now, CoreCount cores) override;
  rms::AppDecision on_grant(Time now, CoreCount total_cores) override;
  rms::AppDecision on_reject(Time now, CoreCount total_cores) override;
  rms::AppDecision on_released(Time now, CoreCount total_cores) override;
  std::optional<rms::AppDecision> on_nodes_lost(
      Time now, CoreCount lost_cores, CoreCount total_cores) override;
  [[nodiscard]] const char* name() const override { return "resilient"; }

  [[nodiscard]] int losses_survived() const { return losses_survived_; }
  /// Remaining work in core-seconds (after the last event).
  [[nodiscard]] double remaining_work() const { return remaining_work_; }

  [[nodiscard]] bool save_state(rms::AppState& out) const override;
  [[nodiscard]] static std::unique_ptr<ResilientApp> restore(
      const rms::AppState& state);

 private:
  /// Accounts the work done since the last event at the previous rate and
  /// projects the new finish time.
  rms::AppDecision progress(Time now, CoreCount cores);

  Duration runtime_on_initial_;
  bool reacquire_;
  double remaining_work_ = 0.0;  ///< core-seconds
  Time last_event_;
  CoreCount last_cores_ = 0;
  int losses_survived_ = 0;
};

}  // namespace dbs::apps
