// Kind tags for serialized application-model state (rms::AppState::kind).
// Every snapshot-capable model owns one tag; 0 stays reserved for "unset"
// so a zero-filled AppState never restores silently.
#pragma once

#include <cstdint>

namespace dbs::apps {

enum class AppStateKind : std::uint32_t {
  Rigid = 1,
  Evolving = 2,
  Resilient = 3,
};

}  // namespace dbs::apps
