// The Quadflow application model (paper §IV-A, Fig. 7): computation phases
// separated by grid adaptations; after an adaptation that leaves more than
// `threshold_cells_per_proc` cells per process, the application issues
// tm_dynget for more cores. Phase times follow a strong-scaling model with
// an underload grain (adding cores stops helping once each process holds
// fewer than `min_cells_per_proc` cells).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "amr/cases.hpp"
#include "common/time.hpp"
#include "rms/application.hpp"

namespace dbs::apps {

/// Wall time of phase `p` of `c` on `cores` cores.
[[nodiscard]] Duration quadflow_phase_time(const amr::QuadflowCase& c,
                                           std::size_t phase, CoreCount cores);

/// All phase times on a fixed core count.
[[nodiscard]] std::vector<Duration> quadflow_phase_times(
    const amr::QuadflowCase& c, CoreCount cores);

/// First phase whose cells-per-process (on `cores` cores) exceed the
/// case's threshold — the adaptation after which tm_dynget is issued.
/// nullopt if the threshold is never crossed.
[[nodiscard]] std::optional<std::size_t> quadflow_trigger_phase(
    const amr::QuadflowCase& c, CoreCount cores);

/// A whole-run summary for the Fig. 7 comparison (no batch system
/// involved): per-phase durations for a static run, or for a dynamic run
/// that expands at the trigger phase.
struct QuadflowScenario {
  std::string label;
  std::vector<Duration> phase_durations;
  CoreCount initial_cores = 0;
  CoreCount final_cores = 0;
  std::optional<std::size_t> expand_phase;

  [[nodiscard]] Duration total() const;
};

[[nodiscard]] QuadflowScenario quadflow_static(const amr::QuadflowCase& c,
                                               CoreCount cores);
[[nodiscard]] QuadflowScenario quadflow_dynamic(const amr::QuadflowCase& c,
                                                CoreCount initial_cores,
                                                CoreCount extra_cores);

/// The Application driving the same model through the batch system: issues
/// tm_dynget at the trigger adaptation; on rejection retries at the next
/// adaptation that still exceeds the threshold.
class QuadflowApp final : public rms::Application {
 public:
  QuadflowApp(amr::QuadflowCase test_case, CoreCount extra_cores);

  rms::AppDecision on_start(Time now, CoreCount cores) override;
  rms::AppDecision on_grant(Time now, CoreCount total_cores) override;
  rms::AppDecision on_reject(Time now, CoreCount total_cores) override;
  rms::AppDecision on_released(Time now, CoreCount total_cores) override;
  [[nodiscard]] const char* name() const override { return "quadflow"; }

 private:
  /// Decision given that phases [phase_, end) remain, starting at `now`
  /// on `cores` cores.
  [[nodiscard]] rms::AppDecision plan(Time now, CoreCount cores);

  amr::QuadflowCase case_;
  CoreCount extra_cores_;
  std::size_t phase_ = 0;        ///< phase currently executing
  std::size_t next_search_ = 1;  ///< first phase eligible as a trigger
  std::size_t pending_trigger_ = 0;
};

}  // namespace dbs::apps
