#include "apps/quadflow_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dbs::apps {

Duration quadflow_phase_time(const amr::QuadflowCase& c, std::size_t phase,
                             CoreCount cores) {
  DBS_REQUIRE(phase < c.cells_per_phase.size(), "phase out of range");
  DBS_REQUIRE(cores > 0, "cores must be positive");
  const double cells = static_cast<double>(c.cells_per_phase[phase]);
  // Strong scaling with an underload grain: time per iteration is the work
  // of the busiest process, but no fewer than `grain` cells' worth (unless
  // the whole grid is smaller than one grain).
  const double per_proc =
      std::max(cells / static_cast<double>(cores),
               std::min(cells, c.min_cells_per_proc));
  return Duration::seconds_f(per_proc * c.iterations_per_phase *
                             c.seconds_per_cell_iter);
}

std::vector<Duration> quadflow_phase_times(const amr::QuadflowCase& c,
                                           CoreCount cores) {
  std::vector<Duration> out;
  out.reserve(c.cells_per_phase.size());
  for (std::size_t p = 0; p < c.cells_per_phase.size(); ++p)
    out.push_back(quadflow_phase_time(c, p, cores));
  return out;
}

std::optional<std::size_t> quadflow_trigger_phase(const amr::QuadflowCase& c,
                                                  CoreCount cores) {
  // Phase 0 is the initial grid; only phases created by an adaptation can
  // trigger a request.
  for (std::size_t p = 1; p < c.cells_per_phase.size(); ++p) {
    const double per_proc = static_cast<double>(c.cells_per_phase[p]) /
                            static_cast<double>(cores);
    if (per_proc > c.threshold_cells_per_proc) return p;
  }
  return std::nullopt;
}

Duration QuadflowScenario::total() const {
  Duration sum;
  for (const Duration d : phase_durations) sum += d;
  return sum;
}

QuadflowScenario quadflow_static(const amr::QuadflowCase& c, CoreCount cores) {
  QuadflowScenario s;
  s.label = c.name + "-static-" + std::to_string(cores);
  s.initial_cores = s.final_cores = cores;
  s.phase_durations = quadflow_phase_times(c, cores);
  return s;
}

QuadflowScenario quadflow_dynamic(const amr::QuadflowCase& c,
                                  CoreCount initial_cores,
                                  CoreCount extra_cores) {
  DBS_REQUIRE(extra_cores > 0, "dynamic scenario must add cores");
  QuadflowScenario s;
  s.label = c.name + "-dynamic-" + std::to_string(initial_cores) + "+" +
            std::to_string(extra_cores);
  s.initial_cores = initial_cores;
  s.final_cores = initial_cores;
  s.expand_phase = quadflow_trigger_phase(c, initial_cores);
  for (std::size_t p = 0; p < c.cells_per_phase.size(); ++p) {
    const bool expanded = s.expand_phase && p >= *s.expand_phase;
    const CoreCount cores = expanded ? initial_cores + extra_cores
                                     : initial_cores;
    s.phase_durations.push_back(quadflow_phase_time(c, p, cores));
    s.final_cores = cores;
  }
  return s;
}

QuadflowApp::QuadflowApp(amr::QuadflowCase test_case, CoreCount extra_cores)
    : case_(std::move(test_case)), extra_cores_(extra_cores) {
  DBS_REQUIRE(!case_.cells_per_phase.empty(), "case needs phases");
  DBS_REQUIRE(extra_cores_ > 0, "must ask for cores");
}

rms::AppDecision QuadflowApp::plan(Time now, CoreCount cores) {
  const std::size_t phases = case_.cells_per_phase.size();
  Time finish = now;
  for (std::size_t p = phase_; p < phases; ++p)
    finish += quadflow_phase_time(case_, p, cores);

  rms::AppDecision d{finish, std::nullopt, std::nullopt};
  // Find the next adaptation boundary at which the grid exceeds the
  // threshold for the *current* core count.
  Time boundary = now;
  for (std::size_t k = phase_; k < phases; ++k) {
    const double per_proc = static_cast<double>(case_.cells_per_phase[k]) /
                            static_cast<double>(cores);
    if (k >= next_search_ && k >= 1 &&
        per_proc > case_.threshold_cells_per_proc) {
      d.ask = rms::DynAsk{boundary, extra_cores_, Duration::zero()};
      pending_trigger_ = k;
      break;
    }
    boundary += quadflow_phase_time(case_, k, cores);
  }
  return d;
}

rms::AppDecision QuadflowApp::on_start(Time now, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "started without cores");
  phase_ = 0;
  next_search_ = 1;
  return plan(now, cores);
}

rms::AppDecision QuadflowApp::on_grant(Time now, CoreCount total_cores) {
  phase_ = pending_trigger_;
  next_search_ = pending_trigger_ + 1;
  return plan(now, total_cores);
}

rms::AppDecision QuadflowApp::on_reject(Time now, CoreCount total_cores) {
  phase_ = pending_trigger_;
  next_search_ = pending_trigger_ + 1;
  return plan(now, total_cores);
}

rms::AppDecision QuadflowApp::on_released(Time, CoreCount) {
  DBS_ASSERT(false, "quadflow never releases cores");
  return {Time::far_future(), std::nullopt, std::nullopt};
}

}  // namespace dbs::apps
