// The ordinary rigid job: runs for a fixed time on its initial allocation
// and never changes it.
#pragma once

#include <memory>

#include "common/time.hpp"
#include "rms/application.hpp"

namespace dbs::apps {

class RigidApp final : public rms::Application {
 public:
  explicit RigidApp(Duration runtime);

  rms::AppDecision on_start(Time now, CoreCount cores) override;
  rms::AppDecision on_grant(Time now, CoreCount total_cores) override;
  rms::AppDecision on_reject(Time now, CoreCount total_cores) override;
  rms::AppDecision on_released(Time now, CoreCount total_cores) override;
  [[nodiscard]] const char* name() const override { return "rigid"; }

  [[nodiscard]] bool save_state(rms::AppState& out) const override;
  [[nodiscard]] static std::unique_ptr<RigidApp> restore(
      const rms::AppState& state);

 private:
  Duration runtime_;
  Time finish_;
};

}  // namespace dbs::apps
