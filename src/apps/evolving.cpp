#include "apps/evolving.hpp"

#include "apps/app_state_kind.hpp"
#include "common/assert.hpp"

namespace dbs::apps {

std::string_view to_string(SpeedupModel m) {
  switch (m) {
    case SpeedupModel::PaperDet: return "paper-det";
    case SpeedupModel::ScaleRemaining: return "scale-remaining";
  }
  return "?";
}

EvolvingApp::EvolvingApp(wl::Behavior behavior, SpeedupModel model)
    : behavior_(behavior), model_(model) {
  DBS_REQUIRE(behavior_.static_runtime > Duration::zero(),
              "SET must be positive");
  DBS_REQUIRE(behavior_.ask_cores > 0, "evolving job must ask for cores");
  DBS_REQUIRE(behavior_.first_ask_frac > 0.0 &&
                  behavior_.first_ask_frac < behavior_.retry_frac &&
                  behavior_.retry_frac < 1.0,
              "ask fractions must satisfy 0 < first < retry < 1");
}

rms::AppDecision EvolvingApp::on_start(Time now, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "started without cores");
  start_ = now;
  base_cores_ = cores;
  asks_resolved_ = 0;
  finish_ = now + behavior_.static_runtime;
  const rms::DynAsk ask{
      start_ + behavior_.static_runtime.scaled(behavior_.first_ask_frac),
      behavior_.ask_cores, behavior_.negotiation_timeout};
  return {finish_, ask, std::nullopt};
}

rms::AppDecision EvolvingApp::on_grant(Time now, CoreCount total_cores) {
  DBS_REQUIRE(total_cores > base_cores_, "grant did not add cores");
  ++asks_resolved_;
  const double ratio = static_cast<double>(base_cores_) /
                       static_cast<double>(total_cores);
  switch (model_) {
    case SpeedupModel::PaperDet:
      // The whole execution contracts to DET = SET * S / (S + extra).
      finish_ = max(now, start_ + behavior_.static_runtime.scaled(ratio));
      break;
    case SpeedupModel::ScaleRemaining:
      finish_ = now + (finish_ - now).scaled(ratio);
      break;
  }
  // One successful expansion is all the dynamic ESP model asks for.
  return {finish_, std::nullopt, std::nullopt};
}

rms::AppDecision EvolvingApp::on_reject(Time now, CoreCount) {
  ++asks_resolved_;
  if (asks_resolved_ >= 2) {
    // Both attempts failed: continue with the static allocation (SET).
    return {finish_, std::nullopt, std::nullopt};
  }
  // Second chance at 25 % of the static execution time; if the rejection
  // arrived after that point (negotiation deferral), retry right away.
  const Time retry = max(
      now, start_ + behavior_.static_runtime.scaled(behavior_.retry_frac));
  const rms::DynAsk ask{retry, behavior_.ask_cores,
                        behavior_.negotiation_timeout};
  return {finish_, ask, std::nullopt};
}

rms::AppDecision EvolvingApp::on_released(Time, CoreCount) {
  DBS_ASSERT(false, "esp evolving job never releases cores");
  return {finish_, std::nullopt, std::nullopt};
}

bool EvolvingApp::save_state(rms::AppState& out) const {
  out.kind = static_cast<std::uint32_t>(AppStateKind::Evolving);
  out.ints = {static_cast<std::int64_t>(model_),
              behavior_.static_runtime.as_micros(),
              static_cast<std::int64_t>(behavior_.ask_cores),
              behavior_.negotiation_timeout.as_micros(),
              behavior_.malleable ? 1 : 0,
              start_.as_micros(),
              finish_.as_micros(),
              static_cast<std::int64_t>(base_cores_),
              asks_resolved_};
  out.doubles = {behavior_.first_ask_frac, behavior_.retry_frac};
  return true;
}

std::unique_ptr<EvolvingApp> EvolvingApp::restore(const rms::AppState& state) {
  DBS_REQUIRE(
      state.kind == static_cast<std::uint32_t>(AppStateKind::Evolving) &&
          state.ints.size() == 9 && state.doubles.size() == 2,
      "malformed evolving app state");
  wl::Behavior behavior;
  behavior.static_runtime = Duration::micros(state.ints[1]);
  behavior.evolving = true;
  behavior.first_ask_frac = state.doubles[0];
  behavior.retry_frac = state.doubles[1];
  behavior.ask_cores = static_cast<CoreCount>(state.ints[2]);
  behavior.negotiation_timeout = Duration::micros(state.ints[3]);
  behavior.malleable = state.ints[4] != 0;
  auto app = std::make_unique<EvolvingApp>(
      behavior, static_cast<SpeedupModel>(state.ints[0]));
  app->start_ = Time::from_micros(state.ints[5]);
  app->finish_ = Time::from_micros(state.ints[6]);
  app->base_cores_ = static_cast<CoreCount>(state.ints[7]);
  app->asks_resolved_ = static_cast<int>(state.ints[8]);
  return app;
}

}  // namespace dbs::apps
