#include "apps/evolving.hpp"

#include "common/assert.hpp"

namespace dbs::apps {

std::string_view to_string(SpeedupModel m) {
  switch (m) {
    case SpeedupModel::PaperDet: return "paper-det";
    case SpeedupModel::ScaleRemaining: return "scale-remaining";
  }
  return "?";
}

EvolvingApp::EvolvingApp(wl::Behavior behavior, SpeedupModel model)
    : behavior_(behavior), model_(model) {
  DBS_REQUIRE(behavior_.static_runtime > Duration::zero(),
              "SET must be positive");
  DBS_REQUIRE(behavior_.ask_cores > 0, "evolving job must ask for cores");
  DBS_REQUIRE(behavior_.first_ask_frac > 0.0 &&
                  behavior_.first_ask_frac < behavior_.retry_frac &&
                  behavior_.retry_frac < 1.0,
              "ask fractions must satisfy 0 < first < retry < 1");
}

rms::AppDecision EvolvingApp::on_start(Time now, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "started without cores");
  start_ = now;
  base_cores_ = cores;
  asks_resolved_ = 0;
  finish_ = now + behavior_.static_runtime;
  const rms::DynAsk ask{
      start_ + behavior_.static_runtime.scaled(behavior_.first_ask_frac),
      behavior_.ask_cores, behavior_.negotiation_timeout};
  return {finish_, ask, std::nullopt};
}

rms::AppDecision EvolvingApp::on_grant(Time now, CoreCount total_cores) {
  DBS_REQUIRE(total_cores > base_cores_, "grant did not add cores");
  ++asks_resolved_;
  const double ratio = static_cast<double>(base_cores_) /
                       static_cast<double>(total_cores);
  switch (model_) {
    case SpeedupModel::PaperDet:
      // The whole execution contracts to DET = SET * S / (S + extra).
      finish_ = max(now, start_ + behavior_.static_runtime.scaled(ratio));
      break;
    case SpeedupModel::ScaleRemaining:
      finish_ = now + (finish_ - now).scaled(ratio);
      break;
  }
  // One successful expansion is all the dynamic ESP model asks for.
  return {finish_, std::nullopt, std::nullopt};
}

rms::AppDecision EvolvingApp::on_reject(Time now, CoreCount) {
  ++asks_resolved_;
  if (asks_resolved_ >= 2) {
    // Both attempts failed: continue with the static allocation (SET).
    return {finish_, std::nullopt, std::nullopt};
  }
  // Second chance at 25 % of the static execution time; if the rejection
  // arrived after that point (negotiation deferral), retry right away.
  const Time retry = max(
      now, start_ + behavior_.static_runtime.scaled(behavior_.retry_frac));
  const rms::DynAsk ask{retry, behavior_.ask_cores,
                        behavior_.negotiation_timeout};
  return {finish_, ask, std::nullopt};
}

rms::AppDecision EvolvingApp::on_released(Time, CoreCount) {
  DBS_ASSERT(false, "esp evolving job never releases cores");
  return {finish_, std::nullopt, std::nullopt};
}

}  // namespace dbs::apps
