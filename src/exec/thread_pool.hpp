// Fixed-size worker pool with a fork-join `parallel_for` — the execution
// substrate for the scheduler's speculative what-if measurements and the
// batch layer's multi-replication experiment runner.
//
// Design constraints (why not std::async / TBB):
//  - deterministic reductions: tasks are identified by index; callers
//    collect per-index results and reduce them in index order, so the
//    outcome never depends on which worker ran what;
//  - per-thread scratch: the body receives the worker slot id in
//    [0, worker_count()), letting callers keep one pre-allocated scratch
//    object per slot (profile clones, plan buffers) so a hot fan-out
//    allocates nothing after warm-up;
//  - no dependencies: the container image only has the C++ toolchain.
//
// A pool of `threads` spawns `threads - 1` background workers; the calling
// thread participates as worker slot 0, so ThreadPool(1) degenerates into a
// plain inline loop with zero synchronization.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dbs::exec {

class ThreadPool {
 public:
  /// `threads` >= 1 is the parallelism degree (calling thread included).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total worker slots, calling thread included.
  [[nodiscard]] std::size_t worker_count() const { return threads_.size() + 1; }

  /// The body of one task: `index` in [0, n), `worker` in
  /// [0, worker_count()) identifying the executing slot (stable for the
  /// duration of one task, distinct across concurrently running tasks).
  using Task = std::function<void(std::size_t index, std::size_t worker)>;

  /// Runs `fn(0..n-1)` across the workers and returns when every task has
  /// finished. Indices are claimed dynamically (no static partition), so
  /// uneven task costs balance out. n == 0 returns immediately.
  ///
  /// `grain` >= 1 is the chunk size of one dynamic claim: a worker grabs
  /// `grain` consecutive indices per fetch_add and runs them back to back.
  /// The default (1) maximizes balancing; a larger grain amortizes the
  /// claim + completion bookkeeping when tasks are tiny relative to an
  /// atomic RMW (e.g. K small scheduler-shard iterations fanned out over a
  /// wide pool), at the cost of coarser balancing. Within a chunk indices
  /// run in order, so per-index determinism contracts are unaffected.
  ///
  /// Exceptions: if one or more tasks throw, the exception of the
  /// lowest-indexed failing task is rethrown on the caller (the rest are
  /// discarded); remaining tasks still run to completion first, so partial
  /// results stay consistent.
  ///
  /// Reentrancy: calling parallel_for from inside a task of the same pool
  /// would deadlock a classic fork-join pool (the worker would wait on
  /// itself). Here the nested call is detected and executed inline,
  /// serially, on the calling worker — correct, just not extra-parallel.
  void parallel_for(std::size_t n, const Task& fn, std::size_t grain = 1);

  /// Map convenience: returns `fn(i, worker)` for each index, in index
  /// order. R must be default-constructible and movable.
  template <class R, class F>
  std::vector<R> parallel_map(std::size_t n, F&& fn, std::size_t grain = 1) {
    std::vector<R> out(n);
    parallel_for(
        n, [&](std::size_t i, std::size_t w) { out[i] = fn(i, w); }, grain);
    return out;
  }

 private:
  /// One fork-join region. Heap-allocated and shared with the workers so a
  /// late-waking worker can still safely observe an already-finished batch.
  struct Batch;

  void worker_main(std::size_t worker_slot);
  static void run_tasks(Batch& batch, std::size_t worker_slot);

  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers: a new batch is posted
  std::shared_ptr<Batch> batch_;     ///< current batch (null when idle)
  std::uint64_t batch_seq_ = 0;      ///< bumped per posted batch
  bool stop_ = false;
};

}  // namespace dbs::exec
