#include "exec/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <limits>

#include "common/assert.hpp"

namespace dbs::exec {

namespace {

/// The pool (and worker slot) the current thread is executing a task for —
/// the reentrancy guard. Plain thread_local: one level is enough because
/// nested calls run inline and keep the same slot.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_worker_slot = 0;

}  // namespace

struct ThreadPool::Batch {
  const ThreadPool* owner = nullptr;
  std::size_t n = 0;
  std::size_t grain = 1;             ///< indices claimed per fetch_add
  const Task* fn = nullptr;
  std::atomic<std::size_t> next{0};  ///< next unclaimed task index
  std::atomic<std::size_t> done{0};  ///< completed tasks
  std::mutex done_mutex;
  std::condition_variable done_cv;
  std::mutex error_mutex;
  std::exception_ptr error;
  std::size_t error_index = std::numeric_limits<std::size_t>::max();
};

ThreadPool::ThreadPool(std::size_t threads) {
  DBS_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  threads_.reserve(threads - 1);
  for (std::size_t slot = 1; slot < threads; ++slot)
    threads_.emplace_back([this, slot] { worker_main(slot); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_tasks(Batch& batch, std::size_t worker_slot) {
  // Scoped reentrancy guard: while this thread runs tasks for `batch` it is
  // marked as belonging to the owning pool, so a nested parallel_for on the
  // same pool is detected and inlined. Saving/restoring (instead of
  // clearing) keeps the guard correct when pools nest across each other.
  const ThreadPool* saved_pool = tls_pool;
  const std::size_t saved_slot = tls_worker_slot;
  tls_pool = batch.owner;
  tls_worker_slot = worker_slot;
  for (;;) {
    // One claim takes `grain` consecutive indices; the chunk runs in index
    // order so per-index semantics (error_index, determinism contracts)
    // match grain == 1 exactly.
    const std::size_t begin =
        batch.next.fetch_add(batch.grain, std::memory_order_relaxed);
    if (begin >= batch.n) break;
    const std::size_t end = std::min(begin + batch.grain, batch.n);
    for (std::size_t i = begin; i < end; ++i) {
      try {
        (*batch.fn)(i, worker_slot);
      } catch (...) {
        std::lock_guard<std::mutex> lock(batch.error_mutex);
        if (i < batch.error_index) {
          batch.error = std::current_exception();
          batch.error_index = i;
        }
      }
    }
    const std::size_t chunk = end - begin;
    if (batch.done.fetch_add(chunk, std::memory_order_acq_rel) + chunk ==
        batch.n) {
      std::lock_guard<std::mutex> lock(batch.done_mutex);
      batch.done_cv.notify_all();
    }
  }
  tls_pool = saved_pool;
  tls_worker_slot = saved_slot;
}

void ThreadPool::worker_main(std::size_t worker_slot) {
  std::uint64_t seen_seq = 0;
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || batch_seq_ != seen_seq; });
      if (stop_) return;
      seen_seq = batch_seq_;
      batch = batch_;
    }
    // A null batch means the region already finished (posted and drained
    // before this worker woke up); just go back to waiting.
    if (!batch) continue;
    run_tasks(*batch, worker_slot);
  }
}

void ThreadPool::parallel_for(std::size_t n, const Task& fn,
                              std::size_t grain) {
  DBS_REQUIRE(fn != nullptr, "parallel_for needs a body");
  DBS_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
  if (n == 0) return;

  // Nested call from inside one of our own tasks, or a trivially small /
  // single-threaded region: run inline on the current worker slot.
  const bool nested = tls_pool == this;
  if (nested || threads_.empty() || n == 1) {
    const std::size_t slot = nested ? tls_worker_slot : 0;
    std::exception_ptr first_error;
    std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
    for (std::size_t i = 0; i < n; ++i) {
      try {
        fn(i, slot);
      } catch (...) {
        if (i < first_error_index) {
          first_error = std::current_exception();
          first_error_index = i;
        }
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->owner = this;
  batch->n = n;
  batch->grain = grain;
  batch->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
    ++batch_seq_;
  }
  work_cv_.notify_all();

  // The caller works too (slot 0), then waits for stragglers.
  run_tasks(*batch, 0);
  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->done_cv.wait(lock, [&] {
      return batch->done.load(std::memory_order_acquire) == batch->n;
    });
  }
  {
    // Detach so a late-waking worker (holding its own shared_ptr) finds an
    // exhausted batch rather than the next region's state.
    std::lock_guard<std::mutex> lock(mutex_);
    if (batch_ == batch) batch_.reset();
  }
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace dbs::exec
