#include "core/partition.hpp"

#include "common/assert.hpp"

namespace dbs::core {

void reserve_dynamic_partition(AvailabilityProfile& planning,
                               CoreCount partition_cores) {
  DBS_REQUIRE(partition_cores >= 0, "partition size cannot be negative");
  if (partition_cores == 0) return;
  DBS_REQUIRE(partition_cores < planning.capacity(),
              "partition would swallow the whole machine");
  planning.subtract_clamped(planning.origin(), Time::far_future(),
                            partition_cores);
}

}  // namespace dbs::core
