#pragma once

#include "core/pipeline/stage.hpp"

namespace dbs::core {

/// Step 10: plan static jobs without starting them, classifying StartNow /
/// StartLater up to max(ReservationDepth, ReservationDelayDepth), and fix
/// the protected set (Fig. 5) the fairness policies will judge this
/// iteration's dynamic requests against.
class ClassifyStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "classify"; }
  void run(PipelineEnv& env, IterationContext& ctx) override;
};

}  // namespace dbs::core
