#include "core/pipeline/statistics_stage.hpp"

#include "core/dfs_engine.hpp"
#include "core/fairshare.hpp"
#include "core/scheduler_config.hpp"

namespace dbs::core {

void StatisticsStage::run(PipelineEnv& env, IterationContext& ctx) {
  // Charge running jobs' usage since the last update into fairshare. Runs
  // in dry-run passes too: the charge is a function of elapsed time, so
  // charging part of an interval early conserves the total.
  const Duration elapsed = ctx.now - last_usage_update_;
  if (env.config.fairshare.enabled && elapsed > Duration::zero()) {
    for (const rms::Job* job : env.server.jobs().running())
      env.fairshare.record_usage(
          job->spec().cred,
          static_cast<double>(job->allocated_cores()) * elapsed.as_seconds(),
          ctx.now);
  }
  last_usage_update_ = ctx.now;
  env.fairshare.advance_to(ctx.now);
  env.dfs.advance_to(ctx.now);
}

}  // namespace dbs::core
