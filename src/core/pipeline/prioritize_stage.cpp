#include "core/pipeline/prioritize_stage.hpp"

#include <string>
#include <unordered_map>

#include "core/priority.hpp"
#include "core/scheduler_config.hpp"

namespace dbs::core {

std::vector<const rms::Job*> eligible_static_jobs(
    const rms::Server& server, const SchedulerConfig& config) {
  std::vector<const rms::Job*> eligible = server.jobs().queued();
  // Common path: no per-user cap means every queued job is eligible; the
  // per-user counting map is only built when a cap is configured.
  if (!config.max_eligible_per_user) return eligible;
  std::unordered_map<std::string, std::size_t> per_user;
  per_user.reserve(eligible.size());
  std::size_t kept = 0;
  for (const rms::Job* job : eligible) {
    std::size_t& count = per_user[job->spec().cred.user];
    if (count >= *config.max_eligible_per_user) continue;
    ++count;
    eligible[kept++] = job;
  }
  eligible.resize(kept);
  return eligible;
}

void PrioritizeStage::run(PipelineEnv& env, IterationContext& ctx) {
  ctx.prioritized = env.priority.prioritize(
      eligible_static_jobs(env.server, env.config), ctx.now);
  ctx.stats.eligible_static = ctx.prioritized.size();

  ctx.drain = false;
  for (const rms::Job* job : ctx.prioritized)
    ctx.drain = ctx.drain || job->spec().exclusive_priority;
}

}  // namespace dbs::core
