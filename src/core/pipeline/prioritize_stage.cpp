#include "core/pipeline/prioritize_stage.hpp"

#include <string>
#include <unordered_map>

#include "common/assert.hpp"
#include "core/priority.hpp"
#include "core/scheduler_config.hpp"

namespace dbs::core {

void eligible_static_jobs_into(const rms::Server& server,
                               const SchedulerConfig& config,
                               std::vector<const rms::Job*>& out) {
  server.jobs().queued_into(out);
  // Common path: no per-user cap means every queued job is eligible; the
  // per-user counting map is only built when a cap is configured.
  if (!config.max_eligible_per_user) return;
  std::unordered_map<std::string, std::size_t> per_user;
  per_user.reserve(out.size());
  std::size_t kept = 0;
  for (const rms::Job* job : out) {
    std::size_t& count = per_user[job->spec().cred.user];
    if (count >= *config.max_eligible_per_user) continue;
    ++count;
    out[kept++] = job;
  }
  out.resize(kept);
}

std::vector<const rms::Job*> eligible_static_jobs(
    const rms::Server& server, const SchedulerConfig& config) {
  std::vector<const rms::Job*> eligible;
  eligible_static_jobs_into(server, config, eligible);
  return eligible;
}

void PrioritizeStage::run(PipelineEnv& env, IterationContext& ctx) {
  if (env.config.incremental_planning) {
    // Same order, produced incrementally: the previous iteration's output
    // is revalidated under fresh keys and merged with arrivals instead of
    // being re-sorted with live priority() calls in the comparator. The
    // gather reuses the context vector's capacity and the drain flag
    // falls out of the cache's flat exclusive array — neither allocates.
    eligible_static_jobs_into(env.server, env.config, ctx.prioritized);
    ctx.priority_cache.order(ctx.prioritized, env.priority, ctx.now);
    if (env.config.check_invariants) {
      DBS_REQUIRE(ctx.prioritized ==
                      env.priority.prioritize(
                          eligible_static_jobs(env.server, env.config),
                          ctx.now),
                  "incremental priority order diverged from full sort");
    }
    ctx.stats.eligible_static = ctx.prioritized.size();
    ctx.drain = ctx.priority_cache.any_exclusive();
    return;
  }
  ctx.prioritized = env.priority.prioritize(
      eligible_static_jobs(env.server, env.config), ctx.now);
  ctx.stats.eligible_static = ctx.prioritized.size();

  ctx.drain = false;
  for (const rms::Job* job : ctx.prioritized)
    ctx.drain = ctx.drain || job->spec().exclusive_priority;
}

}  // namespace dbs::core
