#pragma once

#include "core/pipeline/stage.hpp"

namespace dbs::core {

/// Steps 2-3: obtain resource/workload information from the server — the
/// FIFO snapshot of pending dynamic requests and the availability profiles
/// (physical and partition-clamped planning) every later stage plans
/// against.
class GatherStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "gather"; }
  void run(PipelineEnv& env, IterationContext& ctx) override;
};

}  // namespace dbs::core
