#pragma once

#include <cstddef>

#include "core/pipeline/stage.hpp"

namespace dbs::core {

/// Steps 11-24: process the iteration's dynamic requests in FIFO order.
/// For each live request: measure the delays a tentative grant would cause
/// to the protected jobs (optionally freeing cores first via malleable
/// shrinking or preemption), consult the DFS policies, then emit a
/// GrantDyn or RejectDyn decision through ctx.applier.
///
/// With measure_threads > 1 the expensive what-if measurements of a batch
/// of upcoming requests are fanned across the thread pool against the
/// *current* planning state; consumption stays strictly FIFO, and any
/// state change truncates the batch, so decisions, trace events and DFS
/// verdicts are bit-identical at every thread count.
class DynamicAdmissionStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "admission"; }
  void run(PipelineEnv& env, IterationContext& ctx) override;

 private:
  /// Speculatively measures a batch of upcoming live dynamic requests
  /// (starting at `begin`) in parallel against the current planning state,
  /// filling ctx.measure_slots. Returns the exclusive end of the batch.
  /// Only called with measure_threads > 1; results are only consumed while
  /// the planning state they were measured against is still current (see
  /// run()).
  std::size_t speculate_measurements(PipelineEnv& env, IterationContext& ctx,
                                     std::size_t begin);
};

}  // namespace dbs::core
