#pragma once

#include <vector>

#include "core/pipeline/stage.hpp"

namespace dbs::core {

/// Queued jobs eligible this iteration: every queued job, clamped to the
/// first max_eligible_per_user per user when that cap is configured.
[[nodiscard]] std::vector<const rms::Job*> eligible_static_jobs(
    const rms::Server& server, const SchedulerConfig& config);

/// Allocation-free variant: clears `out` and fills it, reusing capacity.
void eligible_static_jobs_into(const rms::Server& server,
                               const SchedulerConfig& config,
                               std::vector<const rms::Job*>& out);

/// Steps 6-9: select eligible static jobs and order them by priority
/// (multi-factor weights + fairshare); detect ESP Z drain mode (an
/// exclusive-priority job is queued).
class PrioritizeStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override { return "prioritize"; }
  void run(PipelineEnv& env, IterationContext& ctx) override;
};

}  // namespace dbs::core
