#include "core/pipeline/dynamic_admission_stage.hpp"

#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/backfill.hpp"
#include "core/delay_measurement.hpp"
#include "core/dfs_engine.hpp"
#include "core/malleable.hpp"
#include "core/negotiation.hpp"
#include "core/physical_profile.hpp"
#include "core/preemption.hpp"
#include "core/pipeline/prioritize_stage.hpp"
#include "core/priority.hpp"
#include "core/scheduler_config.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace dbs::core {

namespace {

/// Fixed buckets for the delay-measurement depth (protected jobs touched
/// per measured dynamic request).
const std::vector<double>& measure_depth_bounds() {
  static const std::vector<double> bounds{0, 1, 2, 4, 8, 16, 32, 64, 128};
  return bounds;
}

}  // namespace

std::size_t DynamicAdmissionStage::speculate_measurements(PipelineEnv& env,
                                                          IterationContext& ctx,
                                                          std::size_t begin) {
  if (!ctx.measure_pool)
    ctx.measure_pool =
        std::make_unique<exec::ThreadPool>(env.config.measure_threads);
  if (ctx.worker_scratch.size() < ctx.measure_pool->worker_count())
    ctx.worker_scratch.resize(ctx.measure_pool->worker_count());
  if (ctx.measure_slots.size() < ctx.requests.size())
    ctx.measure_slots.resize(ctx.requests.size());

  // Cap the batch: an early grant/steal/preemption invalidates everything
  // measured after it, so bounding the fan-out bounds the wasted work when
  // the grant rate is high.
  const std::size_t cap = env.config.measure_threads * 4;
  ctx.batch_indices.clear();
  std::size_t end = begin;
  for (; end < ctx.requests.size() && ctx.batch_indices.size() < cap; ++end) {
    IterationContext::MeasureSlot& slot = ctx.measure_slots[end];
    slot.live = false;
    const rms::DynRequest& req = ctx.requests[end];
    // Same staleness test the serial loop applies; stale entries get no
    // slot and the consume step skips them the same way.
    const rms::DynRequest* live = env.server.jobs().dyn_request_of(req.job);
    if (live == nullptr || live->id != req.id) continue;
    slot.hold = make_hold(env.server.job(req.job), req, ctx.measure_opts.now);
    slot.live = true;
    ctx.batch_indices.push_back(end);
  }

  // Workers only read the shared planning state (baseline / planning /
  // protected set) and write their own slot + per-worker scratch. The
  // tracer stays detached here; "measure" events are replayed in FIFO
  // order by the consume step so the trace is bit-identical to serial.
  const ReservationTable& baseline = ctx.baseline_plan.table;
  ctx.measure_pool->parallel_for(
      ctx.batch_indices.size(), [&](std::size_t task, std::size_t worker) {
        IterationContext::MeasureSlot& slot =
            ctx.measure_slots[ctx.batch_indices[task]];
        measure_dynamic_request_into(slot.hold, ctx.prioritized,
                                     ctx.protected_jobs, baseline, ctx.planning,
                                     ctx.physical_free, ctx.measure_opts,
                                     /*tracer=*/nullptr,
                                     ctx.worker_scratch[worker], slot.result);
      });
  return end;
}

void DynamicAdmissionStage::run(PipelineEnv& env, IterationContext& ctx) {
  const Time now = ctx.now;
  obs::Tracer* tracer = ctx.sinks.tracer;
  ReservationTable& baseline = ctx.baseline_plan.table;

  // Any state change while consuming (grant, malleable steal, preemption)
  // truncates the speculation batch — the not-yet-consumed results were
  // measured against a state that no longer exists and are discarded, then
  // re-measured. A rejection/deferral mutates only the request's own
  // job/queue entry, never the planning state, so it keeps the batch
  // valid. Consumed results are therefore exactly the measurements the
  // serial loop would have produced.
  const bool parallel_measure =
      env.config.measure_threads > 1 && ctx.requests.size() > 1;
  std::size_t next = 0;
  std::size_t spec_end = 0;
  while (next < ctx.requests.size()) {
    if (parallel_measure && next >= spec_end)
      spec_end = speculate_measurements(env, ctx, next);
    bool state_changed = false;
    while (next < ctx.requests.size() && !state_changed &&
           (!parallel_measure || next < spec_end)) {
    const std::size_t index = next++;
    const rms::DynRequest& req = ctx.requests[index];
    // A preemption earlier in this loop may have requeued the owner and
    // removed its request from the FIFO; skip such stale entries.
    const rms::DynRequest* live = env.server.jobs().dyn_request_of(req.job);
    if (live == nullptr || live->id != req.id) continue;
    const rms::Job& owner = env.server.job(req.job);
    DBS_ASSERT(owner.state() == rms::JobState::DynQueued,
               "FIFO entry for a job that is not dynqueued");
    // `m` points at the decision-relevant measurement: the speculated slot
    // when one is valid, the serial scratch otherwise (and always after a
    // steal/preemption re-measure).
    DelayMeasurement* m = &ctx.measure;
    DynHold hold;
    if (parallel_measure) {
      IterationContext::MeasureSlot& slot = ctx.measure_slots[index];
      // Liveness cannot change between speculation and consumption without
      // a state change, and a state change truncates the batch.
      DBS_ASSERT(slot.live, "live request missing its speculated slot");
      hold = slot.hold;
      m = &slot.result;
      // Workers measured without the tracer; replay the byte-identical
      // "measure" event in FIFO position.
      emit_measure_trace(hold, ctx.protected_jobs.size(), ctx.physical_free,
                         *m, ctx.measure_opts, tracer, ctx.json_scratch);
    } else {
      hold = make_hold(owner, req, now);
      measure_dynamic_request_into(hold, ctx.prioritized, ctx.protected_jobs,
                                   baseline, ctx.planning, ctx.physical_free,
                                   ctx.measure_opts, tracer,
                                   ctx.measure_scratch, ctx.measure);
    }
    ctx.sinks.registry
        ->histogram("scheduler.delay_measure_depth", measure_depth_bounds())
        .observe(static_cast<double>(m->delays.size()));

    // Optional §II-B strategy (gentle): free cores by shrinking running
    // malleable jobs toward their minimum — no progress is lost.
    if (!m->feasible && env.config.allow_malleable_steal) {
      const std::vector<MalleableShrink> shrinks =
          plan_malleable_steal(env.server.jobs().running(), req.extra_cores,
                               ctx.physical_free, req.job);
      if (!shrinks.empty()) {
        CoreCount freed = 0;
        for (const MalleableShrink& s : shrinks) {
          DBS_TRACE_EVENT(tracer,
                          obs::TraceEvent(now, "sched", "malleable_steal")
                              .field("for_job", req.job.value())
                              .field("victim", s.job.value())
                              .field("cores", s.cores));
          // Patch the cached physical profile: the victim's hold loses
          // s.cores over its remaining walltime interval.
          const rms::Job& victim = env.server.job(s.job);
          const Time victim_end = hold_end_for(victim, now);
          ctx.applier.shrink_malleable(s.job, s.cores, req.job);
          ctx.physical.add(now, victim_end, s.cores);
          freed += s.cores;
          ++ctx.stats.malleable_shrinks;
        }
        state_changed = true;
        // Live mode resyncs from the cluster; dry-run simulates the same
        // ledger arithmetically (the shrink frees exactly `freed` cores).
        ctx.physical_free = ctx.applier.dry_run()
                                ? ctx.physical_free + freed
                                : env.server.cluster().free_cores();
        ctx.rebuild_planning_profile(env.config.dynamic_partition_cores);
        plan_jobs_into(ctx.prioritized, ctx.planning, ctx.measure_opts,
                       ctx.baseline_plan,
                       env.config.incremental_planning ? &ctx.classify_cache
                                                       : nullptr);
        protected_subset_into(ctx.prioritized, baseline,
                              env.config.reservation_delay_depth,
                              ctx.protected_jobs);
        measure_dynamic_request_into(hold, ctx.prioritized, ctx.protected_jobs,
                                     baseline, ctx.planning, ctx.physical_free,
                                     ctx.measure_opts, tracer,
                                     ctx.measure_scratch, ctx.measure);
        m = &ctx.measure;
      }
    }

    // Optional §II-B strategy: free cores by preempting backfilled
    // preemptible jobs, then re-measure against the patched state.
    if (!m->feasible && env.config.allow_preemption) {
      const std::vector<JobId> victims =
          select_preemption_victims(env.server.jobs().running(),
                                    req.extra_cores, ctx.physical_free,
                                    req.job);
      if (!victims.empty()) {
        CoreCount freed = 0;
        for (const JobId victim : victims) {
          DBS_TRACE_EVENT(tracer,
                          obs::TraceEvent(now, "sched", "preempt_for_dyn")
                              .field("for_job", req.job.value())
                              .field("victim", victim.value()));
          // Patch: the victim's entire hold (same interval the profile
          // rebuild would have subtracted) is returned to the pool.
          const rms::Job& victim_job = env.server.job(victim);
          const CoreCount victim_cores = victim_job.allocated_cores();
          const Time victim_end = hold_end_for(victim_job, now);
          ctx.applier.preempt(victim, req.job);
          ctx.physical.add(now, victim_end, victim_cores);
          freed += victim_cores;
          ++ctx.stats.preempted;
        }
        state_changed = true;
        ctx.physical_free = ctx.applier.dry_run()
                                ? ctx.physical_free + freed
                                : env.server.cluster().free_cores();
        ctx.rebuild_planning_profile(env.config.dynamic_partition_cores);
        ctx.prioritized = env.priority.prioritize(
            eligible_static_jobs(env.server, env.config), now);
        plan_jobs_into(ctx.prioritized, ctx.planning, ctx.measure_opts,
                       ctx.baseline_plan,
                       env.config.incremental_planning ? &ctx.classify_cache
                                                       : nullptr);
        protected_subset_into(ctx.prioritized, baseline,
                              env.config.reservation_delay_depth,
                              ctx.protected_jobs);
        measure_dynamic_request_into(hold, ctx.prioritized, ctx.protected_jobs,
                                     baseline, ctx.planning, ctx.physical_free,
                                     ctx.measure_opts, tracer,
                                     ctx.measure_scratch, ctx.measure);
        m = &ctx.measure;
      }
    }

    // Aggregate feasibility is necessary but, with Torque-style chunked
    // placements, not sufficient: the extra cores must also fit the
    // node-level free map.
    const bool placeable =
        m->feasible && env.server.cluster().can_allocate_chunked(
                           req.extra_cores, env.server.effective_ppn(owner));

    DfsVerdict verdict = DfsVerdict::Allowed;
    if (placeable) verdict = env.dfs.admit(owner.spec().cred, m->delays);

    const bool granted = placeable && verdict == DfsVerdict::Allowed &&
                         ctx.applier.grant_dyn(req);
    // The decision audit trail: every grant/reject/defer carries the
    // per-protected-job measured delays, the DFS verdict (naming the
    // violated rule) and the non-DFS reason when resources were the issue.
    std::string_view reason = "granted";
    if (!granted) {
      if (!m->feasible)
        reason = "no-idle-resources";
      else if (!placeable)
        reason = "node-fragmentation";
      else if (verdict != DfsVerdict::Allowed)
        reason = to_string(verdict);
      else
        reason = "allocation-failed";
    }

    if (granted) {
      // A dry-run must not consume DFS delay budget: the grant is not real
      // and the next live iteration will commit it itself.
      if (!ctx.applier.dry_run()) env.dfs.commit(owner.spec().cred, m->delays);
      if (tracer != nullptr && tracer->enabled()) {
        ctx.json_scratch.clear();
        delays_to_json(m->delays, ctx.json_scratch);
        tracer->emit(obs::TraceEvent(now, "sched", "dyn_grant")
                         .field("job", req.job.value())
                         .field("request", req.id.value())
                         .field("extra_cores", req.extra_cores)
                         .field("verdict", to_string(verdict))
                         .field_json("delays", ctx.json_scratch));
      }
      // Adopt the tentative state: the hold is now real. Swaps keep the
      // measurement's storage alive for the next request (the slot or the
      // serial scratch — whichever produced this decision).
      ctx.physical.subtract(hold.from, hold.until, hold.extra_cores);
      ctx.physical_free -= hold.extra_cores;
      std::swap(ctx.planning, m->profile_after);
      std::swap(baseline, m->replanned);
      state_changed = true;
      ++ctx.stats.dyn_granted;
    } else {
      DBS_TRACE("dyn request of job " << req.job.value()
                                      << " denied: " << reason);
      const std::optional<Time> hint =
          estimate_availability(ctx.physical, owner, req.extra_cores, now);
      const bool deferred = ctx.applier.reject_dyn(req, hint, reason);
      if (tracer != nullptr && tracer->enabled()) {
        ctx.json_scratch.clear();
        delays_to_json(m->delays, ctx.json_scratch);
        tracer->emit(
            obs::TraceEvent(now, "sched", deferred ? "dyn_defer" : "dyn_reject")
                .field("job", req.job.value())
                .field("request", req.id.value())
                .field("extra_cores", req.extra_cores)
                .field("reason", reason)
                .field("verdict", to_string(verdict))
                .field_json("delays", ctx.json_scratch));
      }
      if (deferred)
        ++ctx.stats.dyn_deferred;
      else
        ++ctx.stats.dyn_rejected;
    }
    }
    // Discard speculation measured against a state that no longer exists;
    // the outer loop re-fans-out from the next unconsumed request.
    if (state_changed) spec_end = next;
  }
}

}  // namespace dbs::core
