#include "core/pipeline/start_backfill_stage.hpp"

#include "core/backfill.hpp"
#include "core/dfs_engine.hpp"
#include "core/scheduler_config.hpp"
#include "obs/tracer.hpp"

namespace dbs::core {

void StartBackfillStage::run(PipelineEnv& env, IterationContext& ctx) {
  const PlanOptions start_opts{ctx.now, env.config.reservation_depth,
                               env.config.enable_backfill && !ctx.drain,
                               ctx.drain};
  plan_jobs_into(ctx.prioritized, ctx.planning, start_opts, ctx.final_plan,
                 env.config.incremental_planning ? &ctx.start_cache : nullptr);
  for (const Reservation& r : ctx.final_plan.table.items()) {
    if (!r.start_now) {
      ctx.applier.reserve(r.job, r.cores, r.start);
      ++ctx.stats.reservations;
      continue;
    }
    // The aggregate plan can be defeated by node-level fragmentation
    // (chunked placement); the job then simply stays queued and is
    // re-planned next iteration — exactly what a real Maui does when the
    // node allocation it asked Torque for cannot be built.
    if (!ctx.applier.start_job(r.job, r.backfilled)) {
      ++ctx.stats.start_failed;
      continue;
    }
    if (!ctx.applier.dry_run()) env.dfs.on_job_started(r.job);
    ++ctx.stats.started;
    if (r.backfilled) {
      ++ctx.stats.backfilled;
      DBS_TRACE_EVENT(ctx.sinks.tracer, obs::TraceEvent(ctx.now, "sched",
                                                        "backfill")
                                            .field("job", r.job.value()));
    }
  }
}

}  // namespace dbs::core
