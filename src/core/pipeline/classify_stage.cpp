#include "core/pipeline/classify_stage.hpp"

#include <string>

#include "core/backfill.hpp"
#include "core/delay_measurement.hpp"
#include "core/scheduler_config.hpp"
#include "obs/tracer.hpp"

namespace dbs::core {

namespace {

/// Appends a JSON array of the job ids in a reservation-table subset.
void ids_json(const ReservationTable& table, bool start_now, std::string& out) {
  const std::size_t begin = out.size();
  out += '[';
  for (const Reservation& r : table.items()) {
    if (r.start_now != start_now) continue;
    if (out.size() > begin + 1) out += ',';
    out += std::to_string(r.job.value());
  }
  out += ']';
}

void ids_json(const std::vector<const rms::Job*>& jobs, std::string& out) {
  const std::size_t begin = out.size();
  out += '[';
  for (const rms::Job* job : jobs) {
    if (out.size() > begin + 1) out += ',';
    out += std::to_string(job->id().value());
  }
  out += ']';
}

}  // namespace

void ClassifyStage::run(PipelineEnv& env, IterationContext& ctx) {
  // Step-10 plan options: delay-measurement reservations up to
  // max(ReservationDepth, ReservationDelayDepth). Fixed for the whole pass;
  // the admission stage replans with the same options after state changes.
  ctx.measure_opts =
      PlanOptions{ctx.now, env.config.delay_plan_depth(),
                  env.config.enable_backfill && !ctx.drain, ctx.drain};
  plan_jobs_into(ctx.prioritized, ctx.planning, ctx.measure_opts,
                 ctx.baseline_plan,
                 env.config.incremental_planning ? &ctx.classify_cache
                                                 : nullptr);
  // The protected set (StartNow + first ReservationDelayDepth StartLater,
  // Fig. 5) is fixed by this step-10 classification for the whole
  // iteration, even as grants shift later plans.
  protected_subset_into(ctx.prioritized, ctx.baseline_plan.table,
                        env.config.reservation_delay_depth,
                        ctx.protected_jobs);

  // Step-10 audit record: the StartNow / StartLater split and the protected
  // set the fairness policies will judge this iteration's requests against.
  obs::Tracer* tracer = ctx.sinks.tracer;
  if (tracer != nullptr && tracer->enabled()) {
    obs::TraceEvent ev(ctx.now, "sched", "classify");
    ev.field("iteration", ctx.iteration);
    ctx.json_scratch.clear();
    ids_json(ctx.baseline_plan.table, true, ctx.json_scratch);
    ev.field_json("start_now", ctx.json_scratch);
    ctx.json_scratch.clear();
    ids_json(ctx.baseline_plan.table, false, ctx.json_scratch);
    ev.field_json("start_later", ctx.json_scratch);
    ctx.json_scratch.clear();
    ids_json(ctx.protected_jobs, ctx.json_scratch);
    ev.field_json("protected", ctx.json_scratch);
    tracer->emit(ev);
  }
}

}  // namespace dbs::core
