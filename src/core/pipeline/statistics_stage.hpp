#pragma once

#include "core/pipeline/stage.hpp"

namespace dbs::core {

/// Steps 4-5: charge running jobs' usage since the previous pass into
/// fairshare, then roll the fairshare decay windows and the DFS
/// delay-budget intervals forward to now.
class StatisticsStage final : public Stage {
 public:
  explicit StatisticsStage(Time start) : last_usage_update_(start) {}

  [[nodiscard]] std::string_view name() const override { return "statistics"; }
  void run(PipelineEnv& env, IterationContext& ctx) override;

 private:
  Time last_usage_update_;
};

}  // namespace dbs::core
