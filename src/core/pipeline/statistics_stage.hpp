#pragma once

#include "core/pipeline/stage.hpp"

namespace dbs::core {

/// Steps 4-5: charge running jobs' usage since the previous pass into
/// fairshare, then roll the fairshare decay windows and the DFS
/// delay-budget intervals forward to now.
class StatisticsStage final : public Stage {
 public:
  explicit StatisticsStage(Time start) : last_usage_update_(start) {}

  [[nodiscard]] std::string_view name() const override { return "statistics"; }
  void run(PipelineEnv& env, IterationContext& ctx) override;

  /// Durable snapshots: the usage-charge watermark must survive a restart
  /// or the first post-recovery iteration would double-charge fairshare.
  [[nodiscard]] Time last_usage_update() const { return last_usage_update_; }
  void restore(Time at) { last_usage_update_ = at; }

 private:
  Time last_usage_update_;
};

}  // namespace dbs::core
