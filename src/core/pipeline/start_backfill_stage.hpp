#pragma once

#include "core/pipeline/stage.hpp"

namespace dbs::core {

/// Steps 25-26: plan static jobs against the post-admission profile, start
/// the StartNow set in priority order (reservations only up to
/// ReservationDepth) and backfill the remainder.
class StartBackfillStage final : public Stage {
 public:
  [[nodiscard]] std::string_view name() const override {
    return "start_backfill";
  }
  void run(PipelineEnv& env, IterationContext& ctx) override;
};

}  // namespace dbs::core
