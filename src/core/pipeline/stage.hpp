// The stage interface of the scheduler pipeline.
//
// MauiScheduler::iterate() is an ordered run of six stages, one per step
// group of the paper's Algorithm 2:
//
//   GatherStage            steps 2-3   snapshot queues, rebuild profiles
//   StatisticsStage        steps 4-5   fairshare usage, DFS interval roll
//   PrioritizeStage        steps 6-9   eligibility + priority order
//   ClassifyStage          step 10     tentative plan, StartNow/StartLater
//   DynamicAdmissionStage  steps 11-24 FIFO dynamic requests, DFS verdicts
//   StartBackfillStage     steps 25-26 start + reserve + backfill
//
// Stages communicate only through the IterationContext and emit decisions
// through ctx.applier (never by calling the server mutators directly), so
// the same pipeline serves live iterations and dry-run what-if passes.
#pragma once

#include <string_view>

#include "core/pipeline/iteration_context.hpp"

namespace dbs::core {

class DfsEngine;
class Fairshare;
class PhysicalProfileTracker;
class PriorityEngine;
struct SchedulerConfig;

/// Long-lived collaborators shared by every stage; owned by MauiScheduler.
struct PipelineEnv {
  rms::Server& server;
  const SchedulerConfig& config;
  Fairshare& fairshare;
  PriorityEngine& priority;
  DfsEngine& dfs;
  /// Persistent physical profile; null when incremental planning is off
  /// (the gather stage then rebuilds from the running set).
  PhysicalProfileTracker* tracker = nullptr;
};

class Stage {
 public:
  Stage() = default;
  Stage(const Stage&) = delete;
  Stage& operator=(const Stage&) = delete;
  virtual ~Stage() = default;

  /// Stable identifier used for metrics and traces; matches the entry of
  /// stage_names() at this stage's pipeline position.
  [[nodiscard]] virtual std::string_view name() const = 0;

  virtual void run(PipelineEnv& env, IterationContext& ctx) = 0;
};

}  // namespace dbs::core
