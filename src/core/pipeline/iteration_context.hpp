// Shared state of one scheduler pipeline pass.
//
// The IterationContext owns (a) the iteration-scoped values stages hand to
// each other (prioritized jobs, plan options, the drain flag), (b) the
// reusable scratch that used to live as MauiScheduler members so the hot
// path allocates nothing after warm-up (profiles, plans, measurement
// slots, JSON buffers), and (c) the wiring every stage needs: the
// DecisionApplier that executes decisions against the server and the
// observability sinks. One context is created per scheduler and re-armed
// by begin_iteration() for every pass.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/availability_profile.hpp"
#include "core/backfill.hpp"
#include "core/delay_measurement.hpp"
#include "core/plan_cache.hpp"
#include "core/priority_cache.hpp"
#include "obs/sinks.hpp"
#include "rms/decision_applier.hpp"

namespace dbs::exec {
class ThreadPool;
}

namespace dbs::core {

/// Number of pipeline stages (one per Algorithm-2 step group).
inline constexpr std::size_t kStageCount = 6;

/// Stage names in execution order; indexes stage_wall_us.
[[nodiscard]] const std::array<std::string_view, kStageCount>& stage_names();

/// Counters describing one scheduling iteration (for tests and metrics).
struct IterationStats {
  Time at;
  std::size_t eligible_static = 0;
  std::size_t eligible_dynamic = 0;
  std::size_t started = 0;
  std::size_t backfilled = 0;
  std::size_t reservations = 0;
  std::size_t dyn_granted = 0;
  std::size_t dyn_rejected = 0;
  std::size_t dyn_deferred = 0;  ///< negotiation: request kept queued
  std::size_t preempted = 0;
  std::size_t malleable_shrinks = 0;
  /// Planned StartNow jobs defeated by node-level fragmentation.
  std::size_t start_failed = 0;
  /// Plan-cache effectiveness: jobs planned or re-judged by a full
  /// earliest-fit walk vs. tail verdicts answered from the cache.
  std::uint64_t replanned_jobs = 0;
  std::uint64_t cache_hits = 0;
  /// Wall-clock cost of the iteration in microseconds (host time, not
  /// simulated time).
  double wall_us = 0.0;
  /// Per-stage wall-clock breakdown (host microseconds), indexed like
  /// stage_names(). Sums to roughly wall_us minus orchestration overhead.
  std::array<double, kStageCount> stage_wall_us{};
};

struct IterationContext {
  // Constructor/destructor out of line for the ThreadPool member.
  explicit IterationContext(rms::Server& server_ref);
  ~IterationContext();

  IterationContext(const IterationContext&) = delete;
  IterationContext& operator=(const IterationContext&) = delete;

  /// Re-arms the context for one pass: resets the stats and the decision
  /// stream, keeps all scratch storage.
  void begin_iteration(Time at, std::uint64_t iteration_number, bool dry_run);

  /// Rebuilds `physical` in place from the running set and down nodes:
  /// capacity minus running jobs (to each job's walltime end) minus
  /// down-node capacity.
  void rebuild_physical_profile();

  /// Re-derives `planning` from `physical` (dynamic-partition clamp).
  void rebuild_planning_profile(CoreCount dynamic_partition_cores);

  // --- wiring --------------------------------------------------------------
  rms::Server& server;
  rms::DecisionApplier applier;
  /// sinks.tracer may be null (tracing off); sinks.registry is always
  /// resolved to a concrete registry by MauiScheduler::set_sinks.
  obs::Sinks sinks;

  // --- iteration-scoped values (reset by begin_iteration) ------------------
  Time now;
  std::uint64_t iteration = 0;
  IterationStats stats;
  /// An exclusive-priority (ESP Z) job is queued: drain mode.
  bool drain = false;
  /// Idle cores right now; kept in lockstep with grants/preemptions/shrinks
  /// during the admission loop.
  CoreCount physical_free = 0;
  /// Step-10 plan options (delay_plan_depth); fixed for the whole pass.
  PlanOptions measure_opts{};
  /// Eligible static jobs, highest priority first.
  std::vector<const rms::Job*> prioritized;

  // --- reusable scratch (persists across iterations) -----------------------
  /// Physical availability: patched incrementally on grant/shrink/preempt
  /// during the admission loop instead of being rebuilt from the job list.
  AvailabilityProfile physical;
  /// `physical` with the dynamic-partition clamp applied.
  AvailabilityProfile planning;
  Plan baseline_plan;  ///< step-10 classification (StartNow/StartLater)
  Plan final_plan;     ///< step-25/26 start plan
  /// Tail-verdict caches, one per plan slot so the two walks' staircase
  /// versions never thrash each other; counters reset per iteration.
  PlanCache classify_cache;
  PlanCache start_cache;
  /// Previous-iteration priority order, reused by the prioritize stage.
  PriorityOrderCache priority_cache;
  std::vector<const rms::Job*> protected_jobs;
  std::vector<rms::DynRequest> requests;  ///< FIFO snapshot of this pass
  DelayMeasurement measure;
  MeasureScratch measure_scratch;
  std::string json_scratch;

  /// One per-request speculation slot: the hold plus the measurement taken
  /// against the planning state of the current batch. Storage is reused
  /// across batches and iterations, so after warm-up the parallel fan-out
  /// allocates nothing (the _into kernels refill in place).
  struct MeasureSlot {
    bool live = false;  ///< request was live and measured this batch
    DynHold hold;
    DelayMeasurement result;
  };
  /// Lazily created pool (measure_threads > 1 only) + per-worker planning
  /// scratches; per-request slots indexed like `requests`.
  std::unique_ptr<exec::ThreadPool> measure_pool;
  std::vector<MeasureScratch> worker_scratch;
  std::vector<MeasureSlot> measure_slots;
  std::vector<std::size_t> batch_indices;
};

}  // namespace dbs::core
