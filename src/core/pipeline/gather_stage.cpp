#include "core/pipeline/gather_stage.hpp"

#include "core/scheduler_config.hpp"

namespace dbs::core {

void GatherStage::run(PipelineEnv& env, IterationContext& ctx) {
  // Dynamic requests are served in FIFO order (the server's queue order);
  // the snapshot fixes this iteration's serving order even as grants and
  // rejections mutate the live queue.
  ctx.requests.assign(env.server.jobs().dyn_requests().begin(),
                      env.server.jobs().dyn_requests().end());
  ctx.stats.eligible_dynamic = ctx.requests.size();

  // Built once per iteration; the admission stage patches the profiles in
  // place on every state change (grant, malleable shrink, preemption)
  // instead of rebuilding them from the whole running set.
  ctx.rebuild_physical_profile();
  ctx.physical_free = env.server.cluster().free_cores();
  ctx.rebuild_planning_profile(env.config.dynamic_partition_cores);
}

}  // namespace dbs::core
