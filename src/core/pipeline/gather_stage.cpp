#include "core/pipeline/gather_stage.hpp"

#include "common/assert.hpp"
#include "core/physical_profile.hpp"
#include "core/scheduler_config.hpp"

namespace dbs::core {

void GatherStage::run(PipelineEnv& env, IterationContext& ctx) {
  // Dynamic requests are served in FIFO order (the server's queue order);
  // the snapshot fixes this iteration's serving order even as grants and
  // rejections mutate the live queue.
  ctx.requests.assign(env.server.jobs().dyn_requests().begin(),
                      env.server.jobs().dyn_requests().end());
  ctx.stats.eligible_dynamic = ctx.requests.size();

  // The iteration's physical profile: either the persistent tracker
  // advanced to now (O(Δ) in state changes since the last iteration) or a
  // from-scratch rebuild over the whole running set. Copied into the
  // context either way — the admission stage patches its copy in place on
  // every state change (grant, malleable shrink, preemption) and dry runs
  // must not perturb the tracker.
  if (env.tracker != nullptr) {
    env.tracker->advance(ctx.now);
    if (env.config.check_invariants) {
      ctx.rebuild_physical_profile();
      DBS_REQUIRE(ctx.physical == env.tracker->profile(),
                  "incremental physical profile diverged from rebuild");
    }
    ctx.physical = env.tracker->profile();
  } else {
    ctx.rebuild_physical_profile();
  }
  ctx.physical_free = env.server.cluster().free_cores();
  ctx.rebuild_planning_profile(env.config.dynamic_partition_cores);
}

}  // namespace dbs::core
