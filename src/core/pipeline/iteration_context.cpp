#include "core/pipeline/iteration_context.hpp"

#include "core/partition.hpp"
#include "core/physical_profile.hpp"
#include "exec/thread_pool.hpp"

namespace dbs::core {

const std::array<std::string_view, kStageCount>& stage_names() {
  static const std::array<std::string_view, kStageCount> names{
      "gather",   "statistics", "prioritize",
      "classify", "admission",  "start_backfill"};
  return names;
}

IterationContext::IterationContext(rms::Server& server_ref)
    : server(server_ref), applier(server_ref) {}

// Out of line for the unique_ptr<exec::ThreadPool> member.
IterationContext::~IterationContext() = default;

void IterationContext::begin_iteration(Time at, std::uint64_t iteration_number,
                                       bool dry_run) {
  now = at;
  iteration = iteration_number;
  stats = IterationStats{};
  stats.at = at;
  drain = false;
  physical_free = 0;
  prioritized.clear();
  classify_cache.reset_counters();
  start_cache.reset_counters();
  applier.begin_iteration(dry_run);
}

void IterationContext::rebuild_physical_profile() {
  const cluster::Cluster& cl = server.cluster();
  physical.reset(now, cl.total_cores());
  for (const rms::Job* job : server.jobs().running())
    physical.subtract(now, hold_end_for(*job, now), job->allocated_cores());
  // Down/offline nodes: their unused cores are unavailable indefinitely.
  // One aggregate subtract over the same interval equals the per-node
  // subtracts, and the ledger keeps the sum in O(1) — no node scan.
  if (const CoreCount down = cl.unavailable_free_cores(); down > 0)
    physical.subtract(now, Time::far_future(), down);
}

void IterationContext::rebuild_planning_profile(
    CoreCount dynamic_partition_cores) {
  planning = physical;
  reserve_dynamic_partition(planning, dynamic_partition_cores);
}

}  // namespace dbs::core
