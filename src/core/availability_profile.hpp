// A step function of free cores over future time. The scheduler plans
// against it: running jobs and reservations subtract capacity over their
// intervals; earliest_fit answers "when could `cores` run for `dur`?".
//
// Stored as a flat sorted vector of breakpoints rather than a std::map:
// every query is a cache-friendly binary search and every mutation a
// contiguous segment sweep, so copying a profile (which planning does once
// per pass) is a single memcpy and copy-assignment reuses the destination's
// capacity without allocating.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

class AvailabilityProfile {
 public:
  /// A breakpoint: `free` cores from `at` until the next breakpoint; the
  /// last breakpoint extends to +inf.
  struct Step {
    Time at;
    CoreCount free;
  };

  /// Empty profile (zero capacity at epoch); a placeholder for scratch
  /// storage that is copy-assigned before use.
  AvailabilityProfile() : AvailabilityProfile(Time::epoch(), 0) {}

  /// Constant `capacity` free cores from `origin` to infinity.
  AvailabilityProfile(Time origin, CoreCount capacity);

  [[nodiscard]] Time origin() const { return origin_; }
  [[nodiscard]] CoreCount capacity() const { return capacity_; }

  /// Re-initializes to a constant `capacity` from `origin`, keeping the
  /// already-allocated breakpoint storage (the per-iteration rebuild path).
  void reset(Time origin, CoreCount capacity);

  /// Free cores at time `t` (t >= origin).
  [[nodiscard]] CoreCount free_at(Time t) const;

  /// Minimum free cores over [from, to); requires from < to.
  [[nodiscard]] CoreCount min_free(Time from, Time to) const;

  /// True iff `cores` fit continuously over [at, at + dur).
  [[nodiscard]] bool can_fit(Time at, Duration dur, CoreCount cores) const;

  /// Removes `cores` over [from, to). The interval is clipped at origin.
  /// Precondition: the result never goes negative (check can_fit first).
  /// Intervals at or beyond the last breakpoint (the persistent-profile
  /// append and far-future cases) take an O(1) push_back fast path instead
  /// of two binary searches with mid-vector inserts.
  void subtract(Time from, Time to, CoreCount cores);

  /// Adds `cores` back over [from, to) (inverse of subtract); the result
  /// must not exceed capacity.
  void add(Time from, Time to, CoreCount cores);

  /// Like subtract, but clamps each segment at zero instead of requiring
  /// feasibility (used for the reserved dynamic partition, which may overlap
  /// cores already held by running jobs).
  void subtract_clamped(Time from, Time to, CoreCount cores);

  /// Earliest t >= not_before such that `cores` fit over [t, t + dur).
  /// Returns Time::far_future() if cores > capacity. Single forward sweep:
  /// O(breakpoints), not O(breakpoints^2).
  [[nodiscard]] Time earliest_fit(CoreCount cores, Duration dur,
                                  Time not_before) const;

  /// Moves the origin forward to `now` (>= origin), dropping breakpoints
  /// that are entirely in the past. The persistent physical profile calls
  /// this once per iteration instead of rebuilding from the running set.
  void advance_origin(Time now);

  /// Removes breakpoints whose free count equals the preceding segment's.
  /// Such redundant steps arise from add/advance/clamp patch sequences;
  /// after coalescing, the representation is the unique minimal one for
  /// the step function, so two equal profiles compare equal byte-for-byte.
  void coalesce();

  /// Structural equality: same origin, capacity and breakpoint vector.
  /// Compare canonical (coalesced) profiles, where representation equality
  /// is function equality.
  [[nodiscard]] bool operator==(const AvailabilityProfile& other) const {
    return origin_ == other.origin_ && capacity_ == other.capacity_ &&
           steps_.size() == other.steps_.size() &&
           std::equal(steps_.begin(), steps_.end(), other.steps_.begin(),
                      [](const Step& a, const Step& b) {
                        return a.at == b.at && a.free == b.free;
                      });
  }
  [[nodiscard]] bool operator!=(const AvailabilityProfile& other) const {
    return !(*this == other);
  }

  /// Zero-copy step access for profile-walking callers (the plan cache's
  /// staircase rebuild); indices are invalidated by any mutation.
  [[nodiscard]] const Step& step(std::size_t i) const { return steps_[i]; }
  /// Index of the segment covering `t` (t >= origin).
  [[nodiscard]] std::size_t segment_of(Time t) const {
    return segment_index(t);
  }

  /// The (time, free) breakpoints, for tests and debugging.
  [[nodiscard]] std::vector<std::pair<Time, CoreCount>> breakpoints() const;

  /// Number of stored breakpoints (profile size diagnostics).
  [[nodiscard]] std::size_t step_count() const { return steps_.size(); }

 private:
  /// Index of the segment covering `t` (t >= origin).
  [[nodiscard]] std::size_t segment_index(Time t) const;
  /// Ensures a breakpoint exists at `t` (splitting the covering segment);
  /// returns its index. For t <= origin returns 0.
  std::size_t ensure_breakpoint(Time t);

  Time origin_;
  CoreCount capacity_;
  /// Sorted by `at`; steps_[0].at == origin always.
  std::vector<Step> steps_;
};

}  // namespace dbs::core
