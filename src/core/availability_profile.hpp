// A step function of free cores over future time. The scheduler plans
// against it: running jobs and reservations subtract capacity over their
// intervals; earliest_fit answers "when could `cores` run for `dur`?".
//
// Stored as a flat sorted vector of breakpoints rather than a std::map:
// every query is a cache-friendly binary search and every mutation a
// contiguous segment sweep, so copying a profile (which planning does once
// per pass) is a single memcpy and copy-assignment reuses the destination's
// capacity without allocating.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

class AvailabilityProfile {
 public:
  /// A breakpoint: `free` cores from `at` until the next breakpoint; the
  /// last breakpoint extends to +inf.
  struct Step {
    Time at;
    CoreCount free;
  };

  /// Empty profile (zero capacity at epoch); a placeholder for scratch
  /// storage that is copy-assigned before use.
  AvailabilityProfile() : AvailabilityProfile(Time::epoch(), 0) {}

  /// Constant `capacity` free cores from `origin` to infinity.
  AvailabilityProfile(Time origin, CoreCount capacity);

  [[nodiscard]] Time origin() const { return origin_; }
  [[nodiscard]] CoreCount capacity() const { return capacity_; }

  /// Re-initializes to a constant `capacity` from `origin`, keeping the
  /// already-allocated breakpoint storage (the per-iteration rebuild path).
  void reset(Time origin, CoreCount capacity);

  /// Free cores at time `t` (t >= origin).
  [[nodiscard]] CoreCount free_at(Time t) const;

  /// Minimum free cores over [from, to); requires from < to.
  [[nodiscard]] CoreCount min_free(Time from, Time to) const;

  /// True iff `cores` fit continuously over [at, at + dur).
  [[nodiscard]] bool can_fit(Time at, Duration dur, CoreCount cores) const;

  /// Removes `cores` over [from, to). The interval is clipped at origin.
  /// Precondition: the result never goes negative (check can_fit first).
  void subtract(Time from, Time to, CoreCount cores);

  /// Adds `cores` back over [from, to) (inverse of subtract); the result
  /// must not exceed capacity.
  void add(Time from, Time to, CoreCount cores);

  /// Like subtract, but clamps each segment at zero instead of requiring
  /// feasibility (used for the reserved dynamic partition, which may overlap
  /// cores already held by running jobs).
  void subtract_clamped(Time from, Time to, CoreCount cores);

  /// Earliest t >= not_before such that `cores` fit over [t, t + dur).
  /// Returns Time::far_future() if cores > capacity. Single forward sweep:
  /// O(breakpoints), not O(breakpoints^2).
  [[nodiscard]] Time earliest_fit(CoreCount cores, Duration dur,
                                  Time not_before) const;

  /// The (time, free) breakpoints, for tests and debugging.
  [[nodiscard]] std::vector<std::pair<Time, CoreCount>> breakpoints() const;

  /// Number of stored breakpoints (profile size diagnostics).
  [[nodiscard]] std::size_t step_count() const { return steps_.size(); }

 private:
  /// Index of the segment covering `t` (t >= origin).
  [[nodiscard]] std::size_t segment_index(Time t) const;
  /// Ensures a breakpoint exists at `t` (splitting the covering segment);
  /// returns its index. For t <= origin returns 0.
  std::size_t ensure_breakpoint(Time t);

  Time origin_;
  CoreCount capacity_;
  /// Sorted by `at`; steps_[0].at == origin always.
  std::vector<Step> steps_;
};

}  // namespace dbs::core
