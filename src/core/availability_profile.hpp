// A step function of free cores over future time. The scheduler plans
// against it: running jobs and reservations subtract capacity over their
// intervals; earliest_fit answers "when could `cores` run for `dur`?".
#pragma once

#include <map>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

class AvailabilityProfile {
 public:
  /// Constant `capacity` free cores from `origin` to infinity.
  AvailabilityProfile(Time origin, CoreCount capacity);

  [[nodiscard]] Time origin() const { return origin_; }
  [[nodiscard]] CoreCount capacity() const { return capacity_; }

  /// Free cores at time `t` (t >= origin).
  [[nodiscard]] CoreCount free_at(Time t) const;

  /// Minimum free cores over [from, to); requires from < to.
  [[nodiscard]] CoreCount min_free(Time from, Time to) const;

  /// True iff `cores` fit continuously over [at, at + dur).
  [[nodiscard]] bool can_fit(Time at, Duration dur, CoreCount cores) const;

  /// Removes `cores` over [from, to). The interval is clipped at origin.
  /// Precondition: the result never goes negative (check can_fit first).
  void subtract(Time from, Time to, CoreCount cores);

  /// Adds `cores` back over [from, to) (inverse of subtract); the result
  /// must not exceed capacity.
  void add(Time from, Time to, CoreCount cores);

  /// Like subtract, but clamps each segment at zero instead of requiring
  /// feasibility (used for the reserved dynamic partition, which may overlap
  /// cores already held by running jobs).
  void subtract_clamped(Time from, Time to, CoreCount cores);

  /// Earliest t >= not_before such that `cores` fit over [t, t + dur).
  /// Returns Time::far_future() if cores > capacity.
  [[nodiscard]] Time earliest_fit(CoreCount cores, Duration dur,
                                  Time not_before) const;

  /// The (time, free) breakpoints, for tests and debugging.
  [[nodiscard]] std::vector<std::pair<Time, CoreCount>> breakpoints() const;

 private:
  /// Ensures a breakpoint exists at `t` (splitting the covering segment).
  void ensure_breakpoint(Time t);

  Time origin_;
  CoreCount capacity_;
  /// key -> free cores from key until the next key; last extends to +inf.
  std::map<Time, CoreCount> steps_;
};

}  // namespace dbs::core
