#include "core/scheduler_config.hpp"

#include "common/assert.hpp"

namespace dbs::core {

void SchedulerConfig::validate() const {
  dfs.validate();
  DBS_REQUIRE(poll_interval > Duration::zero(),
              "poll interval must be positive");
  DBS_REQUIRE(dynamic_partition_cores >= 0,
              "partition size cannot be negative");
  DBS_REQUIRE(fairshare.decay >= 0.0 && fairshare.decay <= 1.0,
              "FSDECAY must be in [0,1]");
  if (max_eligible_per_user)
    DBS_REQUIRE(*max_eligible_per_user > 0,
                "per-user throttle must allow at least one job");
  DBS_REQUIRE(measure_threads >= 1,
              "MEASURETHREADS must allow at least one worker");
}

}  // namespace dbs::core
