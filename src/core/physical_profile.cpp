#include "core/physical_profile.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::core {

namespace {
/// Min-heap on the hold end (std::*_heap build max-heaps; greater flips).
struct ByEndDesc {
  bool operator()(const std::pair<Time, JobId>& a,
                  const std::pair<Time, JobId>& b) const {
    return a.first > b.first;
  }
};
}  // namespace

PhysicalProfileTracker::PhysicalProfileTracker(const rms::Server& server)
    : server_(server),
      profile_(server.simulator().now(), server.cluster().total_cores()) {
  // Seed from whatever is already running (normally nothing: the scheduler
  // is constructed before the first submission).
  rebuild();
}

void PhysicalProfileTracker::rebuild() {
  const Time at = now();
  profile_ = AvailabilityProfile(at, server_.cluster().total_cores());
  holds_.clear();
  heap_.clear();
  for (const rms::Job* job : server_.jobs().running()) open_hold(*job, at);
  down_free_ = server_.cluster().unavailable_free_cores();
  if (down_free_ > 0) profile_.subtract(at, Time::far_future(), down_free_);
}

void PhysicalProfileTracker::heap_push(Time end, JobId id) {
  heap_.emplace_back(end, id);
  std::push_heap(heap_.begin(), heap_.end(), ByEndDesc{});
}

void PhysicalProfileTracker::open_hold(const rms::Job& job, Time at) {
  const CoreCount cores = job.allocated_cores();
  const Time end = hold_end_for(job, at);
  DBS_ASSERT(!holds_.contains(job.id()), "hold already open");
  holds_.emplace(job.id(), Hold{cores, end});
  profile_.subtract(at, end, cores);
  heap_push(end, job.id());
}

void PhysicalProfileTracker::close_hold(const rms::Job& job, Time at) {
  const auto it = holds_.find(job.id());
  if (it == holds_.end()) return;
  // [at, end) is what the hold still covers; a hold that already ended
  // (overrun job not yet re-extended) has nothing left to return.
  profile_.add(at, it->second.end, it->second.cores);
  holds_.erase(it);  // the heap entry goes stale and is skipped on pop
}

void PhysicalProfileTracker::return_cores(const rms::Job& job, CoreCount cores,
                                          Time at) {
  const auto it = holds_.find(job.id());
  if (it == holds_.end()) return;
  DBS_ASSERT(cores <= it->second.cores, "returning more than the hold");
  profile_.add(at, it->second.end, cores);
  it->second.cores -= cores;
  if (it->second.cores == 0) holds_.erase(it);
}

void PhysicalProfileTracker::on_job_start(const rms::Job& job) {
  open_hold(job, now());
}

void PhysicalProfileTracker::on_job_finish(const rms::Job& job) {
  close_hold(job, now());
}

void PhysicalProfileTracker::on_requeue(const rms::Job& job) {
  close_hold(job, now());
}

void PhysicalProfileTracker::on_cancel(const rms::Job& job,
                                       CoreCount released) {
  if (released > 0) close_hold(job, now());
}

void PhysicalProfileTracker::on_dyn_grant(const rms::Job& job,
                                          const rms::DynRequest&,
                                          CoreCount extra) {
  const auto it = holds_.find(job.id());
  DBS_ASSERT(it != holds_.end(), "grant to a job without a hold");
  profile_.subtract(now(), it->second.end, extra);
  it->second.cores += extra;
}

void PhysicalProfileTracker::on_dyn_release(const rms::Job& job,
                                            CoreCount cores) {
  return_cores(job, cores, now());
}

void PhysicalProfileTracker::on_malleable_shrink(const rms::Job& job,
                                                 CoreCount cores) {
  return_cores(job, cores, now());
}

void PhysicalProfileTracker::on_nodes_lost(const rms::Job& job,
                                           CoreCount lost) {
  // The lost cores leave the job's hold; that they now sit on a Down node
  // is the down-block's business, synced at the next advance().
  return_cores(job, lost, now());
}

void PhysicalProfileTracker::advance(Time at) {
  profile_.advance_origin(at);

  // Jobs running past their walltime: rebuild clamps their hold to
  // [now, now + 1us); re-extend expired holds the same way. Lazy deletion:
  // an entry whose hold is gone or no longer ends at the popped time is
  // skipped.
  while (!heap_.empty() && heap_.front().first <= at) {
    std::pop_heap(heap_.begin(), heap_.end(), ByEndDesc{});
    const auto [end, id] = heap_.back();
    heap_.pop_back();
    const auto it = holds_.find(id);
    if (it == holds_.end() || it->second.end != end) continue;
    const Time new_end = at + Duration::micros(1);
    profile_.subtract(at, new_end, it->second.cores);
    it->second.end = new_end;
    heap_push(new_end, id);
  }

  // Down/offline nodes: their unused cores are unavailable indefinitely.
  // The ledger keeps the aggregate in O(1); patch the delta since the last
  // sync over the same [now, far_future) block the rebuild subtracts.
  const CoreCount down = server_.cluster().unavailable_free_cores();
  if (down > down_free_)
    profile_.subtract(at, Time::far_future(), down - down_free_);
  else if (down < down_free_)
    profile_.add(at, Time::far_future(), down_free_ - down);
  down_free_ = down;

  // Patch sequences (add-backs, the down block draining to zero, origin
  // advances) leave redundant breakpoints behind; the rebuild never does.
  // Coalescing restores the unique minimal representation so the two paths
  // agree byte-for-byte, not just pointwise.
  profile_.coalesce();
}

}  // namespace dbs::core
