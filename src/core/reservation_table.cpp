#include "core/reservation_table.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::core {

void ReservationTable::add(Reservation r) {
  DBS_REQUIRE(r.start < r.end, "reservation interval must be non-empty");
  DBS_REQUIRE(r.cores > 0, "reservation must hold cores");
  const bool inserted = index_.try_emplace(r.job, items_.size()).second;
  DBS_REQUIRE(inserted, "job already reserved");
  items_.push_back(r);
  const auto id = static_cast<std::uint64_t>(r.job.value());
  if (rebase_pending_) {
    // Anchor the stamp array at this pass's first id; the array then stays
    // sized to the live-id range instead of the ever-growing absolute ids.
    base_ = id;
    rebase_pending_ = false;
  }
  if (id < base_) return;  // below the anchor: find() falls back to the map
  const auto slot = static_cast<std::size_t>(id - base_);
  if (member_stamp_.size() <= slot) member_stamp_.resize(slot + 1, 0);
  member_stamp_[slot] = generation_;
}

const Reservation* ReservationTable::find_slow(JobId job) const {
  const auto it = index_.find(job);
  return it == index_.end() ? nullptr : &items_[it->second];
}

std::size_t ReservationTable::start_now_count() const {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(),
                    [](const Reservation& r) { return r.start_now; }));
}

std::size_t ReservationTable::start_later_count() const {
  return items_.size() - start_now_count();
}

}  // namespace dbs::core
