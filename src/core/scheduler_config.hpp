// All administrator-facing scheduler knobs in one aggregate.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>

#include "cluster/allocation_policy.hpp"
#include "common/time.hpp"
#include "core/dfs_policy.hpp"
#include "core/fairshare.hpp"
#include "core/priority.hpp"

namespace dbs::core {

struct SchedulerConfig {
  /// RESERVATIONDEPTH: reservations protected from backfilling.
  std::size_t reservation_depth = 1;
  /// RESERVATIONDELAYDEPTH: StartLater jobs whose delays are measured for
  /// dynamic-fairness decisions (paper §III-C, Fig. 5).
  std::size_t reservation_delay_depth = 1;
  bool enable_backfill = true;

  PriorityWeights weights;
  CredPriorities cred_priorities;
  FairshareConfig fairshare;
  DfsConfig dfs;

  /// Serve dynamic requests by preempting backfilled preemptible jobs when
  /// idle resources are insufficient (§II-B option).
  bool allow_preemption = false;
  /// Serve dynamic requests by shrinking running malleable jobs to their
  /// malleable_min (§II-B option; gentler than preemption — no progress is
  /// lost). Tried before preemption when both are enabled.
  bool allow_malleable_steal = false;
  /// Cores of a separate partition reserved for dynamic requests
  /// (§II-B option); 0 disables.
  CoreCount dynamic_partition_cores = 0;

  /// Throttling policy: at most this many eligible queued jobs per user.
  std::optional<std::size_t> max_eligible_per_user;

  /// Worker threads for the dynamic-request what-if measurements
  /// (MEASURETHREADS). 1 (default) keeps the fully serial Algorithm 2
  /// loop; > 1 speculatively fans the per-request measurements of one
  /// iteration across a thread pool with a deterministic FIFO-ordered
  /// reduction — decisions, trace events and DFS verdicts are
  /// bit-identical to the serial path at every thread count.
  std::size_t measure_threads = 1;

  /// Incremental planning (INCREMENTALPLANNING): O(Δ)-in-state-changes
  /// iterations. The physical profile is a persistent structure patched on
  /// job events instead of rebuilt from the running set; the planning
  /// walks answer their backfill tails from versioned plan caches; the
  /// priority order reuses the previous iteration's sort. Decisions,
  /// traces and metrics are byte-identical to the from-scratch path.
  bool incremental_planning = true;
  /// CHECKINVARIANTS: cross-check every incremental structure against its
  /// from-scratch rebuild each iteration (expensive; tests and debugging).
  bool check_invariants = false;

  /// Per-stage pipeline timing (STAGETIMING): fills
  /// IterationStats::stage_wall_us, the scheduler.stage_iteration_us.*
  /// histograms and the iteration trace event's wall_us_<stage> fields.
  /// Off by default: the seven TSC reads cost ~125 ns on virtualized
  /// hosts — real money next to a sub-microsecond iteration. dbsim always
  /// turns it on (operator tooling; iterations there are not the
  /// bottleneck).
  bool stage_timing = false;

  /// Periodic iteration when no state change occurs (Maui's timer).
  Duration poll_interval = Duration::seconds(30);

  /// Node-selection policy for placements.
  cluster::AllocationPolicy allocation_policy = cluster::AllocationPolicy::Pack;

  /// max(ReservationDepth, ReservationDelayDepth) — the number of
  /// StartLater jobs planned before dynamic requests are evaluated.
  [[nodiscard]] std::size_t delay_plan_depth() const {
    return std::max(reservation_depth, reservation_delay_depth);
  }

  void validate() const;
};

}  // namespace dbs::core
