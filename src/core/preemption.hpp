// Victim selection when a dynamic request is served by preempting running
// low-priority jobs (§II-B option: "stealing resources from preemptive
// jobs"). Only backfilled, preemptible jobs are candidates; the most
// recently started are sacrificed first (they lose the least progress).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "rms/job.hpp"

namespace dbs::core {

/// Returns job ids to preempt so that `free_now` plus the victims' cores
/// reaches at least `needed`. Empty when impossible (in which case nothing
/// should be preempted). `exclude` (typically the requesting job itself)
/// is never selected.
[[nodiscard]] std::vector<JobId> select_preemption_victims(
    const std::vector<const rms::Job*>& running, CoreCount needed,
    CoreCount free_now, JobId exclude = JobId::invalid());

}  // namespace dbs::core
