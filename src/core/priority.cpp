#include "core/priority.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/fairshare.hpp"

namespace dbs::core {

namespace {
double lookup(const std::unordered_map<std::string, double>& m,
              const std::string& key) {
  auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

template <class JobPtr>
std::vector<JobPtr> prioritize_impl(const PriorityEngine& engine,
                                    std::vector<JobPtr> jobs, Time now) {
  std::stable_sort(jobs.begin(), jobs.end(), [&](JobPtr a, JobPtr b) {
    const bool xa = a->spec().exclusive_priority;
    const bool xb = b->spec().exclusive_priority;
    if (xa != xb) return xa;
    const double pa = engine.priority(*a, now);
    const double pb = engine.priority(*b, now);
    if (pa != pb) return pa > pb;
    if (a->submit_time() != b->submit_time())
      return a->submit_time() < b->submit_time();
    return a->id() < b->id();
  });
  return jobs;
}
}  // namespace

double CredPriorities::total_for(const Credentials& cred) const {
  return lookup(user, cred.user) + lookup(group, cred.group) +
         lookup(account, cred.account) + lookup(job_class, cred.job_class) +
         lookup(qos, cred.qos);
}

PriorityEngine::PriorityEngine(PriorityWeights weights,
                               CredPriorities cred_priorities,
                               const Fairshare* fairshare)
    : weights_(weights), cred_(std::move(cred_priorities)),
      fairshare_(fairshare) {}

double PriorityEngine::priority(const rms::Job& job, Time now) const {
  return priority_given_cred(job, now, cred_.total_for(job.spec().cred));
}

double PriorityEngine::priority_given_cred(const rms::Job& job, Time now,
                                           double credtot) const {
  DBS_REQUIRE(now >= job.submit_time(), "priority query before submission");
  const Duration queued = now - job.submit_time();
  const double qt_minutes = queued.as_seconds() / 60.0;
  const double xfactor =
      (queued + job.spec().walltime).ratio(job.spec().walltime);

  double p = weights_.queue_time_per_minute * qt_minutes +
             weights_.xfactor * xfactor +
             weights_.per_core * static_cast<double>(job.spec().cores) +
             weights_.cred * credtot;
  if (fairshare_ != nullptr && weights_.fairshare != 0.0)
    p += weights_.fairshare * fairshare_->component(job.spec().cred);
  return p;
}

std::vector<rms::Job*> PriorityEngine::prioritize(std::vector<rms::Job*> jobs,
                                                  Time now) const {
  return prioritize_impl(*this, std::move(jobs), now);
}

std::vector<const rms::Job*> PriorityEngine::prioritize(
    std::vector<const rms::Job*> jobs, Time now) const {
  return prioritize_impl(*this, std::move(jobs), now);
}

}  // namespace dbs::core
