#include "core/dfs_policy.hpp"

#include "common/assert.hpp"
#include "common/string_util.hpp"

namespace dbs::core {

std::string_view to_string(DfsPolicy p) {
  switch (p) {
    case DfsPolicy::None: return "NONE";
    case DfsPolicy::SingleJobDelay: return "DFSSINGLEJOBDELAY";
    case DfsPolicy::TargetDelay: return "DFSTARGETDELAY";
    case DfsPolicy::SingleAndTargetDelay: return "DFSSINGLEANDTARGETDELAY";
  }
  return "?";
}

std::optional<DfsPolicy> parse_dfs_policy(std::string_view s) {
  if (iequals(s, "NONE")) return DfsPolicy::None;
  if (iequals(s, "DFSSINGLEJOBDELAY")) return DfsPolicy::SingleJobDelay;
  if (iequals(s, "DFSTARGETDELAY")) return DfsPolicy::TargetDelay;
  if (iequals(s, "DFSSINGLEANDTARGETDELAY") ||
      iequals(s, "DFSSINGLETARGETDELAY"))
    return DfsPolicy::SingleAndTargetDelay;
  return std::nullopt;
}

std::string_view to_string(DfsEntityKind k) {
  switch (k) {
    case DfsEntityKind::User: return "user";
    case DfsEntityKind::Group: return "group";
    case DfsEntityKind::Account: return "account";
    case DfsEntityKind::JobClass: return "class";
    case DfsEntityKind::Qos: return "qos";
  }
  return "?";
}

const std::unordered_map<std::string, DfsEntityLimits>& DfsConfig::map_of(
    DfsEntityKind kind) const {
  switch (kind) {
    case DfsEntityKind::User: return user;
    case DfsEntityKind::Group: return group;
    case DfsEntityKind::Account: return account;
    case DfsEntityKind::JobClass: return job_class;
    case DfsEntityKind::Qos: return qos;
  }
  DBS_ASSERT(false, "unreachable");
  return user;
}

std::unordered_map<std::string, DfsEntityLimits>& DfsConfig::map_of(
    DfsEntityKind kind) {
  return const_cast<std::unordered_map<std::string, DfsEntityLimits>&>(
      static_cast<const DfsConfig*>(this)->map_of(kind));
}

const DfsEntityLimits& DfsConfig::limits_of(DfsEntityKind kind,
                                            const std::string& name) const {
  const auto& m = map_of(kind);
  auto it = m.find(name);
  return it == m.end() ? defaults : it->second;
}

void DfsConfig::validate() const {
  DBS_REQUIRE(interval > Duration::zero(), "DFSINTERVAL must be positive");
  DBS_REQUIRE(decay >= 0.0 && decay <= 1.0, "DFSDECAY must be in [0,1]");
  const auto check = [](const DfsEntityLimits& l) {
    DBS_REQUIRE(!l.single_delay.is_negative(),
                "DFSSINGLEDELAYTIME must be non-negative");
    DBS_REQUIRE(!l.target_delay.is_negative(),
                "DFSTARGETDELAYTIME must be non-negative");
  };
  check(defaults);
  for (const DfsEntityKind kind : kAllDfsEntityKinds)
    for (const auto& [name, limits] : map_of(kind)) {
      DBS_REQUIRE(!name.empty(), "entity name cannot be empty");
      check(limits);
    }
}

const std::string& entity_name(const Credentials& cred, DfsEntityKind kind) {
  switch (kind) {
    case DfsEntityKind::User: return cred.user;
    case DfsEntityKind::Group: return cred.group;
    case DfsEntityKind::Account: return cred.account;
    case DfsEntityKind::JobClass: return cred.job_class;
    case DfsEntityKind::Qos: return cred.qos;
  }
  DBS_ASSERT(false, "unreachable");
  return cred.user;
}

}  // namespace dbs::core
