#include "core/dfs_engine.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "obs/tracer.hpp"
#include "rms/job.hpp"

namespace dbs::core {

namespace {

const char* verdict_counter_name(DfsVerdict v) {
  switch (v) {
    case DfsVerdict::Allowed: return "dfs.allowed";
    case DfsVerdict::DeniedPermission: return "dfs.denied_permission";
    case DfsVerdict::DeniedSingleDelay: return "dfs.denied_single_delay";
    case DfsVerdict::DeniedTargetDelay: return "dfs.denied_target_delay";
  }
  return "dfs.unknown";
}

}  // namespace

std::string_view to_string(DfsVerdict v) {
  switch (v) {
    case DfsVerdict::Allowed: return "allowed";
    case DfsVerdict::DeniedPermission: return "denied-permission";
    case DfsVerdict::DeniedSingleDelay: return "denied-single-delay";
    case DfsVerdict::DeniedTargetDelay: return "denied-target-delay";
  }
  return "?";
}

DfsEngine::DfsEngine(DfsConfig config, Time start)
    : config_(std::move(config)),
      interval_start_(start),
      registry_(&obs::Registry::global()) {
  config_.validate();
}

void DfsEngine::set_sinks(const obs::Sinks& sinks) {
  tracer_ = sinks.tracer;
  registry_ = &sinks.registry_or_global();
}

DfsEngine::EntityAcc& DfsEngine::acc_of(DfsEntityKind kind) {
  switch (kind) {
    case DfsEntityKind::User: return acc_user_;
    case DfsEntityKind::Group: return acc_group_;
    case DfsEntityKind::Account: return acc_account_;
    case DfsEntityKind::JobClass: return acc_class_;
    case DfsEntityKind::Qos: return acc_qos_;
  }
  DBS_ASSERT(false, "unreachable");
  return acc_user_;
}

const DfsEngine::EntityAcc& DfsEngine::acc_of(DfsEntityKind kind) const {
  return const_cast<DfsEngine*>(this)->acc_of(kind);
}

void DfsEngine::advance_to(Time now) {
  while (now - interval_start_ >= config_.interval) {
    interval_start_ += config_.interval;
    DBS_TRACE_EVENT(tracer_,
                    obs::TraceEvent(now, "dfs", "interval_roll")
                        .field("interval_start_us", interval_start_.as_micros())
                        .field("decay", config_.decay));
    // Roll the interval: carry `decay` of each accumulated delay forward.
    for (const DfsEntityKind kind : kAllDfsEntityKinds) {
      EntityAcc& acc = acc_of(kind);
      for (auto it = acc.begin(); it != acc.end();) {
        it->second = it->second.scaled(config_.decay);
        if (it->second <= Duration::zero())
          it = acc.erase(it);
        else
          ++it;
      }
    }
  }
}

DfsVerdict DfsEngine::admit(const Credentials& requester,
                            const std::vector<DelayedJob>& delays) const {
  if (config_.policy == DfsPolicy::None) return DfsVerdict::Allowed;
  const DfsVerdict verdict = admit_impl(requester, delays);
  registry_->counter(verdict_counter_name(verdict)).add();
  if (tracer_ != nullptr && tracer_->enabled()) {
    Duration worst = Duration::zero();
    for (const DelayedJob& d : delays) worst = max(worst, d.delay);
    tracer_->emit(obs::TraceEvent(tracer_->now(), "dfs", "admit")
                      .field("requester", requester.user)
                      .field("verdict", to_string(verdict))
                      .field("delayed_jobs", delays.size())
                      .field("max_delay_s", worst.as_seconds()));
  }
  return verdict;
}

DfsVerdict DfsEngine::admit_impl(const Credentials& requester,
                                 const std::vector<DelayedJob>& delays) const {

  // Pass 1: permission. Any affected entity with DFSDYNDELAYPERM=0 vetoes.
  for (const DelayedJob& d : delays) {
    DBS_REQUIRE(d.job != nullptr, "delayed job must be set");
    if (d.delay <= Duration::zero()) continue;
    const Credentials& cred = d.job->spec().cred;
    if (cred.user == requester.user) continue;  // same-user delays don't count
    for (const DfsEntityKind kind : kAllDfsEntityKinds) {
      const std::string& name = entity_name(cred, kind);
      if (name.empty()) continue;
      if (!config_.limits_of(kind, name).delay_perm)
        return DfsVerdict::DeniedPermission;
    }
  }

  // Pass 2: per-job single-delay caps (most restrictive configured limit
  // across the job's entities applies).
  if (has_single(config_.policy)) {
    for (const DelayedJob& d : delays) {
      if (d.delay <= Duration::zero()) continue;
      const Credentials& cred = d.job->spec().cred;
      if (cred.user == requester.user) continue;
      const Duration already = job_delay(d.job->id());
      for (const DfsEntityKind kind : kAllDfsEntityKinds) {
        const std::string& name = entity_name(cred, kind);
        if (name.empty()) continue;
        const Duration limit = config_.limits_of(kind, name).single_delay;
        if (limit.is_zero()) continue;  // unlimited
        if (already + d.delay > limit) return DfsVerdict::DeniedSingleDelay;
      }
    }
  }

  // Pass 3: per-interval cumulative caps. Sum the new delays per entity and
  // compare against the already-accumulated delay.
  if (has_target(config_.policy)) {
    for (const DfsEntityKind kind : kAllDfsEntityKinds) {
      std::unordered_map<std::string, Duration> fresh;
      for (const DelayedJob& d : delays) {
        if (d.delay <= Duration::zero()) continue;
        const Credentials& cred = d.job->spec().cred;
        if (cred.user == requester.user) continue;
        const std::string& name = entity_name(cred, kind);
        if (name.empty()) continue;
        fresh[name] += d.delay;
      }
      for (const auto& [name, sum] : fresh) {
        const Duration limit = config_.limits_of(kind, name).target_delay;
        if (limit.is_zero()) continue;  // unlimited
        if (accumulated(kind, name) + sum > limit)
          return DfsVerdict::DeniedTargetDelay;
      }
    }
  }

  return DfsVerdict::Allowed;
}

void DfsEngine::commit(const Credentials& requester,
                       const std::vector<DelayedJob>& delays) {
  if (config_.policy == DfsPolicy::None) return;
  Duration charged = Duration::zero();
  std::size_t charged_jobs = 0;
  for (const DelayedJob& d : delays) {
    if (d.delay <= Duration::zero()) continue;
    const Credentials& cred = d.job->spec().cred;
    if (cred.user == requester.user) continue;
    job_delay_[d.job->id()] += d.delay;
    charged += d.delay;
    ++charged_jobs;
    for (const DfsEntityKind kind : kAllDfsEntityKinds) {
      const std::string& name = entity_name(cred, kind);
      if (name.empty()) continue;
      acc_of(kind)[name] += d.delay;
    }
  }
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(tracer_->now(), "dfs", "commit")
                               .field("requester", requester.user)
                               .field("charged_jobs", charged_jobs)
                               .field("charged_delay_s", charged.as_seconds()));
}

Duration DfsEngine::accumulated(DfsEntityKind kind,
                                const std::string& name) const {
  const EntityAcc& acc = acc_of(kind);
  auto it = acc.find(name);
  return it == acc.end() ? Duration::zero() : it->second;
}

Duration DfsEngine::job_delay(JobId id) const {
  auto it = job_delay_.find(id);
  return it == job_delay_.end() ? Duration::zero() : it->second;
}

DfsEngine::State DfsEngine::save_state() const {
  State s;
  s.interval_start = interval_start_;
  std::size_t slot = 0;
  for (const DfsEntityKind kind : kAllDfsEntityKinds) {
    auto& out = s.entities[slot++];
    for (const auto& [name, delay] : acc_of(kind))
      out.emplace_back(name, delay);
    std::sort(out.begin(), out.end());
  }
  s.job_delays.assign(job_delay_.begin(), job_delay_.end());
  std::sort(s.job_delays.begin(), s.job_delays.end());
  return s;
}

void DfsEngine::restore_state(const State& s) {
  interval_start_ = s.interval_start;
  std::size_t slot = 0;
  for (const DfsEntityKind kind : kAllDfsEntityKinds) {
    EntityAcc& acc = acc_of(kind);
    acc.clear();
    for (const auto& [name, delay] : s.entities[slot++]) acc.emplace(name, delay);
  }
  job_delay_.clear();
  for (const auto& [id, delay] : s.job_delays) job_delay_.emplace(id, delay);
}

}  // namespace dbs::core
