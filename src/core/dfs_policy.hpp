// Dynamic-fairness (DFS) configuration — the paper's §III-D parameters.
//
//   DFSPOLICY            NONE | DFSSINGLEJOBDELAY | DFSTARGETDELAY |
//                        DFSSINGLEANDTARGETDELAY
//   DFSINTERVAL          accounting interval for cumulative (target) delays
//   DFSDECAY             fraction of the accumulated delay carried into the
//                        next interval
//   per entity (USERCFG/GROUPCFG/ACCOUNTCFG/CLASSCFG/QOSCFG):
//     DFSDYNDELAYPERM    1 = this entity's queued jobs may be delayed by
//                        dynamic allocations (default), 0 = never
//     DFSSINGLEDELAYTIME max delay per queued job        (0 = unlimited)
//     DFSTARGETDELAYTIME max cumulative delay / interval (0 = unlimited)
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

enum class DfsPolicy {
  None,                 ///< dynamic requests get highest priority (Dyn-HP)
  SingleJobDelay,       ///< per-job delay cap
  TargetDelay,          ///< per-entity cumulative delay cap per interval
  SingleAndTargetDelay, ///< both caps combined
};

[[nodiscard]] std::string_view to_string(DfsPolicy p);
[[nodiscard]] std::optional<DfsPolicy> parse_dfs_policy(std::string_view s);

[[nodiscard]] constexpr bool has_single(DfsPolicy p) {
  return p == DfsPolicy::SingleJobDelay || p == DfsPolicy::SingleAndTargetDelay;
}
[[nodiscard]] constexpr bool has_target(DfsPolicy p) {
  return p == DfsPolicy::TargetDelay || p == DfsPolicy::SingleAndTargetDelay;
}

/// Per-entity limits. Duration::zero() means "unlimited" (paper Fig. 6).
struct DfsEntityLimits {
  bool delay_perm = true;
  Duration single_delay = Duration::zero();
  Duration target_delay = Duration::zero();

  [[nodiscard]] bool operator==(const DfsEntityLimits&) const = default;
};

/// The credential dimensions limits can be attached to.
enum class DfsEntityKind { User, Group, Account, JobClass, Qos };

[[nodiscard]] std::string_view to_string(DfsEntityKind k);

struct DfsConfig {
  DfsPolicy policy = DfsPolicy::None;
  Duration interval = Duration::hours(6);  ///< DFSINTERVAL
  double decay = 0.0;                      ///< DFSDECAY in [0,1]

  std::unordered_map<std::string, DfsEntityLimits> user;
  std::unordered_map<std::string, DfsEntityLimits> group;
  std::unordered_map<std::string, DfsEntityLimits> account;
  std::unordered_map<std::string, DfsEntityLimits> job_class;
  std::unordered_map<std::string, DfsEntityLimits> qos;

  /// Limits applied to entities with no explicit configuration.
  DfsEntityLimits defaults;

  [[nodiscard]] const std::unordered_map<std::string, DfsEntityLimits>& map_of(
      DfsEntityKind kind) const;
  [[nodiscard]] std::unordered_map<std::string, DfsEntityLimits>& map_of(
      DfsEntityKind kind);

  /// Effective limits of a named entity (falls back to `defaults`).
  [[nodiscard]] const DfsEntityLimits& limits_of(DfsEntityKind kind,
                                                 const std::string& name) const;

  /// Throws precondition_error on invalid settings.
  void validate() const;
};

/// The entity name of `cred` along dimension `kind` ("" when unset).
[[nodiscard]] const std::string& entity_name(const Credentials& cred,
                                             DfsEntityKind kind);

inline constexpr DfsEntityKind kAllDfsEntityKinds[] = {
    DfsEntityKind::User, DfsEntityKind::Group, DfsEntityKind::Account,
    DfsEntityKind::JobClass, DfsEntityKind::Qos};

}  // namespace dbs::core
