#include "core/fairshare.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::core {

Fairshare::Fairshare(FairshareConfig config, Time start)
    : config_(std::move(config)), window_start_(start) {
  DBS_REQUIRE(config_.interval > Duration::zero(), "FSINTERVAL must be positive");
  DBS_REQUIRE(config_.depth >= 1, "FSDEPTH must be at least 1");
  DBS_REQUIRE(config_.decay >= 0.0 && config_.decay <= 1.0,
              "FSDECAY must be in [0,1]");
}

void Fairshare::advance_to(Time now) {
  while (now - window_start_ >= config_.interval) {
    window_start_ += config_.interval;
    for (auto& [user, windows] : windows_) {
      windows.push_front(0.0);
      while (windows.size() > config_.depth) windows.pop_back();
    }
  }
}

void Fairshare::record_usage(const Credentials& cred, double core_seconds,
                             Time now) {
  if (!config_.enabled) return;
  DBS_REQUIRE(core_seconds >= 0.0, "usage cannot be negative");
  advance_to(now);
  auto& windows = windows_[cred.user];
  if (windows.empty()) windows.push_front(0.0);
  windows.front() += core_seconds;
}

double Fairshare::effective_usage(const std::string& user) const {
  auto it = windows_.find(user);
  if (it == windows_.end()) return 0.0;
  double weight = 1.0;
  double total = 0.0;
  for (const double w : it->second) {
    total += weight * w;
    weight *= config_.decay;
  }
  return total;
}

Fairshare::State Fairshare::save_state() const {
  State s;
  s.window_start = window_start_;
  s.windows.reserve(windows_.size());
  for (const auto& [user, windows] : windows_)
    s.windows.emplace_back(user,
                           std::vector<double>(windows.begin(), windows.end()));
  std::sort(s.windows.begin(), s.windows.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return s;
}

void Fairshare::restore_state(const State& s) {
  window_start_ = s.window_start;
  windows_.clear();
  for (const auto& [user, windows] : s.windows)
    windows_.emplace(user, std::deque<double>(windows.begin(), windows.end()));
}

double Fairshare::component(const Credentials& cred) const {
  if (!config_.enabled) return 0.0;
  auto target_it = config_.user_targets.find(cred.user);
  if (target_it == config_.user_targets.end()) return 0.0;

  double all_users = 0.0;
  for (const auto& [user, windows] : windows_) {
    (void)windows;
    all_users += effective_usage(user);
  }
  const double mine = effective_usage(cred.user);
  const double used_percent = all_users > 0.0 ? 100.0 * mine / all_users : 0.0;
  return target_it->second - used_percent;
}

}  // namespace dbs::core
