#include "core/malleable.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::core {

std::vector<MalleableShrink> plan_malleable_steal(
    const std::vector<const rms::Job*>& running, CoreCount needed,
    CoreCount free_now, JobId exclude) {
  DBS_REQUIRE(needed > 0, "steal planning needs a target");
  if (free_now >= needed) return {};

  std::vector<const rms::Job*> candidates;
  for (const rms::Job* job : running) {
    if (!job->spec().malleable() || job->id() == exclude) continue;
    if (job->allocated_cores() > job->spec().malleable_min)
      candidates.push_back(job);
  }
  const auto slack = [](const rms::Job* job) {
    return job->allocated_cores() - job->spec().malleable_min;
  };
  std::sort(candidates.begin(), candidates.end(),
            [&](const rms::Job* a, const rms::Job* b) {
              if (slack(a) != slack(b)) return slack(a) > slack(b);
              return a->id() < b->id();
            });

  std::vector<MalleableShrink> plan;
  CoreCount would_free = free_now;
  for (const rms::Job* job : candidates) {
    if (would_free >= needed) break;
    const CoreCount take = std::min(slack(job), needed - would_free);
    plan.push_back({job->id(), take});
    would_free += take;
  }
  if (would_free < needed) return {};  // shrinking cannot reach the target
  return plan;
}

}  // namespace dbs::core
