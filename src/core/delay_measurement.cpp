#include "core/delay_measurement.hpp"

#include <utility>

#include "common/assert.hpp"
#include "obs/json.hpp"
#include "obs/tracer.hpp"

namespace dbs::core {

void delays_to_json(const std::vector<DelayedJob>& delays, std::string& out) {
  out += '[';
  bool first = true;
  for (const DelayedJob& d : delays) {
    if (!first) out += ", ";
    out += "{\"job\": ";
    out += std::to_string(d.job->id().value());
    out += ", \"user\": ";
    out += obs::json_quote(d.job->spec().cred.user);
    out += ", \"delay_s\": ";
    out += obs::json_number(d.delay.as_seconds());
    out += '}';
    first = false;
  }
  out += ']';
}

std::string delays_to_json(const std::vector<DelayedJob>& delays) {
  std::string out;
  delays_to_json(delays, out);
  return out;
}

DynHold make_hold(const rms::Job& owner, const rms::DynRequest& request,
                  Time now) {
  DBS_REQUIRE(owner.is_running(), "dynamic hold needs a running owner");
  // The hold must cover at least an instant even if the owner is at the very
  // end of its walltime.
  const Time until = max(owner.walltime_end(), now + Duration::micros(1));
  return DynHold{request.extra_cores, now, until};
}

void diff_plans_into(const std::vector<const rms::Job*>& jobs,
                     const ReservationTable& before,
                     const ReservationTable& after,
                     std::vector<DelayedJob>& out) {
  out.clear();
  out.reserve(jobs.size());
  for (const rms::Job* job : jobs) {
    const Reservation* old_r = before.find(job->id());
    const Reservation* new_r = after.find(job->id());
    if (old_r == nullptr) continue;  // was never planned: not protected
    DBS_ASSERT(new_r != nullptr, "replan lost a protected job");
    // Negative diffs are possible: pushing a big job back can let a small
    // one slip in earlier. Only positive delays matter for fairness; the
    // DFS engine ignores the rest.
    const Duration delay = new_r->start - old_r->start;
    out.push_back(DelayedJob{job, delay});
  }
}

std::vector<DelayedJob> diff_plans(const std::vector<const rms::Job*>& jobs,
                                   const ReservationTable& before,
                                   const ReservationTable& after) {
  std::vector<DelayedJob> delays;
  diff_plans_into(jobs, before, after, delays);
  return delays;
}

void protected_subset_into(const std::vector<const rms::Job*>& prioritized,
                           const ReservationTable& baseline,
                           std::size_t delay_depth,
                           std::vector<const rms::Job*>& out) {
  out.clear();
  std::size_t later_seen = 0;
  for (std::size_t i = 0; i < prioritized.size(); ++i) {
    if (i + 8 < prioritized.size()) __builtin_prefetch(prioritized[i + 8]);
    const rms::Job* job = prioritized[i];
    const Reservation* r = baseline.find(job->id());
    if (r == nullptr) continue;
    if (r->start_now)
      out.push_back(job);
    else if (later_seen++ < delay_depth)
      out.push_back(job);
  }
}

std::vector<const rms::Job*> protected_subset(
    const std::vector<const rms::Job*>& prioritized,
    const ReservationTable& baseline, std::size_t delay_depth) {
  std::vector<const rms::Job*> out;
  protected_subset_into(prioritized, baseline, delay_depth, out);
  return out;
}

void emit_measure_trace(const DynHold& hold, std::size_t protected_count,
                        CoreCount physical_free_now,
                        const DelayMeasurement& measurement,
                        const PlanOptions& options, obs::Tracer* tracer,
                        std::string& json_scratch) {
  if (tracer == nullptr || !tracer->enabled()) return;
  if (!measurement.feasible) {
    tracer->emit(obs::TraceEvent(options.now, "sched", "measure")
                     .field("extra_cores", hold.extra_cores)
                     .field("free_cores", physical_free_now)
                     .field("feasible", false)
                     .field("protected", protected_count));
    return;
  }
  json_scratch.clear();
  delays_to_json(measurement.delays, json_scratch);
  tracer->emit(obs::TraceEvent(options.now, "sched", "measure")
                   .field("extra_cores", hold.extra_cores)
                   .field("until_us", hold.until.as_micros())
                   .field("free_cores", physical_free_now)
                   .field("feasible", true)
                   .field("replanned", measurement.replanned_count)
                   .field("protected", protected_count)
                   .field("depth", measurement.delays.size())
                   .field_json("delays", json_scratch));
}

void measure_dynamic_request_into(
    const DynHold& hold, const std::vector<const rms::Job*>& candidate_jobs,
    const std::vector<const rms::Job*>& protected_jobs,
    const ReservationTable& baseline,
    const AvailabilityProfile& planning_profile, CoreCount physical_free_now,
    const PlanOptions& options, obs::Tracer* tracer, MeasureScratch& scratch,
    DelayMeasurement& out) {
  DBS_REQUIRE(hold.extra_cores > 0, "hold must request cores");
  out.feasible = false;
  out.delays.clear();
  out.replanned_count = 0;

  // Step 12/13: are there enough idle cores *right now*? Queued jobs do not
  // occupy anything yet; only physically free cores count. Infeasible
  // requests never touch the profile — no copy, no replan.
  if (hold.extra_cores > physical_free_now) {
    emit_measure_trace(hold, protected_jobs.size(), physical_free_now, out,
                       options, tracer, scratch.json);
    return;
  }
  out.feasible = true;

  // Every job with a baseline reservation is replanned (they all compete
  // for the space the hold removes) — but only the protected jobs have
  // their delays reported to the fairness engine.
  scratch.planned.clear();
  scratch.planned.reserve(candidate_jobs.size());
  for (const rms::Job* job : candidate_jobs)
    if (baseline.find(job->id()) != nullptr) scratch.planned.push_back(job);
  out.replanned_count = scratch.planned.size();

  // Clamped: with a reserved dynamic partition the planning profile may
  // already sit at zero while the physical cores for the hold come out of
  // the partition. max(0, phys - partition) - hold clamped at zero equals
  // max(0, phys - hold - partition) wherever the unclamped value was
  // positive, so planning stays exact for static jobs.
  out.profile_after = planning_profile;
  out.profile_after.subtract_clamped(hold.from, hold.until, hold.extra_cores);
  replan_all_into(scratch.planned, out.profile_after, options, scratch.replan);
  std::swap(out.replanned, scratch.replan.table);
  scratch.still_protected.clear();
  scratch.still_protected.reserve(protected_jobs.size());
  for (const rms::Job* job : protected_jobs)
    if (baseline.find(job->id()) != nullptr)
      scratch.still_protected.push_back(job);
  diff_plans_into(scratch.still_protected, baseline, out.replanned, out.delays);
  emit_measure_trace(hold, protected_jobs.size(), physical_free_now, out,
                     options, tracer, scratch.json);
}

DelayMeasurement measure_dynamic_request(
    const DynHold& hold, const std::vector<const rms::Job*>& candidate_jobs,
    const std::vector<const rms::Job*>& protected_jobs,
    const ReservationTable& baseline,
    const AvailabilityProfile& planning_profile, CoreCount physical_free_now,
    const PlanOptions& options, obs::Tracer* tracer) {
  MeasureScratch scratch;
  DelayMeasurement out;
  measure_dynamic_request_into(hold, candidate_jobs, protected_jobs, baseline,
                               planning_profile, physical_free_now, options,
                               tracer, scratch, out);
  // Preserve the documented value-returning contract: the profile always
  // reflects the planning input (plus the hold when feasible).
  if (!out.feasible) out.profile_after = planning_profile;
  return out;
}

}  // namespace dbs::core
