// Malleable-job shrink planning — the §II-B "stealing resources from
// malleable jobs" servicing strategy (and the paper's §VI future work).
// Unlike preemption, shrinking loses no progress: the application adapts to
// the smaller allocation (Application::on_reshaped).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "rms/job.hpp"

namespace dbs::core {

struct MalleableShrink {
  JobId job;
  CoreCount cores = 0;  ///< cores to take away
};

/// Plans shrinks of running malleable jobs so that `free_now` plus the
/// freed cores reaches `needed`. Jobs with the largest slack
/// (allocated - malleable_min) are shrunk first, so the fewest jobs are
/// disturbed. Returns an empty plan when the target cannot be reached
/// (in which case nothing should be shrunk). `exclude` (the requesting
/// job) is never selected.
[[nodiscard]] std::vector<MalleableShrink> plan_malleable_steal(
    const std::vector<const rms::Job*>& running, CoreCount needed,
    CoreCount free_now, JobId exclude = JobId::invalid());

}  // namespace dbs::core
