// The dynamic-fairness engine: admission control and delay accounting for
// dynamic allocations (paper §III-C step 14 and §III-D).
//
// For every candidate dynamic allocation the scheduler measures the delays
// it would inflict on protected queued jobs; the engine decides whether the
// allocation is fair. On commit, inflicted delays are charged (a) to each
// delayed job (for the single-job cap) and (b) to each credential entity of
// the delayed job's owner (for the per-interval cumulative cap). At each
// DFSINTERVAL boundary the accumulated entity delays are multiplied by
// DFSDECAY, carrying a configurable fraction of history forward.
#pragma once

#include <array>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "core/dfs_policy.hpp"

namespace dbs::rms {
class Job;
}

namespace dbs::obs {
class Tracer;
class Registry;
struct Sinks;
}

namespace dbs::core {

/// One queued job delayed by a candidate dynamic allocation.
struct DelayedJob {
  const rms::Job* job = nullptr;
  Duration delay;  ///< additional wait vs. the current plan (>= 0)
};

/// Why a request was rejected (for logging/metrics/negotiation).
enum class DfsVerdict {
  Allowed,
  DeniedPermission,   ///< a delayed job's entity has DFSDYNDELAYPERM=0
  DeniedSingleDelay,  ///< a per-job delay cap would be exceeded
  DeniedTargetDelay,  ///< a per-interval cumulative cap would be exceeded
};

[[nodiscard]] std::string_view to_string(DfsVerdict v);

class DfsEngine {
 public:
  explicit DfsEngine(DfsConfig config, Time start = Time::epoch());

  /// Rolls interval accounting forward to `now` (applies decay at each
  /// boundary crossed).
  void advance_to(Time now);

  /// Would delaying `delays` on behalf of `requester` be fair? Delays to
  /// jobs of the requester's own user are ignored (paper rule). Pure.
  [[nodiscard]] DfsVerdict admit(const Credentials& requester,
                                 const std::vector<DelayedJob>& delays) const;

  /// Charges the delays (call only after admit() allowed them and the
  /// allocation was committed).
  void commit(const Credentials& requester,
              const std::vector<DelayedJob>& delays);

  /// A queued job started: its per-job delay record is no longer needed.
  void on_job_started(JobId id) { job_delay_.erase(id); }

  /// Observability sinks: the tracer (nullable) receives per-decision audit
  /// events ("admit" verdicts with the violated rule, "commit" charges,
  /// interval rolls); verdict counters land in the registry (null selects
  /// the global one).
  void set_sinks(const obs::Sinks& sinks);

  // --- introspection (tests, reports) ------------------------------------
  [[nodiscard]] Duration accumulated(DfsEntityKind kind,
                                     const std::string& name) const;
  [[nodiscard]] Duration job_delay(JobId id) const;
  [[nodiscard]] const DfsConfig& config() const { return config_; }
  [[nodiscard]] Time interval_start() const { return interval_start_; }

  /// Serializable ledger state for durable snapshots: the five entity
  /// accumulators (indexed by DfsEntityKind order: user, group, account,
  /// class, qos) plus the per-job delay records, each sorted by key so the
  /// encoded form is byte-stable across processes.
  struct State {
    Time interval_start;
    std::array<std::vector<std::pair<std::string, Duration>>, 5> entities;
    std::vector<std::pair<JobId, Duration>> job_delays;
    [[nodiscard]] bool operator==(const State&) const = default;
  };
  [[nodiscard]] State save_state() const;
  void restore_state(const State& s);

 private:
  [[nodiscard]] DfsVerdict admit_impl(
      const Credentials& requester,
      const std::vector<DelayedJob>& delays) const;

  /// Accumulated delay for one entity dimension within the current interval.
  using EntityAcc = std::unordered_map<std::string, Duration>;
  EntityAcc& acc_of(DfsEntityKind kind);
  [[nodiscard]] const EntityAcc& acc_of(DfsEntityKind kind) const;

  DfsConfig config_;
  Time interval_start_;
  EntityAcc acc_user_, acc_group_, acc_account_, acc_class_, acc_qos_;
  std::unordered_map<JobId, Duration> job_delay_;
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_;  ///< never null; defaults to the global one
};

}  // namespace dbs::core
