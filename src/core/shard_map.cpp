#include "core/shard_map.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::core {

std::uint64_t fnv1a64(std::string_view s) {
  std::uint64_t h = 14695981039346656037ULL;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

namespace {

/// Routing hash of a node index: the decimal digits fed through fnv1a64,
/// so the assignment is stable and platform-independent.
std::uint64_t hash_node(std::size_t node) {
  char buf[24];
  const int len = std::snprintf(buf, sizeof buf, "%zu", node);
  return fnv1a64(std::string_view(buf, static_cast<std::size_t>(len)));
}

}  // namespace

ShardMap ShardMap::by_range(const cluster::ClusterSpec& spec,
                            std::size_t shards) {
  DBS_REQUIRE(shards >= 1, "shard map needs at least one shard");
  DBS_REQUIRE(shards <= spec.node_count,
              "more shards than nodes: every shard needs >= 1 node");
  ShardMap map;
  const std::size_t base = spec.node_count / shards;
  const std::size_t extra = spec.node_count % shards;
  for (std::size_t k = 0; k < shards; ++k) {
    ShardSpec shard;
    shard.name = "part" + std::to_string(k);
    shard.cluster.node_count = base + (k < extra ? 1 : 0);
    shard.cluster.cores_per_node = spec.cores_per_node;
    for (std::size_t i = 0; i < shard.cluster.node_count; ++i)
      map.node_to_shard_.push_back(k);
    map.shards_.push_back(std::move(shard));
  }
  return map;
}

ShardMap ShardMap::by_hash(const cluster::ClusterSpec& spec,
                           std::size_t shards) {
  DBS_REQUIRE(shards >= 1, "shard map needs at least one shard");
  ShardMap map;
  map.node_to_shard_.reserve(spec.node_count);
  std::vector<std::size_t> counts(shards, 0);
  for (std::size_t node = 0; node < spec.node_count; ++node) {
    const std::size_t k = hash_node(node) % shards;
    map.node_to_shard_.push_back(k);
    ++counts[k];
  }
  for (std::size_t k = 0; k < shards; ++k) {
    DBS_REQUIRE(counts[k] >= 1,
                "hash shard map left a shard empty; use by_range for K "
                "close to node_count");
    ShardSpec shard;
    shard.name = "part" + std::to_string(k);
    shard.cluster.node_count = counts[k];
    shard.cluster.cores_per_node = spec.cores_per_node;
    map.shards_.push_back(std::move(shard));
  }
  return map;
}

ShardMap ShardMap::by_partitions(std::vector<ShardSpec> parts) {
  DBS_REQUIRE(!parts.empty(), "shard map needs at least one partition");
  ShardMap map;
  for (std::size_t k = 0; k < parts.size(); ++k) {
    const ShardSpec& part = parts[k];
    DBS_REQUIRE(!part.name.empty(), "named partitions need non-empty names");
    DBS_REQUIRE(part.cluster.node_count >= 1,
                "every partition needs at least one node");
    for (std::size_t other = 0; other < k; ++other)
      DBS_REQUIRE(parts[other].name != part.name,
                  "duplicate partition name in shard map");
    for (std::size_t i = 0; i < part.cluster.node_count; ++i)
      map.node_to_shard_.push_back(k);
  }
  map.shards_ = std::move(parts);
  return map;
}

const ShardSpec& ShardMap::shard(std::size_t k) const {
  DBS_REQUIRE(k < shards_.size(), "shard index out of range");
  return shards_[k];
}

std::size_t ShardMap::shard_of_node(std::size_t node) const {
  DBS_REQUIRE(node < node_to_shard_.size(), "node index out of range");
  return node_to_shard_[node];
}

std::size_t ShardMap::shard_named(std::string_view name) const {
  for (std::size_t k = 0; k < shards_.size(); ++k)
    if (shards_[k].name == name) return k;
  return npos;
}

CoreCount ShardMap::total_cores() const {
  CoreCount total = 0;
  for (const ShardSpec& s : shards_)
    total += static_cast<CoreCount>(s.cluster.node_count) *
             s.cluster.cores_per_node;
  return total;
}

std::string_view to_string(RoutePolicy p) {
  switch (p) {
    case RoutePolicy::UserHash: return "user";
    case RoutePolicy::Partition: return "partition";
    case RoutePolicy::LeastLoaded: return "least-loaded";
  }
  return "?";
}

ShardRouter::ShardRouter(const ShardMap& map, RoutePolicy policy)
    : map_(&map),
      policy_(policy),
      routed_cores_(map.shard_count(), 0),
      routed_jobs_(map.shard_count(), 0) {}

std::size_t ShardRouter::route(const rms::JobSpec& spec) {
  const std::size_t count = map_->shard_count();
  std::size_t k = 0;
  switch (policy_) {
    case RoutePolicy::UserHash:
      k = fnv1a64(spec.cred.user) % count;
      break;
    case RoutePolicy::Partition:
      k = map_->shard_named(spec.cred.job_class);
      // A class naming no shard falls back to the user hash: deterministic
      // and spreads unpartitioned traffic instead of hot-spotting shard 0.
      if (k == ShardMap::npos) k = fnv1a64(spec.cred.user) % count;
      break;
    case RoutePolicy::LeastLoaded: {
      // argmin over shards of routed_cores / capacity, compared by
      // cross-multiplication in 128 bits so there is no float rounding and
      // no overflow; ties go to the lowest index. Capacity-relative so
      // unequal partitions fill proportionally.
      for (std::size_t cand = 1; cand < count; ++cand) {
        const auto cap = [&](std::size_t s) {
          const cluster::ClusterSpec& c = map_->shard(s).cluster;
          return static_cast<unsigned __int128>(c.node_count) *
                 static_cast<unsigned __int128>(c.cores_per_node);
        };
        const unsigned __int128 lhs =
            static_cast<unsigned __int128>(routed_cores_[cand]) * cap(k);
        const unsigned __int128 rhs =
            static_cast<unsigned __int128>(routed_cores_[k]) * cap(cand);
        if (lhs < rhs) k = cand;
      }
      break;
    }
  }
  routed_cores_[k] +=
      static_cast<std::uint64_t>(std::max<CoreCount>(spec.cores, 1));
  ++routed_jobs_[k];
  return k;
}

void ShardRouter::restore(std::vector<std::uint64_t> routed_cores,
                          std::vector<std::uint64_t> routed_jobs) {
  DBS_REQUIRE(routed_cores.size() == map_->shard_count() &&
                  routed_jobs.size() == map_->shard_count(),
              "router restore needs one entry per shard");
  routed_cores_ = std::move(routed_cores);
  routed_jobs_ = std::move(routed_jobs);
}

}  // namespace dbs::core
