// Multi-tenant sharding: a static partition of the cluster's nodes into K
// independently scheduled shards, plus the deterministic router that picks
// the shard a submission lands on.
//
// A shard is a full scheduler stack (MauiScheduler + DfsEngine +
// ReservationTable) over its own cluster view; shards share nothing
// mutable, so K shard iterations can run concurrently on a thread pool
// while staying byte-identical to running the same shards serially — the
// determinism contract batch::ParallelRunner established for replications.
// The ShardMap is the static half (which nodes belong to which shard); the
// ShardRouter is the dynamic half (which shard a job goes to), and every
// routing policy is a pure function of the submission stream so a replay
// or a WAL recovery re-routes every job to the same shard.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "rms/job.hpp"

namespace dbs::core {

/// 64-bit FNV-1a — the routing hash. Stable across platforms and runs (no
/// std::hash, whose value is implementation-defined), so routed workloads
/// replay identically everywhere.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s);

/// One shard of the machine: a name (routing target for the Partition
/// policy, recorder/WAL label) and the slice of the cluster it schedules.
struct ShardSpec {
  std::string name;              ///< e.g. "part0", or a site name ("gpu")
  cluster::ClusterSpec cluster;  ///< this shard's view (node subset)
};

/// Static node→shard partition. Built once at configuration time; never
/// mutated afterwards, so it is safe to share across concurrently
/// iterating shards.
class ShardMap {
 public:
  /// K contiguous node ranges of a homogeneous cluster, remainder nodes
  /// spread over the first shards (sizes differ by at most one). Shard k
  /// is named "part<k>". Requires 1 <= shards <= spec.node_count.
  [[nodiscard]] static ShardMap by_range(const cluster::ClusterSpec& spec,
                                         std::size_t shards);

  /// Node i goes to shard fnv1a64(i) % K. For a homogeneous cluster the
  /// per-shard view only depends on the bucket sizes, but the explicit
  /// node assignment is kept for inspection/tests. Shards that receive no
  /// node are rejected (every shard must be schedulable); use by_range for
  /// K close to node_count.
  [[nodiscard]] static ShardMap by_hash(const cluster::ClusterSpec& spec,
                                        std::size_t shards);

  /// Explicit named partitions (e.g. mirroring a site's queue→partition
  /// table). Every partition needs a unique non-empty name and at least
  /// one node.
  [[nodiscard]] static ShardMap by_partitions(std::vector<ShardSpec> parts);

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] const ShardSpec& shard(std::size_t k) const;
  [[nodiscard]] const std::vector<ShardSpec>& shards() const {
    return shards_;
  }

  /// Shard owning global node `node` (by_range/by_hash maps only; for
  /// by_partitions nodes are numbered shard-major in partition order).
  [[nodiscard]] std::size_t shard_of_node(std::size_t node) const;

  /// Shard index of the partition named `name`, or npos when absent.
  [[nodiscard]] std::size_t shard_named(std::string_view name) const;

  [[nodiscard]] std::size_t total_nodes() const {
    return node_to_shard_.size();
  }
  [[nodiscard]] CoreCount total_cores() const;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::vector<ShardSpec> shards_;
  std::vector<std::size_t> node_to_shard_;  ///< global node -> shard index
};

/// How the router picks a shard for a submission.
enum class RoutePolicy {
  /// fnv1a64(user) % K: one tenant's jobs always land on one shard, so
  /// per-user fair-share state never splits across shards.
  UserHash,
  /// Job class (queue) name matched against the shard names; submissions
  /// whose class names no shard fall back to UserHash. The classic
  /// site-partition model (SLURM partitions).
  Partition,
  /// Deterministic least-loaded: the shard with the smallest cumulative
  /// routed cores *per core of shard capacity* (ties -> lowest index).
  /// The ledger only ever grows — a decrement on job completion would make
  /// routing depend on scheduling outcomes and break replay/recovery
  /// stability — so the policy balances the submitted stream, not the
  /// instantaneous occupancy.
  LeastLoaded
};

[[nodiscard]] std::string_view to_string(RoutePolicy p);

/// Assigns submissions to shards at ingest time. Deterministic: the chosen
/// shard is a pure function of (policy, shard map, submission stream so
/// far). Not thread-safe — route from the single ingest/driver thread, the
/// same place submissions are already serialized.
class ShardRouter {
 public:
  ShardRouter(const ShardMap& map, RoutePolicy policy);

  /// Shard for `spec`; LeastLoaded also charges the job's cores to the
  /// chosen shard's ledger.
  std::size_t route(const rms::JobSpec& spec);

  [[nodiscard]] RoutePolicy policy() const { return policy_; }
  [[nodiscard]] const ShardMap& map() const { return *map_; }

  /// Cumulative routed cores per shard (monotone; LeastLoaded's ledger,
  /// maintained under every policy for observability).
  [[nodiscard]] const std::vector<std::uint64_t>& routed_cores() const {
    return routed_cores_;
  }
  [[nodiscard]] std::uint64_t routed_jobs(std::size_t k) const {
    return routed_jobs_.at(k);
  }

  /// Recovery: seed the ledger from durable per-shard ingest totals so a
  /// reopened service keeps routing exactly where a never-restarted one
  /// would. Size must equal shard_count().
  void restore(std::vector<std::uint64_t> routed_cores,
               std::vector<std::uint64_t> routed_jobs);

 private:
  const ShardMap* map_;
  RoutePolicy policy_;
  std::vector<std::uint64_t> routed_cores_;  ///< cumulative, never decremented
  std::vector<std::uint64_t> routed_jobs_;
};

}  // namespace dbs::core
