// Per-plan-slot cache of tail StartNow verdicts.
//
// Once a planning walk has used up its reservation budget and somebody
// waits, every remaining job can only be planned as an immediate backfill
// (start == now) or skipped — and "fits now" depends only on the minimum
// free cores of the evolving plan profile over [now, now + walltime). The
// cache compresses that prefix-minimum into a small staircase of
// (window, min free) entries and versions it: a verdict computed against
// staircase version V is valid for every later walk whose staircase is
// byte-identical (version unchanged), which under low churn is almost all
// of them. Planning a backfill dirties the staircase (its minimum drops),
// so affected verdicts are recomputed and untouched ones survive — the
// per-job plan cache keyed by (job, profile-segment version).
//
// One instance per plan slot (the classify baseline and the start/backfill
// final plan), owned by the IterationContext; plan_jobs_into takes it as
// an optional argument and the walk stays byte-identical to the uncached
// path (same planned set, same order, same profile mutations).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

class AvailabilityProfile;

struct PlanCache {
  /// One staircase entry: min_free holds for every window <= `window`
  /// (strictly below the next entry's). Windows are offsets from the plan's
  /// `now`, so a staircase is time-invariant across frozen-clock dry runs.
  struct MinStep {
    Duration window;
    CoreCount min_free;

    bool operator==(const MinStep& other) const {
      return window == other.window && min_free == other.min_free;
    }
  };

  /// Prefix-minimum staircase of the current plan profile from `now`:
  /// strictly decreasing min_free, strictly increasing window; the last
  /// entry covers every longer window.
  std::vector<MinStep> staircase;
  /// Version of `staircase`. Staircase contents are interned: rebuilding
  /// a staircase seen before (the steady-state case — each planned
  /// backfill cycles the walk through the same sequence every iteration)
  /// re-yields its original version, so verdicts stay valid across
  /// iterations, not just within one walk. 0 means "never built" (verdict
  /// slots are zero-initialized, so they never match a live version).
  std::uint64_t version = 0;
  /// Per-job verdict, indexed by slot() (dense job id minus the
  /// retirement base): (version << 1) | fits. Valid iff the stored
  /// version matches the current staircase version. Two slots per
  /// job (most-recent first): a system alternating between two states —
  /// a node flapping down/up, an oscillating base load — alternates
  /// between two staircase versions, and a single slot would miss on
  /// every pass exactly in the churn case the cache exists for.
  std::vector<std::uint64_t> verdicts;
  std::vector<std::uint64_t> verdicts_prev;

  /// Dense index of job `id` under the current retirement base.
  [[nodiscard]] std::size_t slot(std::uint64_t id) const {
    return static_cast<std::size_t>(id - base_);
  }

  /// Drops verdict slots below `min_live_id` (amortized by a chunked
  /// front-erase), bounding the arrays to O(live id range) during replays
  /// with job retirement. Ids below the floor must never be judged again.
  void advance_base(std::uint64_t min_live_id);
  [[nodiscard]] std::uint64_t base() const { return base_; }

  // Per-iteration effectiveness counters (reset by begin_iteration; summed
  // into IterationStats by the scheduler).
  std::uint64_t hits = 0;       ///< verdicts reused in O(1)
  std::uint64_t replanned = 0;  ///< jobs planned or re-judged this pass

  /// Rebuilds the staircase from `profile` (as seen from `now`) into
  /// scratch, compares with the stored one and bumps the version only on a
  /// real change.
  ///
  /// The rebuild truncates past the largest window any verdict has asked
  /// for (`note_window`): plan changes beyond that horizon — a rotating
  /// set of far-future StartLater reservations is the canonical case —
  /// cannot alter any tail verdict, so they must not cycle the version.
  /// Until the first note_window the staircase is kept in full.
  void refresh(const AvailabilityProfile& profile, Time now);

  /// Min free cores over [now, now + window); window > 0. Exact only for
  /// window <= valid_up_to_us (callers with a longer window must consult
  /// the plan profile directly, then note_window so the next refresh
  /// extends the horizon).
  [[nodiscard]] CoreCount min_for(Duration window) const;

  /// Records a queried window; widens the truncation horizon of future
  /// refreshes.
  void note_window(std::int64_t window_us) {
    if (window_us > max_window_us_) max_window_us_ = window_us;
  }

  /// Largest window (µs) the current staircase answers exactly.
  [[nodiscard]] std::int64_t valid_up_to_us() const { return valid_up_to_us_; }

  void reset_counters() {
    hits = 0;
    replanned = 0;
  }

 private:
  /// Interned staircases get stable versions; bounded — overflow clears
  /// the table and versions simply keep growing (never reused).
  static constexpr std::size_t kMaxInterned = 64;

  struct Interned {
    std::vector<MinStep> stairs;
    std::uint64_t version;
  };

  std::vector<MinStep> scratch_;
  std::vector<Interned> interned_;
  std::uint64_t next_version_ = 0;
  std::uint64_t base_ = 0;  ///< lowest job id verdict slot 0 maps to
  std::int64_t max_window_us_ = 0;  ///< largest window ever queried
  /// Horizon of the *current* staircase (see valid_up_to_us()).
  std::int64_t valid_up_to_us_ = std::numeric_limits<std::int64_t>::max();
};

}  // namespace dbs::core
