// The negotiation extension (the paper's stated future work, §III-C): when
// a dynamic request cannot be served, the scheduler estimates when the
// requested cores could become available, so an application that opted in
// with a timeout can decide whether to wait.
#pragma once

#include <optional>

#include "common/time.hpp"
#include "core/availability_profile.hpp"
#include "rms/job.hpp"

namespace dbs::core {

/// Earliest time `extra_cores` could be continuously free for the remainder
/// of `owner`'s walltime, according to `physical` (running jobs only).
/// nullopt when that can never happen (request larger than the machine).
[[nodiscard]] std::optional<Time> estimate_availability(
    const AvailabilityProfile& physical, const rms::Job& owner,
    CoreCount extra_cores, Time now);

}  // namespace dbs::core
