// The reserved dynamic partition (§II-B): a block of cores only dynamic
// requests may use. Static planning sees a cluster shrunk by the partition;
// dynamic feasibility sees the whole machine.
#pragma once

#include "common/types.hpp"
#include "core/availability_profile.hpp"

namespace dbs::core {

/// Removes the partition from a static-planning profile (clamped: cores of
/// the partition already used by running dynamic allocations are not
/// double-counted).
void reserve_dynamic_partition(AvailabilityProfile& planning,
                               CoreCount partition_cores);

}  // namespace dbs::core
