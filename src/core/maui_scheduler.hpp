// The extended Maui scheduler (paper Algorithm 2). Each iteration:
//
//   1.  obtain resource / workload information from the server
//   2.  update statistics (fairshare usage, DFS interval roll)
//   3.  select + prioritize eligible static jobs (priority factors) and
//       dynamic requests (FIFO)
//   4.  schedule static jobs WITHOUT starting them, classifying StartNow /
//       StartLater up to max(ReservationDepth, ReservationDelayDepth)
//   5.  for every dynamic request: try idle resources (optionally preempt),
//       measure delays to the protected jobs, consult the DFS policies,
//       then grant or reject
//   6.  schedule + start static jobs in priority order (reservations up to
//       ReservationDepth) and backfill the rest
//
// With no dynamic requests pending this degenerates exactly into the
// classic Maui iteration (Algorithm 1).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/availability_profile.hpp"
#include "core/backfill.hpp"
#include "core/delay_measurement.hpp"
#include "core/dfs_engine.hpp"
#include "core/fairshare.hpp"
#include "core/priority.hpp"
#include "core/scheduler_config.hpp"
#include "rms/server.hpp"

namespace dbs::exec {
class ThreadPool;
}

namespace dbs::core {

/// Counters describing one scheduling iteration (for tests and metrics).
struct IterationStats {
  Time at;
  std::size_t eligible_static = 0;
  std::size_t eligible_dynamic = 0;
  std::size_t started = 0;
  std::size_t backfilled = 0;
  std::size_t reservations = 0;
  std::size_t dyn_granted = 0;
  std::size_t dyn_rejected = 0;
  std::size_t dyn_deferred = 0;  ///< negotiation: request kept queued
  std::size_t preempted = 0;
  std::size_t malleable_shrinks = 0;
  /// Planned StartNow jobs defeated by node-level fragmentation.
  std::size_t start_failed = 0;
  /// Wall-clock cost of the iteration in microseconds (host time, not
  /// simulated time).
  double wall_us = 0.0;
};

class MauiScheduler {
 public:
  MauiScheduler(rms::Server& server, SchedulerConfig config);

  MauiScheduler(const MauiScheduler&) = delete;
  MauiScheduler& operator=(const MauiScheduler&) = delete;

  /// Registers the server wake-up trigger and the poll timer. Call once.
  void attach();

  /// Runs one scheduling iteration now.
  void iterate();

  [[nodiscard]] const IterationStats& last_stats() const { return last_; }
  /// Retained per-iteration history (capped at `kHistoryCap` entries; the
  /// oldest iterations are dropped first).
  [[nodiscard]] const std::vector<IterationStats>& history() const {
    return history_;
  }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }
  [[nodiscard]] const DfsEngine& dfs() const { return dfs_; }
  [[nodiscard]] const Fairshare& fairshare() const { return fairshare_; }

  /// Publishes iteration, classification and per-request decision-audit
  /// events; also forwarded to the DFS engine. nullptr detaches.
  void set_tracer(obs::Tracer* tracer);
  /// Iteration counters/histograms and queue gauges land here (defaults to
  /// the global registry); also forwarded to the DFS engine.
  void set_registry(obs::Registry* registry);

  /// Iterations retained in history().
  static constexpr std::size_t kHistoryCap = 4096;

  /// Physical availability: capacity minus running jobs (to each job's
  /// walltime end) minus down-node capacity. Public for tests/benches.
  [[nodiscard]] AvailabilityProfile physical_profile(Time now) const;

  ~MauiScheduler();

 private:
  void update_statistics(Time now);
  [[nodiscard]] std::vector<const rms::Job*> eligible_static_jobs() const;
  /// Speculatively measures a batch of upcoming live dynamic requests
  /// (starting at `begin`) in parallel against the *current* planning
  /// state, filling `measure_slots_`. Returns the exclusive end of the
  /// batch. Only called with measure_threads > 1; results are only
  /// consumed while the planning state they were measured against is
  /// still current, which keeps decisions bit-identical to the serial
  /// path (see iterate()).
  std::size_t speculate_measurements(
      std::size_t begin, const std::vector<const rms::Job*>& prioritized,
      const ReservationTable& baseline, CoreCount physical_free,
      const PlanOptions& opts);
  /// Rebuilds `physical_` in place (storage reused across iterations).
  void rebuild_physical_profile(Time now);
  /// Re-derives `planning_` from `physical_` (partition clamp applied).
  void rebuild_planning_profile();
  void schedule_poll();
  void record_iteration(const IterationStats& stats);

  rms::Server& server_;
  SchedulerConfig config_;
  Fairshare fairshare_;
  PriorityEngine priority_;
  DfsEngine dfs_;
  IterationStats last_;
  std::vector<IterationStats> history_;
  Time last_usage_update_;
  std::uint64_t iterations_ = 0;
  EventId poll_event_ = EventId::invalid();
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_;  ///< never null; defaults to the global one

  // Per-iteration working state, kept as members so the hot path reuses
  // already-allocated storage instead of allocating per event. `physical_`
  // is patched incrementally on grant/shrink/preempt during the
  // dynamic-request loop instead of being rebuilt from the job list.
  AvailabilityProfile physical_;
  AvailabilityProfile planning_;
  Plan baseline_plan_;
  Plan final_plan_;
  std::vector<const rms::Job*> protected_jobs_;
  std::vector<rms::DynRequest> requests_;
  DelayMeasurement measure_;
  MeasureScratch measure_scratch_;
  std::string json_scratch_;

  /// One per-request speculation slot: the hold plus the measurement taken
  /// against the planning state of the current batch. Storage is reused
  /// across batches and iterations, so after warm-up the parallel fan-out
  /// allocates nothing (the _into kernels refill in place).
  struct MeasureSlot {
    bool live = false;  ///< request was live and measured this batch
    DynHold hold;
    DelayMeasurement result;
  };
  // Lazily created pool (measure_threads > 1 only) + per-worker planning
  // scratches; per-request slots indexed like requests_.
  std::unique_ptr<exec::ThreadPool> measure_pool_;
  std::vector<MeasureScratch> worker_scratch_;
  std::vector<MeasureSlot> measure_slots_;
  std::vector<std::size_t> batch_indices_;
};

}  // namespace dbs::core
