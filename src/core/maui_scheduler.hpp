// The extended Maui scheduler (paper Algorithm 2), organized as an
// explicit stage pipeline. Each iteration runs six stages in order over a
// shared IterationContext:
//
//   gather          obtain resource / workload information from the server
//   statistics      update statistics (fairshare usage, DFS interval roll)
//   prioritize      select + prioritize eligible static jobs (priority
//                   factors); dynamic requests stay FIFO
//   classify        schedule static jobs WITHOUT starting them, classifying
//                   StartNow / StartLater up to
//                   max(ReservationDepth, ReservationDelayDepth)
//   admission       for every dynamic request: try idle resources
//                   (optionally shrink/preempt), measure delays to the
//                   protected jobs, consult the DFS policies, then grant or
//                   reject
//   start_backfill  schedule + start static jobs in priority order
//                   (reservations up to ReservationDepth), backfill the rest
//
// Stages emit typed decisions through the context's DecisionApplier rather
// than calling the server directly; dry_run_iteration() runs the same
// pipeline with the applier in dry-run mode to answer "what would the next
// iteration do" without changing any state. With no dynamic requests
// pending the pipeline degenerates exactly into the classic Maui iteration
// (Algorithm 1).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/availability_profile.hpp"
#include "core/dfs_engine.hpp"
#include "core/fairshare.hpp"
#include "core/pipeline/classify_stage.hpp"
#include "core/pipeline/dynamic_admission_stage.hpp"
#include "core/pipeline/gather_stage.hpp"
#include "core/pipeline/prioritize_stage.hpp"
#include "core/pipeline/stage.hpp"
#include "core/pipeline/start_backfill_stage.hpp"
#include "core/pipeline/statistics_stage.hpp"
#include "core/physical_profile.hpp"
#include "core/priority.hpp"
#include "core/scheduler_config.hpp"
#include "obs/sinks.hpp"
#include "rms/server.hpp"

namespace dbs::core {

/// Fixed-capacity ring of the most recent IterationStats. Appending is O(1)
/// with zero steady-state allocation — unlike a vector front-erase (shifts
/// the whole window) or a deque (allocates a chunk every couple of pushes
/// of this ~200-byte struct). Entries are indexed oldest first.
class IterationHistory {
 public:
  explicit IterationHistory(std::size_t capacity) : capacity_(capacity) {}

  void push(const IterationStats& stats) {
    if (items_.size() < capacity_) {
      items_.push_back(stats);
      return;
    }
    items_[head_] = stats;
    head_ = (head_ + 1) % capacity_;
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }
  /// The i-th oldest retained entry.
  [[nodiscard]] const IterationStats& operator[](std::size_t i) const {
    return items_[(head_ + i) % items_.size()];
  }
  [[nodiscard]] const IterationStats& back() const {
    return (*this)[items_.size() - 1];
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< index of the oldest entry once full
  std::vector<IterationStats> items_;
};

class MauiScheduler {
 public:
  MauiScheduler(rms::Server& server, SchedulerConfig config);

  MauiScheduler(const MauiScheduler&) = delete;
  MauiScheduler& operator=(const MauiScheduler&) = delete;

  /// Registers the server wake-up trigger and the poll timer. Call once.
  void attach();

  /// Runs one scheduling iteration now.
  void iterate();

  /// Runs the full pipeline in dry-run mode: decisions are recorded but
  /// not applied, so no job starts, no request is granted or rejected, no
  /// DFS budget is consumed, and no trace/metrics iteration is recorded.
  /// Returns the decision stream the next live iteration would open with.
  [[nodiscard]] std::vector<rms::Decision> dry_run_iteration();

  [[nodiscard]] const IterationStats& last_stats() const { return last_; }
  /// Retained per-iteration history (capped at `kHistoryCap` entries; the
  /// oldest iterations are dropped first).
  [[nodiscard]] const IterationHistory& history() const { return history_; }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }
  [[nodiscard]] const SchedulerConfig& config() const { return config_; }
  [[nodiscard]] const DfsEngine& dfs() const { return dfs_; }
  [[nodiscard]] const Fairshare& fairshare() const { return fairshare_; }

  /// Observability sinks: the tracer (nullable — null disables tracing)
  /// receives iteration, classification and per-request decision-audit
  /// events; the registry (null selects the global one) receives iteration
  /// counters/histograms, per-stage timings and queue gauges. Forwarded to
  /// the DFS engine.
  void set_sinks(const obs::Sinks& sinks);
  [[nodiscard]] const obs::Sinks& sinks() const { return ctx_.sinks; }

  /// Iterations retained in history().
  static constexpr std::size_t kHistoryCap = 4096;

  /// Physical availability: capacity minus running jobs (to each job's
  /// walltime end) minus down-node capacity. Public for tests/benches.
  [[nodiscard]] AvailabilityProfile physical_profile(Time now) const;

  // --- durable-state surface (svc::StateStore) ----------------------------
  /// Scheduler-side service state: everything an iteration builds on that
  /// is not derivable from the server. Per-iteration planning artifacts
  /// (reservation tables, plan/priority caches, availability profiles) are
  /// deliberately absent — they are rebuilt from the restored server state
  /// on the first post-recovery iteration.
  struct ServiceState {
    std::uint64_t iterations = 0;
    Time last_usage_update;
    bool poll_pending = false;
    Time poll_at;
    Fairshare::State fairshare;
    DfsEngine::State dfs;

    [[nodiscard]] bool operator==(const ServiceState&) const = default;
  };
  [[nodiscard]] ServiceState save_service_state() const;
  /// Restores into a freshly constructed scheduler with the same config:
  /// fairshare/DFS ledgers and the usage watermark are loaded, the poll
  /// timer re-armed at its recorded absolute time, and the incremental
  /// physical profile rebuilt from the restored server.
  void restore_service_state(const ServiceState& s);

  /// Per-decision write-ahead hook, forwarded to the DecisionApplier:
  /// called once per executed (never dry-run) decision, in emission order.
  void set_decision_sink(std::function<void(const rms::Decision&)> sink) {
    ctx_.applier.set_decision_sink(std::move(sink));
  }

  ~MauiScheduler();

 private:
  /// Sheds per-id cache slots below the server's lowest live job id
  /// (no-op until job retirement advances that floor).
  void advance_cache_base();
  /// Runs the six stages in order, accumulating per-stage tick deltas into
  /// ctx_.stats.stage_wall_us.
  void run_pipeline();
  void schedule_poll();
  void record_iteration(const IterationStats& stats);

  rms::Server& server_;
  SchedulerConfig config_;
  Fairshare fairshare_;
  PriorityEngine priority_;
  DfsEngine dfs_;
  /// Persistent physical profile, kept in sync via server observation;
  /// registered only when config_.incremental_planning (declared before
  /// env_, which points at it).
  PhysicalProfileTracker tracker_;
  IterationStats last_;
  IterationHistory history_{kHistoryCap};
  std::uint64_t iterations_ = 0;
  EventId poll_event_ = EventId::invalid();
  Time poll_at_;  ///< absolute fire time of poll_event_ when valid

  IterationContext ctx_;
  PipelineEnv env_;
  GatherStage gather_;
  StatisticsStage statistics_;
  PrioritizeStage prioritize_;
  ClassifyStage classify_;
  DynamicAdmissionStage admission_;
  StartBackfillStage start_backfill_;
  /// The pipeline, in Algorithm-2 order; indexes match stage_names().
  std::array<Stage*, kStageCount> stages_;
  /// Registry instrument handles resolved once per sink change instead of
  /// by name (mutex + string hash) every iteration — instrument references
  /// are stable for a registry's lifetime. Invalidated by set_sinks.
  struct Instruments {
    obs::Counter* iterations = nullptr;  ///< null == not yet resolved
    obs::Counter* started = nullptr;
    obs::Counter* backfilled = nullptr;
    obs::Counter* start_failed = nullptr;
    obs::Counter* dyn_granted = nullptr;
    obs::Counter* dyn_rejected = nullptr;
    obs::Counter* dyn_deferred = nullptr;
    obs::Counter* preemptions = nullptr;
    obs::Counter* malleable_shrinks = nullptr;
    obs::Counter* replanned_jobs = nullptr;
    obs::Counter* plan_cache_hits = nullptr;
    obs::Histogram* iteration_us = nullptr;
    std::array<obs::Histogram*, kStageCount> stage_us{};
    obs::Gauge* queue_length = nullptr;
    obs::Gauge* dyn_queue_length = nullptr;
    obs::Gauge* free_cores = nullptr;
  };
  Instruments instruments_;
  /// Microseconds per CycleTimer tick, resolved at construction so span
  /// conversion in run_pipeline is a bare multiply.
  double tick_to_us_ = 0.0;
};

}  // namespace dbs::core
