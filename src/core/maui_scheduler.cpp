#include "core/maui_scheduler.hpp"

#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/cycle_timer.hpp"
#include "obs/recorder/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace dbs::core {

namespace {

/// Fixed buckets for the iteration wall-clock histograms (microseconds);
/// shared by the whole-iteration and per-stage distributions.
const std::vector<double>& iteration_us_bounds() {
  static const std::vector<double> bounds{10,    25,    50,     100,   250,
                                          500,   1000,  2500,   5000,  10000,
                                          25000, 50000, 100000, 500000};
  return bounds;
}

}  // namespace

MauiScheduler::MauiScheduler(rms::Server& server, SchedulerConfig config)
    : server_(server),
      config_(std::move(config)),
      fairshare_(config_.fairshare, server.simulator().now()),
      priority_(config_.weights, config_.cred_priorities, &fairshare_),
      dfs_(config_.dfs, server.simulator().now()),
      tracker_(server),
      ctx_(server),
      env_{server,    config_, fairshare_,
           priority_, dfs_,
           config_.incremental_planning ? &tracker_ : nullptr},
      statistics_(server.simulator().now()),
      stages_{&gather_, &statistics_, &prioritize_,
              &classify_, &admission_, &start_backfill_} {
  config_.validate();
  // The tracker only observes server events when incremental planning is
  // on; otherwise the gather stage rebuilds from scratch and per-event
  // patching would be pure overhead.
  if (config_.incremental_planning) server_.add_observer(&tracker_);
  server_.set_allocation_policy(config_.allocation_policy);
  ctx_.sinks.registry = &obs::Registry::global();
  // Calibrate the stage timer outside the first iteration's timed window.
  CycleTimer::warm_up();
  tick_to_us_ = CycleTimer::to_micros(1);
}

MauiScheduler::~MauiScheduler() {
  // The tracker dies with the scheduler; the server may outlive it.
  if (config_.incremental_planning) server_.remove_observer(&tracker_);
}

void MauiScheduler::set_sinks(const obs::Sinks& sinks) {
  ctx_.sinks.tracer = sinks.tracer;
  ctx_.sinks.registry = &sinks.registry_or_global();
  ctx_.sinks.recorder = sinks.recorder;
  dfs_.set_sinks(sinks);
  instruments_ = Instruments{};
}

void MauiScheduler::attach() {
  server_.set_scheduler_trigger([this] { iterate(); });
}

AvailabilityProfile MauiScheduler::physical_profile(Time now) const {
  const cluster::Cluster& cl = server_.cluster();
  AvailabilityProfile profile(now, cl.total_cores());
  for (const rms::Job* job : server_.jobs().running())
    profile.subtract(now, hold_end_for(*job, now), job->allocated_cores());
  // Down/offline nodes: their unused cores are unavailable indefinitely.
  for (const cluster::Node& node : cl.nodes())
    if (!node.available())
      profile.subtract(now, Time::far_future(),
                       node.total_cores() - node.used_cores());
  return profile;
}

void MauiScheduler::advance_cache_base() {
  // With job retirement the server forgets ids below min_live_id; the
  // dense per-id caches can shed those slots. The floor is the minimum
  // over ALL live jobs (queued, running or finished-but-not-yet-retired),
  // so a preempted job requeued under its old id can never fall below it.
  const std::uint64_t floor = server_.jobs().min_live_id();
  ctx_.priority_cache.advance_base(floor);
  ctx_.classify_cache.advance_base(floor);
  ctx_.start_cache.advance_base(floor);
}

void MauiScheduler::run_pipeline() {
  if (!config_.stage_timing) {
    for (Stage* stage : stages_) stage->run(env_, ctx_);
    return;
  }
  // TSC spans, not steady_clock: even so, seven clock reads per iteration
  // are measurable next to sub-microsecond iterations, which is why the
  // whole breakdown sits behind config_.stage_timing. Raw tick deltas are
  // recorded in the loop; the µs conversion (a bare multiply with the
  // ratio calibrated at construction) happens after the last span.
  std::array<std::uint64_t, kStageCount> ticks;
  std::uint64_t span_begin = CycleTimer::now();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stages_[i]->run(env_, ctx_);
    const std::uint64_t span_end = CycleTimer::now();
    ticks[i] = span_end - span_begin;
    span_begin = span_end;
  }
  for (std::size_t i = 0; i < kStageCount; ++i)
    ctx_.stats.stage_wall_us[i] = static_cast<double>(ticks[i]) * tick_to_us_;
}

void MauiScheduler::iterate() {
  const Time now = server_.simulator().now();
  const auto wall_begin = std::chrono::steady_clock::now();
  ++iterations_;
  ctx_.begin_iteration(now, iterations_, /*dry_run=*/false);
  advance_cache_base();

  DBS_TRACE_EVENT(ctx_.sinks.tracer,
                  obs::TraceEvent(now, "sched", "iteration_begin")
                      .field("iteration", iterations_)
                      .field("queued", server_.jobs().queued_count())
                      .field("running", server_.jobs().running_count())
                      .field("dyn_requests", server_.jobs().dyn_requests().size())
                      .field("free_cores", server_.cluster().free_cores()));

  run_pipeline();

  // Applied iterations feed the flight recorder; dry runs never do (they
  // would duplicate the stream the next live iteration records).
  if (ctx_.sinks.recorder != nullptr && !ctx_.applier.decisions().empty())
    ctx_.sinks.recorder->record_decisions(now, iterations_,
                                          ctx_.applier.decisions());

  const auto wall_end = std::chrono::steady_clock::now();
  IterationStats& stats = ctx_.stats;
  stats.wall_us =
      std::chrono::duration<double, std::micro>(wall_end - wall_begin).count();
  stats.replanned_jobs =
      ctx_.classify_cache.replanned + ctx_.start_cache.replanned;
  stats.cache_hits = ctx_.classify_cache.hits + ctx_.start_cache.hits;

  if (obs::Tracer* tracer = ctx_.sinks.tracer;
      tracer != nullptr && tracer->enabled()) {
    obs::TraceEvent ev(now, "sched", "iteration");
    ev.field("iteration", iterations_)
        .field("eligible_static", stats.eligible_static)
        .field("eligible_dynamic", stats.eligible_dynamic)
        .field("started", stats.started)
        .field("backfilled", stats.backfilled)
        .field("reservations", stats.reservations)
        .field("dyn_granted", stats.dyn_granted)
        .field("dyn_rejected", stats.dyn_rejected)
        .field("dyn_deferred", stats.dyn_deferred)
        .field("preempted", stats.preempted)
        .field("start_failed", stats.start_failed)
        .field("replanned_jobs", stats.replanned_jobs)
        .field("cache_hits", stats.cache_hits)
        .field("wall_us", stats.wall_us);
    if (config_.stage_timing) {
      for (std::size_t i = 0; i < kStageCount; ++i)
        ev.field(std::string("wall_us_") + std::string(stage_names()[i]),
                 stats.stage_wall_us[i]);
    }
    tracer->emit(ev);
  }

  record_iteration(stats);
  last_ = stats;
  schedule_poll();
}

std::vector<rms::Decision> MauiScheduler::dry_run_iteration() {
  // Same pipeline, applier in dry-run: nothing is applied, no DFS budget is
  // consumed, no iteration is recorded and the poll timer is untouched.
  // Within the pass, decisions still build on each other (a dry grant
  // shifts what later requests are measured against), so the stream is a
  // coherent what-if of the next live iteration.
  ctx_.begin_iteration(server_.simulator().now(), iterations_ + 1,
                       /*dry_run=*/true);
  advance_cache_base();
  run_pipeline();
  return ctx_.applier.decisions();
}

void MauiScheduler::record_iteration(const IterationStats& stats) {
  history_.push(stats);

  // Resolve instrument handles once per sink change; every iteration after
  // that is bare pointer updates. The per-stage histogram names
  // deliberately contain "iteration_us": like the whole-iteration
  // histogram they record host time, and every determinism filter that
  // strips host-dependent metrics by that needle covers them too.
  if (instruments_.iterations == nullptr) {
    obs::Registry& registry = *ctx_.sinks.registry;
    instruments_.iterations = &registry.counter("scheduler.iterations");
    instruments_.started = &registry.counter("scheduler.started");
    instruments_.backfilled = &registry.counter("scheduler.backfilled");
    instruments_.start_failed = &registry.counter("scheduler.start_failed");
    instruments_.dyn_granted = &registry.counter("scheduler.dyn_granted");
    instruments_.dyn_rejected = &registry.counter("scheduler.dyn_rejected");
    instruments_.dyn_deferred = &registry.counter("scheduler.dyn_deferred");
    instruments_.preemptions = &registry.counter("scheduler.preemptions");
    instruments_.malleable_shrinks =
        &registry.counter("scheduler.malleable_shrinks");
    instruments_.replanned_jobs =
        &registry.counter("scheduler.replanned_jobs");
    instruments_.plan_cache_hits =
        &registry.counter("scheduler.plan_cache_hits");
    instruments_.iteration_us =
        &registry.histogram("scheduler.iteration_us", iteration_us_bounds());
    if (config_.stage_timing)
      for (std::size_t i = 0; i < kStageCount; ++i)
        instruments_.stage_us[i] = &registry.histogram(
            std::string("scheduler.stage_iteration_us.") +
                std::string(stage_names()[i]),
            iteration_us_bounds());
    instruments_.queue_length = &registry.gauge("scheduler.queue_length");
    instruments_.dyn_queue_length =
        &registry.gauge("scheduler.dyn_queue_length");
    instruments_.free_cores = &registry.gauge("cluster.free_cores");
  }

  instruments_.iterations->add();
  instruments_.started->add(stats.started);
  instruments_.backfilled->add(stats.backfilled);
  instruments_.start_failed->add(stats.start_failed);
  instruments_.dyn_granted->add(stats.dyn_granted);
  instruments_.dyn_rejected->add(stats.dyn_rejected);
  instruments_.dyn_deferred->add(stats.dyn_deferred);
  instruments_.preemptions->add(stats.preempted);
  instruments_.malleable_shrinks->add(stats.malleable_shrinks);
  instruments_.replanned_jobs->add(stats.replanned_jobs);
  instruments_.plan_cache_hits->add(stats.cache_hits);
  instruments_.iteration_us->observe(stats.wall_us);
  if (config_.stage_timing)
    for (std::size_t i = 0; i < kStageCount; ++i)
      instruments_.stage_us[i]->observe(stats.stage_wall_us[i]);
  instruments_.queue_length->set(
      static_cast<double>(server_.jobs().queued_count()));
  instruments_.dyn_queue_length->set(
      static_cast<double>(server_.jobs().dyn_requests().size()));
  instruments_.free_cores->set(
      static_cast<double>(server_.cluster().free_cores()));
}

void MauiScheduler::schedule_poll() {
  if (poll_event_.valid()) {
    server_.simulator().cancel(poll_event_);
    poll_event_ = EventId::invalid();
  }
  const bool work_left = server_.jobs().has_queued() ||
                         server_.jobs().has_running() ||
                         !server_.jobs().dyn_requests().empty();
  if (!work_left) return;
  poll_at_ = server_.simulator().now() + config_.poll_interval;
  poll_event_ = server_.simulator().schedule_after(config_.poll_interval,
                                                   [this] { iterate(); });
}

MauiScheduler::ServiceState MauiScheduler::save_service_state() const {
  ServiceState s;
  s.iterations = iterations_;
  s.last_usage_update = statistics_.last_usage_update();
  s.poll_pending = poll_event_.valid();
  if (s.poll_pending) s.poll_at = poll_at_;
  s.fairshare = fairshare_.save_state();
  s.dfs = dfs_.save_state();
  return s;
}

void MauiScheduler::restore_service_state(const ServiceState& s) {
  iterations_ = s.iterations;
  statistics_.restore(s.last_usage_update);
  fairshare_.restore_state(s.fairshare);
  dfs_.restore_state(s.dfs);
  if (config_.incremental_planning) tracker_.rebuild();
  if (poll_event_.valid()) {
    server_.simulator().cancel(poll_event_);
    poll_event_ = EventId::invalid();
  }
  if (s.poll_pending) {
    DBS_REQUIRE(s.poll_at >= server_.simulator().now(),
                "restored poll in the past");
    poll_at_ = s.poll_at;
    poll_event_ =
        server_.simulator().schedule_at(s.poll_at, [this] { iterate(); });
  }
}

}  // namespace dbs::core
