#include "core/maui_scheduler.hpp"

#include <chrono>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "core/backfill.hpp"
#include "core/delay_measurement.hpp"
#include "core/malleable.hpp"
#include "core/negotiation.hpp"
#include "core/partition.hpp"
#include "core/preemption.hpp"
#include "exec/thread_pool.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace dbs::core {

namespace {

/// Appends a JSON array of the job ids in a reservation-table subset.
void ids_json(const ReservationTable& table, bool start_now, std::string& out) {
  const std::size_t begin = out.size();
  out += '[';
  for (const Reservation& r : table.items()) {
    if (r.start_now != start_now) continue;
    if (out.size() > begin + 1) out += ',';
    out += std::to_string(r.job.value());
  }
  out += ']';
}

void ids_json(const std::vector<const rms::Job*>& jobs, std::string& out) {
  const std::size_t begin = out.size();
  out += '[';
  for (const rms::Job* job : jobs) {
    if (out.size() > begin + 1) out += ',';
    out += std::to_string(job->id().value());
  }
  out += ']';
}

/// Fixed buckets for the iteration wall-clock histogram (microseconds).
const std::vector<double>& iteration_us_bounds() {
  static const std::vector<double> bounds{10,    25,    50,     100,   250,
                                          500,   1000,  2500,   5000,  10000,
                                          25000, 50000, 100000, 500000};
  return bounds;
}

/// Fixed buckets for the delay-measurement depth (protected jobs touched
/// per measured dynamic request).
const std::vector<double>& measure_depth_bounds() {
  static const std::vector<double> bounds{0, 1, 2, 4, 8, 16, 32, 64, 128};
  return bounds;
}

}  // namespace

MauiScheduler::MauiScheduler(rms::Server& server, SchedulerConfig config)
    : server_(server),
      config_(std::move(config)),
      fairshare_(config_.fairshare, server.simulator().now()),
      priority_(config_.weights, config_.cred_priorities, &fairshare_),
      dfs_(config_.dfs, server.simulator().now()),
      last_usage_update_(server.simulator().now()),
      registry_(&obs::Registry::global()) {
  config_.validate();
  server_.set_allocation_policy(config_.allocation_policy);
}

// Out of line for the unique_ptr<exec::ThreadPool> member.
MauiScheduler::~MauiScheduler() = default;

void MauiScheduler::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  dfs_.set_tracer(tracer);
}

void MauiScheduler::set_registry(obs::Registry* registry) {
  DBS_REQUIRE(registry != nullptr, "registry must not be null");
  registry_ = registry;
  dfs_.set_registry(registry);
}

void MauiScheduler::attach() {
  server_.set_scheduler_trigger([this] { iterate(); });
}

void MauiScheduler::update_statistics(Time now) {
  // Charge running jobs' usage since the last update into fairshare.
  const Duration elapsed = now - last_usage_update_;
  if (config_.fairshare.enabled && elapsed > Duration::zero()) {
    for (const rms::Job* job : server_.jobs().running())
      fairshare_.record_usage(
          job->spec().cred,
          static_cast<double>(job->allocated_cores()) * elapsed.as_seconds(),
          now);
  }
  last_usage_update_ = now;
  fairshare_.advance_to(now);
  dfs_.advance_to(now);
}

std::vector<const rms::Job*> MauiScheduler::eligible_static_jobs() const {
  std::vector<const rms::Job*> eligible = server_.jobs().queued();
  // Common path: no per-user cap means every queued job is eligible; the
  // per-user counting map is only built when a cap is configured.
  if (!config_.max_eligible_per_user) return eligible;
  std::unordered_map<std::string, std::size_t> per_user;
  per_user.reserve(eligible.size());
  std::size_t kept = 0;
  for (const rms::Job* job : eligible) {
    std::size_t& count = per_user[job->spec().cred.user];
    if (count >= *config_.max_eligible_per_user) continue;
    ++count;
    eligible[kept++] = job;
  }
  eligible.resize(kept);
  return eligible;
}

AvailabilityProfile MauiScheduler::physical_profile(Time now) const {
  const cluster::Cluster& cl = server_.cluster();
  AvailabilityProfile profile(now, cl.total_cores());
  for (const rms::Job* job : server_.jobs().running()) {
    const Time hold_end = max(job->walltime_end(), now + Duration::micros(1));
    profile.subtract(now, hold_end, job->allocated_cores());
  }
  // Down/offline nodes: their unused cores are unavailable indefinitely.
  for (const cluster::Node& node : cl.nodes())
    if (!node.available())
      profile.subtract(now, Time::far_future(),
                       node.total_cores() - node.used_cores());
  return profile;
}

void MauiScheduler::rebuild_physical_profile(Time now) {
  const cluster::Cluster& cl = server_.cluster();
  physical_.reset(now, cl.total_cores());
  for (const rms::Job* job : server_.jobs().running()) {
    const Time hold_end = max(job->walltime_end(), now + Duration::micros(1));
    physical_.subtract(now, hold_end, job->allocated_cores());
  }
  for (const cluster::Node& node : cl.nodes())
    if (!node.available())
      physical_.subtract(now, Time::far_future(),
                         node.total_cores() - node.used_cores());
}

void MauiScheduler::rebuild_planning_profile() {
  planning_ = physical_;
  reserve_dynamic_partition(planning_, config_.dynamic_partition_cores);
}

std::size_t MauiScheduler::speculate_measurements(
    std::size_t begin, const std::vector<const rms::Job*>& prioritized,
    const ReservationTable& baseline, CoreCount physical_free,
    const PlanOptions& opts) {
  if (!measure_pool_)
    measure_pool_ = std::make_unique<exec::ThreadPool>(config_.measure_threads);
  if (worker_scratch_.size() < measure_pool_->worker_count())
    worker_scratch_.resize(measure_pool_->worker_count());
  if (measure_slots_.size() < requests_.size())
    measure_slots_.resize(requests_.size());

  // Cap the batch: an early grant/steal/preemption invalidates everything
  // measured after it, so bounding the fan-out bounds the wasted work when
  // the grant rate is high.
  const std::size_t cap = config_.measure_threads * 4;
  batch_indices_.clear();
  std::size_t end = begin;
  for (; end < requests_.size() && batch_indices_.size() < cap; ++end) {
    MeasureSlot& slot = measure_slots_[end];
    slot.live = false;
    const rms::DynRequest& req = requests_[end];
    // Same staleness test the serial loop applies; stale entries get no
    // slot and the consume step skips them the same way.
    const rms::DynRequest* live = server_.jobs().dyn_request_of(req.job);
    if (live == nullptr || live->id != req.id) continue;
    slot.hold = make_hold(server_.job(req.job), req, opts.now);
    slot.live = true;
    batch_indices_.push_back(end);
  }

  // Workers only read the shared planning state (baseline / planning_ /
  // protected_jobs_) and write their own slot + per-worker scratch. The
  // tracer stays detached here; "measure" events are replayed in FIFO
  // order by the consume step so the trace is bit-identical to serial.
  measure_pool_->parallel_for(
      batch_indices_.size(), [&](std::size_t task, std::size_t worker) {
        MeasureSlot& slot = measure_slots_[batch_indices_[task]];
        measure_dynamic_request_into(slot.hold, prioritized, protected_jobs_,
                                     baseline, planning_, physical_free, opts,
                                     /*tracer=*/nullptr,
                                     worker_scratch_[worker], slot.result);
      });
  return end;
}

void MauiScheduler::iterate() {
  const Time now = server_.simulator().now();
  const auto wall_begin = std::chrono::steady_clock::now();
  ++iterations_;
  IterationStats stats;
  stats.at = now;

  DBS_TRACE_EVENT(tracer_,
                  obs::TraceEvent(now, "sched", "iteration_begin")
                      .field("iteration", iterations_)
                      .field("queued", server_.jobs().queued().size())
                      .field("running", server_.jobs().running().size())
                      .field("dyn_requests", server_.jobs().dyn_requests().size())
                      .field("free_cores", server_.cluster().free_cores()));

  // Steps 2-5: resource/workload info + statistics.
  update_statistics(now);

  // Steps 6-9: eligibility and prioritization. Dynamic requests are served
  // in FIFO order (the server's queue order).
  std::vector<const rms::Job*> prioritized =
      priority_.prioritize(eligible_static_jobs(), now);
  stats.eligible_static = prioritized.size();

  bool drain = false;
  for (const rms::Job* job : prioritized)
    drain = drain || job->spec().exclusive_priority;

  // Built once; afterwards patched in place on every state change (grant,
  // malleable shrink, preemption) instead of being rebuilt from the whole
  // running set.
  rebuild_physical_profile(now);
  CoreCount physical_free = server_.cluster().free_cores();
  rebuild_planning_profile();

  // Step 10: plan static jobs without starting them (StartNow/StartLater),
  // creating delay-measurement reservations up to
  // max(ReservationDepth, ReservationDelayDepth).
  const PlanOptions measure_opts{now, config_.delay_plan_depth(),
                                 config_.enable_backfill && !drain, drain};
  plan_jobs_into(prioritized, planning_, measure_opts, baseline_plan_);
  ReservationTable& baseline = baseline_plan_.table;
  // The protected set (StartNow + first ReservationDelayDepth StartLater,
  // Fig. 5) is fixed by this step-10 classification for the whole
  // iteration, even as grants shift later plans.
  protected_subset_into(prioritized, baseline, config_.reservation_delay_depth,
                        protected_jobs_);

  // Step-10 audit record: the StartNow / StartLater split and the protected
  // set the fairness policies will judge this iteration's requests against.
  if (tracer_ != nullptr && tracer_->enabled()) {
    obs::TraceEvent ev(now, "sched", "classify");
    ev.field("iteration", iterations_);
    json_scratch_.clear();
    ids_json(baseline, true, json_scratch_);
    ev.field_json("start_now", json_scratch_);
    json_scratch_.clear();
    ids_json(baseline, false, json_scratch_);
    ev.field_json("start_later", json_scratch_);
    json_scratch_.clear();
    ids_json(protected_jobs_, json_scratch_);
    ev.field_json("protected", json_scratch_);
    tracer_->emit(ev);
  }

  // Steps 11-24: process dynamic requests in FIFO order.
  requests_.assign(server_.jobs().dyn_requests().begin(),
                   server_.jobs().dyn_requests().end());
  stats.eligible_dynamic = requests_.size();

  // With measure_threads > 1 the expensive what-if measurements of a batch
  // of upcoming requests are fanned across the thread pool against the
  // *current* planning state; consumption stays strictly FIFO. Any state
  // change while consuming (grant, malleable steal, preemption) truncates
  // the batch — the not-yet-consumed speculative results were measured
  // against a state that no longer exists and are discarded, then
  // re-measured. A rejection/deferral mutates only the request's own
  // job/queue entry, never the planning state, so it keeps the batch
  // valid. Consumed results are therefore exactly the measurements the
  // serial loop would have produced: decisions, trace events and DFS
  // verdicts are bit-identical at every thread count.
  const bool parallel_measure =
      config_.measure_threads > 1 && requests_.size() > 1;
  std::size_t next = 0;
  std::size_t spec_end = 0;
  while (next < requests_.size()) {
    if (parallel_measure && next >= spec_end)
      spec_end = speculate_measurements(next, prioritized, baseline,
                                        physical_free, measure_opts);
    bool state_changed = false;
    while (next < requests_.size() && !state_changed &&
           (!parallel_measure || next < spec_end)) {
    const std::size_t index = next++;
    const rms::DynRequest& req = requests_[index];
    // A preemption earlier in this loop may have requeued the owner and
    // removed its request from the FIFO; skip such stale entries.
    const rms::DynRequest* live = server_.jobs().dyn_request_of(req.job);
    if (live == nullptr || live->id != req.id) continue;
    const rms::Job& owner = server_.job(req.job);
    DBS_ASSERT(owner.state() == rms::JobState::DynQueued,
               "FIFO entry for a job that is not dynqueued");
    // `m` points at the decision-relevant measurement: the speculated slot
    // when one is valid, the serial scratch otherwise (and always after a
    // steal/preemption re-measure).
    DelayMeasurement* m = &measure_;
    DynHold hold;
    if (parallel_measure) {
      MeasureSlot& slot = measure_slots_[index];
      // Liveness cannot change between speculation and consumption without
      // a state change, and a state change truncates the batch.
      DBS_ASSERT(slot.live, "live request missing its speculated slot");
      hold = slot.hold;
      m = &slot.result;
      // Workers measured without the tracer; replay the byte-identical
      // "measure" event in FIFO position.
      emit_measure_trace(hold, protected_jobs_.size(), physical_free, *m,
                         measure_opts, tracer_, json_scratch_);
    } else {
      hold = make_hold(owner, req, now);
      measure_dynamic_request_into(hold, prioritized, protected_jobs_,
                                   baseline, planning_, physical_free,
                                   measure_opts, tracer_, measure_scratch_,
                                   measure_);
    }
    registry_->histogram("scheduler.delay_measure_depth", measure_depth_bounds())
        .observe(static_cast<double>(m->delays.size()));

    // Optional §II-B strategy (gentle): free cores by shrinking running
    // malleable jobs toward their minimum — no progress is lost.
    if (!m->feasible && config_.allow_malleable_steal) {
      const std::vector<MalleableShrink> shrinks = plan_malleable_steal(
          server_.jobs().running(), req.extra_cores, physical_free, req.job);
      if (!shrinks.empty()) {
        for (const MalleableShrink& s : shrinks) {
          DBS_TRACE_EVENT(tracer_,
                          obs::TraceEvent(now, "sched", "malleable_steal")
                              .field("for_job", req.job.value())
                              .field("victim", s.job.value())
                              .field("cores", s.cores));
          // Patch the cached physical profile: the victim's hold loses
          // s.cores over its remaining walltime interval.
          const rms::Job& victim = server_.job(s.job);
          const Time victim_end =
              max(victim.walltime_end(), now + Duration::micros(1));
          server_.shrink_job(s.job, s.cores);
          physical_.add(now, victim_end, s.cores);
          ++stats.malleable_shrinks;
        }
        state_changed = true;
        physical_free = server_.cluster().free_cores();
        rebuild_planning_profile();
        plan_jobs_into(prioritized, planning_, measure_opts, baseline_plan_);
        protected_subset_into(prioritized, baseline,
                              config_.reservation_delay_depth, protected_jobs_);
        measure_dynamic_request_into(hold, prioritized, protected_jobs_,
                                     baseline, planning_, physical_free,
                                     measure_opts, tracer_, measure_scratch_,
                                     measure_);
        m = &measure_;
      }
    }

    // Optional §II-B strategy: free cores by preempting backfilled
    // preemptible jobs, then re-measure against the patched state.
    if (!m->feasible && config_.allow_preemption) {
      const std::vector<JobId> victims = select_preemption_victims(
          server_.jobs().running(), req.extra_cores, physical_free, req.job);
      if (!victims.empty()) {
        for (const JobId victim : victims) {
          DBS_TRACE_EVENT(tracer_,
                          obs::TraceEvent(now, "sched", "preempt_for_dyn")
                              .field("for_job", req.job.value())
                              .field("victim", victim.value()));
          // Patch: the victim's entire hold (same interval the profile
          // rebuild would have subtracted) is returned to the pool.
          const rms::Job& victim_job = server_.job(victim);
          const CoreCount victim_cores = victim_job.allocated_cores();
          const Time victim_end =
              max(victim_job.walltime_end(), now + Duration::micros(1));
          server_.preempt(victim);
          physical_.add(now, victim_end, victim_cores);
          ++stats.preempted;
        }
        state_changed = true;
        physical_free = server_.cluster().free_cores();
        rebuild_planning_profile();
        prioritized = priority_.prioritize(eligible_static_jobs(), now);
        plan_jobs_into(prioritized, planning_, measure_opts, baseline_plan_);
        protected_subset_into(prioritized, baseline,
                              config_.reservation_delay_depth, protected_jobs_);
        measure_dynamic_request_into(hold, prioritized, protected_jobs_,
                                     baseline, planning_, physical_free,
                                     measure_opts, tracer_, measure_scratch_,
                                     measure_);
        m = &measure_;
      }
    }

    // Aggregate feasibility is necessary but, with Torque-style chunked
    // placements, not sufficient: the extra cores must also fit the
    // node-level free map.
    const bool placeable =
        m->feasible && server_.cluster().can_allocate_chunked(
                           req.extra_cores, server_.effective_ppn(owner));

    DfsVerdict verdict = DfsVerdict::Allowed;
    if (placeable)
      verdict = dfs_.admit(owner.spec().cred, m->delays);

    const bool granted = placeable && verdict == DfsVerdict::Allowed &&
                         server_.grant_dyn(req.id);
    // The decision audit trail: every grant/reject/defer carries the
    // per-protected-job measured delays, the DFS verdict (naming the
    // violated rule) and the non-DFS reason when resources were the issue.
    std::string_view reason = "granted";
    if (!granted) {
      if (!m->feasible)
        reason = "no-idle-resources";
      else if (!placeable)
        reason = "node-fragmentation";
      else if (verdict != DfsVerdict::Allowed)
        reason = to_string(verdict);
      else
        reason = "allocation-failed";
    }

    if (granted) {
      dfs_.commit(owner.spec().cred, m->delays);
      if (tracer_ != nullptr && tracer_->enabled()) {
        json_scratch_.clear();
        delays_to_json(m->delays, json_scratch_);
        tracer_->emit(obs::TraceEvent(now, "sched", "dyn_grant")
                          .field("job", req.job.value())
                          .field("request", req.id.value())
                          .field("extra_cores", req.extra_cores)
                          .field("verdict", to_string(verdict))
                          .field_json("delays", json_scratch_));
      }
      // Adopt the tentative state: the hold is now real. Swaps keep the
      // measurement's storage alive for the next request (the slot or the
      // serial scratch — whichever produced this decision).
      physical_.subtract(hold.from, hold.until, hold.extra_cores);
      physical_free -= hold.extra_cores;
      std::swap(planning_, m->profile_after);
      std::swap(baseline, m->replanned);
      state_changed = true;
      ++stats.dyn_granted;
    } else {
      DBS_TRACE("dyn request of job " << req.job.value()
                                      << " denied: " << reason);
      const std::optional<Time> hint =
          estimate_availability(physical_, owner, req.extra_cores, now);
      server_.reject_dyn(req.id, hint);
      // With a live negotiation deadline the server keeps the request
      // queued instead of finalizing the rejection.
      const bool deferred = server_.jobs().dyn_request_of(req.job) != nullptr;
      if (tracer_ != nullptr && tracer_->enabled()) {
        json_scratch_.clear();
        delays_to_json(m->delays, json_scratch_);
        tracer_->emit(
            obs::TraceEvent(now, "sched", deferred ? "dyn_defer" : "dyn_reject")
                .field("job", req.job.value())
                .field("request", req.id.value())
                .field("extra_cores", req.extra_cores)
                .field("reason", reason)
                .field("verdict", to_string(verdict))
                .field_json("delays", json_scratch_));
      }
      if (deferred)
        ++stats.dyn_deferred;
      else
        ++stats.dyn_rejected;
    }
    }
    // Discard speculation measured against a state that no longer exists;
    // the outer loop re-fans-out from the next unconsumed request.
    if (state_changed) spec_end = next;
  }

  // Steps 25-26: schedule + start static jobs; reservations only up to
  // ReservationDepth now; backfill the remainder.
  const PlanOptions start_opts{now, config_.reservation_depth,
                               config_.enable_backfill && !drain, drain};
  plan_jobs_into(prioritized, planning_, start_opts, final_plan_);
  for (const Reservation& r : final_plan_.table.items()) {
    if (!r.start_now) {
      ++stats.reservations;
      continue;
    }
    // The aggregate plan can be defeated by node-level fragmentation
    // (chunked placement); the job then simply stays queued and is
    // re-planned next iteration — exactly what a real Maui does when the
    // node allocation it asked Torque for cannot be built.
    if (!server_.start_job(r.job, r.backfilled)) {
      ++stats.start_failed;
      continue;
    }
    dfs_.on_job_started(r.job);
    ++stats.started;
    if (r.backfilled) {
      ++stats.backfilled;
      DBS_TRACE_EVENT(tracer_, obs::TraceEvent(now, "sched", "backfill")
                                   .field("job", r.job.value()));
    }
  }

  const auto wall_end = std::chrono::steady_clock::now();
  stats.wall_us = std::chrono::duration<double, std::micro>(wall_end -
                                                            wall_begin)
                      .count();

  DBS_TRACE_EVENT(tracer_,
                  obs::TraceEvent(now, "sched", "iteration")
                      .field("iteration", iterations_)
                      .field("eligible_static", stats.eligible_static)
                      .field("eligible_dynamic", stats.eligible_dynamic)
                      .field("started", stats.started)
                      .field("backfilled", stats.backfilled)
                      .field("reservations", stats.reservations)
                      .field("dyn_granted", stats.dyn_granted)
                      .field("dyn_rejected", stats.dyn_rejected)
                      .field("dyn_deferred", stats.dyn_deferred)
                      .field("preempted", stats.preempted)
                      .field("start_failed", stats.start_failed)
                      .field("wall_us", stats.wall_us));

  record_iteration(stats);
  last_ = stats;
  schedule_poll();
}

void MauiScheduler::record_iteration(const IterationStats& stats) {
  history_.push_back(stats);
  if (history_.size() > kHistoryCap)
    history_.erase(history_.begin(),
                   history_.begin() +
                       static_cast<std::ptrdiff_t>(history_.size() -
                                                   kHistoryCap));

  registry_->counter("scheduler.iterations").add();
  registry_->counter("scheduler.started").add(stats.started);
  registry_->counter("scheduler.backfilled").add(stats.backfilled);
  registry_->counter("scheduler.start_failed").add(stats.start_failed);
  registry_->counter("scheduler.dyn_granted").add(stats.dyn_granted);
  registry_->counter("scheduler.dyn_rejected").add(stats.dyn_rejected);
  registry_->counter("scheduler.dyn_deferred").add(stats.dyn_deferred);
  registry_->counter("scheduler.preemptions").add(stats.preempted);
  registry_->counter("scheduler.malleable_shrinks")
      .add(stats.malleable_shrinks);
  registry_->histogram("scheduler.iteration_us", iteration_us_bounds())
      .observe(stats.wall_us);
  registry_->gauge("scheduler.queue_length")
      .set(static_cast<double>(server_.jobs().queued().size()));
  registry_->gauge("scheduler.dyn_queue_length")
      .set(static_cast<double>(server_.jobs().dyn_requests().size()));
  registry_->gauge("cluster.free_cores")
      .set(static_cast<double>(server_.cluster().free_cores()));
}

void MauiScheduler::schedule_poll() {
  if (poll_event_.valid()) {
    server_.simulator().cancel(poll_event_);
    poll_event_ = EventId::invalid();
  }
  const bool work_left = !server_.jobs().queued().empty() ||
                         !server_.jobs().running().empty() ||
                         !server_.jobs().dyn_requests().empty();
  if (!work_left) return;
  poll_event_ = server_.simulator().schedule_after(config_.poll_interval,
                                                   [this] { iterate(); });
}

}  // namespace dbs::core
