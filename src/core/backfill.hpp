// The planning engine behind steps 10, 25 and 26 of the extended Maui
// iteration (Algorithm 2): walk eligible jobs in priority order, plan an
// immediate start where possible, create reservations for up to
// `reservation_limit` StartLater jobs, and let lower-priority jobs start
// out of order (backfill) as long as they do not disturb those reservations.
//
// Reservations beyond the limit get nothing and simply wait — a small
// limit is Maui's optimistic (EASY-like) backfilling, a large one is
// conservative backfilling.
#pragma once

#include <cstddef>
#include <vector>

#include "core/availability_profile.hpp"
#include "core/plan_cache.hpp"
#include "core/reservation_table.hpp"
#include "rms/job.hpp"

namespace dbs::core {

struct PlanOptions {
  Time now;
  /// Maximum number of StartLater reservations to create.
  std::size_t reservation_limit = 1;
  /// When false, a job that fits now while a higher-priority job waits is
  /// not planned (it must wait for a regular start).
  bool allow_backfill = true;
  /// ESP Z-job drain: while an exclusive-priority job is queued, no other
  /// job may start; non-exclusive jobs are planned no earlier than the
  /// latest planned exclusive start.
  bool drain_for_exclusive = false;
};

struct Plan {
  /// Planned jobs in priority order. start == options.now means StartNow.
  ReservationTable table;
  /// The base profile with every planned job subtracted.
  AvailabilityProfile profile;
};

/// Plans `prioritized` (highest priority first) onto `base`.
[[nodiscard]] Plan plan_jobs(const std::vector<const rms::Job*>& prioritized,
                             AvailabilityProfile base,
                             const PlanOptions& options);

/// Allocation-free variant for the per-iteration hot path: `out` keeps its
/// storage across calls (the profile is copy-assigned from `base`, reusing
/// capacity; the table is cleared, not reallocated).
///
/// With a `cache`, the tail of the walk — jobs past the reservation budget,
/// which can only backfill-now or wait — is answered from versioned cached
/// verdicts instead of a full earliest_fit per job. The planned set, the
/// table and the profile are byte-identical to the uncached walk.
void plan_jobs_into(const std::vector<const rms::Job*>& prioritized,
                    const AvailabilityProfile& base, const PlanOptions& options,
                    Plan& out, PlanCache* cache = nullptr);

/// Re-plans exactly the given jobs (no depth cutoff, nothing skipped) onto a
/// different base profile; used to measure the delays a tentative dynamic
/// allocation would cause. Jobs must be in priority order.
[[nodiscard]] ReservationTable replan_all(
    const std::vector<const rms::Job*>& jobs, AvailabilityProfile base,
    const PlanOptions& options);

/// Scratch-reusing replan (see plan_jobs_into); the result is `out.table`.
void replan_all_into(const std::vector<const rms::Job*>& jobs,
                     const AvailabilityProfile& base, const PlanOptions& options,
                     Plan& out);

}  // namespace dbs::core
