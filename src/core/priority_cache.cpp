#include "core/priority_cache.hpp"

#include <algorithm>
#include <cstddef>
#include <limits>

#include "common/assert.hpp"
#include "core/priority.hpp"

namespace dbs::core {

namespace {
/// No key has been computed at this sentinel (Time is far smaller).
constexpr std::int64_t kNeverComputed = std::numeric_limits<std::int64_t>::min();
/// advance_base only memmoves once this many slots are reclaimable, so
/// the O(live) erase is amortized O(1) per retired job.
constexpr std::uint64_t kRebaseChunk = 4096;
}  // namespace

void PriorityOrderCache::advance_base(std::uint64_t min_live_id) {
  if (min_live_id <= base_) return;
  const std::uint64_t delta = min_live_id - base_;
  if (delta < kRebaseChunk) return;
  const auto cut = static_cast<std::ptrdiff_t>(
      std::min<std::uint64_t>(delta, key_.size()));
  const auto chop = [cut](auto& v) { v.erase(v.begin(), v.begin() + cut); };
  chop(credtot_);
  chop(credtot_known_);
  chop(key_);
  chop(key_now_us_);
  chop(submit_us_);
  chop(exclusive_);
  chop(job_ptr_);
  chop(eligible_stamp_);
  chop(output_stamp_);
  // Previous-output slots below the floor belong to retired jobs: drop
  // them; survivors shift down with their array entries.
  std::size_t out = 0;
  for (const std::uint32_t slot : prev_ids_)
    if (slot >= delta)
      prev_ids_[out++] = slot - static_cast<std::uint32_t>(delta);
  prev_ids_.resize(out);
  base_ = min_live_id;
}

void PriorityOrderCache::grow_to(std::size_t id) {
  const std::size_t n = id + 1;
  credtot_.resize(n);
  credtot_known_.resize(n);
  key_.resize(n);
  key_now_us_.resize(n, kNeverComputed);
  submit_us_.resize(n);
  exclusive_.resize(n);
  job_ptr_.resize(n);
  eligible_stamp_.resize(n);
  output_stamp_.resize(n);
}

void PriorityOrderCache::order(std::vector<const rms::Job*>& jobs,
                               const PriorityEngine& engine, Time now) {
  ++pass_;
  if (engine_ != &engine) {
    // A different engine may weigh the same job differently: drop every
    // memoized key and credential total.
    engine_ = &engine;
    std::fill(key_now_us_.begin(), key_now_us_.end(), kNeverComputed);
    std::fill(credtot_known_.begin(), credtot_known_.end(), std::uint8_t{0});
  }
  // When the fairshare term is inactive a key is a pure function of the
  // job's immutable spec and `now`, so a key computed at this `now` in an
  // earlier pass is still exact — the common case for dry-run replans and
  // repeated same-instant iterations.
  const bool memo_keys = engine.spec_only();
  const std::int64_t now_us = now.as_micros();

  // Fresh keys for every eligible job — the single pass that touches the
  // Job objects. The credential total is looked up once per job ever
  // (credentials are immutable); the key expression is shared with
  // PriorityEngine::priority bit-for-bit. Everything downstream (adjacency
  // scan, sort, merge) runs on the flat per-id arrays.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (i + 8 < jobs.size()) __builtin_prefetch(jobs[i + 8]);
    const rms::Job* job = jobs[i];
    DBS_ASSERT(job->id().value() >= base_,
               "job id below the retirement floor");
    const auto id = static_cast<std::size_t>(job->id().value() - base_);
    if (key_.size() <= id) grow_to(id);
    if (!memo_keys || key_now_us_[id] != now_us) {
      if (credtot_known_[id] == 0) {
        credtot_[id] = engine.cred_total(job->spec().cred);
        credtot_known_[id] = 1;
        submit_us_[id] = job->submit_time().as_micros();
        exclusive_[id] = job->spec().exclusive_priority ? 1 : 0;
      }
      key_[id] = engine.priority_given_cred(*job, now, credtot_[id]);
      key_now_us_[id] = now_us;
    }
    job_ptr_[id] = job;
    eligible_stamp_[id] = pass_;
  }

  // The previous output restricted to still-eligible jobs keeps its
  // relative order; everything else in `jobs` is an arrival.
  retained_.clear();
  for (const std::uint32_t id : prev_ids_)
    if (eligible_stamp_[id] == pass_) retained_.push_back(id);
  bool retained_sorted = true;
  for (std::size_t i = 1; i < retained_.size() && retained_sorted; ++i)
    retained_sorted = before(retained_[i - 1], retained_[i]);

  if (retained_sorted) {
    arrivals_.clear();
    for (const rms::Job* job : jobs) {
      const auto id = static_cast<std::uint32_t>(job->id().value() - base_);
      if (output_stamp_[id] != pass_ - 1) arrivals_.push_back(id);
    }
    std::sort(arrivals_.begin(), arrivals_.end(),
              [this](std::uint32_t a, std::uint32_t b) { return before(a, b); });
    merged_.resize(jobs.size());
    std::merge(retained_.begin(), retained_.end(), arrivals_.begin(),
               arrivals_.end(), merged_.begin(),
               [this](std::uint32_t a, std::uint32_t b) { return before(a, b); });
    ++merged_passes_;
  } else {
    merged_.resize(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i)
      merged_[i] = static_cast<std::uint32_t>(jobs[i]->id().value() - base_);
    std::sort(merged_.begin(), merged_.end(),
              [this](std::uint32_t a, std::uint32_t b) { return before(a, b); });
    ++resorted_passes_;
  }

  jobs.clear();
  any_exclusive_ = false;
  for (const std::uint32_t id : merged_) {
    jobs.push_back(job_ptr_[id]);
    any_exclusive_ = any_exclusive_ || exclusive_[id] != 0;
  }
  prev_ids_.swap(merged_);
  for (const std::uint32_t id : prev_ids_) output_stamp_[id] = pass_;
}

}  // namespace dbs::core
