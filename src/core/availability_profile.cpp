#include "core/availability_profile.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::core {

AvailabilityProfile::AvailabilityProfile(Time origin, CoreCount capacity)
    : origin_(origin), capacity_(capacity) {
  DBS_REQUIRE(capacity >= 0, "capacity must be non-negative");
  steps_.reserve(16);
  steps_.push_back({origin, capacity});
}

void AvailabilityProfile::reset(Time origin, CoreCount capacity) {
  DBS_REQUIRE(capacity >= 0, "capacity must be non-negative");
  origin_ = origin;
  capacity_ = capacity;
  steps_.clear();
  steps_.push_back({origin, capacity});
}

std::size_t AvailabilityProfile::segment_index(Time t) const {
  DBS_REQUIRE(t >= origin_, "query before profile origin");
  // Planning queries overwhelmingly probe at the origin ("now") or past the
  // final breakpoint; both skip the binary search.
  if (steps_.size() == 1 || t < steps_[1].at) return 0;
  if (t >= steps_.back().at) return steps_.size() - 1;
  // Last breakpoint with at <= t.
  const auto it = std::upper_bound(
      steps_.begin() + 1, steps_.end(), t,
      [](Time v, const Step& s) { return v < s.at; });
  return static_cast<std::size_t>(it - steps_.begin()) - 1;
}

CoreCount AvailabilityProfile::free_at(Time t) const {
  return steps_[segment_index(t)].free;
}

CoreCount AvailabilityProfile::min_free(Time from, Time to) const {
  DBS_REQUIRE(from < to, "empty interval");
  std::size_t i = segment_index(from);
  CoreCount lo = steps_[i].free;
  for (++i; i < steps_.size() && steps_[i].at < to; ++i)
    lo = std::min(lo, steps_[i].free);
  return lo;
}

bool AvailabilityProfile::can_fit(Time at, Duration dur, CoreCount cores) const {
  if (dur <= Duration::zero()) return cores <= free_at(at);
  return min_free(at, at + dur) >= cores;
}

std::size_t AvailabilityProfile::ensure_breakpoint(Time t) {
  if (t <= origin_) return 0;
  const auto it = std::lower_bound(
      steps_.begin(), steps_.end(), t,
      [](const Step& s, Time v) { return s.at < v; });
  const auto idx = static_cast<std::size_t>(it - steps_.begin());
  if (it != steps_.end() && it->at == t) return idx;
  DBS_ASSERT(idx > 0, "profile missing origin breakpoint");
  steps_.insert(it, Step{t, steps_[idx - 1].free});
  return idx;
}

void AvailabilityProfile::subtract(Time from, Time to, CoreCount cores) {
  DBS_REQUIRE(cores >= 0, "negative subtraction");
  if (cores == 0) return;
  from = max(from, origin_);
  if (from >= to) return;
  if (from >= steps_.back().at) {
    // Append-at-end: the interval starts at or after the last breakpoint,
    // so no existing segment is split — two push_backs replace the binary
    // searches and mid-vector inserts of the general path. The resulting
    // breakpoint layout is identical to the general path's.
    const CoreCount tail_free = steps_.back().free;
    if (from > steps_.back().at) steps_.push_back({from, tail_free});
    steps_.push_back({to, tail_free});
    Step& cut = steps_[steps_.size() - 2];
    cut.free -= cores;
    DBS_ASSERT(cut.free >= 0, "profile oversubscribed");
    return;
  }
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);  // to > from: `first` stable
  for (std::size_t i = first; i < last; ++i) {
    steps_[i].free -= cores;
    DBS_ASSERT(steps_[i].free >= 0, "profile oversubscribed");
  }
}

void AvailabilityProfile::add(Time from, Time to, CoreCount cores) {
  DBS_REQUIRE(cores >= 0, "negative addition");
  if (cores == 0) return;
  from = max(from, origin_);
  if (from >= to) return;
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);
  for (std::size_t i = first; i < last; ++i) {
    steps_[i].free += cores;
    DBS_ASSERT(steps_[i].free <= capacity_, "profile exceeds capacity");
  }
}

void AvailabilityProfile::subtract_clamped(Time from, Time to,
                                           CoreCount cores) {
  DBS_REQUIRE(cores >= 0, "negative subtraction");
  if (cores == 0) return;
  from = max(from, origin_);
  if (from >= to) return;
  const std::size_t first = ensure_breakpoint(from);
  const std::size_t last = ensure_breakpoint(to);
  for (std::size_t i = first; i < last; ++i)
    steps_[i].free = std::max<CoreCount>(0, steps_[i].free - cores);
}

Time AvailabilityProfile::earliest_fit(CoreCount cores, Duration dur,
                                       Time not_before) const {
  DBS_REQUIRE(cores > 0, "fit query needs cores");
  DBS_REQUIRE(dur > Duration::zero(), "fit query needs a duration");
  if (cores > capacity_) return Time::far_future();
  // One forward sweep: `candidate` is the start of the current run of
  // segments with >= cores free. A too-low segment pushes the candidate to
  // the segment's end; a run long enough to cover `dur` wins.
  Time candidate = max(not_before, origin_);
  for (std::size_t i = segment_index(candidate); i < steps_.size(); ++i) {
    if (steps_[i].free < cores) {
      if (i + 1 == steps_.size()) return Time::far_future();
      candidate = steps_[i + 1].at;
      continue;
    }
    const bool is_last = i + 1 == steps_.size();
    if (is_last || steps_[i + 1].at >= candidate + dur) return candidate;
  }
  DBS_ASSERT(false, "unreachable: last segment always terminates the sweep");
  return Time::far_future();
}

void AvailabilityProfile::advance_origin(Time now) {
  DBS_REQUIRE(now >= origin_, "origin may only advance");
  if (now == origin_) return;
  const std::size_t covering = segment_index(now);
  if (covering > 0)
    steps_.erase(steps_.begin(),
                 steps_.begin() + static_cast<std::ptrdiff_t>(covering));
  steps_[0].at = now;
  origin_ = now;
}

void AvailabilityProfile::coalesce() {
  std::size_t w = 1;
  for (std::size_t r = 1; r < steps_.size(); ++r)
    if (steps_[r].free != steps_[w - 1].free) steps_[w++] = steps_[r];
  steps_.resize(w);
}

std::vector<std::pair<Time, CoreCount>> AvailabilityProfile::breakpoints() const {
  std::vector<std::pair<Time, CoreCount>> out;
  out.reserve(steps_.size());
  for (const Step& s : steps_) out.emplace_back(s.at, s.free);
  return out;
}

}  // namespace dbs::core
