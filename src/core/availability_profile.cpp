#include "core/availability_profile.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::core {

AvailabilityProfile::AvailabilityProfile(Time origin, CoreCount capacity)
    : origin_(origin), capacity_(capacity) {
  DBS_REQUIRE(capacity >= 0, "capacity must be non-negative");
  steps_[origin] = capacity;
}

CoreCount AvailabilityProfile::free_at(Time t) const {
  DBS_REQUIRE(t >= origin_, "query before profile origin");
  auto it = steps_.upper_bound(t);
  DBS_ASSERT(it != steps_.begin(), "profile missing origin breakpoint");
  --it;
  return it->second;
}

CoreCount AvailabilityProfile::min_free(Time from, Time to) const {
  DBS_REQUIRE(from < to, "empty interval");
  DBS_REQUIRE(from >= origin_, "query before profile origin");
  auto it = steps_.upper_bound(from);
  DBS_ASSERT(it != steps_.begin(), "profile missing origin breakpoint");
  --it;
  CoreCount lo = it->second;
  for (++it; it != steps_.end() && it->first < to; ++it)
    lo = std::min(lo, it->second);
  return lo;
}

bool AvailabilityProfile::can_fit(Time at, Duration dur, CoreCount cores) const {
  if (dur <= Duration::zero()) return cores <= free_at(at);
  return min_free(at, at + dur) >= cores;
}

void AvailabilityProfile::ensure_breakpoint(Time t) {
  if (t <= origin_) return;
  auto it = steps_.lower_bound(t);
  if (it != steps_.end() && it->first == t) return;
  DBS_ASSERT(it != steps_.begin(), "profile missing origin breakpoint");
  --it;
  steps_.emplace(t, it->second);
}

void AvailabilityProfile::subtract(Time from, Time to, CoreCount cores) {
  DBS_REQUIRE(cores >= 0, "negative subtraction");
  if (cores == 0) return;
  from = max(from, origin_);
  if (from >= to) return;
  ensure_breakpoint(from);
  ensure_breakpoint(to);
  for (auto it = steps_.lower_bound(from); it != steps_.end() && it->first < to;
       ++it) {
    it->second -= cores;
    DBS_ASSERT(it->second >= 0, "profile oversubscribed");
  }
}

void AvailabilityProfile::add(Time from, Time to, CoreCount cores) {
  DBS_REQUIRE(cores >= 0, "negative addition");
  if (cores == 0) return;
  from = max(from, origin_);
  if (from >= to) return;
  ensure_breakpoint(from);
  ensure_breakpoint(to);
  for (auto it = steps_.lower_bound(from); it != steps_.end() && it->first < to;
       ++it) {
    it->second += cores;
    DBS_ASSERT(it->second <= capacity_, "profile exceeds capacity");
  }
}

void AvailabilityProfile::subtract_clamped(Time from, Time to,
                                           CoreCount cores) {
  DBS_REQUIRE(cores >= 0, "negative subtraction");
  if (cores == 0) return;
  from = max(from, origin_);
  if (from >= to) return;
  ensure_breakpoint(from);
  ensure_breakpoint(to);
  for (auto it = steps_.lower_bound(from); it != steps_.end() && it->first < to;
       ++it)
    it->second = std::max<CoreCount>(0, it->second - cores);
}

Time AvailabilityProfile::earliest_fit(CoreCount cores, Duration dur,
                                       Time not_before) const {
  DBS_REQUIRE(cores > 0, "fit query needs cores");
  DBS_REQUIRE(dur > Duration::zero(), "fit query needs a duration");
  if (cores > capacity_) return Time::far_future();
  Time candidate = max(not_before, origin_);
  for (;;) {
    // Scan forward from `candidate`; if a segment within [candidate,
    // candidate + dur) dips below `cores`, restart after that segment.
    const Time horizon = candidate + dur;
    auto it = steps_.upper_bound(candidate);
    DBS_ASSERT(it != steps_.begin(), "profile missing origin breakpoint");
    --it;
    bool ok = true;
    for (; it != steps_.end() && it->first < horizon; ++it) {
      if (it->second < cores) {
        auto next = std::next(it);
        // The last segment extends to infinity; if it cannot fit, nothing
        // ever will (capacity check above guarantees it can, since the
        // final segment equals capacity only when all holds end — if not,
        // keep advancing past bounded holds).
        if (next == steps_.end()) return Time::far_future();
        candidate = next->first;
        ok = false;
        break;
      }
    }
    if (ok) return candidate;
  }
}

std::vector<std::pair<Time, CoreCount>> AvailabilityProfile::breakpoints() const {
  return {steps_.begin(), steps_.end()};
}

}  // namespace dbs::core
