#include "core/preemption.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::core {

std::vector<JobId> select_preemption_victims(
    const std::vector<const rms::Job*>& running, CoreCount needed,
    CoreCount free_now, JobId exclude) {
  DBS_REQUIRE(needed > 0, "victim selection needs a target");
  if (free_now >= needed) return {};

  std::vector<const rms::Job*> candidates;
  for (const rms::Job* job : running)
    if (job->spec().preemptible && job->was_backfilled() &&
        job->id() != exclude)
      candidates.push_back(job);

  // Most recently started first: the cheapest progress to throw away.
  std::sort(candidates.begin(), candidates.end(),
            [](const rms::Job* a, const rms::Job* b) {
              if (a->start_time() != b->start_time())
                return a->start_time() > b->start_time();
              return a->id() > b->id();
            });

  std::vector<JobId> victims;
  CoreCount would_free = free_now;
  for (const rms::Job* job : candidates) {
    if (would_free >= needed) break;
    victims.push_back(job->id());
    would_free += job->allocated_cores();
  }
  if (would_free < needed) return {};  // preemption cannot help
  return victims;
}

}  // namespace dbs::core
