// Maui-style *static* fairshare: per-user usage tracked over a sliding set
// of decaying windows, compared against configured target percentages. This
// is the classic mechanism the paper contrasts with its new *dynamic*
// fairness (DFS) policies.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

struct FairshareConfig {
  bool enabled = false;
  Duration interval = Duration::hours(12);  ///< FSINTERVAL
  std::size_t depth = 8;                    ///< FSDEPTH (number of windows)
  double decay = 0.5;                       ///< FSDECAY (per-window factor)
  /// Target share (percent of the system) per user; unconfigured users have
  /// no target and contribute no fairshare priority component.
  std::unordered_map<std::string, double> user_targets;
};

class Fairshare {
 public:
  explicit Fairshare(FairshareConfig config, Time start = Time::epoch());

  /// Charges `core_seconds` of usage by `cred.user` at time `now`.
  void record_usage(const Credentials& cred, double core_seconds, Time now);

  /// Rolls windows forward so that `now` lies in the current window.
  void advance_to(Time now);

  /// Priority component: target% − effective-usage% for the user (positive
  /// when under-served). Zero when disabled or no target configured.
  [[nodiscard]] double component(const Credentials& cred) const;

  /// Decay-weighted usage of a user across windows (core-seconds).
  [[nodiscard]] double effective_usage(const std::string& user) const;

  [[nodiscard]] const FairshareConfig& config() const { return config_; }

 private:
  FairshareConfig config_;
  Time window_start_;
  /// windows_[user][0] is the current window; higher indices are older.
  std::unordered_map<std::string, std::deque<double>> windows_;
};

}  // namespace dbs::core
