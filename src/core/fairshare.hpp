// Maui-style *static* fairshare: per-user usage tracked over a sliding set
// of decaying windows, compared against configured target percentages. This
// is the classic mechanism the paper contrasts with its new *dynamic*
// fairness (DFS) policies.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

struct FairshareConfig {
  bool enabled = false;
  Duration interval = Duration::hours(12);  ///< FSINTERVAL
  std::size_t depth = 8;                    ///< FSDEPTH (number of windows)
  double decay = 0.5;                       ///< FSDECAY (per-window factor)
  /// Target share (percent of the system) per user; unconfigured users have
  /// no target and contribute no fairshare priority component.
  std::unordered_map<std::string, double> user_targets;
};

class Fairshare {
 public:
  explicit Fairshare(FairshareConfig config, Time start = Time::epoch());

  /// Charges `core_seconds` of usage by `cred.user` at time `now`.
  void record_usage(const Credentials& cred, double core_seconds, Time now);

  /// Rolls windows forward so that `now` lies in the current window.
  void advance_to(Time now);

  /// Priority component: target% − effective-usage% for the user (positive
  /// when under-served). Zero when disabled or no target configured.
  [[nodiscard]] double component(const Credentials& cred) const;

  /// Decay-weighted usage of a user across windows (core-seconds).
  [[nodiscard]] double effective_usage(const std::string& user) const;

  [[nodiscard]] const FairshareConfig& config() const { return config_; }

  /// Serializable ledger state for durable snapshots. Windows are sorted
  /// by user so the encoded form is byte-stable across processes.
  struct State {
    Time window_start;
    std::vector<std::pair<std::string, std::vector<double>>> windows;
    [[nodiscard]] bool operator==(const State&) const = default;
  };
  [[nodiscard]] State save_state() const;
  void restore_state(const State& s);

 private:
  FairshareConfig config_;
  Time window_start_;
  /// windows_[user][0] is the current window; higher indices are older.
  std::unordered_map<std::string, std::deque<double>> windows_;
};

}  // namespace dbs::core
