#include "core/plan_cache.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "core/availability_profile.hpp"

namespace dbs::core {

namespace {
/// Window covering every feasible walltime (the last staircase entry).
const Duration kForever = Time::far_future() - Time::epoch();
/// advance_base only memmoves once this many slots are reclaimable.
constexpr std::uint64_t kRebaseChunk = 4096;
}  // namespace

void PlanCache::advance_base(std::uint64_t min_live_id) {
  if (min_live_id <= base_) return;
  const std::uint64_t delta = min_live_id - base_;
  if (delta < kRebaseChunk) return;
  const auto cut = static_cast<std::ptrdiff_t>(
      std::min<std::uint64_t>(delta, verdicts.size()));
  verdicts.erase(verdicts.begin(), verdicts.begin() + cut);
  verdicts_prev.erase(verdicts_prev.begin(), verdicts_prev.begin() + cut);
  base_ = min_live_id;
}

void PlanCache::refresh(const AvailabilityProfile& profile, Time now) {
  // The staircase only has to answer the windows verdicts actually query
  // (note_window keeps the running max); cutting the build off there keeps
  // plan differences beyond that horizon — a rotating set of far-future
  // StartLater reservations is the canonical churn pattern — from cycling
  // the version and wiping verdicts that cannot have changed.
  const Duration horizon =
      max_window_us_ > 0 ? Duration::micros(max_window_us_) : kForever;
  valid_up_to_us_ = max_window_us_ > 0
                       ? max_window_us_
                       : std::numeric_limits<std::int64_t>::max();
  scratch_.clear();
  // Prefix minimum over the profile steps from `now` on: step i bounds
  // windows up to (step[i+1].at - now); equal-minimum runs compress into
  // one entry by extending its window.
  std::size_t i = profile.segment_of(max(now, profile.origin()));
  CoreCount m = profile.step(i).free;
  for (;; ++i) {
    const bool last = i + 1 == profile.step_count();
    Duration window = last ? kForever : profile.step(i + 1).at - now;
    // Entry already covers every queried window: promote it to the forever
    // entry and stop — deeper steps are invisible to min_for.
    const bool covers = window >= horizon;
    if (covers) window = kForever;
    if (!scratch_.empty() && scratch_.back().min_free == m)
      scratch_.back().window = window;
    else
      scratch_.push_back({window, m});
    if (last || covers) break;
    m = std::min(m, profile.step(i + 1).free);
  }
  if (version != 0 && scratch_ == staircase) return;
  // Changed (or first build): intern the contents so a staircase seen in
  // an earlier walk re-yields its original version and the verdicts
  // recorded against it revalidate.
  for (const Interned& e : interned_) {
    if (e.stairs == scratch_) {
      staircase = e.stairs;
      version = e.version;
      return;
    }
  }
  if (interned_.size() >= kMaxInterned) interned_.clear();
  version = ++next_version_;
  interned_.push_back({scratch_, version});
  staircase = scratch_;
}

CoreCount PlanCache::min_for(Duration window) const {
  DBS_ASSERT(!staircase.empty(), "staircase queried before refresh");
  const auto it = std::lower_bound(
      staircase.begin(), staircase.end(), window,
      [](const MinStep& s, Duration w) { return s.window < w; });
  DBS_ASSERT(it != staircase.end(), "window beyond the forever entry");
  return it->min_free;
}

}  // namespace dbs::core
