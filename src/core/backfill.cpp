#include "core/backfill.hpp"

#include <limits>

#include "common/assert.hpp"

namespace dbs::core {

namespace {

/// Shared planning walk over `out` (profile already primed with the base,
/// table empty). `force_all` plans every job regardless of depth and
/// backfill rules (used for delay measurement).
void plan_into(const std::vector<const rms::Job*>& prioritized,
               const PlanOptions& options, bool force_all, Plan& out) {
  std::size_t start_later = 0;
  bool someone_waits = false;
  Time exclusive_latest_start = options.now;

  for (const rms::Job* job : prioritized) {
    DBS_ASSERT(job != nullptr, "null job in plan input");
    const CoreCount cores = job->spec().cores;
    const Duration walltime = job->spec().walltime;
    const bool exclusive = job->spec().exclusive_priority;

    Time not_before = options.now;
    if (options.drain_for_exclusive && !exclusive)
      not_before = exclusive_latest_start;

    const Time start =
        out.profile.earliest_fit(cores, walltime, not_before);
    if (start == Time::far_future()) {
      // Larger than the whole machine: unsatisfiable, never planned.
      someone_waits = true;
      continue;
    }

    const bool is_start_now = start == options.now;
    const bool is_backfill = is_start_now && someone_waits;
    if (!force_all) {
      if (is_start_now && is_backfill && !options.allow_backfill) {
        someone_waits = true;
        continue;
      }
      if (!is_start_now) {
        if (start_later >= options.reservation_limit) {
          someone_waits = true;
          continue;
        }
        ++start_later;
      }
    }

    out.profile.subtract(start, start + walltime, cores);
    out.table.add(Reservation{job->id(), start, start + walltime, cores,
                              is_start_now, is_backfill});
    if (exclusive) exclusive_latest_start = max(exclusive_latest_start, start);
    if (!is_start_now) someone_waits = true;
  }
}

}  // namespace

Plan plan_jobs(const std::vector<const rms::Job*>& prioritized,
               AvailabilityProfile base, const PlanOptions& options) {
  Plan plan{ReservationTable{}, std::move(base)};
  plan.table.reserve(prioritized.size());
  plan_into(prioritized, options, /*force_all=*/false, plan);
  return plan;
}

void plan_jobs_into(const std::vector<const rms::Job*>& prioritized,
                    const AvailabilityProfile& base, const PlanOptions& options,
                    Plan& out) {
  out.profile = base;
  out.table.clear();
  out.table.reserve(prioritized.size());
  plan_into(prioritized, options, /*force_all=*/false, out);
}

ReservationTable replan_all(const std::vector<const rms::Job*>& jobs,
                            AvailabilityProfile base,
                            const PlanOptions& options) {
  Plan plan{ReservationTable{}, std::move(base)};
  replan_all_into(jobs, plan.profile, options, plan);
  return std::move(plan.table);
}

void replan_all_into(const std::vector<const rms::Job*>& jobs,
                     const AvailabilityProfile& base, const PlanOptions& options,
                     Plan& out) {
  PlanOptions all = options;
  all.reservation_limit = std::numeric_limits<std::size_t>::max();
  all.allow_backfill = true;
  if (&out.profile != &base) out.profile = base;
  out.table.clear();
  out.table.reserve(jobs.size());
  plan_into(jobs, all, /*force_all=*/true, out);
}

}  // namespace dbs::core
