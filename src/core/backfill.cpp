#include "core/backfill.hpp"

#include <limits>

#include "common/assert.hpp"

namespace dbs::core {

namespace {

/// Plans the tail of a walk — every job past the reservation budget while
/// someone waits — using the cache. Such a job either fits immediately
/// (backfill) or is skipped, and "fits" is exactly
/// `cores <= min_free(now, now + walltime)` of the evolving plan profile:
/// the cache's staircase answers that in O(1) for version-valid verdicts
/// and O(log steps) otherwise. A planned backfill mutates the profile, so
/// the staircase is refreshed (bumping its version) before the next
/// verdict. Byte-identical to continuing the generic walk.
void plan_tail_with_cache(const std::vector<const rms::Job*>& prioritized,
                          std::size_t begin, const PlanOptions& options,
                          Plan& out, PlanCache& cache) {
  cache.refresh(out.profile, options.now);
  for (std::size_t i = begin; i < prioritized.size(); ++i) {
    if (i + 8 < prioritized.size()) __builtin_prefetch(prioritized[i + 8]);
    const rms::Job* job = prioritized[i];
    DBS_ASSERT(job != nullptr, "null job in plan input");
    const std::size_t id = cache.slot(job->id().value());
    if (cache.verdicts.size() <= id) {
      cache.verdicts.resize(id + 1, 0);
      cache.verdicts_prev.resize(id + 1, 0);
    }
    bool fits;
    if (cache.verdicts[id] >> 1 == cache.version) {
      fits = (cache.verdicts[id] & 1) != 0;
      ++cache.hits;
    } else if (cache.verdicts_prev[id] >> 1 == cache.version) {
      // The other of two alternating system states — promote to MRU.
      std::swap(cache.verdicts[id], cache.verdicts_prev[id]);
      fits = (cache.verdicts[id] & 1) != 0;
      ++cache.hits;
    } else {
      const Duration wall = job->spec().walltime;
      cache.note_window(wall.as_micros());
      if (wall.as_micros() > cache.valid_up_to_us()) {
        // Beyond the staircase's truncation horizon: two plans with equal
        // truncated staircases may still differ out here, so answer from
        // the profile and leave the verdict unstored. note_window above
        // widens the next refresh to cover this walltime, after which the
        // verdict becomes cacheable.
        fits = job->spec().cores <=
               out.profile.min_free(options.now, options.now + wall);
      } else {
        fits = job->spec().cores <= cache.min_for(wall);
        cache.verdicts_prev[id] = cache.verdicts[id];
        cache.verdicts[id] =
            (cache.version << 1) | static_cast<std::uint64_t>(fits);
      }
      ++cache.replanned;
    }
    if (!fits) continue;
    const Time start = options.now;
    const Time end = start + job->spec().walltime;
    out.profile.subtract(start, end, job->spec().cores);
    out.table.add(Reservation{job->id(), start, end, job->spec().cores,
                              /*start_now=*/true, /*backfilled=*/true});
    cache.refresh(out.profile, options.now);
  }
}

/// Shared planning walk over `out` (profile already primed with the base,
/// table empty). `force_all` plans every job regardless of depth and
/// backfill rules (used for delay measurement).
void plan_into(const std::vector<const rms::Job*>& prioritized,
               const PlanOptions& options, bool force_all, Plan& out,
               PlanCache* cache) {
  std::size_t start_later = 0;
  bool someone_waits = false;
  Time exclusive_latest_start = options.now;

  for (std::size_t index = 0; index < prioritized.size(); ++index) {
    const rms::Job* job = prioritized[index];
    DBS_ASSERT(job != nullptr, "null job in plan input");
    if (!force_all && someone_waits &&
        start_later >= options.reservation_limit) {
      // Tail: reservations are exhausted and someone waits, so no job below
      // this point can be anything but an immediate backfill.
      if (!options.allow_backfill) return;  // nothing can be planned at all
      if (cache != nullptr && !options.drain_for_exclusive) {
        plan_tail_with_cache(prioritized, index, options, out, *cache);
        return;
      }
    }
    if (cache != nullptr) ++cache->replanned;
    const CoreCount cores = job->spec().cores;
    const Duration walltime = job->spec().walltime;
    const bool exclusive = job->spec().exclusive_priority;

    Time not_before = options.now;
    if (options.drain_for_exclusive && !exclusive)
      not_before = exclusive_latest_start;

    const Time start =
        out.profile.earliest_fit(cores, walltime, not_before);
    if (start == Time::far_future()) {
      // Larger than the whole machine: unsatisfiable, never planned.
      someone_waits = true;
      continue;
    }

    const bool is_start_now = start == options.now;
    const bool is_backfill = is_start_now && someone_waits;
    if (!force_all) {
      if (is_start_now && is_backfill && !options.allow_backfill) {
        someone_waits = true;
        continue;
      }
      if (!is_start_now) {
        if (start_later >= options.reservation_limit) {
          someone_waits = true;
          continue;
        }
        ++start_later;
      }
    }

    out.profile.subtract(start, start + walltime, cores);
    out.table.add(Reservation{job->id(), start, start + walltime, cores,
                              is_start_now, is_backfill});
    if (exclusive) exclusive_latest_start = max(exclusive_latest_start, start);
    if (!is_start_now) someone_waits = true;
  }
}

}  // namespace

Plan plan_jobs(const std::vector<const rms::Job*>& prioritized,
               AvailabilityProfile base, const PlanOptions& options) {
  Plan plan{ReservationTable{}, std::move(base)};
  plan.table.reserve(prioritized.size());
  plan_into(prioritized, options, /*force_all=*/false, plan, nullptr);
  return plan;
}

void plan_jobs_into(const std::vector<const rms::Job*>& prioritized,
                    const AvailabilityProfile& base, const PlanOptions& options,
                    Plan& out, PlanCache* cache) {
  out.profile = base;
  out.table.clear();
  out.table.reserve(prioritized.size());
  plan_into(prioritized, options, /*force_all=*/false, out, cache);
}

ReservationTable replan_all(const std::vector<const rms::Job*>& jobs,
                            AvailabilityProfile base,
                            const PlanOptions& options) {
  Plan plan{ReservationTable{}, std::move(base)};
  replan_all_into(jobs, plan.profile, options, plan);
  return std::move(plan.table);
}

void replan_all_into(const std::vector<const rms::Job*>& jobs,
                     const AvailabilityProfile& base, const PlanOptions& options,
                     Plan& out) {
  PlanOptions all = options;
  all.reservation_limit = std::numeric_limits<std::size_t>::max();
  all.allow_backfill = true;
  if (&out.profile != &base) out.profile = base;
  out.table.clear();
  out.table.reserve(jobs.size());
  plan_into(jobs, all, /*force_all=*/true, out, nullptr);
}

}  // namespace dbs::core
