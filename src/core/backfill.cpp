#include "core/backfill.hpp"

#include <limits>

#include "common/assert.hpp"

namespace dbs::core {

namespace {

/// Shared planning walk. `force_all` plans every job regardless of depth
/// and backfill rules (used for delay measurement).
Plan plan_impl(const std::vector<const rms::Job*>& prioritized,
               AvailabilityProfile base, const PlanOptions& options,
               bool force_all) {
  Plan plan{ReservationTable{}, std::move(base)};
  std::size_t start_later = 0;
  bool someone_waits = false;
  Time exclusive_latest_start = options.now;

  for (const rms::Job* job : prioritized) {
    DBS_ASSERT(job != nullptr, "null job in plan input");
    const CoreCount cores = job->spec().cores;
    const Duration walltime = job->spec().walltime;
    const bool exclusive = job->spec().exclusive_priority;

    Time not_before = options.now;
    if (options.drain_for_exclusive && !exclusive)
      not_before = exclusive_latest_start;

    const Time start =
        plan.profile.earliest_fit(cores, walltime, not_before);
    if (start == Time::far_future()) {
      // Larger than the whole machine: unsatisfiable, never planned.
      someone_waits = true;
      continue;
    }

    const bool is_start_now = start == options.now;
    const bool is_backfill = is_start_now && someone_waits;
    if (!force_all) {
      if (is_start_now && is_backfill && !options.allow_backfill) {
        someone_waits = true;
        continue;
      }
      if (!is_start_now) {
        if (start_later >= options.reservation_limit) {
          someone_waits = true;
          continue;
        }
        ++start_later;
      }
    }

    plan.profile.subtract(start, start + walltime, cores);
    plan.table.add(Reservation{job->id(), start, start + walltime, cores,
                               is_start_now, is_backfill});
    if (exclusive) exclusive_latest_start = max(exclusive_latest_start, start);
    if (!is_start_now) someone_waits = true;
  }
  return plan;
}

}  // namespace

Plan plan_jobs(const std::vector<const rms::Job*>& prioritized,
               AvailabilityProfile base, const PlanOptions& options) {
  return plan_impl(prioritized, std::move(base), options, /*force_all=*/false);
}

ReservationTable replan_all(const std::vector<const rms::Job*>& jobs,
                            AvailabilityProfile base,
                            const PlanOptions& options) {
  PlanOptions all = options;
  all.reservation_limit = std::numeric_limits<std::size_t>::max();
  all.allow_backfill = true;
  return plan_impl(jobs, std::move(base), all, /*force_all=*/true).table;
}

}  // namespace dbs::core
