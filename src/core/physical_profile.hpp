// The persistent physical availability profile.
//
// Instead of rebuilding "capacity minus running holds minus down-node
// cores" from the whole running set every iteration (O(running)), the
// tracker listens to the server's job-lifecycle events and patches one
// long-lived AvailabilityProfile in O(log running) per state change:
//
//   job start            subtract its cores over [now, hold end)
//   finish/requeue/qdel  add the recorded hold back over [event, hold end)
//   dynamic grant        subtract the extra cores over the remaining hold
//   release/shrink/loss  add the returned cores back over the remaining hold
//
// advance() is called once per scheduler iteration: it moves the profile
// origin to `now`, re-extends holds of jobs running past their walltime
// (the `hold_end_for` clamp) via a lazy min-heap of hold ends, and syncs
// the down-node free-core block against the cluster ledger. After
// advance() the profile is byte-for-byte identical to what
// IterationContext::rebuild_physical_profile would have produced — the
// check_invariants config knob cross-checks exactly that every iteration.
#pragma once

#include <unordered_map>
#include <utility>
#include <vector>

#include "core/availability_profile.hpp"
#include "rms/server.hpp"

namespace dbs::core {

/// End of a running job's physical hold as seen from `now`: its walltime
/// end, clamped forward for jobs running past their walltime so the hold
/// never collapses to an empty interval. The single definition shared by
/// the from-scratch rebuild, the incremental tracker and the admission
/// stage's victim patches — the clamps can never diverge.
[[nodiscard]] inline Time hold_end_for(const rms::Job& job, Time now) {
  return max(job.walltime_end(), now + Duration::micros(1));
}

class PhysicalProfileTracker final : public rms::ServerObserver {
 public:
  explicit PhysicalProfileTracker(const rms::Server& server);

  /// Brings the profile up to `now` (monotonic): advances the origin,
  /// re-extends overrun holds and syncs the down-node block. Idempotent at
  /// a fixed `now`, so dry-run and live iterations at the same instant see
  /// the same profile.
  void advance(Time now);

  /// The maintained profile; canonical (coalesced) after advance().
  [[nodiscard]] const AvailabilityProfile& profile() const { return profile_; }

  /// Discards everything and re-seeds from the server's current running
  /// set and cluster ledger, exactly like construction. Used after a
  /// durable-state restore, which re-creates jobs without firing the
  /// observer events this tracker normally ingests.
  void rebuild();

  // --- ServerObserver ------------------------------------------------------
  void on_job_start(const rms::Job& job) override;
  void on_job_finish(const rms::Job& job) override;
  void on_requeue(const rms::Job& job) override;
  void on_cancel(const rms::Job& job, CoreCount released) override;
  void on_dyn_grant(const rms::Job& job, const rms::DynRequest&,
                    CoreCount extra) override;
  void on_dyn_release(const rms::Job& job, CoreCount cores) override;
  void on_malleable_shrink(const rms::Job& job, CoreCount cores) override;
  void on_nodes_lost(const rms::Job& job, CoreCount lost) override;

 private:
  struct Hold {
    CoreCount cores;  ///< currently allocated (kept in sync with the job)
    Time end;         ///< hold end currently subtracted from the profile
  };

  [[nodiscard]] Time now() const { return server_.simulator().now(); }
  void open_hold(const rms::Job& job, Time at);
  void close_hold(const rms::Job& job, Time at);
  /// Returns `cores` of the job's hold to the pool over what remains of it.
  void return_cores(const rms::Job& job, CoreCount cores, Time at);
  void heap_push(Time end, JobId id);

  const rms::Server& server_;
  AvailabilityProfile profile_;
  std::unordered_map<JobId, Hold> holds_;
  /// Min-heap of (hold end, job) with lazy deletion: entries whose hold is
  /// gone or was re-extended are skipped when popped.
  std::vector<std::pair<Time, JobId>> heap_;
  CoreCount down_free_ = 0;
};

}  // namespace dbs::core
