// Reservations produced by one scheduling pass. Maui rebuilds these every
// iteration; the table is a planning artifact, not persistent state.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

/// A planned (job, interval, cores) triple. `start_now` marks StartNow jobs
/// (planned start equals the iteration time); `backfilled` marks jobs that
/// would start now even though a higher-priority job waits.
struct Reservation {
  JobId job;
  Time start;
  Time end;
  CoreCount cores = 0;
  bool start_now = false;
  bool backfilled = false;
};

class ReservationTable {
 public:
  ReservationTable() = default;

  void add(Reservation r);
  /// Keeps the allocated storage (tables are rebuilt every iteration).
  /// The stamped membership array survives clears by generation bump, so
  /// repeated rebuild cycles never re-touch it.
  void clear() {
    items_.clear();
    index_.clear();
    ++generation_;
    rebase_pending_ = true;
  }
  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] const std::vector<Reservation>& items() const { return items_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// Reservation of `job`, or nullptr. O(1): a stamped dense-id membership
  /// array answers the common miss (tables hold tens of entries, callers
  /// probe the whole queue) with one flat load; only hits pay the hash
  /// lookup. (Delay measurement and the classify stage's protected-subset
  /// walk probe once per queued job per pass.)
  ///
  /// The stamp array is indexed relative to `base_`, re-anchored at the
  /// first id added after each clear(): under job retirement ids grow
  /// without bound, and an absolutely-indexed array would too (the 10M-job
  /// replay leaked ~4 B per submitted job per live table). The stamp is
  /// only a miss filter — a stale match falls through to the hash map, so
  /// re-anchoring never changes results; ids below the anchor (rare: the
  /// first planned job is the highest-priority, i.e. usually oldest, one)
  /// skip the filter and pay the hash lookup.
  [[nodiscard]] const Reservation* find(JobId job) const {
    const auto id = static_cast<std::uint64_t>(job.value());
    if (id < base_) return find_slow(job);
    const auto slot = static_cast<std::size_t>(id - base_);
    if (slot >= member_stamp_.size() || member_stamp_[slot] != generation_)
      return nullptr;
    return find_slow(job);
  }

  [[nodiscard]] std::size_t start_now_count() const;
  [[nodiscard]] std::size_t start_later_count() const;

 private:
  [[nodiscard]] const Reservation* find_slow(JobId job) const;

  std::vector<Reservation> items_;  ///< in planning (priority) order
  std::unordered_map<JobId, std::size_t> index_;  ///< job -> items_ position
  std::vector<std::uint32_t> member_stamp_;  ///< == generation_: reserved
  std::uint64_t base_ = 0;  ///< id of member_stamp_[0]
  std::uint32_t generation_ = 1;  ///< 1-based so zero-init never matches
  bool rebase_pending_ = true;  ///< next add() re-anchors base_
};

}  // namespace dbs::core
