// Reservations produced by one scheduling pass. Maui rebuilds these every
// iteration; the table is a planning artifact, not persistent state.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::core {

/// A planned (job, interval, cores) triple. `start_now` marks StartNow jobs
/// (planned start equals the iteration time); `backfilled` marks jobs that
/// would start now even though a higher-priority job waits.
struct Reservation {
  JobId job;
  Time start;
  Time end;
  CoreCount cores = 0;
  bool start_now = false;
  bool backfilled = false;
};

class ReservationTable {
 public:
  ReservationTable() = default;

  void add(Reservation r);
  /// Keeps the allocated storage (tables are rebuilt every iteration).
  void clear() {
    items_.clear();
    index_.clear();
  }
  void reserve(std::size_t n) { items_.reserve(n); }

  [[nodiscard]] const std::vector<Reservation>& items() const { return items_; }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] bool empty() const { return items_.empty(); }

  /// Reservation of `job`, or nullptr. O(1): backed by a job-id index
  /// (delay measurement does one lookup per planned job per request).
  [[nodiscard]] const Reservation* find(JobId job) const;

  [[nodiscard]] std::size_t start_now_count() const;
  [[nodiscard]] std::size_t start_later_count() const;

 private:
  std::vector<Reservation> items_;  ///< in planning (priority) order
  std::unordered_map<JobId, std::size_t> index_;  ///< job -> items_ position
};

}  // namespace dbs::core
