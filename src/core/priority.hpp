// Maui-style job prioritization: a weighted sum of service (queue time,
// expansion factor), resource, credential and fairshare components.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/time.hpp"
#include "rms/job.hpp"

namespace dbs::core {

class Fairshare;

struct PriorityWeights {
  double queue_time_per_minute = 1.0;  ///< QUEUETIMEWEIGHT
  double xfactor = 0.0;                ///< XFACTORWEIGHT
  double per_core = 0.0;               ///< RESWEIGHT (per requested core)
  double cred = 0.0;                   ///< CREDWEIGHT (scales entity priorities)
  double fairshare = 0.0;              ///< FSWEIGHT
};

/// Administrator-assigned priority per credential entity (USERCFG PRIORITY=).
struct CredPriorities {
  std::unordered_map<std::string, double> user;
  std::unordered_map<std::string, double> group;
  std::unordered_map<std::string, double> account;
  std::unordered_map<std::string, double> job_class;
  std::unordered_map<std::string, double> qos;

  [[nodiscard]] double total_for(const Credentials& cred) const;
};

class PriorityEngine {
 public:
  PriorityEngine(PriorityWeights weights, CredPriorities cred_priorities,
                 const Fairshare* fairshare);

  /// The scalar priority of a queued job at time `now`.
  [[nodiscard]] double priority(const rms::Job& job, Time now) const;

  /// The credential component total of a job's credentials (immutable for
  /// a job's lifetime, so callers may memoize it per job).
  [[nodiscard]] double cred_total(const Credentials& cred) const {
    return cred_.total_for(cred);
  }

  /// priority() with the credential total supplied by the caller; the
  /// single compiled expression both paths share, so a memoized credtot
  /// yields bit-identical priorities.
  [[nodiscard]] double priority_given_cred(const rms::Job& job, Time now,
                                           double credtot) const;

  /// True when priority() is a pure function of the job's immutable spec
  /// and `now` — i.e. the fairshare term (the only component reading
  /// mutable scheduler state) is inactive. Callers may then memoize keys
  /// per (job, now).
  [[nodiscard]] bool spec_only() const {
    return fairshare_ == nullptr || weights_.fairshare == 0.0;
  }

  /// Sorts jobs by descending priority. Jobs with the exclusive_priority
  /// flag (ESP Z jobs) always sort first. Ties break on submission time,
  /// then id, so the order is total and deterministic.
  [[nodiscard]] std::vector<rms::Job*> prioritize(std::vector<rms::Job*> jobs,
                                                  Time now) const;
  [[nodiscard]] std::vector<const rms::Job*> prioritize(
      std::vector<const rms::Job*> jobs, Time now) const;

 private:
  PriorityWeights weights_;
  CredPriorities cred_;
  const Fairshare* fairshare_;
};

}  // namespace dbs::core
