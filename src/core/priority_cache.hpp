// Incremental priority ordering.
//
// Re-sorting the whole eligible queue every iteration costs
// O(n log n) priority evaluations — each a weighted sum behind five
// credential hash lookups — even when nothing moved. But between two
// iterations the relative order is almost always stable: every queued
// job's queue-time component grows at the same rate, so only xfactor
// drift, fairshare updates or config-weighted credential differences can
// reorder neighbours, and arrivals/departures touch a handful of jobs.
//
// The cache therefore (a) memoizes each job's credential priority total
// forever (credentials are immutable after submit), (b) computes the
// scalar priority key once per job per pass via the engine's shared
// expression — bit-identical to PriorityEngine::priority — and (c)
// reuses the previous pass's output order: jobs still eligible are kept
// in their old positions, verified sorted under the fresh keys with one
// O(n) adjacent scan, and new arrivals are sorted (typically a handful)
// and merged in. If the scan finds an inversion the pass falls back to a
// full sort over the cached keys. The comparator is a strict total order
// (exclusive flag, key, submit time, id), so the sorted sequence is
// unique and every path yields the same bytes as the from-scratch sort.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"
#include "rms/job.hpp"

namespace dbs::core {

class PriorityEngine;

class PriorityOrderCache {
 public:
  /// Reorders `jobs` in place into exact priority order — identical to
  /// PriorityEngine::prioritize(jobs, now) — reusing the previous pass's
  /// order where it survived.
  void order(std::vector<const rms::Job*>& jobs, const PriorityEngine& engine,
             Time now);

  /// Whether any job in the last order() output carries exclusive
  /// priority — read off the flat flag array during the output pass, so
  /// the drain check needs no second walk over the Job objects.
  [[nodiscard]] bool any_exclusive() const { return any_exclusive_; }

  /// Passes answered by the merge path (no full sort).
  [[nodiscard]] std::uint64_t merged_passes() const { return merged_passes_; }
  /// Passes that fell back to a full sort (an inversion was detected).
  [[nodiscard]] std::uint64_t resorted_passes() const {
    return resorted_passes_;
  }

  /// Drops per-id state below `min_live_id`, keeping the dense arrays
  /// sized O(live id range) instead of O(all ids ever) during replays
  /// with job retirement. Amortized: the front-erase memmove only runs
  /// once the pending shift exceeds a chunk, so the arrays carry at most
  /// chunk-many dead slots. Ids below the floor must never be ordered
  /// again (their jobs are retired). No effect on ordering output.
  void advance_base(std::uint64_t min_live_id);
  [[nodiscard]] std::uint64_t base() const { return base_; }

 private:
  /// The exact comparator of PriorityEngine::prioritize over the flat
  /// per-id arrays: exclusive first, then key desc, submit asc, id asc — a
  /// strict total order, so the sorted sequence is unique. Working on ids
  /// instead of Job pointers keeps the adjacency scan, sort and merge free
  /// of per-comparison pointer chases into scattered Job objects.
  [[nodiscard]] bool before(std::size_t a, std::size_t b) const {
    if (exclusive_[a] != exclusive_[b]) return exclusive_[a] != 0;
    if (key_[a] != key_[b]) return key_[a] > key_[b];
    if (submit_us_[a] != submit_us_[b]) return submit_us_[a] < submit_us_[b];
    return a < b;
  }

  void grow_to(std::size_t id);

  /// Dense-by-job-id state; ids are allocated sequentially by the server.
  /// key/submit/exclusive mirror the comparator inputs so ordering never
  /// touches the Job objects after the one read in the key loop.
  std::vector<double> credtot_;
  std::vector<std::uint8_t> credtot_known_;
  std::vector<double> key_;
  std::vector<std::int64_t> key_now_us_;  ///< `now` key_ was computed at
  std::vector<std::int64_t> submit_us_;
  std::vector<std::uint8_t> exclusive_;
  std::vector<const rms::Job*> job_ptr_;
  std::vector<std::uint32_t> eligible_stamp_;  ///< == pass_: in this pass
  std::vector<std::uint32_t> output_stamp_;    ///< == pass_: in that output

  /// Starts at 1 so the zero-initialized stamps never read as "previous
  /// pass" on the first call.
  std::uint32_t pass_ = 1;
  /// Dense arrays are indexed by (id - base_); prev_ids_/retained_/
  /// arrivals_/merged_ hold those rebased slots too (slot order == id
  /// order, so the comparator's id tiebreak is unchanged).
  std::uint64_t base_ = 0;
  std::vector<std::uint32_t> prev_ids_;  ///< previous output, as job ids
  std::vector<std::uint32_t> retained_;
  std::vector<std::uint32_t> arrivals_;
  std::vector<std::uint32_t> merged_;

  std::uint64_t merged_passes_ = 0;
  std::uint64_t resorted_passes_ = 0;
  bool any_exclusive_ = false;
  const PriorityEngine* engine_ = nullptr;  ///< key memo owner
};

}  // namespace dbs::core
