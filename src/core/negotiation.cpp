#include "core/negotiation.hpp"

#include "common/assert.hpp"

namespace dbs::core {

std::optional<Time> estimate_availability(const AvailabilityProfile& physical,
                                          const rms::Job& owner,
                                          CoreCount extra_cores, Time now) {
  DBS_REQUIRE(extra_cores > 0, "estimate needs a core count");
  const Duration remaining =
      max(owner.walltime_end() - now, Duration::micros(1));
  const Time t = physical.earliest_fit(extra_cores, remaining, now);
  if (t == Time::far_future()) return std::nullopt;
  return t;
}

}  // namespace dbs::core
