// Delay measurement for dynamic requests (Algorithm 2, steps 11-24 support).
//
// A candidate dynamic allocation holds `extra_cores` from `now` until the
// evolving job's walltime end (the scheduler cannot know it will finish
// earlier — the paper's §III-D discusses exactly this overestimation).
// Delays are the per-job differences between the planned starts before and
// after that hold is applied.
#pragma once

#include <string>
#include <vector>

#include "core/availability_profile.hpp"
#include "core/backfill.hpp"
#include "core/dfs_engine.hpp"
#include "core/reservation_table.hpp"
#include "rms/job.hpp"

namespace dbs::obs {
class Tracer;
}

namespace dbs::core {

/// The tentative resource hold a dynamic request would create.
struct DynHold {
  CoreCount extra_cores = 0;
  Time from;
  Time until;  ///< owner's walltime end
};

/// Builds the hold for `request` of running job `owner` at time `now`.
[[nodiscard]] DynHold make_hold(const rms::Job& owner,
                                const rms::DynRequest& request, Time now);

/// The outcome of evaluating one dynamic request against the current plan.
struct DelayMeasurement {
  bool feasible = false;               ///< enough idle cores right now
  std::vector<DelayedJob> delays;      ///< per protected job (delay >= 0)
  ReservationTable replanned;          ///< new starts with the hold applied
  AvailabilityProfile profile_after;   ///< planning profile with the hold
  /// Jobs replanned under the hold (everything with a baseline
  /// reservation). Carried so a deferred trace emission can reproduce the
  /// inline "measure" event exactly.
  std::size_t replanned_count = 0;
};

/// Reusable working storage for measure_dynamic_request_into: the scheduler
/// keeps one across its dynamic-request loop so a measurement allocates
/// nothing after the first request.
struct MeasureScratch {
  std::vector<const rms::Job*> planned;
  std::vector<const rms::Job*> still_protected;
  Plan replan;
  std::string json;
};

/// The jobs whose delays the fairness policies consider (paper §III-C,
/// Fig. 5): every StartNow job plus the first `delay_depth`
/// (ReservationDelayDepth) StartLater reservations, per the step-10
/// classification in `baseline`. The set is computed once per iteration and
/// stays fixed while that iteration's dynamic requests are processed.
[[nodiscard]] std::vector<const rms::Job*> protected_subset(
    const std::vector<const rms::Job*>& prioritized,
    const ReservationTable& baseline, std::size_t delay_depth);

/// Scratch-reusing variant (clears and refills `out`).
void protected_subset_into(const std::vector<const rms::Job*>& prioritized,
                           const ReservationTable& baseline,
                           std::size_t delay_depth,
                           std::vector<const rms::Job*>& out);

/// Evaluates `hold` against `baseline` (the current plan, in priority
/// order) and `planning_profile` (the profile those jobs were planned on,
/// *without* them subtracted). `physical_free_now` is the real number of
/// idle cores (the feasibility test of step 12/13).
///
/// All jobs planned in `baseline` are replanned (they all compete for
/// space), but delays are reported only for `protected_jobs`.
/// When `tracer` is attached, every measurement publishes a "measure"
/// event carrying the hold, the feasibility test result and the measured
/// per-protected-job delays (the paper's per-decision audit data).
[[nodiscard]] DelayMeasurement measure_dynamic_request(
    const DynHold& hold, const std::vector<const rms::Job*>& candidate_jobs,
    const std::vector<const rms::Job*>& protected_jobs,
    const ReservationTable& baseline, const AvailabilityProfile& planning_profile,
    CoreCount physical_free_now, const PlanOptions& options,
    obs::Tracer* tracer = nullptr);

/// Hot-path variant: reuses `out`'s and `scratch`'s storage instead of
/// allocating a fresh measurement per request, and — copy-on-write — only
/// copies the planning profile once the feasibility test passes.
/// When `out.feasible` is false, `out.replanned`/`out.profile_after` are
/// stale leftovers from an earlier call and must not be read.
void measure_dynamic_request_into(
    const DynHold& hold, const std::vector<const rms::Job*>& candidate_jobs,
    const std::vector<const rms::Job*>& protected_jobs,
    const ReservationTable& baseline,
    const AvailabilityProfile& planning_profile, CoreCount physical_free_now,
    const PlanOptions& options, obs::Tracer* tracer, MeasureScratch& scratch,
    DelayMeasurement& out);

/// Publishes the per-measurement "measure" trace event for an already
/// computed measurement — byte-identical to the event
/// measure_dynamic_request_into emits inline when given a tracer. Used by
/// the scheduler's speculative parallel fan-out, which measures with the
/// tracer detached (workers must not write to a shared sink) and replays
/// the events in FIFO request order during the serial reduction.
/// `json_scratch` is a reusable buffer for the delays array.
void emit_measure_trace(const DynHold& hold, std::size_t protected_count,
                        CoreCount physical_free_now,
                        const DelayMeasurement& measurement,
                        const PlanOptions& options, obs::Tracer* tracer,
                        std::string& json_scratch);

/// JSON array of measured delays — `[{"job": 4, "user": "bob",
/// "delay_s": 30.5}, ...]` — for trace events and the decision audit.
[[nodiscard]] std::string delays_to_json(const std::vector<DelayedJob>& delays);

/// Appending variant for reused string buffers on the trace path.
void delays_to_json(const std::vector<DelayedJob>& delays, std::string& out);

/// Per-job start-time differences between two plans covering the same jobs.
[[nodiscard]] std::vector<DelayedJob> diff_plans(
    const std::vector<const rms::Job*>& jobs, const ReservationTable& before,
    const ReservationTable& after);

/// Scratch-reusing variant (clears and refills `out`).
void diff_plans_into(const std::vector<const rms::Job*>& jobs,
                     const ReservationTable& before,
                     const ReservationTable& after,
                     std::vector<DelayedJob>& out);

}  // namespace dbs::core
