// Parser for the Maui-style configuration format of the paper's Fig. 6:
//
//   DFSPOLICY         DFSSINGLEANDTARGETDELAY
//   DFSINTERVAL       06:00:00
//   DFSDECAY          0.4
//   USERCFG[user01]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
//                     DFSSINGLEDELAYTIME=0
//   GROUPCFG[group05] DFSTARGETDELAYTIME=04:00:00
//
// '#' starts a comment, '\' at end of line continues it, keys are
// case-insensitive, durations are plain seconds or [HH:]MM:SS.
// Besides the DFS parameters the parser understands the scheduler knobs
// (RESERVATIONDEPTH, RESERVATIONDELAYDEPTH, BACKFILL, priority weights,
// fairshare, PREEMPTION, DYNPARTITION, ...) and per-entity PRIORITY /
// FSTARGET settings.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "core/scheduler_config.hpp"

namespace dbs::cfg {

struct ParseIssue {
  int line = 0;
  std::string message;
};

struct ParseResult {
  core::SchedulerConfig config;
  std::vector<ParseIssue> issues;

  [[nodiscard]] bool ok() const { return issues.empty(); }
};

/// Parses `text`, collecting issues instead of failing fast. Unknown keys
/// are reported as issues; recognized settings are applied regardless.
[[nodiscard]] ParseResult parse_maui_config(std::string_view text);

/// Like parse_maui_config but throws precondition_error listing the first
/// issue. Convenient for examples/tests.
[[nodiscard]] core::SchedulerConfig parse_maui_config_or_throw(
    std::string_view text);

/// Renders the DFS-related part of a config back into Fig. 6 syntax.
[[nodiscard]] std::string render_dfs_config(const core::DfsConfig& dfs);

}  // namespace dbs::cfg
