#include "config/maui_config.hpp"

#include <sstream>

#include "common/assert.hpp"
#include "common/string_util.hpp"

namespace dbs::cfg {

namespace {

/// Logical lines after comment stripping and '\' continuation joining.
std::vector<std::pair<int, std::string>> logical_lines(std::string_view text) {
  std::vector<std::pair<int, std::string>> out;
  std::istringstream is{std::string(text)};
  std::string raw;
  int line_no = 0;
  int start_line = 0;
  std::string pending;
  while (std::getline(is, raw)) {
    ++line_no;
    if (const auto hash = raw.find('#'); hash != std::string::npos)
      raw.erase(hash);
    std::string_view sv = trim(raw);
    bool continues = false;
    if (!sv.empty() && sv.back() == '\\') {
      continues = true;
      sv.remove_suffix(1);
      sv = trim(sv);
    }
    if (pending.empty()) {
      if (sv.empty() && !continues) continue;
      start_line = line_no;
      pending = std::string(sv);
    } else {
      pending += ' ';
      pending += std::string(sv);
    }
    if (!continues) {
      if (!trim(pending).empty()) out.emplace_back(start_line, pending);
      pending.clear();
    }
  }
  if (!trim(pending).empty()) out.emplace_back(start_line, pending);
  return out;
}

struct Parser {
  core::SchedulerConfig config;
  std::vector<ParseIssue> issues;

  void issue(int line, std::string msg) {
    issues.push_back({line, std::move(msg)});
  }

  template <class T>
  bool expect(int line, const std::optional<T>& v, std::string_view what) {
    if (v.has_value()) return true;
    issue(line, "malformed " + std::string(what));
    return false;
  }

  void entity_settings(int line, core::DfsEntityKind kind,
                       const std::string& name,
                       const std::vector<std::string>& kvs) {
    core::DfsEntityLimits limits = config.dfs.limits_of(kind, name);
    for (const std::string& kv : kvs) {
      const auto pair = split_once(kv, '=');
      if (!pair) {
        issue(line, "expected KEY=VALUE, got '" + kv + "'");
        continue;
      }
      const std::string key = to_upper(pair->first);
      const std::string& value = pair->second;
      if (key == "DFSDYNDELAYPERM") {
        if (const auto b = parse_bool(value); expect(line, b, key))
          limits.delay_perm = *b;
      } else if (key == "DFSSINGLEDELAYTIME") {
        if (const auto d = parse_duration(value); expect(line, d, key))
          limits.single_delay = *d;
      } else if (key == "DFSTARGETDELAYTIME") {
        if (const auto d = parse_duration(value); expect(line, d, key))
          limits.target_delay = *d;
      } else if (key == "PRIORITY") {
        const auto v = parse_double(value);
        if (!expect(line, v, key)) continue;
        switch (kind) {
          case core::DfsEntityKind::User:
            config.cred_priorities.user[name] = *v; break;
          case core::DfsEntityKind::Group:
            config.cred_priorities.group[name] = *v; break;
          case core::DfsEntityKind::Account:
            config.cred_priorities.account[name] = *v; break;
          case core::DfsEntityKind::JobClass:
            config.cred_priorities.job_class[name] = *v; break;
          case core::DfsEntityKind::Qos:
            config.cred_priorities.qos[name] = *v; break;
        }
      } else if (key == "FSTARGET") {
        const auto v = parse_double(value);
        if (!expect(line, v, key)) continue;
        if (kind == core::DfsEntityKind::User)
          config.fairshare.user_targets[name] = *v;
        else
          issue(line, "FSTARGET is only supported for USERCFG");
      } else {
        issue(line, "unknown entity setting '" + key + "'");
      }
    }
    config.dfs.map_of(kind)[name] = limits;
  }

  void global_setting(int line, const std::string& key,
                      const std::vector<std::string>& args) {
    const auto one = [&]() -> std::optional<std::string> {
      if (args.size() != 1) {
        issue(line, key + " expects exactly one value");
        return std::nullopt;
      }
      return args[0];
    };
    if (key == "DFSPOLICY") {
      if (const auto v = one()) {
        const auto p = core::parse_dfs_policy(*v);
        if (expect(line, p, key)) config.dfs.policy = *p;
      }
    } else if (key == "DFSINTERVAL") {
      if (const auto v = one())
        if (const auto d = parse_duration(*v); expect(line, d, key))
          config.dfs.interval = *d;
    } else if (key == "DFSDECAY") {
      if (const auto v = one())
        if (const auto d = parse_double(*v); expect(line, d, key))
          config.dfs.decay = *d;
    } else if (key == "RESERVATIONDEPTH") {
      if (const auto v = one())
        if (const auto n = parse_int(*v); expect(line, n, key))
          config.reservation_depth = static_cast<std::size_t>(*n);
    } else if (key == "RESERVATIONDELAYDEPTH") {
      if (const auto v = one())
        if (const auto n = parse_int(*v); expect(line, n, key))
          config.reservation_delay_depth = static_cast<std::size_t>(*n);
    } else if (key == "BACKFILL") {
      if (const auto v = one())
        if (const auto b = parse_bool(*v); expect(line, b, key))
          config.enable_backfill = *b;
    } else if (key == "QUEUETIMEWEIGHT") {
      if (const auto v = one())
        if (const auto d = parse_double(*v); expect(line, d, key))
          config.weights.queue_time_per_minute = *d;
    } else if (key == "XFACTORWEIGHT") {
      if (const auto v = one())
        if (const auto d = parse_double(*v); expect(line, d, key))
          config.weights.xfactor = *d;
    } else if (key == "RESWEIGHT") {
      if (const auto v = one())
        if (const auto d = parse_double(*v); expect(line, d, key))
          config.weights.per_core = *d;
    } else if (key == "CREDWEIGHT") {
      if (const auto v = one())
        if (const auto d = parse_double(*v); expect(line, d, key))
          config.weights.cred = *d;
    } else if (key == "FSWEIGHT") {
      if (const auto v = one())
        if (const auto d = parse_double(*v); expect(line, d, key))
          config.weights.fairshare = *d;
    } else if (key == "FAIRSHARE") {
      if (const auto v = one())
        if (const auto b = parse_bool(*v); expect(line, b, key))
          config.fairshare.enabled = *b;
    } else if (key == "FSINTERVAL") {
      if (const auto v = one())
        if (const auto d = parse_duration(*v); expect(line, d, key))
          config.fairshare.interval = *d;
    } else if (key == "FSDEPTH") {
      if (const auto v = one())
        if (const auto n = parse_int(*v); expect(line, n, key))
          config.fairshare.depth = static_cast<std::size_t>(*n);
    } else if (key == "FSDECAY") {
      if (const auto v = one())
        if (const auto d = parse_double(*v); expect(line, d, key))
          config.fairshare.decay = *d;
    } else if (key == "POLLINTERVAL") {
      if (const auto v = one())
        if (const auto d = parse_duration(*v); expect(line, d, key))
          config.poll_interval = *d;
    } else if (key == "PREEMPTION") {
      if (const auto v = one())
        if (const auto b = parse_bool(*v); expect(line, b, key))
          config.allow_preemption = *b;
    } else if (key == "MALLEABLESTEAL") {
      if (const auto v = one())
        if (const auto b = parse_bool(*v); expect(line, b, key))
          config.allow_malleable_steal = *b;
    } else if (key == "DYNPARTITION") {
      if (const auto v = one())
        if (const auto n = parse_int(*v); expect(line, n, key))
          config.dynamic_partition_cores = static_cast<CoreCount>(*n);
    } else if (key == "MAXJOBSPERUSER") {
      if (const auto v = one())
        if (const auto n = parse_int(*v); expect(line, n, key))
          config.max_eligible_per_user = static_cast<std::size_t>(*n);
    } else if (key == "STAGETIMING") {
      if (const auto v = one())
        if (const auto b = parse_bool(*v); expect(line, b, key))
          config.stage_timing = *b;
    } else if (key == "INCREMENTALPLANNING") {
      if (const auto v = one())
        if (const auto b = parse_bool(*v); expect(line, b, key))
          config.incremental_planning = *b;
    } else if (key == "CHECKINVARIANTS") {
      if (const auto v = one())
        if (const auto b = parse_bool(*v); expect(line, b, key))
          config.check_invariants = *b;
    } else if (key == "MEASURETHREADS") {
      if (const auto v = one()) {
        const auto n = parse_int(*v);
        if (!expect(line, n, key)) return;
        if (*n < 1)
          issue(line, "MEASURETHREADS must be >= 1");
        else
          config.measure_threads = static_cast<std::size_t>(*n);
      }
    } else if (key == "ALLOCATIONPOLICY") {
      if (const auto v = one()) {
        if (iequals(*v, "PACK"))
          config.allocation_policy = cluster::AllocationPolicy::Pack;
        else if (iequals(*v, "SPREAD"))
          config.allocation_policy = cluster::AllocationPolicy::Spread;
        else if (iequals(*v, "FIRSTFIT"))
          config.allocation_policy = cluster::AllocationPolicy::FirstFit;
        else
          issue(line, "unknown allocation policy '" + *v + "'");
      }
    } else if (key == "DFSDEFAULTCFG") {
      // Default limits applied to unconfigured entities.
      core::DfsEntityLimits limits = config.dfs.defaults;
      for (const std::string& kv : args) {
        const auto pair = split_once(kv, '=');
        if (!pair) {
          issue(line, "expected KEY=VALUE, got '" + kv + "'");
          continue;
        }
        const std::string k = to_upper(pair->first);
        if (k == "DFSDYNDELAYPERM") {
          if (const auto b = parse_bool(pair->second); expect(line, b, k))
            limits.delay_perm = *b;
        } else if (k == "DFSSINGLEDELAYTIME") {
          if (const auto d = parse_duration(pair->second); expect(line, d, k))
            limits.single_delay = *d;
        } else if (k == "DFSTARGETDELAYTIME") {
          if (const auto d = parse_duration(pair->second); expect(line, d, k))
            limits.target_delay = *d;
        } else {
          issue(line, "unknown default setting '" + k + "'");
        }
      }
      config.dfs.defaults = limits;
    } else {
      issue(line, "unknown key '" + key + "'");
    }
  }

  void parse_line(int line, const std::string& content) {
    const std::vector<std::string> tokens = split(content);
    if (tokens.empty()) return;
    const std::string head = to_upper(tokens[0]);
    const std::vector<std::string> args(tokens.begin() + 1, tokens.end());

    // Entity config: USERCFG[name], GROUPCFG[name], ...
    static constexpr std::pair<const char*, core::DfsEntityKind> kEntities[] = {
        {"USERCFG", core::DfsEntityKind::User},
        {"GROUPCFG", core::DfsEntityKind::Group},
        {"ACCOUNTCFG", core::DfsEntityKind::Account},
        {"CLASSCFG", core::DfsEntityKind::JobClass},
        {"QOSCFG", core::DfsEntityKind::Qos},
    };
    for (const auto& [prefix, kind] : kEntities) {
      const std::string p = std::string(prefix) + "[";
      if (head.rfind(p, 0) == 0) {
        if (head.back() != ']') {
          issue(line, "missing ']' in '" + tokens[0] + "'");
          return;
        }
        // Preserve the original case of the entity name.
        const std::string name =
            tokens[0].substr(p.size(), tokens[0].size() - p.size() - 1);
        if (name.empty()) {
          issue(line, "empty entity name");
          return;
        }
        entity_settings(line, kind, name, args);
        return;
      }
    }
    global_setting(line, head, args);
  }
};

}  // namespace

ParseResult parse_maui_config(std::string_view text) {
  Parser parser;
  for (const auto& [line, content] : logical_lines(text))
    parser.parse_line(line, content);
  return {std::move(parser.config), std::move(parser.issues)};
}

core::SchedulerConfig parse_maui_config_or_throw(std::string_view text) {
  ParseResult result = parse_maui_config(text);
  if (!result.ok()) {
    const ParseIssue& first = result.issues.front();
    throw precondition_error("config line " + std::to_string(first.line) +
                             ": " + first.message);
  }
  result.config.validate();
  return std::move(result.config);
}

std::string render_dfs_config(const core::DfsConfig& dfs) {
  std::ostringstream os;
  os << "DFSPOLICY    " << core::to_string(dfs.policy) << "\n";
  os << "DFSINTERVAL  " << dfs.interval.to_hms() << "\n";
  os << "DFSDECAY     " << dfs.decay << "\n";
  static constexpr std::pair<const char*, core::DfsEntityKind> kEntities[] = {
      {"USERCFG", core::DfsEntityKind::User},
      {"GROUPCFG", core::DfsEntityKind::Group},
      {"ACCOUNTCFG", core::DfsEntityKind::Account},
      {"CLASSCFG", core::DfsEntityKind::JobClass},
      {"QOSCFG", core::DfsEntityKind::Qos},
  };
  for (const auto& [prefix, kind] : kEntities) {
    for (const auto& [name, limits] : dfs.map_of(kind)) {
      os << prefix << "[" << name << "] DFSDYNDELAYPERM="
         << (limits.delay_perm ? 1 : 0)
         << " DFSSINGLEDELAYTIME=" << limits.single_delay.to_hms()
         << " DFSTARGETDELAYTIME=" << limits.target_delay.to_hms() << "\n";
    }
  }
  return os.str();
}

}  // namespace dbs::cfg
