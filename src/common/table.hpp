// ASCII table and CSV formatting for benchmark/report output.
#pragma once

#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dbs {

/// Column-aligned text table. Cells are strings; helpers format numbers.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }

  /// Renders with a header separator and column padding.
  [[nodiscard]] std::string to_string() const;

  /// Renders RFC-4180-ish CSV (quotes cells containing comma/quote/newline).
  [[nodiscard]] std::string to_csv() const;

  /// Formats a double with `digits` decimal places.
  [[nodiscard]] static std::string num(double v, int digits = 2);
  /// Formats any integer verbatim.
  template <class T>
    requires std::integral<T>
  [[nodiscard]] static std::string num(T v) {
    return std::to_string(v);
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& t);

}  // namespace dbs
