// Strong identifier types shared across subsystems. Each id is a distinct
// type so a JobId cannot silently be used where a NodeId is expected.
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <iosfwd>
#include <string>

namespace dbs {

namespace detail {
/// CRTP-free tagged integer id. `Tag` makes each instantiation unique.
template <class Tag>
class TaggedId {
 public:
  constexpr TaggedId() = default;
  explicit constexpr TaggedId(std::uint64_t v) : v_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return v_; }
  [[nodiscard]] static constexpr TaggedId invalid() { return TaggedId(~std::uint64_t{0}); }
  [[nodiscard]] constexpr bool valid() const { return v_ != ~std::uint64_t{0}; }

  constexpr auto operator<=>(const TaggedId&) const = default;

 private:
  std::uint64_t v_ = ~std::uint64_t{0};
};
}  // namespace detail

struct JobIdTag {};
struct NodeIdTag {};
struct EventIdTag {};
struct RequestIdTag {};

/// Identifies a job at the server (monotonically assigned at submission).
using JobId = detail::TaggedId<JobIdTag>;
/// Identifies a compute node in the cluster.
using NodeId = detail::TaggedId<NodeIdTag>;
/// Identifies a scheduled simulation event (for cancellation).
using EventId = detail::TaggedId<EventIdTag>;
/// Identifies a dynamic (tm_dynget) request.
using RequestId = detail::TaggedId<RequestIdTag>;

template <class Tag>
std::ostream& operator<<(std::ostream& os, detail::TaggedId<Tag> id) {
  if (!id.valid()) return os << "#invalid";
  return os << '#' << id.value();
}

/// Number of processor cores; the simulator's unit of allocation.
using CoreCount = std::int32_t;

/// Accounting entities a job belongs to (Maui credentials).
struct Credentials {
  std::string user;
  std::string group;
  std::string account;
  std::string job_class;  ///< queue/class, e.g. "batch"
  std::string qos;

  [[nodiscard]] bool operator==(const Credentials&) const = default;
};

}  // namespace dbs

template <class Tag>
struct std::hash<dbs::detail::TaggedId<Tag>> {
  std::size_t operator()(const dbs::detail::TaggedId<Tag>& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
