// Strong simulated-time types. All simulation time is kept as integral
// microsecond ticks so event ordering is exact and runs are reproducible;
// floating point appears only at presentation boundaries.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace dbs {

/// A span of simulated time (may be negative, e.g. a delay difference).
class Duration {
 public:
  constexpr Duration() = default;

  [[nodiscard]] static constexpr Duration micros(std::int64_t v) { return Duration(v); }
  [[nodiscard]] static constexpr Duration millis(std::int64_t v) { return Duration(v * 1000); }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t v) { return Duration(v * 1'000'000); }
  [[nodiscard]] static constexpr Duration minutes(std::int64_t v) { return seconds(v * 60); }
  [[nodiscard]] static constexpr Duration hours(std::int64_t v) { return seconds(v * 3600); }
  /// Rounds to the nearest microsecond.
  [[nodiscard]] static Duration seconds_f(double v);
  [[nodiscard]] static constexpr Duration zero() { return Duration(0); }
  /// Larger than any duration arising in practice; safe to add to any Time.
  [[nodiscard]] static constexpr Duration infinite() { return Duration(std::int64_t{1} << 60); }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr double as_minutes() const { return as_seconds() / 60.0; }
  [[nodiscard]] constexpr bool is_zero() const { return us_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return us_ < 0; }

  constexpr Duration operator+(Duration o) const { return Duration(us_ + o.us_); }
  constexpr Duration operator-(Duration o) const { return Duration(us_ - o.us_); }
  constexpr Duration operator-() const { return Duration(-us_); }
  constexpr Duration& operator+=(Duration o) { us_ += o.us_; return *this; }
  constexpr Duration& operator-=(Duration o) { us_ -= o.us_; return *this; }
  /// Scaling rounds to the nearest microsecond.
  [[nodiscard]] Duration scaled(double factor) const;
  constexpr Duration operator*(std::int64_t k) const { return Duration(us_ * k); }
  constexpr Duration operator/(std::int64_t k) const { return Duration(us_ / k); }
  /// Ratio of two durations; divisor must be non-zero.
  [[nodiscard]] double ratio(Duration denom) const;

  constexpr auto operator<=>(const Duration&) const = default;

  /// "HH:MM:SS", negative-aware; sub-second part dropped.
  [[nodiscard]] std::string to_hms() const;
  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

/// An absolute point on the simulation clock (epoch = simulation start).
class Time {
 public:
  constexpr Time() = default;

  [[nodiscard]] static constexpr Time epoch() { return Time(); }
  [[nodiscard]] static constexpr Time from_micros(std::int64_t v) { return Time(v); }
  [[nodiscard]] static constexpr Time from_seconds(std::int64_t v) { return Time(v * 1'000'000); }
  /// A sentinel later than any event; adding small durations stays ordered.
  [[nodiscard]] static constexpr Time far_future() { return Time(std::int64_t{1} << 61); }

  [[nodiscard]] constexpr std::int64_t as_micros() const { return us_; }
  [[nodiscard]] constexpr double as_seconds() const { return static_cast<double>(us_) / 1e6; }
  [[nodiscard]] constexpr Duration since_epoch() const { return Duration::micros(us_); }

  constexpr Time operator+(Duration d) const { return Time(us_ + d.as_micros()); }
  constexpr Time operator-(Duration d) const { return Time(us_ - d.as_micros()); }
  constexpr Duration operator-(Time o) const { return Duration::micros(us_ - o.us_); }
  constexpr Time& operator+=(Duration d) { us_ += d.as_micros(); return *this; }

  constexpr auto operator<=>(const Time&) const = default;

  [[nodiscard]] std::string to_string() const;

 private:
  explicit constexpr Time(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

[[nodiscard]] constexpr Time min(Time a, Time b) { return a < b ? a : b; }
[[nodiscard]] constexpr Time max(Time a, Time b) { return a < b ? b : a; }
[[nodiscard]] constexpr Duration min(Duration a, Duration b) { return a < b ? a : b; }
[[nodiscard]] constexpr Duration max(Duration a, Duration b) { return a < b ? b : a; }

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace dbs
