#include "common/string_util.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace dbs {

std::string_view trim(std::string_view s) {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_space(s[b])) ++b;
  while (e > b && is_space(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, std::string_view seps) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && seps.find(s[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < s.size() && seps.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::optional<std::pair<std::string, std::string>> split_once(
    std::string_view s, char sep) {
  const auto pos = s.find(sep);
  if (pos == std::string_view::npos) return std::nullopt;
  return std::make_pair(std::string(s.substr(0, pos)),
                        std::string(s.substr(pos + 1)));
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::optional<Duration> parse_duration(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // Reject empty components ("12:", ":30", "1::2") before splitting, since
  // split() silently drops them.
  if (s.front() == ':' || s.back() == ':' ||
      s.find("::") != std::string_view::npos)
    return std::nullopt;
  const auto fields = split(s, ":");
  if (fields.empty() || fields.size() > 3) return std::nullopt;
  // Each colon-separated field must be a plain non-negative integer.
  std::int64_t total = 0;
  for (const auto& f : fields) {
    const auto v = parse_int(f);
    if (!v) return std::nullopt;
    total = total * 60 + *v;
  }
  return Duration::seconds(total);
}

std::optional<bool> parse_bool(std::string_view s) {
  s = trim(s);
  if (s == "1" || iequals(s, "true") || iequals(s, "yes") || iequals(s, "on"))
    return true;
  if (s == "0" || iequals(s, "false") || iequals(s, "no") || iequals(s, "off"))
    return false;
  return std::nullopt;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || value < 0)
    return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars for double is unreliable across libstdc++ versions in
  // some environments; strtod on a NUL-terminated copy is portable.
  const std::string copy(s);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return std::nullopt;
  return v;
}

}  // namespace dbs
