// Minimal leveled logger. Off by default so simulations are silent; tests
// and examples can raise the level to trace scheduler decisions.
#pragma once

#include <sstream>
#include <string>

namespace dbs {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Off = 4 };

namespace logging {
/// Global threshold; messages below it are discarded.
void set_level(LogLevel level);
[[nodiscard]] LogLevel level();
/// Emits one line to stderr with a level prefix.
void emit(LogLevel level, const std::string& msg);
}  // namespace logging

}  // namespace dbs

#define DBS_LOG(lvl, expr)                                                   \
  do {                                                                       \
    if (static_cast<int>(lvl) >= static_cast<int>(::dbs::logging::level())) {\
      std::ostringstream dbs_log_os_;                                        \
      dbs_log_os_ << expr;                                                   \
      ::dbs::logging::emit(lvl, dbs_log_os_.str());                          \
    }                                                                        \
  } while (0)

#define DBS_TRACE(expr) DBS_LOG(::dbs::LogLevel::Trace, expr)
#define DBS_DEBUG(expr) DBS_LOG(::dbs::LogLevel::Debug, expr)
#define DBS_INFO(expr) DBS_LOG(::dbs::LogLevel::Info, expr)
#define DBS_WARN(expr) DBS_LOG(::dbs::LogLevel::Warn, expr)
