// Minimal leveled logger. Off by default so simulations are silent; tests
// and examples can raise the level to trace scheduler decisions, and the
// DBS_LOG_LEVEL environment variable (trace|debug|info|warn|off) sets the
// initial level without touching code.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "common/time.hpp"

namespace dbs {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Off = 4 };

namespace logging {
/// Global threshold; messages below it are discarded.
void set_level(LogLevel level);
[[nodiscard]] LogLevel level();
/// Emits one line to stderr with a level prefix (and the simulated
/// timestamp while a simulator clock is registered).
void emit(LogLevel level, const std::string& msg);

/// Parses a level name ("trace", "debug", "info", "warn"/"warning",
/// "off"/"none"), case-insensitively. nullopt on anything else.
[[nodiscard]] std::optional<LogLevel> parse_level(std::string_view text);

/// Re-reads DBS_LOG_LEVEL and applies it (unknown/unset values leave the
/// level untouched). Called once automatically before main(); exposed for
/// tests.
void init_from_env();

/// Registers a simulated-clock provider owned by `owner` (typically the
/// running sim::Simulator); log lines gain a "[HH:MM:SS]" simulated
/// timestamp. A later registration replaces the current one.
void register_sim_clock(const void* owner, Time (*now)(const void* owner));
/// Unregisters `owner`'s clock; no-op if another owner took over since.
void unregister_sim_clock(const void* owner);
}  // namespace logging

}  // namespace dbs

#define DBS_LOG(lvl, expr)                                                   \
  do {                                                                       \
    if (static_cast<int>(lvl) >= static_cast<int>(::dbs::logging::level())) {\
      std::ostringstream dbs_log_os_;                                        \
      dbs_log_os_ << expr;                                                   \
      ::dbs::logging::emit(lvl, dbs_log_os_.str());                          \
    }                                                                        \
  } while (0)

#define DBS_TRACE(expr) DBS_LOG(::dbs::LogLevel::Trace, expr)
#define DBS_DEBUG(expr) DBS_LOG(::dbs::LogLevel::Debug, expr)
#define DBS_INFO(expr) DBS_LOG(::dbs::LogLevel::Info, expr)
#define DBS_WARN(expr) DBS_LOG(::dbs::LogLevel::Warn, expr)
