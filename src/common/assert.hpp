// Contract-checking macros, in the spirit of the C++ Core Guidelines'
// Expects()/Ensures(). Violations throw so tests can exercise them; they are
// never compiled out because the simulator's correctness depends on them.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace dbs {

/// Thrown when a precondition (caller bug) is violated.
class precondition_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when an internal invariant (library bug) is violated.
class invariant_error : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  if (std::string(kind) == "precondition") throw precondition_error(os.str());
  throw invariant_error(os.str());
}
}  // namespace detail

}  // namespace dbs

/// Precondition on the caller. Use at public API boundaries.
#define DBS_REQUIRE(cond, msg)                                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::dbs::detail::contract_fail("precondition", #cond, __FILE__,          \
                                   __LINE__, (msg));                         \
  } while (0)

/// Internal invariant. Use inside implementations.
#define DBS_ASSERT(cond, msg)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::dbs::detail::contract_fail("invariant", #cond, __FILE__, __LINE__,   \
                                   (msg));                                   \
  } while (0)
