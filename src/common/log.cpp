#include "common/log.hpp"

#include <atomic>
#include <iostream>

namespace dbs::logging {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Off};

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "[trace] ";
    case LogLevel::Debug: return "[debug] ";
    case LogLevel::Info:  return "[info ] ";
    case LogLevel::Warn:  return "[warn ] ";
    case LogLevel::Off:   return "";
  }
  return "";
}
}  // namespace

void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

void emit(LogLevel lvl, const std::string& msg) {
  std::cerr << prefix(lvl) << msg << '\n';
}

}  // namespace dbs::logging
