#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>

namespace dbs::logging {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Off};

const void* g_clock_owner = nullptr;
Time (*g_clock_now)(const void*) = nullptr;

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "[trace] ";
    case LogLevel::Debug: return "[debug] ";
    case LogLevel::Info:  return "[info ] ";
    case LogLevel::Warn:  return "[warn ] ";
    case LogLevel::Off:   return "";
  }
  return "";
}

/// Applies DBS_LOG_LEVEL once during static initialization.
[[maybe_unused]] const bool g_env_applied = [] {
  init_from_env();
  return true;
}();

}  // namespace

void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text)
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

void init_from_env() {
  const char* env = std::getenv("DBS_LOG_LEVEL");
  if (env == nullptr) return;
  if (const std::optional<LogLevel> parsed = parse_level(env))
    set_level(*parsed);
}

void register_sim_clock(const void* owner, Time (*now)(const void* owner)) {
  g_clock_owner = owner;
  g_clock_now = now;
}

void unregister_sim_clock(const void* owner) {
  if (g_clock_owner != owner) return;
  g_clock_owner = nullptr;
  g_clock_now = nullptr;
}

void emit(LogLevel lvl, const std::string& msg) {
  std::cerr << prefix(lvl);
  if (g_clock_now != nullptr)
    std::cerr << '[' << g_clock_now(g_clock_owner).to_string() << "] ";
  std::cerr << msg << '\n';
}

}  // namespace dbs::logging
