#include "common/log.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>

namespace dbs::logging {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Off};

// Simulators register/unregister concurrently when replications run on a
// ParallelRunner; the mutex also pins the owner alive for the duration of
// an emit() (unregister_sim_clock blocks until the callback returns).
std::mutex g_clock_mutex;
const void* g_clock_owner = nullptr;       // guarded by g_clock_mutex
Time (*g_clock_now)(const void*) = nullptr;  // guarded by g_clock_mutex

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "[trace] ";
    case LogLevel::Debug: return "[debug] ";
    case LogLevel::Info:  return "[info ] ";
    case LogLevel::Warn:  return "[warn ] ";
    case LogLevel::Off:   return "";
  }
  return "";
}

/// Applies DBS_LOG_LEVEL once during static initialization.
[[maybe_unused]] const bool g_env_applied = [] {
  init_from_env();
  return true;
}();

}  // namespace

void set_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_level(std::string_view text) {
  std::string lower;
  lower.reserve(text.size());
  for (const char c : text)
    lower.push_back(static_cast<char>(
        std::tolower(static_cast<unsigned char>(c))));
  if (lower == "trace") return LogLevel::Trace;
  if (lower == "debug") return LogLevel::Debug;
  if (lower == "info") return LogLevel::Info;
  if (lower == "warn" || lower == "warning") return LogLevel::Warn;
  if (lower == "off" || lower == "none") return LogLevel::Off;
  return std::nullopt;
}

void init_from_env() {
  const char* env = std::getenv("DBS_LOG_LEVEL");
  if (env == nullptr) return;
  if (const std::optional<LogLevel> parsed = parse_level(env))
    set_level(*parsed);
}

void register_sim_clock(const void* owner, Time (*now)(const void* owner)) {
  const std::lock_guard<std::mutex> lock(g_clock_mutex);
  g_clock_owner = owner;
  g_clock_now = now;
}

void unregister_sim_clock(const void* owner) {
  const std::lock_guard<std::mutex> lock(g_clock_mutex);
  if (g_clock_owner != owner) return;
  g_clock_owner = nullptr;
  g_clock_now = nullptr;
}

void emit(LogLevel lvl, const std::string& msg) {
  const std::lock_guard<std::mutex> lock(g_clock_mutex);
  std::cerr << prefix(lvl);
  if (g_clock_now != nullptr)
    std::cerr << '[' << g_clock_now(g_clock_owner).to_string() << "] ";
  std::cerr << msg << '\n';
}

}  // namespace dbs::logging
