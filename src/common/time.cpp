#include "common/time.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/assert.hpp"

namespace dbs {

Duration Duration::seconds_f(double v) {
  return Duration(static_cast<std::int64_t>(std::llround(v * 1e6)));
}

Duration Duration::scaled(double factor) const {
  return Duration(static_cast<std::int64_t>(
      std::llround(static_cast<double>(us_) * factor)));
}

double Duration::ratio(Duration denom) const {
  DBS_REQUIRE(!denom.is_zero(), "division by zero duration");
  return static_cast<double>(us_) / static_cast<double>(denom.us_);
}

std::string Duration::to_hms() const {
  std::int64_t total = us_ / 1'000'000;
  const bool neg = total < 0;
  if (neg) total = -total;
  const std::int64_t h = total / 3600;
  const std::int64_t m = (total % 3600) / 60;
  const std::int64_t s = total % 60;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%02lld:%02lld:%02lld", neg ? "-" : "",
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s));
  return buf;
}

std::string Duration::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3fs", as_seconds());
  return buf;
}

std::string Time::to_string() const {
  return since_epoch().to_hms();
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.to_string();
}

std::ostream& operator<<(std::ostream& os, Time t) {
  return os << t.to_string();
}

}  // namespace dbs
