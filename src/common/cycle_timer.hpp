// Sub-microsecond span timing for hot paths.
//
// std::chrono::steady_clock::now() costs ~20-25 ns per call (vDSO
// clock_gettime); timing the six pipeline stages of a scheduler iteration
// with it would cost more than many iterations take. On x86-64 we read the
// invariant TSC instead (~6 ns) and convert accumulated tick deltas to
// microseconds once, outside the timed window, using a ratio calibrated
// against steady_clock on first use. Other architectures fall back to
// steady_clock transparently.
//
// Tick values are only meaningful within one process and must only be
// differenced, never interpreted as absolute time.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define DBS_CYCLE_TIMER_TSC 1
#endif

namespace dbs {

class CycleTimer {
 public:
  /// A monotonic tick stamp. On x86-64: the TSC; elsewhere: steady_clock
  /// nanoseconds.
  static std::uint64_t now() {
#ifdef DBS_CYCLE_TIMER_TSC
    return __rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
#endif
  }

  /// Converts a tick delta to microseconds. The first call calibrates the
  /// tick rate (~200 us, once per process); keep it off latency-critical
  /// first iterations if that matters, or call warm_up() at startup.
  static double to_micros(std::uint64_t ticks) {
    return static_cast<double>(ticks) * micros_per_tick();
  }

  /// Forces calibration now.
  static void warm_up() { (void)micros_per_tick(); }

 private:
  static double micros_per_tick();
};

}  // namespace dbs
