// Deterministic pseudo-random number generation. The simulator never uses
// std::random_device or global state: every randomized component takes an
// explicit seeded Rng so runs are exactly reproducible.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace dbs {

/// One splitmix64 step: advances `state` and returns the next output.
/// Exposed standalone because it is also the seed-derivation primitive.
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Seed for replication `index` of a campaign with base seed `base`.
///
/// Two splitmix64 steps over (base, index) give statistically independent
/// streams for adjacent indices and bases — feeding `base + index` straight
/// into Rng would hand structurally related state to neighbouring
/// replications. Stable across thread counts by construction: the seed
/// depends only on the replication index, never on which worker runs it.
constexpr std::uint64_t replication_seed(std::uint64_t base,
                                         std::uint64_t index) {
  std::uint64_t state = base;
  (void)splitmix64_next(state);
  state ^= 0xD1B54A32D192ED03ULL * (index + 1);
  return splitmix64_next(state);
}

/// xoshiro256** — small, fast, high-quality; seeded via splitmix64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64_next(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound), bound > 0. Uses rejection to avoid bias.
  std::uint64_t next_below(std::uint64_t bound) {
    DBS_REQUIRE(bound > 0, "bound must be positive");
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_int(std::int64_t lo, std::int64_t hi) {
    DBS_REQUIRE(lo <= hi, "empty range");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// The full generator state, for durable snapshots: a restored Rng
  /// continues the exact stream the saved one would have produced.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const {
    return {s_[0], s_[1], s_[2], s_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    DBS_REQUIRE(s[0] != 0 || s[1] != 0 || s[2] != 0 || s[3] != 0,
                "the all-zero state is a fixed point of xoshiro256**");
    for (std::size_t i = 0; i < 4; ++i) s_[i] = s[i];
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace dbs
