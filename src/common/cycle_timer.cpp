#include "common/cycle_timer.hpp"

namespace dbs {

namespace {

double calibrate() {
#ifdef DBS_CYCLE_TIMER_TSC
  // Measure the TSC rate against steady_clock over a short spin. 200 us is
  // long enough that the ~25 ns clock_gettime jitter at the endpoints is
  // noise (<0.05%), short enough to be invisible at startup.
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = __rdtsc();
  for (;;) {
    const auto t1 = std::chrono::steady_clock::now();
    const std::uint64_t c1 = __rdtsc();
    const auto ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count();
    if (ns >= 200'000 && c1 > c0)
      return (static_cast<double>(ns) / 1000.0) / static_cast<double>(c1 - c0);
  }
#else
  return 1.0 / 1000.0;  // ticks are steady_clock nanoseconds
#endif
}

}  // namespace

double CycleTimer::micros_per_tick() {
  // Thread-safe magic static; calibration runs once per process.
  static const double ratio = calibrate();
  return ratio;
}

}  // namespace dbs
