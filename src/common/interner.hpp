// A shared append-only string table: each distinct string is stored once
// and handed out as a small integer id plus a stable string_view.
//
// Replay-scale workloads repeat the same few hundred user/group/queue
// names across millions of job records; interning turns the per-job cost
// into one hash probe and the storage into O(distinct strings). Id 0 is
// always the empty string (mirroring the flight recorder's table).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dbs::common {

class StringInterner {
 public:
  StringInterner() { (void)intern(""); }

  /// Returns the id of `s`, inserting it on first sight. Ids are dense
  /// and start at 0 (the empty string).
  std::uint32_t intern(std::string_view s);

  /// The interned string for `id`. The view is stable for the lifetime of
  /// the interner. Precondition: id < size().
  [[nodiscard]] std::string_view view(std::uint32_t id) const {
    return by_id_[id];
  }

  /// Number of distinct strings interned (including the empty string).
  [[nodiscard]] std::size_t size() const { return by_id_.size(); }

 private:
  // deque: stable references on growth, so by_id_ views and map keys can
  // point into the stored strings without re-hashing on rehash/resize.
  std::deque<std::string> storage_;
  std::vector<std::string_view> by_id_;
  std::unordered_map<std::string_view, std::uint32_t> ids_;
};

}  // namespace dbs::common
