// Small string helpers used by the config parser, trace I/O and reporting.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"

namespace dbs {

/// Strips leading/trailing whitespace.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Splits on any character in `seps`, dropping empty fields.
[[nodiscard]] std::vector<std::string> split(std::string_view s,
                                             std::string_view seps = " \t");

/// Splits on the first occurrence of `sep`; nullopt if absent.
[[nodiscard]] std::optional<std::pair<std::string, std::string>> split_once(
    std::string_view s, char sep);

/// Case-insensitive comparison (ASCII).
[[nodiscard]] bool iequals(std::string_view a, std::string_view b);

/// Uppercases ASCII.
[[nodiscard]] std::string to_upper(std::string_view s);

/// Parses "HH:MM:SS", "MM:SS" or plain seconds into a Duration.
/// Returns nullopt for malformed input.
[[nodiscard]] std::optional<Duration> parse_duration(std::string_view s);

/// Parses a boolean-ish token: 1/0, true/false, yes/no, on/off.
[[nodiscard]] std::optional<bool> parse_bool(std::string_view s);

/// Parses a non-negative integer; nullopt on malformed input or overflow.
[[nodiscard]] std::optional<std::int64_t> parse_int(std::string_view s);

/// Parses a double; nullopt on malformed input.
[[nodiscard]] std::optional<double> parse_double(std::string_view s);

}  // namespace dbs
