#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"

namespace dbs {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  DBS_REQUIRE(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  DBS_REQUIRE(cells.size() == header_.size(),
              "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|" : "|") << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  const auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << quote(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TextTable::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.to_string();
}

}  // namespace dbs
