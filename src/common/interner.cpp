#include "common/interner.hpp"

namespace dbs::common {

std::uint32_t StringInterner::intern(std::string_view s) {
  if (const auto it = ids_.find(s); it != ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(by_id_.size());
  storage_.emplace_back(s);
  const std::string_view stored = storage_.back();
  by_id_.push_back(stored);
  ids_.emplace(stored, id);
  return id;
}

}  // namespace dbs::common
