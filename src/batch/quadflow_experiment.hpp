// The Quadflow case study (Fig. 7): per-phase execution times of the
// FlatPlate and Cylinder cases under static-16, static-32 and dynamic
// 16→32 scenarios — both from the analytic model and through the full
// batch system.
#pragma once

#include <vector>

#include "apps/quadflow_model.hpp"
#include "batch/batch_system.hpp"

namespace dbs::batch {

struct QuadflowFigure {
  amr::QuadflowCase test_case;
  apps::QuadflowScenario static_small;   ///< 16 cores
  apps::QuadflowScenario static_large;   ///< 32 cores
  apps::QuadflowScenario dynamic;        ///< 16 -> 32 at the trigger
  /// (dynamic total vs static_small total) savings in percent.
  double saving_percent = 0.0;
};

/// Computes the figure for one case from the analytic model.
[[nodiscard]] QuadflowFigure quadflow_figure(const amr::QuadflowCase& c,
                                             CoreCount small_cores = 16,
                                             CoreCount extra_cores = 16);

/// Runs the dynamic scenario through the full batch system on an idle
/// cluster and returns the job's measured turnaround (validates that the
/// batch path matches the analytic model up to protocol latencies).
[[nodiscard]] Duration quadflow_batch_turnaround(const amr::QuadflowCase& c,
                                                 CoreCount initial_cores,
                                                 CoreCount extra_cores,
                                                 std::size_t node_count,
                                                 CoreCount cores_per_node);

}  // namespace dbs::batch
