// Shared experiment plumbing: run a workload through a configured system
// and capture everything reports need.
#pragma once

#include <string>
#include <vector>

#include "batch/batch_system.hpp"
#include "metrics/report.hpp"
#include "workload/esp.hpp"

namespace dbs::obs {
class Registry;
}

namespace dbs::batch {

struct RunResult {
  std::string label;
  metrics::WorkloadSummary summary;
  std::vector<metrics::JobRecord> jobs;   ///< in submission order
  std::vector<metrics::WaitPoint> waits;  ///< completed jobs, submission order
  std::uint64_t scheduler_iterations = 0;
  std::uint64_t events = 0;

  /// Waiting times restricted to one ESP type letter.
  [[nodiscard]] std::vector<metrics::WaitPoint> waits_of_type(
      const std::string& tag) const;
};

/// Builds the system, injects the workload, runs to completion. When
/// `registry` is non-null the system's metrics land there instead of the
/// global registry — required when runs execute concurrently (see
/// batch/parallel_runner.hpp).
[[nodiscard]] RunResult run_workload(const SystemConfig& config,
                                     const wl::Workload& workload,
                                     std::string label,
                                     obs::Registry* registry = nullptr);

}  // namespace dbs::batch
