// Shared experiment plumbing: run a workload through a configured system
// and capture everything reports need.
#pragma once

#include <string>
#include <vector>

#include "batch/batch_system.hpp"
#include "metrics/report.hpp"
#include "workload/esp.hpp"

namespace dbs::batch {

struct RunResult {
  std::string label;
  metrics::WorkloadSummary summary;
  std::vector<metrics::JobRecord> jobs;   ///< in submission order
  std::vector<metrics::WaitPoint> waits;  ///< completed jobs, submission order
  std::uint64_t scheduler_iterations = 0;
  std::uint64_t events = 0;

  /// Waiting times restricted to one ESP type letter.
  [[nodiscard]] std::vector<metrics::WaitPoint> waits_of_type(
      const std::string& tag) const;
};

/// Builds the system, injects the workload, runs to completion.
[[nodiscard]] RunResult run_workload(const SystemConfig& config,
                                     const wl::Workload& workload,
                                     std::string label);

}  // namespace dbs::batch
