#include "batch/parallel_runner.hpp"

#include <cstdlib>
#include <string>

namespace dbs::batch {

std::size_t jobs_from_env(std::size_t fallback) {
  const char* raw = std::getenv("DBS_BENCH_JOBS");
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long value = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || value < 1) return fallback;
  return static_cast<std::size_t>(value);
}

}  // namespace dbs::batch
