#include "batch/batch_system.hpp"

#include "common/assert.hpp"
#include "obs/recorder/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace dbs::batch {

void BatchSystem::set_sinks(const obs::Sinks& sinks) {
  if (sinks.tracer != nullptr)
    sinks.tracer->set_clock([this] { return sim_.now(); });
  if (sinks.recorder != nullptr)
    sinks.recorder->set_clock([this] { return sim_.now(); });
  tracer_ = sinks.tracer;
  server_.set_sinks(sinks);
  moms_.set_sinks(sinks);
  scheduler_.set_sinks(sinks);
}

BatchSystem::BatchSystem(const SystemConfig& config)
    : config_(config),
      cluster_(config.cluster),
      server_(sim_, cluster_, config.latency),
      moms_(sim_, server_, config.latency),
      recorder_(sim_, cluster_),
      scheduler_(server_, config.scheduler) {
  server_.set_moms(&moms_);
  server_.add_observer(&recorder_);
  scheduler_.attach();
}

JobId BatchSystem::submit_now(rms::JobSpec spec,
                              std::unique_ptr<rms::Application> app) {
  return server_.submit(std::move(spec), std::move(app));
}

void BatchSystem::submit_at(
    Time at, rms::JobSpec spec,
    std::function<std::unique_ptr<rms::Application>()> app_factory) {
  DBS_REQUIRE(app_factory != nullptr, "application factory required");
  sim_.schedule_at(at + config_.latency.client_to_server,
                   [this, spec = std::move(spec),
                    factory = std::move(app_factory)]() mutable {
                     server_.submit(std::move(spec), factory());
                   });
}

void BatchSystem::submit_workload(const wl::Workload& workload) {
  for (const wl::SubmitSpec& s : workload.jobs) {
    submit_at(s.at, s.spec, [behavior = s.behavior, model = config_.speedup] {
      return apps::make_application(behavior, model);
    });
  }
}

void BatchSystem::run() {
  sim_.run();
  cluster_.check_invariants();
  // End of simulation: push buffered trace events to disk so a crash in
  // post-run analysis can't lose the tail of the trace. The tracer stays
  // open — the owner may run further simulations before close().
  if (tracer_ != nullptr) tracer_->flush();
}

void BatchSystem::run_until(Time until) {
  sim_.run_until(until);
  cluster_.check_invariants();
}

}  // namespace dbs::batch
