#include "batch/batch_system.hpp"

#include "common/assert.hpp"
#include "obs/recorder/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace dbs::batch {

void BatchSystem::set_sinks(const obs::Sinks& sinks) {
  if (sinks.tracer != nullptr)
    sinks.tracer->set_clock([this] { return sim_.now(); });
  if (sinks.recorder != nullptr)
    sinks.recorder->set_clock([this] { return sim_.now(); });
  tracer_ = sinks.tracer;
  server_.set_sinks(sinks);
  moms_.set_sinks(sinks);
  scheduler_.set_sinks(sinks);
}

BatchSystem::BatchSystem(const SystemConfig& config)
    : config_(config),
      cluster_(config.cluster),
      server_(sim_, cluster_, config.latency),
      moms_(sim_, server_, config.latency),
      recorder_(sim_, cluster_),
      scheduler_(server_, config.scheduler) {
  server_.set_moms(&moms_);
  server_.add_observer(&recorder_);
  if (config.streaming_metrics) recorder_.set_streaming(true);
  if (config.retire_finished_jobs) {
    // The grace period must outlast every latency-delayed closure that can
    // still look a completed job up by id (in-flight mom/server messages,
    // join chains, the coalesced scheduler wake-up). Sum the model's hops
    // with a generous multiplier plus a constant floor — retirement only
    // needs to be prompt relative to a trace's hours-long job lifetimes.
    const rms::LatencyModel& l = config.latency;
    const Duration grace = (l.client_to_server + l.server_to_mom +
                            l.mom_to_server + l.scheduler_delay) *
                               64 +
                           (l.join(cluster_.node_count()) +
                            l.dyn_join(cluster_.node_count())) *
                               4 +
                           Duration::seconds(1);
    server_.set_retirement(grace);
  }
  scheduler_.attach();
}

JobId BatchSystem::submit_now(rms::JobSpec spec,
                              std::unique_ptr<rms::Application> app) {
  return server_.submit(std::move(spec), std::move(app));
}

void BatchSystem::submit_at(
    Time at, rms::JobSpec spec,
    std::function<std::unique_ptr<rms::Application>()> app_factory) {
  DBS_REQUIRE(app_factory != nullptr, "application factory required");
  sim_.schedule_at(at + config_.latency.client_to_server,
                   [this, spec = std::move(spec),
                    factory = std::move(app_factory)]() mutable {
                     server_.submit(std::move(spec), factory());
                   });
}

void BatchSystem::schedule_submission(const wl::SubmitSpec& s) {
  sim_.schedule_submission(
      s.at + config_.latency.client_to_server,
      [this, spec = s.spec, behavior = s.behavior]() mutable {
        server_.submit(std::move(spec),
                       apps::make_application(behavior, config_.speedup));
      });
}

void BatchSystem::submit_workload(const wl::Workload& workload) {
  for (const wl::SubmitSpec& s : workload.jobs) schedule_submission(s);
}

// Each in-flight arrival event carries the pump: when it fires it first
// pulls the next record beyond the window and schedules it, then submits
// its own job. Pulls happen in trace order from a single chain of
// events, so submission-lane sequence numbers stay in trace order and
// the ordering matches the materialized path exactly.
struct BatchSystem::StreamPump {
  wl::SubmissionSource* source = nullptr;
  Time last_at = Time::epoch();
  bool exhausted = false;
};

void BatchSystem::pump_stream(const std::shared_ptr<StreamPump>& pump) {
  if (pump->exhausted) return;
  wl::SubmitSpec s;
  if (!pump->source->next(s)) {
    pump->exhausted = true;
    return;
  }
  DBS_REQUIRE(s.at >= pump->last_at,
              "submission source must yield non-decreasing times");
  pump->last_at = s.at;
  sim_.schedule_submission(
      s.at + config_.latency.client_to_server,
      [this, pump, spec = s.spec, behavior = s.behavior]() mutable {
        pump_stream(pump);  // refill the window before submitting
        server_.submit(std::move(spec),
                       apps::make_application(behavior, config_.speedup));
      });
}

void BatchSystem::submit_stream(wl::SubmissionSource& source,
                                std::size_t window) {
  DBS_REQUIRE(window > 0, "look-ahead window must be positive");
  auto pump = std::make_shared<StreamPump>();
  pump->source = &source;
  for (std::size_t i = 0; i < window && !pump->exhausted; ++i)
    pump_stream(pump);
}

void BatchSystem::run() {
  sim_.run();
  cluster_.check_invariants();
  // End of simulation: push buffered trace events to disk so a crash in
  // post-run analysis can't lose the tail of the trace. The tracer stays
  // open — the owner may run further simulations before close().
  if (tracer_ != nullptr) tracer_->flush();
}

void BatchSystem::run_until(Time until) {
  sim_.run_until(until);
  cluster_.check_invariants();
}

}  // namespace dbs::batch
