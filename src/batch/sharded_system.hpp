// Sharded batch system: K independent BatchSystem stacks — one per shard
// of the cluster (core::ShardMap) — plus the deterministic router that
// assigns every submission to exactly one shard at ingest time.
//
// Each shard is a complete world (Simulator, Cluster slice, Server, Moms,
// MauiScheduler with its DfsEngine and ReservationTable, Recorder) and the
// shards share nothing mutable: metrics land in per-shard private
// registries, traces and flight records in per-shard files. The K shard
// runs execute concurrently on an exec::ThreadPool, and because the shards
// are isolated and all merging happens in shard-index order, a sharded run
// is byte-identical to executing the same K shards serially at any thread
// count — the determinism contract ParallelRunner established for
// replications, extended to the service path.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "batch/batch_system.hpp"
#include "core/shard_map.hpp"
#include "exec/thread_pool.hpp"
#include "metrics/report.hpp"
#include "obs/registry.hpp"

namespace dbs::batch {

/// How dbsim/dbsd build the node partition from a whole-cluster spec.
enum class ShardMapKind { Range, Hash };

/// Sharding knobs layered over a SystemConfig (which describes the whole
/// machine; the map splits its nodes).
struct ShardConfig {
  std::size_t shards = 1;
  ShardMapKind map = ShardMapKind::Range;
  core::RoutePolicy policy = core::RoutePolicy::UserHash;
  /// Worker threads driving the per-shard runs (1 = serial; byte-identical
  /// output either way).
  std::size_t threads = 1;
  /// ThreadPool chunk-claim grain for the shard fan-out (see
  /// exec::ThreadPool::parallel_for).
  std::size_t grain = 1;
};

/// Builds the node partition `config` asks for from the whole-machine spec.
[[nodiscard]] core::ShardMap make_shard_map(const cluster::ClusterSpec& spec,
                                            const ShardConfig& config);

class ShardedSystem {
 public:
  /// `base.cluster` describes the whole machine; each shard gets a
  /// BatchSystem over its slice of it (all other SystemConfig fields are
  /// inherited per shard). Shard k starts with sinks = its own private
  /// registry, no tracer, no recorder.
  ShardedSystem(const SystemConfig& base, const ShardConfig& config);

  ShardedSystem(const ShardedSystem&) = delete;
  ShardedSystem& operator=(const ShardedSystem&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return systems_.size(); }
  [[nodiscard]] BatchSystem& shard(std::size_t k) { return *systems_.at(k); }
  [[nodiscard]] const BatchSystem& shard(std::size_t k) const {
    return *systems_.at(k);
  }
  [[nodiscard]] core::ShardRouter& router() { return router_; }
  [[nodiscard]] const core::ShardMap& map() const { return map_; }
  [[nodiscard]] const ShardConfig& shard_config() const { return config_; }
  [[nodiscard]] obs::Registry& shard_registry(std::size_t k) {
    return *registries_.at(k);
  }

  /// Re-attaches shard k's sinks with caller-owned tracer/recorder outputs;
  /// the registry stays the shard's private one (a shared registry across
  /// concurrently iterating shards would order fp histogram updates
  /// nondeterministically).
  void set_shard_sinks(std::size_t k, obs::Tracer* tracer,
                       obs::rec::FlightRecorder* recorder = nullptr);

  /// Routes every job of `workload` and schedules it on its shard.
  void submit_workload(const wl::Workload& workload);

  /// Routes the whole stream up front into per-shard submission lists,
  /// then streams each shard's list with a bounded look-ahead `window`
  /// (per shard). Routing must see the stream in order before the shards
  /// run — a lock-step shared pump would serialize them — so the routed
  /// specs are materialized: driver memory is O(total jobs) while each
  /// shard's event queue stays O(window). The source is drained by this
  /// call and need not outlive run().
  void submit_stream(wl::SubmissionSource& source, std::size_t window = 1024);

  /// Runs every shard to completion, concurrently on `threads` workers.
  void run();
  /// Runs every shard until `until` (same fan-out).
  void run_until(Time until);

  /// Merges the per-shard private registries into `into` in shard order
  /// (deterministic; call after run()).
  void merge_registries(obs::Registry& into) const;

  /// Machine-wide summary: per-shard recorder summaries merged with
  /// capacity weighting (metrics::merge_summaries).
  [[nodiscard]] metrics::WorkloadSummary summary() const;
  /// Shard k's own summary.
  [[nodiscard]] metrics::WorkloadSummary shard_summary(std::size_t k) const;

 private:
  ShardConfig config_;
  core::ShardMap map_;
  core::ShardRouter router_;
  std::vector<std::unique_ptr<obs::Registry>> registries_;
  std::vector<std::unique_ptr<BatchSystem>> systems_;
  /// Routed per-shard submission lists pinned for streaming runs (the
  /// shard's StreamPump reads them during run()).
  std::vector<wl::Workload> routed_;
  std::vector<std::unique_ptr<wl::WorkloadSource>> routed_sources_;
  exec::ThreadPool pool_;
};

}  // namespace dbs::batch
