#include "batch/overhead_experiment.hpp"

#include "apps/rigid.hpp"
#include "common/assert.hpp"

namespace dbs::batch {

namespace {

/// Asks once at a fixed offset and records when the grant arrives.
class ProbeApp final : public rms::Application {
 public:
  ProbeApp(Duration runtime, Duration ask_offset, CoreCount ask_cores)
      : runtime_(runtime), ask_offset_(ask_offset), ask_cores_(ask_cores) {}

  rms::AppDecision on_start(Time now, CoreCount) override {
    finish_ = now + runtime_;
    ask_at_ = now + ask_offset_;
    return {finish_, rms::DynAsk{ask_at_, ask_cores_, Duration::zero()},
            std::nullopt};
  }
  rms::AppDecision on_grant(Time now, CoreCount) override {
    granted_at_ = now;
    return {finish_, std::nullopt, std::nullopt};
  }
  rms::AppDecision on_reject(Time, CoreCount) override {
    rejected_ = true;
    return {finish_, std::nullopt, std::nullopt};
  }
  rms::AppDecision on_released(Time, CoreCount) override {
    return {finish_, std::nullopt, std::nullopt};
  }

  [[nodiscard]] Time ask_at() const { return ask_at_; }
  [[nodiscard]] Time granted_at() const { return granted_at_; }
  [[nodiscard]] bool rejected() const { return rejected_; }

 private:
  Duration runtime_;
  Duration ask_offset_;
  CoreCount ask_cores_;
  Time finish_;
  Time ask_at_;
  Time granted_at_ = Time::far_future();
  bool rejected_ = false;
};

}  // namespace

std::vector<OverheadPoint> measure_dyn_overhead(const OverheadParams& params) {
  DBS_REQUIRE(params.max_nodes >= 1, "need at least one point");
  std::vector<OverheadPoint> points;

  for (int k = 1; k <= params.max_nodes; ++k) {
    SystemConfig sys;
    // One node for the probe job, k dynamically allocatable nodes.
    sys.cluster.node_count = static_cast<std::size_t>(k) + 1;
    sys.cluster.cores_per_node = params.cores_per_node;
    sys.latency = params.latency;
    sys.scheduler.reservation_delay_depth = params.reservation_delay_depth;
    sys.scheduler.reservation_depth = params.reservation_delay_depth;

    BatchSystem system(sys);

    rms::JobSpec probe_spec;
    probe_spec.name = "probe";
    probe_spec.cred = {"probe_user", "probe", "", "batch", ""};
    probe_spec.cores = params.cores_per_node;  // exactly one node
    probe_spec.walltime = Duration::minutes(30);
    auto probe_app = std::make_unique<ProbeApp>(
        Duration::minutes(10), Duration::seconds(5),
        params.cores_per_node * k);
    ProbeApp* probe = probe_app.get();
    system.submit_now(probe_spec, std::move(probe_app));

    if (params.with_workload) {
      // Queued rigid jobs larger than the whole machine's free capacity:
      // they wait (exercising reservations and delay measurement) without
      // consuming the nodes the probe will request.
      for (std::size_t q = 0; q < params.queued_jobs; ++q) {
        rms::JobSpec spec;
        spec.name = "rigid-" + std::to_string(q);
        spec.cred = {"user" + std::to_string(q), "rigid", "", "batch", ""};
        spec.cores = system.cluster().total_cores();
        spec.walltime = Duration::minutes(20);
        system.submit_now(spec,
                          std::make_unique<apps::RigidApp>(Duration::minutes(15)));
      }
    }

    system.run();
    DBS_REQUIRE(!probe->rejected(), "probe request was rejected");
    DBS_REQUIRE(probe->granted_at() != Time::far_future(),
                "probe request was never answered");
    points.push_back({k, probe->granted_at() - probe->ask_at()});
  }
  return points;
}

}  // namespace dbs::batch
