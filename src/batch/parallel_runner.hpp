// Multi-replication experiment runner: executes independent replications
// (ESP campaigns, config matrices, ablation seed sweeps) concurrently, one
// isolated simulation per replication.
//
// Isolation + determinism contract: every replication owns its whole world
// — Simulator, Cluster, Server, scheduler and an isolated obs::Registry —
// so replications share nothing mutable. Results come back indexed by
// replication, and the per-replication registries are merged into the
// caller's target registry in replication order. Both happen the same way
// at every thread count (jobs == 1 also goes through the isolate+merge
// path), so output is bit-identical regardless of parallelism.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"
#include "obs/recorder/manifest.hpp"
#include "obs/recorder/recorder.hpp"
#include "obs/registry.hpp"

namespace dbs::batch {

/// Parallelism degree for benches/tools from the DBS_BENCH_JOBS environment
/// variable. Returns `fallback` when the variable is unset, empty, not a
/// number, or < 1.
[[nodiscard]] std::size_t jobs_from_env(std::size_t fallback = 1);

class ParallelRunner {
 public:
  /// `jobs` >= 1 replications run concurrently (1 = serial, same code path).
  explicit ParallelRunner(std::size_t jobs) : pool_(jobs) {}

  [[nodiscard]] std::size_t jobs() const { return pool_.worker_count(); }

  /// Runs `fn(index, registry)` for each replication index in [0, count),
  /// where `registry` is that replication's private metrics registry. Wire
  /// it into the replication's BatchSystem (set_sinks) so no two
  /// replications ever touch the same registry. Returns the per-replication
  /// results in index order; afterwards the private registries are merged
  /// into `merge_into` (when non-null) in index order.
  ///
  /// R must be default-constructible and movable. Exceptions from a
  /// replication propagate (lowest index wins) after all replications
  /// finish; no merge happens in that case.
  template <class R, class F>
  std::vector<R> map(std::size_t count, F&& fn,
                     obs::Registry* merge_into = nullptr) {
    std::vector<std::unique_ptr<obs::Registry>> registries;
    registries.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
      registries.push_back(std::make_unique<obs::Registry>());
    std::vector<R> out = pool_.parallel_map<R>(
        count, [&](std::size_t index, std::size_t) {
          return fn(index, *registries[index]);
        });
    if (merge_into != nullptr)
      for (const auto& registry : registries) merge_into->merge_from(*registry);
    return out;
  }

  /// map() with per-replication flight recording. Each replication gets a
  /// private recorder writing obs::rec::shard_path(record_base, index)
  /// (concurrent replications must never share a record file);
  /// `fn(index, registry, recorder)` wires it into that replication's
  /// system. After the run every shard is finalized in index order and
  /// `manifest` describes them — the caller decides where (or whether) to
  /// write it. Throws std::runtime_error if any shard file cannot be
  /// created or finalized.
  template <class R, class F>
  std::vector<R> map_recorded(std::size_t count,
                              const std::string& record_base,
                              std::int64_t capacity, F&& fn,
                              obs::Registry* merge_into,
                              obs::rec::Manifest& manifest) {
    std::vector<std::unique_ptr<obs::rec::FlightRecorder>> recorders;
    recorders.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      recorders.push_back(std::make_unique<obs::rec::FlightRecorder>());
      const std::string path = obs::rec::shard_path(record_base, i);
      if (!recorders.back()->open(path, capacity))
        throw std::runtime_error("cannot create record file " + path);
    }
    std::vector<R> out =
        map<R>(count,
               [&](std::size_t index, obs::Registry& registry) {
                 return fn(index, registry, *recorders[index]);
               },
               merge_into);
    manifest.shards.clear();
    for (std::size_t i = 0; i < count; ++i) {
      obs::rec::FlightRecorder& recorder = *recorders[i];
      obs::rec::ManifestShard shard;
      shard.path = recorder.path();
      shard.replication = i;
      shard.records = recorder.records_written();
      shard.first_t_us = recorder.first_t_us();
      shard.last_t_us = recorder.last_t_us();
      if (!recorder.finalize())
        throw std::runtime_error("cannot finalize record file " + shard.path);
      manifest.shards.push_back(std::move(shard));
    }
    return out;
  }

 private:
  exec::ThreadPool pool_;
};

}  // namespace dbs::batch
