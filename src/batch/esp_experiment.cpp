#include "batch/esp_experiment.hpp"

#include "batch/parallel_runner.hpp"
#include "common/assert.hpp"

namespace dbs::batch {

std::string_view to_string(EspConfig c) {
  switch (c) {
    case EspConfig::Static: return "Static";
    case EspConfig::DynHP: return "Dyn-HP";
    case EspConfig::Dyn500: return "Dyn-500";
    case EspConfig::Dyn600: return "Dyn-600";
  }
  return "?";
}

core::SchedulerConfig esp_scheduler_config(const EspExperimentParams& params,
                                           EspConfig config) {
  core::SchedulerConfig sched;
  sched.reservation_depth = params.reservation_depth;
  sched.reservation_delay_depth = params.reservation_delay_depth;
  sched.weights.queue_time_per_minute = 1.0;

  switch (config) {
    case EspConfig::Static:
    case EspConfig::DynHP:
      // Dynamic fairness disabled: dynamic requests take highest priority
      // and delays to static jobs are ignored.
      sched.dfs.policy = core::DfsPolicy::None;
      break;
    case EspConfig::Dyn500:
    case EspConfig::Dyn600:
      // Each static user's jobs may cumulatively be delayed by at most the
      // limit within each interval.
      sched.dfs.policy = core::DfsPolicy::TargetDelay;
      sched.dfs.interval = params.dfs_interval;
      sched.dfs.decay = 0.0;
      sched.dfs.defaults.target_delay = config == EspConfig::Dyn500
                                            ? params.dyn500_limit
                                            : params.dyn600_limit;
      break;
  }
  return sched;
}

SystemConfig esp_system_config(const EspExperimentParams& params,
                               EspConfig config) {
  DBS_REQUIRE(params.workload.total_cores % params.cores_per_node == 0,
              "machine size must be whole nodes");
  SystemConfig sys;
  sys.cluster.node_count = static_cast<std::size_t>(
      params.workload.total_cores / params.cores_per_node);
  sys.cluster.cores_per_node = params.cores_per_node;
  sys.latency = params.latency;
  sys.scheduler = esp_scheduler_config(params, config);
  sys.speedup = params.speedup;
  return sys;
}

RunResult run_esp(const EspExperimentParams& params, EspConfig config,
                  obs::Registry* registry) {
  wl::EspParams wl_params = params.workload;
  wl_params.evolving_enabled = config != EspConfig::Static;
  const wl::Workload workload = wl::generate_esp(wl_params);
  return run_workload(esp_system_config(params, config), workload,
                      std::string(to_string(config)), registry);
}

std::vector<RunResult> run_esp_all(const EspExperimentParams& params) {
  std::vector<RunResult> results;
  for (const EspConfig c : {EspConfig::Static, EspConfig::DynHP,
                            EspConfig::Dyn500, EspConfig::Dyn600})
    results.push_back(run_esp(params, c));
  return results;
}

std::vector<RunResult> run_esp_all(const EspExperimentParams& params,
                                   std::size_t jobs,
                                   obs::Registry* merge_into) {
  static constexpr EspConfig kConfigs[] = {EspConfig::Static, EspConfig::DynHP,
                                           EspConfig::Dyn500,
                                           EspConfig::Dyn600};
  ParallelRunner runner(jobs);
  return runner.map<RunResult>(
      std::size(kConfigs),
      [&](std::size_t index, obs::Registry& registry) {
        return run_esp(params, kConfigs[index], &registry);
      },
      merge_into);
}

}  // namespace dbs::batch
