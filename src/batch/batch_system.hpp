// The top-level façade: one object wiring simulator, cluster, server, moms,
// scheduler and metrics into a runnable batch system. This is the public
// entry point a downstream user of the library interacts with.
#pragma once

#include <functional>
#include <memory>

#include "apps/app_model.hpp"
#include "cluster/cluster.hpp"
#include "core/maui_scheduler.hpp"
#include "metrics/recorder.hpp"
#include "rms/mom.hpp"
#include "rms/server.hpp"
#include "sim/simulator.hpp"
#include "workload/esp.hpp"

namespace dbs::batch {

struct SystemConfig {
  cluster::ClusterSpec cluster;
  rms::LatencyModel latency;
  core::SchedulerConfig scheduler;
  /// Speedup model used when materializing evolving workload jobs.
  apps::SpeedupModel speedup = apps::SpeedupModel::PaperDet;
};

class BatchSystem {
 public:
  explicit BatchSystem(const SystemConfig& config);

  BatchSystem(const BatchSystem&) = delete;
  BatchSystem& operator=(const BatchSystem&) = delete;

  /// qsub now. Returns the job id.
  JobId submit_now(rms::JobSpec spec, std::unique_ptr<rms::Application> app);

  /// Schedules a qsub at absolute time `at` (applies the client→server
  /// latency on top).
  void submit_at(Time at, rms::JobSpec spec,
                 std::function<std::unique_ptr<rms::Application>()> app_factory);

  /// Injects a whole workload (ESP, synthetic or trace).
  void submit_workload(const wl::Workload& workload);

  /// Runs the simulation to completion (all events drained).
  void run();
  /// Runs until `until` (events at exactly `until` fire).
  void run_until(Time until);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] rms::Server& server() { return server_; }
  [[nodiscard]] core::MauiScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const metrics::Recorder& recorder() const { return recorder_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

  /// Attaches the observability sinks to every component (server, moms,
  /// scheduler, DFS): the tracer (nullable; its clock is pointed at the
  /// simulator) receives every trace event, the registry (null selects the
  /// global one) every metric, and the flight recorder (nullable; clock
  /// wired like the tracer's) every lifecycle event and applied decision.
  void set_sinks(const obs::Sinks& sinks);

 private:
  SystemConfig config_;
  sim::Simulator sim_;
  cluster::Cluster cluster_;
  rms::Server server_;
  rms::MomManager moms_;
  metrics::Recorder recorder_;
  core::MauiScheduler scheduler_;
  obs::Tracer* tracer_ = nullptr;  ///< last sinks' tracer; flushed after run()
};

}  // namespace dbs::batch
