// The top-level façade: one object wiring simulator, cluster, server, moms,
// scheduler and metrics into a runnable batch system. This is the public
// entry point a downstream user of the library interacts with.
#pragma once

#include <functional>
#include <memory>

#include "apps/app_model.hpp"
#include "cluster/cluster.hpp"
#include "core/maui_scheduler.hpp"
#include "metrics/recorder.hpp"
#include "rms/mom.hpp"
#include "rms/server.hpp"
#include "sim/simulator.hpp"
#include "workload/esp.hpp"
#include "workload/source.hpp"

namespace dbs::svc {
class IngestQueue;
class ServiceLoop;
struct ServiceConfig;
}

namespace dbs::batch {

struct SystemConfig {
  cluster::ClusterSpec cluster;
  rms::LatencyModel latency;
  core::SchedulerConfig scheduler;
  /// Speedup model used when materializing evolving workload jobs.
  apps::SpeedupModel speedup = apps::SpeedupModel::PaperDet;
  /// Reclaim a job's storage (Job object, application, cached state) a
  /// latency-derived grace period after it completes, so multi-month
  /// replays run at O(active jobs) memory instead of O(all jobs ever).
  bool retire_finished_jobs = false;
  /// Fold finished jobs into aggregate metrics instead of keeping a
  /// per-job record forever (metrics::Recorder streaming mode). Summary
  /// totals are identical; per-job series are unavailable.
  bool streaming_metrics = false;
};

class BatchSystem {
 public:
  explicit BatchSystem(const SystemConfig& config);

  BatchSystem(const BatchSystem&) = delete;
  BatchSystem& operator=(const BatchSystem&) = delete;

  /// qsub now. Returns the job id.
  JobId submit_now(rms::JobSpec spec, std::unique_ptr<rms::Application> app);

  /// Schedules a qsub at absolute time `at` (applies the client→server
  /// latency on top).
  void submit_at(Time at, rms::JobSpec spec,
                 std::function<std::unique_ptr<rms::Application>()> app_factory);

  /// Injects a whole workload (ESP, synthetic or trace).
  void submit_workload(const wl::Workload& workload);

  /// Streams submissions from `source`, keeping at most `window` future
  /// arrivals scheduled in the event queue at any instant — O(window)
  /// driver memory for a trace of any length. The source must yield
  /// non-decreasing submission times. Produces the exact event ordering
  /// of submit_workload on the same jobs: both paths use the event
  /// queue's Submission lane, which fires before same-time events
  /// scheduled during the run regardless of push order. `source` must
  /// outlive the run() that drains it.
  void submit_stream(wl::SubmissionSource& source, std::size_t window = 1024);

  /// Runs the simulation to completion (all events drained).
  void run();
  /// Runs until `until` (events at exactly `until` fire).
  void run_until(Time until);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] cluster::Cluster& cluster() { return cluster_; }
  [[nodiscard]] rms::Server& server() { return server_; }
  [[nodiscard]] rms::MomManager& moms() { return moms_; }
  [[nodiscard]] core::MauiScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const metrics::Recorder& recorder() const { return recorder_; }
  /// Mutable recorder access for the durable-state restore path.
  [[nodiscard]] metrics::Recorder& recorder_mut() { return recorder_; }
  [[nodiscard]] const SystemConfig& config() const { return config_; }

  // --- always-on service mode (src/svc/) ----------------------------------
  // Defined in src/svc/batch_service.cpp: the service layer sits above the
  // one-shot core, which never depends on it.

  /// Wires a concurrent ingest queue into this system and creates the
  /// service loop. Call once, before anything is submitted or run.
  svc::ServiceLoop& attach_ingest(svc::IngestQueue& ingest,
                                  const svc::ServiceConfig& config);
  /// Recovers durable state from the attached service's state_dir (see
  /// svc::ServiceLoop::open). Returns true when prior state was found.
  bool open_state();
  /// Runs the service loop until drained or stopped; returns ticks run.
  std::uint64_t run_service();
  /// The attached service loop, or nullptr in one-shot mode.
  [[nodiscard]] svc::ServiceLoop* service() { return service_.get(); }

  /// Attaches the observability sinks to every component (server, moms,
  /// scheduler, DFS): the tracer (nullable; its clock is pointed at the
  /// simulator) receives every trace event, the registry (null selects the
  /// global one) every metric, and the flight recorder (nullable; clock
  /// wired like the tracer's) every lifecycle event and applied decision.
  void set_sinks(const obs::Sinks& sinks);

 private:
  /// Schedules one workload arrival on the event queue's Submission lane
  /// (client→server latency applied). Shared by the materialized and
  /// streaming paths so both produce identical orderings.
  void schedule_submission(const wl::SubmitSpec& s);

  struct StreamPump;
  /// Pulls one record from the stream and schedules it; the scheduled
  /// event re-enters here first when it fires, keeping the window full.
  void pump_stream(const std::shared_ptr<StreamPump>& pump);

  SystemConfig config_;
  sim::Simulator sim_;
  cluster::Cluster cluster_;
  rms::Server server_;
  rms::MomManager moms_;
  metrics::Recorder recorder_;
  core::MauiScheduler scheduler_;
  obs::Tracer* tracer_ = nullptr;  ///< last sinks' tracer; flushed after run()
  /// shared_ptr so this header needs no complete svc::ServiceLoop type
  /// (the control block owns the deleter, captured where it is complete).
  std::shared_ptr<svc::ServiceLoop> service_;
};

}  // namespace dbs::batch
