// The dynamic-allocation overhead experiment (Fig. 12): time from an
// application's tm_dynget to the moment the expanded hostlist is delivered,
// for 1..10 dynamically allocated nodes, on an otherwise idle system and
// with a rigid workload queued (ReservationDelayDepth = 5). This is the
// virtual-time realization; bench_fig12_overhead additionally measures the
// real wall-clock cost of the scheduler's dynamic-allocation path.
#pragma once

#include <vector>

#include "batch/batch_system.hpp"

namespace dbs::batch {

struct OverheadPoint {
  int nodes = 0;           ///< dynamically requested nodes
  Duration overhead;       ///< tm_dynget -> grant delivered
};

struct OverheadParams {
  int max_nodes = 10;
  CoreCount cores_per_node = 8;
  rms::LatencyModel latency;
  /// Queued rigid jobs competing for reservations when true.
  bool with_workload = false;
  std::size_t queued_jobs = 8;
  std::size_t reservation_delay_depth = 5;
};

/// One fresh system per point; returns points for 1..max_nodes nodes.
[[nodiscard]] std::vector<OverheadPoint> measure_dyn_overhead(
    const OverheadParams& params);

}  // namespace dbs::batch
