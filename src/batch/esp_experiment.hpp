// The dynamic-ESP evaluation of §IV-B: the four configurations of Table II
// (Static, Dyn-HP, Dyn-500, Dyn-600) and the waiting-time comparisons of
// Figs. 8-11.
#pragma once

#include <string>
#include <vector>

#include "batch/experiment.hpp"

namespace dbs::batch {

enum class EspConfig { Static, DynHP, Dyn500, Dyn600 };

[[nodiscard]] std::string_view to_string(EspConfig c);

struct EspExperimentParams {
  wl::EspParams workload;              ///< shared across configurations
  rms::LatencyModel latency;
  CoreCount cores_per_node = 8;
  /// Both set to 5 in the paper's evaluation.
  std::size_t reservation_depth = 5;
  std::size_t reservation_delay_depth = 5;
  apps::SpeedupModel speedup = apps::SpeedupModel::PaperDet;
  /// Cumulative per-user delay limits for the fairness configurations.
  Duration dyn500_limit = Duration::seconds(500);
  Duration dyn600_limit = Duration::seconds(600);
  Duration dfs_interval = Duration::hours(1);
};

/// The scheduler configuration for one ESP run.
[[nodiscard]] core::SchedulerConfig esp_scheduler_config(
    const EspExperimentParams& params, EspConfig config);

/// The full system configuration for one ESP run.
[[nodiscard]] SystemConfig esp_system_config(const EspExperimentParams& params,
                                             EspConfig config);

/// Runs one configuration end to end. `registry` (optional) isolates the
/// run's metrics — required when runs execute concurrently.
[[nodiscard]] RunResult run_esp(const EspExperimentParams& params,
                                EspConfig config,
                                obs::Registry* registry = nullptr);

/// Runs all four configurations (Table II order).
[[nodiscard]] std::vector<RunResult> run_esp_all(
    const EspExperimentParams& params);

/// Parallel variant: runs the four configurations as independent
/// replications on `jobs` threads, each against an isolated registry,
/// merged into `merge_into` (optional) in Table II order. Results are
/// bit-identical for every `jobs` value — jobs == 1 takes the same
/// isolate+merge path, it just runs serially.
[[nodiscard]] std::vector<RunResult> run_esp_all(
    const EspExperimentParams& params, std::size_t jobs,
    obs::Registry* merge_into);

}  // namespace dbs::batch
