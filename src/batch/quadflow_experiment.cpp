#include "batch/quadflow_experiment.hpp"

#include "common/assert.hpp"

namespace dbs::batch {

QuadflowFigure quadflow_figure(const amr::QuadflowCase& c,
                               CoreCount small_cores, CoreCount extra_cores) {
  QuadflowFigure fig;
  fig.test_case = c;
  fig.static_small = apps::quadflow_static(c, small_cores);
  fig.static_large = apps::quadflow_static(c, small_cores + extra_cores);
  fig.dynamic = apps::quadflow_dynamic(c, small_cores, extra_cores);
  const double static_total = fig.static_small.total().as_seconds();
  if (static_total > 0.0)
    fig.saving_percent = 100.0 *
                         (static_total - fig.dynamic.total().as_seconds()) /
                         static_total;
  return fig;
}

Duration quadflow_batch_turnaround(const amr::QuadflowCase& c,
                                   CoreCount initial_cores,
                                   CoreCount extra_cores,
                                   std::size_t node_count,
                                   CoreCount cores_per_node) {
  // Only the initial allocation must fit; the expansion may legitimately
  // be rejected on a full cluster (the run then degenerates to static).
  DBS_REQUIRE(static_cast<CoreCount>(node_count) * cores_per_node >=
                  initial_cores,
              "cluster too small for the initial allocation");
  (void)extra_cores;
  SystemConfig sys;
  sys.cluster.node_count = node_count;
  sys.cluster.cores_per_node = cores_per_node;

  BatchSystem system(sys);
  rms::JobSpec spec;
  spec.name = c.name;
  spec.cred = {"cfduser", "cfd", "", "batch", ""};
  spec.cores = initial_cores;
  // Walltime generously covers the static run (users overestimate).
  spec.walltime = apps::quadflow_static(c, initial_cores).total().scaled(1.2);
  spec.type_tag = "quadflow";

  const JobId id = system.submit_now(
      spec, std::make_unique<apps::QuadflowApp>(c, extra_cores));
  system.run();
  const metrics::JobRecord& record = system.recorder().record(id);
  DBS_REQUIRE(record.completed(), "quadflow job did not finish");
  return record.turnaround();
}

}  // namespace dbs::batch
