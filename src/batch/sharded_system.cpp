#include "batch/sharded_system.hpp"

#include "common/assert.hpp"
#include "workload/source.hpp"

namespace dbs::batch {

core::ShardMap make_shard_map(const cluster::ClusterSpec& spec,
                              const ShardConfig& config) {
  switch (config.map) {
    case ShardMapKind::Hash:
      return core::ShardMap::by_hash(spec, config.shards);
    case ShardMapKind::Range:
      break;
  }
  return core::ShardMap::by_range(spec, config.shards);
}

ShardedSystem::ShardedSystem(const SystemConfig& base,
                             const ShardConfig& config)
    : config_(config),
      map_(make_shard_map(base.cluster, config)),
      router_(map_, config.policy),
      pool_(config.threads >= 1 ? config.threads : 1) {
  DBS_REQUIRE(config.grain >= 1, "shard fan-out grain must be >= 1");
  const std::size_t count = map_.shard_count();
  registries_.reserve(count);
  systems_.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    SystemConfig shard_config = base;
    shard_config.cluster = map_.shard(k).cluster;
    registries_.push_back(std::make_unique<obs::Registry>());
    systems_.push_back(std::make_unique<BatchSystem>(shard_config));
    systems_.back()->set_sinks(
        obs::Sinks(nullptr, registries_.back().get()));
  }
}

void ShardedSystem::set_shard_sinks(std::size_t k, obs::Tracer* tracer,
                                    obs::rec::FlightRecorder* recorder) {
  shard(k).set_sinks(obs::Sinks(tracer, registries_.at(k).get(), recorder));
}

void ShardedSystem::submit_workload(const wl::Workload& workload) {
  for (const wl::SubmitSpec& s : workload.jobs) {
    wl::Workload one;
    one.jobs.push_back(s);
    shard(router_.route(s.spec)).submit_workload(one);
  }
}

void ShardedSystem::submit_stream(wl::SubmissionSource& source,
                                  std::size_t window) {
  DBS_REQUIRE(routed_sources_.empty(),
              "submit_stream may be called once per sharded run");
  routed_.assign(map_.shard_count(), wl::Workload{});
  wl::SubmitSpec s;
  while (source.next(s)) routed_[router_.route(s.spec)].jobs.push_back(s);
  routed_sources_.reserve(routed_.size());
  for (std::size_t k = 0; k < routed_.size(); ++k) {
    routed_sources_.push_back(
        std::make_unique<wl::WorkloadSource>(routed_[k]));
    shard(k).submit_stream(*routed_sources_.back(), window);
  }
}

void ShardedSystem::run() {
  pool_.parallel_for(
      systems_.size(),
      [&](std::size_t k, std::size_t) { systems_[k]->run(); },
      config_.grain);
}

void ShardedSystem::run_until(Time until) {
  pool_.parallel_for(
      systems_.size(),
      [&](std::size_t k, std::size_t) { systems_[k]->run_until(until); },
      config_.grain);
}

void ShardedSystem::merge_registries(obs::Registry& into) const {
  for (const auto& registry : registries_) into.merge_from(*registry);
}

metrics::WorkloadSummary ShardedSystem::shard_summary(std::size_t k) const {
  return metrics::summarize(shard(k).recorder());
}

metrics::WorkloadSummary ShardedSystem::summary() const {
  std::vector<metrics::WorkloadSummary> parts;
  std::vector<CoreCount> capacities;
  parts.reserve(systems_.size());
  capacities.reserve(systems_.size());
  for (std::size_t k = 0; k < systems_.size(); ++k) {
    parts.push_back(shard_summary(k));
    const cluster::ClusterSpec& c = map_.shard(k).cluster;
    capacities.push_back(static_cast<CoreCount>(c.node_count) *
                         c.cores_per_node);
  }
  return metrics::merge_summaries(parts, capacities);
}

}  // namespace dbs::batch
