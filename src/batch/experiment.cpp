#include "batch/experiment.hpp"

namespace dbs::batch {

std::vector<metrics::WaitPoint> RunResult::waits_of_type(
    const std::string& tag) const {
  std::vector<metrics::WaitPoint> out;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const metrics::JobRecord& r = jobs[i];
    if (r.type_tag != tag || !r.start.has_value()) continue;
    out.push_back({i, r.name, r.wait_time()});
  }
  return out;
}

RunResult run_workload(const SystemConfig& config, const wl::Workload& workload,
                       std::string label, obs::Registry* registry) {
  BatchSystem system(config);
  if (registry != nullptr) system.set_sinks({nullptr, registry});
  system.submit_workload(workload);
  system.run();

  RunResult result;
  result.label = std::move(label);
  result.summary = metrics::summarize(system.recorder());
  result.jobs = system.recorder().records();
  result.waits = metrics::wait_series(system.recorder());
  result.scheduler_iterations = system.scheduler().iterations();
  result.events = system.simulator().events_fired();
  return result;
}

}  // namespace dbs::batch
