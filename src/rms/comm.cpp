#include "rms/comm.hpp"

#include "common/assert.hpp"

namespace dbs::rms {

Duration LatencyModel::join(std::size_t nodes) const {
  return join_base + join_per_node * static_cast<std::int64_t>(nodes);
}

Duration LatencyModel::dyn_join(std::size_t nodes) const {
  return dyn_join_base + dyn_join_per_node * static_cast<std::int64_t>(nodes);
}

void LatencyModel::validate() const {
  const Duration all[] = {client_to_server, server_to_mom,   mom_to_server,
                          join_base,        join_per_node,   dyn_join_base,
                          dyn_join_per_node, scheduler_delay};
  for (const Duration d : all)
    DBS_REQUIRE(!d.is_negative(), "latencies must be non-negative");
}

LatencyModel LatencyModel::zero() {
  LatencyModel m;
  m.client_to_server = m.server_to_mom = m.mom_to_server = Duration::zero();
  m.join_base = m.join_per_node = Duration::zero();
  m.dyn_join_base = m.dyn_join_per_node = Duration::zero();
  m.scheduler_delay = Duration::zero();
  return m;
}

}  // namespace dbs::rms
