#include "rms/server.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/recorder/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "obs/tracer.hpp"
#include "rms/mom.hpp"

namespace dbs::rms {

namespace {
/// Residency buckets: sub-second answers up to hour-long negotiations.
std::vector<double> residency_bounds() {
  return {0.1, 1, 5, 15, 30, 60, 120, 300, 600, 1800, 3600};
}
}  // namespace

Server::Server(sim::Simulator& simulator, cluster::Cluster& cluster,
               LatencyModel latency)
    : sim_(simulator),
      cluster_(cluster),
      latency_(latency),
      registry_(&obs::Registry::global()) {
  latency_.validate();
}

void Server::set_sinks(const obs::Sinks& sinks) {
  tracer_ = sinks.tracer;
  registry_ = &sinks.registry_or_global();
  if (recorder_ != sinks.recorder) {
    // The recorder listens like any other observer; swapping sinks must
    // not leave a stale registration behind.
    if (recorder_ != nullptr)
      observers_.erase(
          std::remove(observers_.begin(), observers_.end(),
                      static_cast<ServerObserver*>(recorder_)),
          observers_.end());
    recorder_ = sinks.recorder;
    if (recorder_ != nullptr) add_observer(recorder_);
  }
}

void Server::record_residency(const DynRequest& req) {
  registry_->histogram("dyn.queue_residency_s", residency_bounds())
      .observe((sim_.now() - req.submitted).as_seconds());
}

void Server::set_scheduler_trigger(std::function<void()> trigger) {
  trigger_ = std::move(trigger);
}

void Server::add_observer(ServerObserver* observer) {
  DBS_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

void Server::remove_observer(ServerObserver* observer) {
  observers_.erase(
      std::remove(observers_.begin(), observers_.end(), observer),
      observers_.end());
}

CoreCount Server::effective_ppn(const Job& job) const {
  const CoreCount ppn = job.spec().ppn;
  DBS_REQUIRE(ppn >= 0 && ppn <= cluster_.cores_per_node(),
              "ppn exceeds node size");
  return ppn == 0 ? cluster_.cores_per_node() : ppn;
}

void Server::notify_scheduler() {
  if (!trigger_ || trigger_pending_) return;
  trigger_pending_ = true;
  sim_.schedule_after(latency_.scheduler_delay, [this] {
    trigger_pending_ = false;
    trigger_();
  });
}

JobId Server::submit(JobSpec spec, std::unique_ptr<Application> app) {
  const JobId id{next_job_++};
  Job& job = queue_.add(
      std::make_unique<Job>(id, std::move(spec), std::move(app), sim_.now()));
  DBS_TRACE("submit " << id.value() << " (" << job.spec().name << ") at "
                      << sim_.now());
  registry_->counter("server.jobs_submitted").add();
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "submit")
                               .field("job", id.value())
                               .field("job_name", job.spec().name)
                               .field("user", job.spec().cred.user)
                               .field("cores", job.spec().cores)
                               .field("walltime_s",
                                      job.spec().walltime.as_seconds()));
  for (auto* o : observers_) o->on_submit(job);
  notify_scheduler();
  return id;
}

bool Server::cancel(JobId id) {
  if (!queue_.contains(id)) return false;
  Job& job = queue_.at(id);
  if (job.finished()) return false;
  CoreCount released = 0;
  if (job.is_running()) {
    released = job.allocated_cores();
    if (const DynRequest* r = queue_.dyn_request_of(id))
      queue_.remove_dyn_request(r->id);
    moms_->kill(id);
    cluster_.release_all(id);
  }
  job.mark_cancelled(sim_.now());
  for (auto* o : observers_) o->on_cancel(job, released);
  notify_scheduler();
  return true;
}

bool Server::start_job(JobId id, bool backfilled) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.state() == JobState::Queued, "start_job needs a queued job");
  auto placement = cluster_.allocate_chunked(id, job.spec().cores,
                                             effective_ppn(job), alloc_policy_);
  if (!placement) return false;
  job.mark_started(sim_.now(), std::move(*placement), backfilled);
  DBS_TRACE("start " << id.value() << " (" << job.spec().name << ") on "
                     << job.placement().node_count() << " nodes at "
                     << sim_.now() << (backfilled ? " [backfill]" : ""));
  registry_->counter("server.jobs_started").add();
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "job_start")
                               .field("job", id.value())
                               .field("cores", job.allocated_cores())
                               .field("nodes", job.placement().node_count())
                               .field("backfilled", backfilled)
                               .field("wait_s", (sim_.now() - job.submit_time())
                                                    .as_seconds()));
  for (auto* o : observers_) o->on_job_start(job);
  moms_->launch(job);
  return true;
}

bool Server::grant_dyn(RequestId req_id) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  const DynRequest* req = nullptr;
  for (const auto& r : queue_.dyn_requests())
    if (r.id == req_id) req = &r;
  DBS_REQUIRE(req != nullptr, "unknown dynamic request");
  Job& job = queue_.at(req->job);
  DBS_REQUIRE(job.state() == JobState::DynQueued,
              "grant requires a dynqueued job");

  auto extra = cluster_.allocate_chunked(job.id(), req->extra_cores,
                                         effective_ppn(job), alloc_policy_);
  if (!extra) return false;

  const DynRequest done = *req;  // copy before removal invalidates req
  queue_.remove_dyn_request(req_id);
  availability_hints_.erase(job.id());
  job.expand(*extra);
  job.mark_running_again();
  job.count_dyn_grant();
  DBS_TRACE("grant +" << done.extra_cores << " cores to job "
                      << job.id().value() << " at " << sim_.now());
  registry_->counter("dyn.grants").add();
  record_residency(done);
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "dyn_grant")
                               .field("job", job.id().value())
                               .field("request", done.id.value())
                               .field("extra_cores", done.extra_cores)
                               .field("attempt", done.attempt)
                               .field("residency_s",
                                      (sim_.now() - done.submitted)
                                          .as_seconds()));
  for (auto* o : observers_) o->on_dyn_grant(job, done, done.extra_cores);
  moms_->deliver_grant(job, *extra);
  return true;
}

void Server::reject_dyn(RequestId req_id, std::optional<Time> availability_hint) {
  const DynRequest* req = nullptr;
  for (const auto& r : queue_.dyn_requests())
    if (r.id == req_id) req = &r;
  DBS_REQUIRE(req != nullptr, "unknown dynamic request");

  if (sim_.now() < req->deadline) {
    // Negotiation extension: the request stays queued; remember when the
    // scheduler believes resources could be available.
    if (availability_hint) availability_hints_[req->job] = *availability_hint;
    registry_->counter("dyn.defers").add();
    DBS_TRACE_EVENT(
        tracer_, obs::TraceEvent(sim_.now(), "rms", "dyn_defer")
                     .field("job", req->job.value())
                     .field("request", req->id.value())
                     .field("deadline_us", req->deadline.as_micros())
                     .field("hint_us", availability_hint
                                           ? availability_hint->as_micros()
                                           : std::int64_t{-1}));
    return;
  }
  finalize_reject(*req);
}

void Server::finalize_reject(const DynRequest& req) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  const DynRequest done = req;
  Job& job = queue_.at(done.job);
  queue_.remove_dyn_request(done.id);
  availability_hints_.erase(job.id());
  job.mark_running_again();
  job.count_dyn_reject();
  DBS_TRACE("reject +" << done.extra_cores << " cores for job "
                       << job.id().value() << " at " << sim_.now());
  registry_->counter("dyn.rejects").add();
  record_residency(done);
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "dyn_reject")
                               .field("job", job.id().value())
                               .field("request", done.id.value())
                               .field("extra_cores", done.extra_cores)
                               .field("attempt", done.attempt)
                               .field("residency_s",
                                      (sim_.now() - done.submitted)
                                          .as_seconds()));
  for (auto* o : observers_) o->on_dyn_reject(job, done);
  moms_->deliver_reject(job);
}

void Server::preempt(JobId id) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.is_running(), "preempt requires a running job");
  DBS_REQUIRE(job.spec().preemptible, "job is not preemptible");
  if (const DynRequest* r = queue_.dyn_request_of(id))
    queue_.remove_dyn_request(r->id);
  moms_->kill(id);
  cluster_.release_all(id);
  if (job.state() == JobState::DynQueued) job.mark_running_again();
  job.mark_requeued();
  registry_->counter("server.preemptions").add();
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "preempt")
                               .field("job", id.value()));
  for (auto* o : observers_) o->on_requeue(job);
  notify_scheduler();
}

std::optional<Time> Server::availability_hint(JobId id) const {
  auto it = availability_hints_.find(id);
  if (it == availability_hints_.end()) return std::nullopt;
  return it->second;
}

void Server::mom_dyn_request(JobId id, CoreCount extra_cores, Duration timeout,
                             int attempt) {
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.state() == JobState::Running,
              "dynamic request requires a running job");
  DBS_REQUIRE(extra_cores > 0, "dynamic request must ask for cores");
  job.mark_dynqueued();
  job.count_dyn_request();
  const DynRequest req{RequestId{next_request_++}, id, extra_cores, sim_.now(),
                       attempt, sim_.now() + timeout};
  queue_.push_dyn_request(req);
  DBS_TRACE("dynget +" << extra_cores << " cores from job " << id.value()
                       << " (attempt " << attempt << ") at " << sim_.now());
  registry_->counter("dyn.requests").add();
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "dyn_request")
                               .field("job", id.value())
                               .field("request", req.id.value())
                               .field("extra_cores", extra_cores)
                               .field("attempt", attempt)
                               .field("timeout_s", timeout.as_seconds()));
  for (auto* o : observers_) o->on_dyn_request(job, req);
  notify_scheduler();
}

void Server::mom_job_finished(JobId id) {
  Job& job = queue_.at(id);
  if (job.finished()) return;  // lost the race against qdel
  if (const DynRequest* r = queue_.dyn_request_of(id)) {
    // The job finished while its last request was still queued.
    queue_.remove_dyn_request(r->id);
    job.mark_running_again();
  }
  cluster_.release_all(id);
  job.mark_completed(sim_.now());
  DBS_TRACE("finish " << id.value() << " (" << job.spec().name << ") at "
                      << sim_.now());
  registry_->counter("server.jobs_finished").add();
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "job_finish")
                               .field("job", id.value())
                               .field("turnaround_s",
                                      (sim_.now() - job.submit_time())
                                          .as_seconds()));
  for (auto* o : observers_) o->on_job_finish(job);
  notify_scheduler();
  if (retire_grace_) {
    // Deferred reclamation: by now every observer has folded the record
    // into its metrics; the grace period covers the application's still
    // in-flight latency-delayed closures (which look the job up by id).
    sim_.schedule_after(*retire_grace_, [this, id] {
      if (!queue_.contains(id)) return;
      if (queue_.at(id).state() != JobState::Completed) return;
      availability_hints_.erase(id);
      queue_.retire(id);
    });
  }
}

void Server::set_retirement(Duration grace) {
  DBS_REQUIRE(grace > Duration::zero(), "retirement grace must be positive");
  retire_grace_ = grace;
}

void Server::shrink_job(JobId id, CoreCount cores) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.is_running(), "shrink requires a running job");
  DBS_REQUIRE(job.spec().malleable(), "job is not malleable");
  DBS_REQUIRE(cores > 0 &&
                  job.allocated_cores() - cores >= job.spec().malleable_min,
              "shrink below the malleable minimum");
  const cluster::Placement freed = job.placement().select_release(cores);
  cluster_.release(id, freed);
  job.shrink(freed);
  DBS_TRACE("malleable shrink -" << cores << " cores of job " << id.value()
                                 << " at " << sim_.now());
  registry_->counter("server.malleable_shrinks").add();
  DBS_TRACE_EVENT(tracer_,
                  obs::TraceEvent(sim_.now(), "rms", "malleable_shrink")
                      .field("job", id.value())
                      .field("cores", cores)
                      .field("remaining", job.allocated_cores()));
  for (auto* o : observers_) o->on_malleable_shrink(job, cores);
  moms_->deliver_reshape(job);
}

void Server::node_failure(NodeId node_id) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  cluster::Node& node = cluster_.node(node_id);
  DBS_REQUIRE(node.state() == cluster::NodeState::Up, "node already down");

  // Collect the victims before mutating anything. The node's own hold map
  // has exactly the affected jobs, so this no longer scans every running
  // job; sorting by id restores the deterministic submission order the
  // running-jobs scan used to provide.
  std::vector<std::pair<JobId, CoreCount>> victims(node.held().begin(),
                                                   node.held().end());
  std::sort(victims.begin(), victims.end());

  node.set_state(cluster::NodeState::Down);
  for (const auto& [id, lost] : victims) {
    Job& job = queue_.at(id);
    // A pending dynamic request is superseded by the failure.
    if (const DynRequest* r = queue_.dyn_request_of(id)) {
      queue_.remove_dyn_request(r->id);
      job.mark_running_again();
    }
    node.release(id, lost);
    if (job.allocated_cores() == lost) {
      // Whole allocation on the failed node: restart from scratch.
      moms_->kill(id);
      cluster_.release_all(id);
      job.mark_requeued();
      for (auto* o : observers_) o->on_requeue(job);
      continue;
    }
    job.shrink(cluster::Placement{{{node_id, lost}}});
    for (auto* o : observers_) o->on_nodes_lost(job, lost);
    moms_->deliver_node_loss(job, lost);
  }
  DBS_TRACE("node " << node_id.value() << " failed, " << victims.size()
                    << " jobs affected");
  registry_->counter("server.node_failures").add();
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "node_failure")
                               .field("node", node_id.value())
                               .field("jobs_affected", victims.size()));
  notify_scheduler();
}

void Server::restore_node(NodeId node_id) {
  cluster_.node(node_id).set_state(cluster::NodeState::Up);
  notify_scheduler();
}

void Server::mom_job_failed(JobId id) {
  Job& job = queue_.at(id);
  if (job.finished() || job.state() == JobState::Queued) return;
  moms_->kill(id);
  cluster_.release_all(id);
  if (job.state() == JobState::DynQueued) {
    if (const DynRequest* r = queue_.dyn_request_of(id))
      queue_.remove_dyn_request(r->id);
    job.mark_running_again();
  }
  job.mark_requeued();
  for (auto* o : observers_) o->on_requeue(job);
  notify_scheduler();
}

void Server::restore_counters(std::uint64_t next_job,
                              std::uint64_t next_request) {
  DBS_REQUIRE(next_job >= next_job_ && next_request >= next_request_,
              "restored id counters may not run backwards");
  next_job_ = next_job;
  next_request_ = next_request;
}

std::vector<std::pair<JobId, Time>> Server::save_availability_hints() const {
  std::vector<std::pair<JobId, Time>> out(availability_hints_.begin(),
                                          availability_hints_.end());
  std::sort(out.begin(), out.end());
  return out;
}

void Server::restore_availability_hint(JobId id, Time at) {
  availability_hints_[id] = at;
}

Job& Server::restore_job(std::unique_ptr<Job> job) {
  return queue_.add(std::move(job));
}

void Server::restore_dyn_request(const DynRequest& req) {
  DBS_REQUIRE(queue_.contains(req.job), "dynamic request for an unknown job");
  queue_.push_dyn_request(req);
}

void Server::rearm_retirements() {
  if (!retire_grace_) return;
  for (const Job* job : queue_.all()) {
    if (job->state() != JobState::Completed) continue;
    const JobId id = job->id();
    Time at = job->end_time() + *retire_grace_;
    if (at < sim_.now()) at = sim_.now();
    sim_.schedule_at(at, [this, id] {
      if (!queue_.contains(id)) return;
      if (queue_.at(id).state() != JobState::Completed) return;
      availability_hints_.erase(id);
      queue_.retire(id);
    });
  }
}

void Server::mom_dyn_release(JobId id, const cluster::Placement& freed) {
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.is_running(), "release requires a running job");
  cluster_.release(id, freed);
  job.shrink(freed);
  registry_->counter("dyn.releases").add();
  DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "rms", "dyn_release")
                               .field("job", id.value())
                               .field("cores", freed.total_cores())
                               .field("remaining", job.allocated_cores()));
  for (auto* o : observers_) o->on_dyn_release(job, freed.total_cores());
  notify_scheduler();
}

}  // namespace dbs::rms
