#include "rms/server.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "rms/mom.hpp"

namespace dbs::rms {

Server::Server(sim::Simulator& simulator, cluster::Cluster& cluster,
               LatencyModel latency)
    : sim_(simulator), cluster_(cluster), latency_(latency) {
  latency_.validate();
}

void Server::set_scheduler_trigger(std::function<void()> trigger) {
  trigger_ = std::move(trigger);
}

void Server::add_observer(ServerObserver* observer) {
  DBS_REQUIRE(observer != nullptr, "null observer");
  observers_.push_back(observer);
}

CoreCount Server::effective_ppn(const Job& job) const {
  const CoreCount ppn = job.spec().ppn;
  DBS_REQUIRE(ppn >= 0 && ppn <= cluster_.cores_per_node(),
              "ppn exceeds node size");
  return ppn == 0 ? cluster_.cores_per_node() : ppn;
}

void Server::notify_scheduler() {
  if (!trigger_ || trigger_pending_) return;
  trigger_pending_ = true;
  sim_.schedule_after(latency_.scheduler_delay, [this] {
    trigger_pending_ = false;
    trigger_();
  });
}

JobId Server::submit(JobSpec spec, std::unique_ptr<Application> app) {
  const JobId id{next_job_++};
  Job& job = queue_.add(
      std::make_unique<Job>(id, std::move(spec), std::move(app), sim_.now()));
  DBS_TRACE("submit " << id.value() << " (" << job.spec().name << ") at "
                      << sim_.now());
  for (auto* o : observers_) o->on_submit(job);
  notify_scheduler();
  return id;
}

bool Server::cancel(JobId id) {
  if (!queue_.contains(id)) return false;
  Job& job = queue_.at(id);
  if (job.finished()) return false;
  if (job.is_running()) {
    if (const DynRequest* r = queue_.dyn_request_of(id))
      queue_.remove_dyn_request(r->id);
    moms_->kill(id);
    cluster_.release_all(id);
  }
  job.mark_cancelled(sim_.now());
  notify_scheduler();
  return true;
}

bool Server::start_job(JobId id, bool backfilled) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.state() == JobState::Queued, "start_job needs a queued job");
  auto placement = cluster_.allocate_chunked(id, job.spec().cores,
                                             effective_ppn(job), alloc_policy_);
  if (!placement) return false;
  job.mark_started(sim_.now(), std::move(*placement), backfilled);
  DBS_TRACE("start " << id.value() << " (" << job.spec().name << ") on "
                     << job.placement().node_count() << " nodes at "
                     << sim_.now() << (backfilled ? " [backfill]" : ""));
  for (auto* o : observers_) o->on_job_start(job);
  moms_->launch(job);
  return true;
}

bool Server::grant_dyn(RequestId req_id) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  const DynRequest* req = nullptr;
  for (const auto& r : queue_.dyn_requests())
    if (r.id == req_id) req = &r;
  DBS_REQUIRE(req != nullptr, "unknown dynamic request");
  Job& job = queue_.at(req->job);
  DBS_REQUIRE(job.state() == JobState::DynQueued,
              "grant requires a dynqueued job");

  auto extra = cluster_.allocate_chunked(job.id(), req->extra_cores,
                                         effective_ppn(job), alloc_policy_);
  if (!extra) return false;

  const DynRequest done = *req;  // copy before removal invalidates req
  queue_.remove_dyn_request(req_id);
  availability_hints_.erase(job.id());
  job.expand(*extra);
  job.mark_running_again();
  job.count_dyn_grant();
  DBS_TRACE("grant +" << done.extra_cores << " cores to job "
                      << job.id().value() << " at " << sim_.now());
  for (auto* o : observers_) o->on_dyn_grant(job, done, done.extra_cores);
  moms_->deliver_grant(job, *extra);
  return true;
}

void Server::reject_dyn(RequestId req_id, std::optional<Time> availability_hint) {
  const DynRequest* req = nullptr;
  for (const auto& r : queue_.dyn_requests())
    if (r.id == req_id) req = &r;
  DBS_REQUIRE(req != nullptr, "unknown dynamic request");

  if (sim_.now() < req->deadline) {
    // Negotiation extension: the request stays queued; remember when the
    // scheduler believes resources could be available.
    if (availability_hint) availability_hints_[req->job] = *availability_hint;
    return;
  }
  finalize_reject(*req);
}

void Server::finalize_reject(const DynRequest& req) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  const DynRequest done = req;
  Job& job = queue_.at(done.job);
  queue_.remove_dyn_request(done.id);
  availability_hints_.erase(job.id());
  job.mark_running_again();
  job.count_dyn_reject();
  DBS_TRACE("reject +" << done.extra_cores << " cores for job "
                       << job.id().value() << " at " << sim_.now());
  for (auto* o : observers_) o->on_dyn_reject(job, done);
  moms_->deliver_reject(job);
}

void Server::preempt(JobId id) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.is_running(), "preempt requires a running job");
  DBS_REQUIRE(job.spec().preemptible, "job is not preemptible");
  if (const DynRequest* r = queue_.dyn_request_of(id))
    queue_.remove_dyn_request(r->id);
  moms_->kill(id);
  cluster_.release_all(id);
  if (job.state() == JobState::DynQueued) job.mark_running_again();
  job.mark_requeued();
  for (auto* o : observers_) o->on_requeue(job);
  notify_scheduler();
}

std::optional<Time> Server::availability_hint(JobId id) const {
  auto it = availability_hints_.find(id);
  if (it == availability_hints_.end()) return std::nullopt;
  return it->second;
}

void Server::mom_dyn_request(JobId id, CoreCount extra_cores, Duration timeout,
                             int attempt) {
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.state() == JobState::Running,
              "dynamic request requires a running job");
  DBS_REQUIRE(extra_cores > 0, "dynamic request must ask for cores");
  job.mark_dynqueued();
  job.count_dyn_request();
  const DynRequest req{RequestId{next_request_++}, id, extra_cores, sim_.now(),
                       attempt, sim_.now() + timeout};
  queue_.push_dyn_request(req);
  DBS_TRACE("dynget +" << extra_cores << " cores from job " << id.value()
                       << " (attempt " << attempt << ") at " << sim_.now());
  for (auto* o : observers_) o->on_dyn_request(job, req);
  notify_scheduler();
}

void Server::mom_job_finished(JobId id) {
  Job& job = queue_.at(id);
  if (job.finished()) return;  // lost the race against qdel
  if (const DynRequest* r = queue_.dyn_request_of(id)) {
    // The job finished while its last request was still queued.
    queue_.remove_dyn_request(r->id);
    job.mark_running_again();
  }
  cluster_.release_all(id);
  job.mark_completed(sim_.now());
  DBS_TRACE("finish " << id.value() << " (" << job.spec().name << ") at "
                      << sim_.now());
  for (auto* o : observers_) o->on_job_finish(job);
  notify_scheduler();
}

void Server::shrink_job(JobId id, CoreCount cores) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.is_running(), "shrink requires a running job");
  DBS_REQUIRE(job.spec().malleable(), "job is not malleable");
  DBS_REQUIRE(cores > 0 &&
                  job.allocated_cores() - cores >= job.spec().malleable_min,
              "shrink below the malleable minimum");
  const cluster::Placement freed = job.placement().select_release(cores);
  cluster_.release(id, freed);
  job.shrink(freed);
  DBS_TRACE("malleable shrink -" << cores << " cores of job " << id.value()
                                 << " at " << sim_.now());
  for (auto* o : observers_) o->on_malleable_shrink(job, cores);
  moms_->deliver_reshape(job);
}

void Server::node_failure(NodeId node_id) {
  DBS_REQUIRE(moms_ != nullptr, "moms not wired");
  cluster::Node& node = cluster_.node(node_id);
  DBS_REQUIRE(node.state() == cluster::NodeState::Up, "node already down");

  // Collect the victims before mutating anything.
  std::vector<std::pair<JobId, CoreCount>> victims;
  for (const Job* job : queue_.running()) {
    const CoreCount held = node.held_by(job->id());
    if (held > 0) victims.emplace_back(job->id(), held);
  }

  node.set_state(cluster::NodeState::Down);
  for (const auto& [id, lost] : victims) {
    Job& job = queue_.at(id);
    // A pending dynamic request is superseded by the failure.
    if (const DynRequest* r = queue_.dyn_request_of(id)) {
      queue_.remove_dyn_request(r->id);
      job.mark_running_again();
    }
    node.release(id, lost);
    if (job.allocated_cores() == lost) {
      // Whole allocation on the failed node: restart from scratch.
      moms_->kill(id);
      cluster_.release_all(id);
      job.mark_requeued();
      for (auto* o : observers_) o->on_requeue(job);
      continue;
    }
    job.shrink(cluster::Placement{{{node_id, lost}}});
    moms_->deliver_node_loss(job, lost);
  }
  DBS_TRACE("node " << node_id.value() << " failed, " << victims.size()
                    << " jobs affected");
  notify_scheduler();
}

void Server::restore_node(NodeId node_id) {
  cluster_.node(node_id).set_state(cluster::NodeState::Up);
  notify_scheduler();
}

void Server::mom_job_failed(JobId id) {
  Job& job = queue_.at(id);
  if (job.finished() || job.state() == JobState::Queued) return;
  moms_->kill(id);
  cluster_.release_all(id);
  if (job.state() == JobState::DynQueued) {
    if (const DynRequest* r = queue_.dyn_request_of(id))
      queue_.remove_dyn_request(r->id);
    job.mark_running_again();
  }
  job.mark_requeued();
  for (auto* o : observers_) o->on_requeue(job);
  notify_scheduler();
}

void Server::mom_dyn_release(JobId id, const cluster::Placement& freed) {
  Job& job = queue_.at(id);
  DBS_REQUIRE(job.is_running(), "release requires a running job");
  cluster_.release(id, freed);
  job.shrink(freed);
  for (auto* o : observers_) o->on_dyn_release(job, freed.total_cores());
  notify_scheduler();
}

}  // namespace dbs::rms
