#include "rms/decision.hpp"

namespace dbs::rms {

std::string_view to_string(DecisionKind kind) {
  switch (kind) {
    case DecisionKind::StartJob: return "start_job";
    case DecisionKind::GrantDyn: return "grant_dyn";
    case DecisionKind::RejectDyn: return "reject_dyn";
    case DecisionKind::Preempt: return "preempt";
    case DecisionKind::ShrinkMalleable: return "shrink_malleable";
    case DecisionKind::Reserve: return "reserve";
  }
  return "unknown";
}

void decision_to_json(const Decision& d, std::string& out) {
  out += "{\"kind\": \"";
  out += to_string(d.kind);
  out += "\", \"job\": ";
  out += std::to_string(d.job.value());
  if (d.for_job.valid()) {
    out += ", \"for_job\": ";
    out += std::to_string(d.for_job.value());
  }
  if (d.request.valid()) {
    out += ", \"request\": ";
    out += std::to_string(d.request.value());
  }
  if (d.cores != 0) {
    out += ", \"cores\": ";
    out += std::to_string(d.cores);
  }
  switch (d.kind) {
    case DecisionKind::StartJob:
      out += ", \"backfilled\": ";
      out += d.backfilled ? "true" : "false";
      break;
    case DecisionKind::Reserve:
      out += ", \"start_us\": ";
      out += std::to_string(d.start.as_micros());
      break;
    case DecisionKind::RejectDyn:
      out += ", \"reason\": \"";
      out += d.reason;
      out += "\", \"deferred\": ";
      out += d.deferred ? "true" : "false";
      if (d.hint) {
        out += ", \"hint_us\": ";
        out += std::to_string(d.hint->as_micros());
      }
      break;
    default:
      break;
  }
  out += ", \"applied\": ";
  out += d.applied ? "true" : "false";
  out += '}';
}

std::string decisions_to_json(const std::vector<Decision>& decisions) {
  std::string out = "[";
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (i > 0) out += ", ";
    decision_to_json(decisions[i], out);
  }
  out += ']';
  return out;
}

}  // namespace dbs::rms
