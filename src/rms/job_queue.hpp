// Server-side storage of jobs and the FIFO of pending dynamic requests.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "rms/job.hpp"

namespace dbs::rms {

class JobQueue {
 public:
  /// Takes ownership; id must be fresh and greater than every id ever
  /// added (the server allocates them sequentially).
  Job& add(std::unique_ptr<Job> job);

  /// Destroys a finished job's storage. After this the id is unknown —
  /// at()/contains() behave as if the job never existed — so callers must
  /// only retire once no component will look the id up again (the server
  /// defers retirement by a latency-derived grace period). Amortized O(1):
  /// the id-ordered index tombstones the entry and compacts when
  /// tombstones outnumber live jobs.
  void retire(JobId id);

  /// Lowest live (non-retired) job id; `fallback` when no job is live.
  /// Monotone non-decreasing over time, so it can serve as the floor for
  /// caches windowed by job id.
  [[nodiscard]] std::uint64_t min_live_id(std::uint64_t fallback = 0) const;

  /// Jobs retired so far (observability).
  [[nodiscard]] std::uint64_t retired_count() const { return retired_total_; }

  [[nodiscard]] bool contains(JobId id) const { return jobs_.contains(id); }
  [[nodiscard]] Job& at(JobId id);
  [[nodiscard]] const Job& at(JobId id) const;

  /// Jobs in Queued state, in submission (id) order.
  [[nodiscard]] std::vector<Job*> queued();
  [[nodiscard]] std::vector<const Job*> queued() const;
  /// Allocation-free variant for per-iteration callers: clears `out` and
  /// fills it, reusing its capacity.
  void queued_into(std::vector<const Job*>& out) const;
  [[nodiscard]] std::size_t queued_count() const;
  [[nodiscard]] bool has_queued() const;

  /// Jobs in Running or DynQueued state, in id order.
  [[nodiscard]] std::vector<const Job*> running() const;
  [[nodiscard]] std::size_t running_count() const;
  [[nodiscard]] bool has_running() const;

  /// All live (non-retired) jobs, in id order.
  [[nodiscard]] std::vector<const Job*> all() const;

  /// Live job count (excludes retired jobs).
  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  // --- dynamic request FIFO --------------------------------------------
  void push_dyn_request(DynRequest req);
  /// Pending dynamic requests in FIFO order.
  [[nodiscard]] const std::deque<DynRequest>& dyn_requests() const {
    return dyn_fifo_;
  }
  /// Removes the request with the given id; false if absent.
  bool remove_dyn_request(RequestId id);
  /// The pending request of `job`, if any.
  [[nodiscard]] const DynRequest* dyn_request_of(JobId job) const;

 private:
  void maybe_compact_order();

  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;
  // Submission order as (id, job) pairs sorted by id: unique_ptr storage
  // is stable, so the scan methods walk this vector without per-job hash
  // lookups. Retirement nulls the pointer (the id stays, keeping the
  // vector binary-searchable) and compaction erases the tombstones once
  // they outnumber live entries.
  std::vector<std::pair<JobId, Job*>> order_;
  std::size_t order_tombstones_ = 0;
  /// Lazily advanced index of the first live entry in order_.
  mutable std::size_t first_live_ = 0;
  std::uint64_t retired_total_ = 0;
  std::deque<DynRequest> dyn_fifo_;
};

}  // namespace dbs::rms
