// Server-side storage of jobs and the FIFO of pending dynamic requests.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rms/job.hpp"

namespace dbs::rms {

class JobQueue {
 public:
  /// Takes ownership; id must be fresh.
  Job& add(std::unique_ptr<Job> job);

  [[nodiscard]] bool contains(JobId id) const { return jobs_.contains(id); }
  [[nodiscard]] Job& at(JobId id);
  [[nodiscard]] const Job& at(JobId id) const;

  /// Jobs in Queued state, in submission (id) order.
  [[nodiscard]] std::vector<Job*> queued();
  [[nodiscard]] std::vector<const Job*> queued() const;
  /// Allocation-free variant for per-iteration callers: clears `out` and
  /// fills it, reusing its capacity.
  void queued_into(std::vector<const Job*>& out) const;
  [[nodiscard]] std::size_t queued_count() const;
  [[nodiscard]] bool has_queued() const;

  /// Jobs in Running or DynQueued state, in id order.
  [[nodiscard]] std::vector<const Job*> running() const;
  [[nodiscard]] std::size_t running_count() const;
  [[nodiscard]] bool has_running() const;

  /// All jobs ever submitted, in id order.
  [[nodiscard]] std::vector<const Job*> all() const;

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  // --- dynamic request FIFO --------------------------------------------
  void push_dyn_request(DynRequest req);
  /// Pending dynamic requests in FIFO order.
  [[nodiscard]] const std::deque<DynRequest>& dyn_requests() const {
    return dyn_fifo_;
  }
  /// Removes the request with the given id; false if absent.
  bool remove_dyn_request(RequestId id);
  /// The pending request of `job`, if any.
  [[nodiscard]] const DynRequest* dyn_request_of(JobId job) const;

 private:
  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;
  // Submission order as raw pointers: jobs are never erased from `jobs_`
  // and unique_ptr storage is stable, so the scan methods below can walk
  // this vector without a per-job hash lookup.
  std::vector<Job*> order_;
  std::deque<DynRequest> dyn_fifo_;
};

}  // namespace dbs::rms
