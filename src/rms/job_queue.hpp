// Server-side storage of jobs and the FIFO of pending dynamic requests.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "rms/job.hpp"

namespace dbs::rms {

class JobQueue {
 public:
  /// Takes ownership; id must be fresh.
  Job& add(std::unique_ptr<Job> job);

  [[nodiscard]] bool contains(JobId id) const { return jobs_.contains(id); }
  [[nodiscard]] Job& at(JobId id);
  [[nodiscard]] const Job& at(JobId id) const;

  /// Jobs in Queued state, in submission (id) order.
  [[nodiscard]] std::vector<Job*> queued();
  [[nodiscard]] std::vector<const Job*> queued() const;

  /// Jobs in Running or DynQueued state, in id order.
  [[nodiscard]] std::vector<const Job*> running() const;

  /// All jobs ever submitted, in id order.
  [[nodiscard]] std::vector<const Job*> all() const;

  [[nodiscard]] std::size_t size() const { return jobs_.size(); }

  // --- dynamic request FIFO --------------------------------------------
  void push_dyn_request(DynRequest req);
  /// Pending dynamic requests in FIFO order.
  [[nodiscard]] const std::deque<DynRequest>& dyn_requests() const {
    return dyn_fifo_;
  }
  /// Removes the request with the given id; false if absent.
  bool remove_dyn_request(RequestId id);
  /// The pending request of `job`, if any.
  [[nodiscard]] const DynRequest* dyn_request_of(JobId job) const;

 private:
  std::unordered_map<JobId, std::unique_ptr<Job>> jobs_;
  std::vector<JobId> order_;  ///< submission order
  std::deque<DynRequest> dyn_fifo_;
};

}  // namespace dbs::rms
