// The pbs_server analogue: owns the job queue, executes scheduler commands
// against the cluster, and relays the dynamic (de)allocation protocol
// between the moms and the scheduler.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/types.hpp"
#include "rms/comm.hpp"
#include "rms/job_queue.hpp"
#include "sim/simulator.hpp"

namespace dbs::obs {
class Tracer;
class Registry;
struct Sinks;
namespace rec {
class FlightRecorder;
}
}

namespace dbs::rms {

class MomManager;

/// Passive observer of server-side job events (metrics, tests).
class ServerObserver {
 public:
  virtual ~ServerObserver() = default;
  virtual void on_submit(const Job&) {}
  virtual void on_job_start(const Job&) {}
  virtual void on_job_finish(const Job&) {}
  virtual void on_dyn_request(const Job&, const DynRequest&) {}
  virtual void on_dyn_grant(const Job&, const DynRequest&, CoreCount /*extra*/) {}
  virtual void on_dyn_reject(const Job&, const DynRequest&) {}
  virtual void on_dyn_release(const Job&, CoreCount /*cores*/) {}
  virtual void on_malleable_shrink(const Job&, CoreCount /*cores*/) {}
  virtual void on_requeue(const Job&) {}
  /// Node failure took part of the job's allocation (the job survives on
  /// the remainder; whole-allocation losses requeue instead).
  virtual void on_nodes_lost(const Job&, CoreCount /*lost*/) {}
  /// qdel removed the job; `released` is the allocation freed (0 if the
  /// job was still queued).
  virtual void on_cancel(const Job&, CoreCount /*released*/) {}
};

class Server {
 public:
  Server(sim::Simulator& simulator, cluster::Cluster& cluster,
         LatencyModel latency);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Wires the mom manager (must be called once before any job starts).
  void set_moms(MomManager* moms) { moms_ = moms; }

  /// Registers the scheduler wake-up. Any job/resource state change
  /// schedules one call (coalesced) after `latency.scheduler_delay`.
  void set_scheduler_trigger(std::function<void()> trigger);

  void add_observer(ServerObserver* observer);
  /// Deregisters an observer (no-op if it was never added); observers with
  /// a shorter lifetime than the server must call this before dying.
  void remove_observer(ServerObserver* observer);

  /// Observability sinks: the tracer (nullable) receives job-lifecycle and
  /// dynamic-protocol trace events; protocol counters and the dyn-request
  /// queue-residency histogram land in the registry (null selects the
  /// global one).
  void set_sinks(const obs::Sinks& sinks);

  // --- client commands ---------------------------------------------------
  /// qsub: enqueues the job; effective immediately (submission latency is
  /// applied by the workload driver, which schedules the submit event).
  JobId submit(JobSpec spec, std::unique_ptr<Application> app);

  /// qdel: cancels a queued or running job. Returns false if unknown/done.
  bool cancel(JobId id);

  // --- queries -------------------------------------------------------------
  [[nodiscard]] const JobQueue& jobs() const { return queue_; }
  [[nodiscard]] const cluster::Cluster& cluster() const { return cluster_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] const sim::Simulator& simulator() const { return sim_; }
  [[nodiscard]] const LatencyModel& latency() const { return latency_; }
  [[nodiscard]] const Job& job(JobId id) const { return queue_.at(id); }

  // --- scheduler commands ---------------------------------------------------
  /// Allocates and dispatches a queued job. Returns false (and changes
  /// nothing) if the cluster lacks free cores.
  bool start_job(JobId id, bool backfilled);

  /// Grants the pending dynamic request `req`: allocates the extra cores,
  /// expands the job and informs the mother superior. Returns false (and
  /// changes nothing) if the cores are no longer free.
  bool grant_dyn(RequestId req);

  /// Rejects the pending dynamic request. With the negotiation extension
  /// (deadline in the future) the request simply stays queued and
  /// `availability_hint` is recorded; otherwise it is removed and the
  /// application notified.
  void reject_dyn(RequestId req, std::optional<Time> availability_hint);

  /// Preempts a running preemptible job: releases its cores and requeues it
  /// (progress lost; the application restarts from scratch).
  void preempt(JobId id);

  /// Scheduler-initiated shrink of a running malleable job: releases
  /// `cores` immediately (so they can serve a dynamic request) and informs
  /// the application via on_reshaped. Precondition: the job is malleable
  /// and keeps at least its malleable_min cores.
  void shrink_job(JobId id, CoreCount cores);

  /// Last availability hint returned for a job's negotiating request.
  [[nodiscard]] std::optional<Time> availability_hint(JobId id) const;

  // --- fault handling -------------------------------------------------------
  /// A compute node fails: it goes Down, every job with cores on it loses
  /// them, and each affected application decides (via on_nodes_lost)
  /// whether it survives on the remainder — typically by immediately
  /// requesting spare nodes — or must be requeued. Jobs that lose their
  /// whole allocation are requeued outright.
  void node_failure(NodeId node);

  /// Brings a Down node back into service.
  void restore_node(NodeId node);

  // --- mom-facing entry points (already latency-delayed by the caller) ----
  void mom_dyn_request(JobId id, CoreCount extra_cores, Duration timeout,
                       int attempt);
  void mom_job_finished(JobId id);
  void mom_dyn_release(JobId id, const cluster::Placement& freed);
  /// The application could not survive a node loss: requeue the job.
  void mom_job_failed(JobId id);

  /// Allocation policy used for placements.
  void set_allocation_policy(cluster::AllocationPolicy p) { alloc_policy_ = p; }

  /// Enables deferred reclamation of completed jobs: `grace` after a job
  /// completes, its record is destroyed and the id forgotten, keeping
  /// server memory proportional to the live jobs during long streaming
  /// replays. `grace` must exceed every latency-delayed closure that still
  /// looks the job up after completion (the batch layer derives it from
  /// the latency model). Off by default — materialized runs keep every
  /// record so post-run queries (qstat, CSV dumps) see the full history.
  void set_retirement(Duration grace);

  /// The job's chunk size for placements: its ppn, or the node size.
  [[nodiscard]] CoreCount effective_ppn(const Job& job) const;

  // --- durable-state surface (svc::StateStore) ----------------------------
  [[nodiscard]] std::uint64_t next_job_id_raw() const { return next_job_; }
  [[nodiscard]] std::uint64_t next_request_id_raw() const {
    return next_request_;
  }
  void restore_counters(std::uint64_t next_job, std::uint64_t next_request);

  /// Availability hints sorted by job id (byte-stable snapshot encoding).
  [[nodiscard]] std::vector<std::pair<JobId, Time>> save_availability_hints()
      const;
  void restore_availability_hint(JobId id, Time at);

  [[nodiscard]] std::optional<Duration> retirement_grace() const {
    return retire_grace_;
  }

  /// Re-inserts a restored job record. Unlike submit() this neither
  /// notifies observers nor wakes the scheduler: a restore reconstructs a
  /// state every observer had already seen when the snapshot was taken.
  Job& restore_job(std::unique_ptr<Job> job);

  /// Re-enqueues a restored pending dynamic request; FIFO order is the
  /// caller's call order (the snapshot preserves it).
  void restore_dyn_request(const DynRequest& req);

  /// After a restore with retirement enabled: re-arms the deferred
  /// reclamation event of every already-Completed live job at its recorded
  /// end time plus the grace period.
  void rearm_retirements();

 private:
  void notify_scheduler();
  void finalize_reject(const DynRequest& req);
  /// now - submitted of a finally answered dynamic request, into the
  /// "dyn.queue_residency_s" histogram.
  void record_residency(const DynRequest& req);

  sim::Simulator& sim_;
  cluster::Cluster& cluster_;
  LatencyModel latency_;
  MomManager* moms_ = nullptr;
  std::function<void()> trigger_;
  bool trigger_pending_ = false;
  std::vector<ServerObserver*> observers_;
  JobQueue queue_;
  std::uint64_t next_job_ = 0;
  std::uint64_t next_request_ = 0;
  cluster::AllocationPolicy alloc_policy_ = cluster::AllocationPolicy::Pack;
  std::optional<Duration> retire_grace_;
  std::unordered_map<JobId, Time> availability_hints_;
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_;  ///< never null; defaults to the global one
  /// Flight recorder currently registered in observers_ via set_sinks.
  obs::rec::FlightRecorder* recorder_ = nullptr;
};

}  // namespace dbs::rms
