#include "rms/job_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::rms {

Job& JobQueue::add(std::unique_ptr<Job> job) {
  DBS_REQUIRE(job != nullptr, "null job");
  const JobId id = job->id();
  DBS_REQUIRE(!jobs_.contains(id), "duplicate job id");
  DBS_REQUIRE(order_.empty() || order_.back().first < id,
              "job ids must be added in increasing order");
  Job& ref = *job;
  jobs_.emplace(id, std::move(job));
  order_.emplace_back(id, &ref);
  return ref;
}

void JobQueue::retire(JobId id) {
  auto it = jobs_.find(id);
  DBS_REQUIRE(it != jobs_.end(), "unknown job id");
  DBS_REQUIRE(it->second->finished(), "only finished jobs can be retired");
  const auto pos = std::lower_bound(
      order_.begin(), order_.end(), id,
      [](const auto& entry, JobId key) { return entry.first < key; });
  DBS_ASSERT(pos != order_.end() && pos->first == id,
             "order index out of sync");
  pos->second = nullptr;
  ++order_tombstones_;
  ++retired_total_;
  jobs_.erase(it);
  maybe_compact_order();
}

void JobQueue::maybe_compact_order() {
  // Amortized: each compaction is O(order_) and removes more than half of
  // it, so the cost per retirement stays O(1). The floor keeps small
  // queues from rebuilding constantly.
  if (order_tombstones_ < 1024) return;
  if (order_tombstones_ * 2 <= order_.size()) return;
  std::erase_if(order_, [](const auto& e) { return e.second == nullptr; });
  order_tombstones_ = 0;
  first_live_ = 0;
}

std::uint64_t JobQueue::min_live_id(std::uint64_t fallback) const {
  while (first_live_ < order_.size() &&
         order_[first_live_].second == nullptr)
    ++first_live_;
  if (first_live_ >= order_.size()) return fallback;
  return order_[first_live_].first.value();
}

Job& JobQueue::at(JobId id) {
  auto it = jobs_.find(id);
  DBS_REQUIRE(it != jobs_.end(), "unknown job id");
  return *it->second;
}

const Job& JobQueue::at(JobId id) const {
  auto it = jobs_.find(id);
  DBS_REQUIRE(it != jobs_.end(), "unknown job id");
  return *it->second;
}

std::vector<Job*> JobQueue::queued() {
  std::vector<Job*> out;
  for (const auto& [id, j] : order_)
    if (j != nullptr && j->state() == JobState::Queued) out.push_back(j);
  return out;
}

std::vector<const Job*> JobQueue::queued() const {
  std::vector<const Job*> out;
  for (const auto& [id, j] : order_)
    if (j != nullptr && j->state() == JobState::Queued) out.push_back(j);
  return out;
}

void JobQueue::queued_into(std::vector<const Job*>& out) const {
  out.clear();
  for (const auto& [id, j] : order_)
    if (j != nullptr && j->state() == JobState::Queued) out.push_back(j);
}

std::size_t JobQueue::queued_count() const {
  std::size_t n = 0;
  for (const auto& [id, j] : order_)
    if (j != nullptr && j->state() == JobState::Queued) ++n;
  return n;
}

bool JobQueue::has_queued() const {
  for (const auto& [id, j] : order_)
    if (j != nullptr && j->state() == JobState::Queued) return true;
  return false;
}

std::vector<const Job*> JobQueue::running() const {
  std::vector<const Job*> out;
  for (const auto& [id, j] : order_)
    if (j != nullptr && j->is_running()) out.push_back(j);
  return out;
}

std::size_t JobQueue::running_count() const {
  std::size_t n = 0;
  for (const auto& [id, j] : order_)
    if (j != nullptr && j->is_running()) ++n;
  return n;
}

bool JobQueue::has_running() const {
  for (const auto& [id, j] : order_)
    if (j != nullptr && j->is_running()) return true;
  return false;
}

std::vector<const Job*> JobQueue::all() const {
  std::vector<const Job*> out;
  out.reserve(jobs_.size());
  for (const auto& [id, j] : order_)
    if (j != nullptr) out.push_back(j);
  return out;
}

void JobQueue::push_dyn_request(DynRequest req) {
  DBS_REQUIRE(dyn_request_of(req.job) == nullptr,
              "job already has a pending dynamic request");
  dyn_fifo_.push_back(req);
}

bool JobQueue::remove_dyn_request(RequestId id) {
  auto it = std::find_if(dyn_fifo_.begin(), dyn_fifo_.end(),
                         [&](const DynRequest& r) { return r.id == id; });
  if (it == dyn_fifo_.end()) return false;
  dyn_fifo_.erase(it);
  return true;
}

const DynRequest* JobQueue::dyn_request_of(JobId job) const {
  for (const auto& r : dyn_fifo_)
    if (r.job == job) return &r;
  return nullptr;
}

}  // namespace dbs::rms
