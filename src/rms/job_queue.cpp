#include "rms/job_queue.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::rms {

Job& JobQueue::add(std::unique_ptr<Job> job) {
  DBS_REQUIRE(job != nullptr, "null job");
  const JobId id = job->id();
  DBS_REQUIRE(!jobs_.contains(id), "duplicate job id");
  Job& ref = *job;
  jobs_.emplace(id, std::move(job));
  order_.push_back(&ref);
  return ref;
}

Job& JobQueue::at(JobId id) {
  auto it = jobs_.find(id);
  DBS_REQUIRE(it != jobs_.end(), "unknown job id");
  return *it->second;
}

const Job& JobQueue::at(JobId id) const {
  auto it = jobs_.find(id);
  DBS_REQUIRE(it != jobs_.end(), "unknown job id");
  return *it->second;
}

std::vector<Job*> JobQueue::queued() {
  std::vector<Job*> out;
  for (Job* j : order_)
    if (j->state() == JobState::Queued) out.push_back(j);
  return out;
}

std::vector<const Job*> JobQueue::queued() const {
  std::vector<const Job*> out;
  for (const Job* j : order_)
    if (j->state() == JobState::Queued) out.push_back(j);
  return out;
}

void JobQueue::queued_into(std::vector<const Job*>& out) const {
  out.clear();
  for (const Job* j : order_)
    if (j->state() == JobState::Queued) out.push_back(j);
}

std::size_t JobQueue::queued_count() const {
  std::size_t n = 0;
  for (const Job* j : order_)
    if (j->state() == JobState::Queued) ++n;
  return n;
}

bool JobQueue::has_queued() const {
  for (const Job* j : order_)
    if (j->state() == JobState::Queued) return true;
  return false;
}

std::vector<const Job*> JobQueue::running() const {
  std::vector<const Job*> out;
  for (const Job* j : order_)
    if (j->is_running()) out.push_back(j);
  return out;
}

std::size_t JobQueue::running_count() const {
  std::size_t n = 0;
  for (const Job* j : order_)
    if (j->is_running()) ++n;
  return n;
}

bool JobQueue::has_running() const {
  for (const Job* j : order_)
    if (j->is_running()) return true;
  return false;
}

std::vector<const Job*> JobQueue::all() const {
  return {order_.begin(), order_.end()};
}

void JobQueue::push_dyn_request(DynRequest req) {
  DBS_REQUIRE(dyn_request_of(req.job) == nullptr,
              "job already has a pending dynamic request");
  dyn_fifo_.push_back(req);
}

bool JobQueue::remove_dyn_request(RequestId id) {
  auto it = std::find_if(dyn_fifo_.begin(), dyn_fifo_.end(),
                         [&](const DynRequest& r) { return r.id == id; });
  if (it == dyn_fifo_.end()) return false;
  dyn_fifo_.erase(it);
  return true;
}

const DynRequest* JobQueue::dyn_request_of(JobId job) const {
  for (const auto& r : dyn_fifo_)
    if (r.job == job) return &r;
  return nullptr;
}

}  // namespace dbs::rms
