#include "rms/tm_interface.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "rms/job.hpp"
#include "rms/server.hpp"

namespace dbs::rms {

TmInterface::TmInterface(Server& server, JobId job)
    : server_(server), job_(job) {
  DBS_REQUIRE(job.valid(), "tm interface needs a job");
}

void TmInterface::tm_dynget(CoreCount extra_cores, Duration timeout) {
  DBS_REQUIRE(extra_cores > 0, "tm_dynget needs a positive core count");
  const Job& job = server_.job(job_);
  DBS_REQUIRE(job.state() == JobState::Running,
              "tm_dynget requires a running job without a pending request");
  const int attempt = job.dyn_requests_made() + 1;
  server_.simulator().schedule_after(
      server_.latency().mom_to_server,
      [this, extra_cores, timeout, attempt] {
        if (!server_.job(job_).is_running()) return;
        server_.mom_dyn_request(job_, extra_cores, timeout, attempt);
      });
}

void TmInterface::tm_dynfree(CoreCount cores) {
  const Job& job = server_.job(job_);
  DBS_REQUIRE(job.is_running(), "tm_dynfree requires a running job");
  DBS_REQUIRE(cores > 0 && cores < job.allocated_cores(),
              "tm_dynfree must keep at least one core");
  // Vacate the smallest node shares first (frees whole nodes early).
  const cluster::Placement freed = job.placement().select_release(cores);
  server_.simulator().schedule_after(
      server_.latency().dyn_join(freed.node_count()) +
          server_.latency().mom_to_server,
      [this, freed] {
        if (!server_.job(job_).is_running()) return;
        server_.mom_dyn_release(job_, freed);
      });
}

}  // namespace dbs::rms
