#include "rms/mom.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/log.hpp"
#include "obs/registry.hpp"
#include "obs/sinks.hpp"
#include "obs/tracer.hpp"
#include "rms/job.hpp"
#include "rms/server.hpp"

namespace dbs::rms {

MomManager::MomManager(sim::Simulator& simulator, Server& server,
                       LatencyModel latency)
    : sim_(simulator),
      server_(server),
      latency_(latency),
      registry_(&obs::Registry::global()) {
  latency_.validate();
}

void MomManager::set_sinks(const obs::Sinks& sinks) {
  tracer_ = sinks.tracer;
  registry_ = &sinks.registry_or_global();
}

void MomManager::launch(const Job& job) {
  const JobId id = job.id();
  DBS_REQUIRE(!running_.contains(id), "job already launched");
  JobRuntime rt;
  rt.cores = job.allocated_cores();
  running_.emplace(id, rt);
  const std::uint64_t gen = running_.at(id).generation;

  const std::size_t nodes = job.placement().node_count();
  const Duration delay =
      latency_.server_to_mom + latency_.join(nodes);
  sim_.schedule_after(delay, [this, id, gen, nodes] {
    auto it = running_.find(id);
    if (it == running_.end() || it->second.generation != gen) return;
    registry_->counter("mom.joins").add();
    DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "mom", "join")
                                 .field("job", id.value())
                                 .field("nodes", nodes));
    const AppDecision d =
        server_.job(id).app().on_start(sim_.now(), it->second.cores);
    apply_decision(id, d);
  });
}

void MomManager::deliver_grant(const Job& job, const cluster::Placement& extra) {
  const JobId id = job.id();
  const std::size_t nodes = extra.node_count();
  const CoreCount extra_cores = extra.total_cores();
  const Duration delay =
      latency_.server_to_mom + latency_.dyn_join(nodes);
  sim_.schedule_after(delay, [this, id, nodes, extra_cores] {
    auto it = running_.find(id);
    if (it == running_.end()) return;  // job finished meanwhile
    it->second.cores = server_.job(id).allocated_cores();
    registry_->counter("mom.dyn_joins").add();
    DBS_TRACE_EVENT(tracer_, obs::TraceEvent(sim_.now(), "mom", "dyn_join")
                                 .field("job", id.value())
                                 .field("nodes", nodes)
                                 .field("extra_cores", extra_cores)
                                 .field("cores", it->second.cores));
    const AppDecision d =
        server_.job(id).app().on_grant(sim_.now(), it->second.cores);
    apply_decision(id, d);
  });
}

void MomManager::deliver_reject(const Job& job) {
  const JobId id = job.id();
  sim_.schedule_after(latency_.server_to_mom, [this, id] {
    auto it = running_.find(id);
    if (it == running_.end()) return;
    const AppDecision d =
        server_.job(id).app().on_reject(sim_.now(), it->second.cores);
    apply_decision(id, d);
  });
}

void MomManager::deliver_node_loss(const Job& job, CoreCount lost_cores) {
  const JobId id = job.id();
  DBS_REQUIRE(lost_cores > 0, "node loss must remove cores");
  sim_.schedule_after(latency_.server_to_mom, [this, id, lost_cores] {
    auto it = running_.find(id);
    if (it == running_.end()) return;
    it->second.cores = server_.job(id).allocated_cores();
    const std::optional<AppDecision> d = server_.job(id).app().on_nodes_lost(
        sim_.now(), lost_cores, it->second.cores);
    if (d.has_value()) {
      apply_decision(id, *d);
      return;
    }
    // The application dies with its processes; report the failure.
    cancel_events(it->second);
    running_.erase(it);
    sim_.schedule_after(latency_.mom_to_server,
                        [this, id] { server_.mom_job_failed(id); });
  });
}

void MomManager::kill(JobId id) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  cancel_events(it->second);
  running_.erase(it);
}

void MomManager::cancel_events(JobRuntime& rt) {
  if (rt.completion.valid()) sim_.cancel(rt.completion);
  if (rt.next_ask.valid()) sim_.cancel(rt.next_ask);
  if (rt.next_release.valid()) sim_.cancel(rt.next_release);
  rt.completion = rt.next_ask = rt.next_release = EventId::invalid();
  rt.finish_at = Time::far_future();
  rt.pending_ask.reset();
  rt.ask_attempt = 0;
  rt.pending_release.reset();
  ++rt.generation;
}

void MomManager::arm_completion(JobRuntime& rt, JobId id, Time finish_at) {
  const std::uint64_t gen = rt.generation;
  rt.finish_at = finish_at;
  rt.completion = sim_.schedule_at(finish_at, [this, id, gen] {
    auto jt = running_.find(id);
    if (jt == running_.end() || jt->second.generation != gen) return;
    running_.erase(jt);
    sim_.schedule_after(latency_.mom_to_server,
                        [this, id] { server_.mom_job_finished(id); });
  });
}

void MomManager::arm_ask(JobRuntime& rt, JobId id, const DynAsk& ask,
                         int attempt) {
  const std::uint64_t gen = rt.generation;
  rt.pending_ask = ask;
  rt.ask_attempt = attempt;
  rt.next_ask = sim_.schedule_at(ask.at, [this, id, gen, ask, attempt] {
    auto jt = running_.find(id);
    if (jt == running_.end() || jt->second.generation != gen) return;
    jt->second.pending_ask.reset();
    jt->second.ask_attempt = 0;
    sim_.schedule_after(latency_.mom_to_server, [this, id, ask, attempt] {
      if (!running_.contains(id)) return;
      server_.mom_dyn_request(id, ask.extra_cores, ask.timeout, attempt);
    });
  });
}

void MomManager::arm_release(JobRuntime& rt, JobId id, const DynRelease& rel) {
  const std::uint64_t gen = rt.generation;
  rt.pending_release = rel;
  rt.next_release = sim_.schedule_at(rel.at, [this, id, gen, rel] {
    auto jt = running_.find(id);
    if (jt == running_.end() || jt->second.generation != gen) return;
    jt->second.pending_release.reset();
    const cluster::Placement freed = choose_release(server_.job(id), rel.cores);
    // dyn_disjoin across the vacated nodes, then inform the server and
    // finally the application.
    const Duration disjoin = latency_.dyn_join(freed.node_count());
    sim_.schedule_after(disjoin + latency_.mom_to_server, [this, id, freed] {
      if (!running_.contains(id)) return;
      registry_->counter("mom.dyn_disjoins").add();
      DBS_TRACE_EVENT(tracer_,
                      obs::TraceEvent(sim_.now(), "mom", "dyn_disjoin")
                          .field("job", id.value())
                          .field("nodes", freed.node_count())
                          .field("freed_cores", freed.total_cores()));
      server_.mom_dyn_release(id, freed);
      sim_.schedule_after(latency_.server_to_mom, [this, id] {
        auto kt = running_.find(id);
        if (kt == running_.end()) return;
        kt->second.cores = server_.job(id).allocated_cores();
        const AppDecision d =
            server_.job(id).app().on_released(sim_.now(), kt->second.cores);
        apply_decision(id, d);
      });
    });
  });
}

void MomManager::apply_decision(JobId id, const AppDecision& decision) {
  auto it = running_.find(id);
  DBS_REQUIRE(it != running_.end(), "decision for a dead job");
  JobRuntime& rt = it->second;
  DBS_REQUIRE(decision.finish_at >= sim_.now(),
              "application cannot finish in the past");
  cancel_events(rt);

  arm_completion(rt, id, decision.finish_at);

  if (decision.ask && decision.ask->at < decision.finish_at) {
    const DynAsk ask = *decision.ask;
    DBS_REQUIRE(ask.extra_cores > 0, "ask must request cores");
    DBS_REQUIRE(ask.at >= sim_.now(), "ask cannot be in the past");
    arm_ask(rt, id, ask, server_.job(id).dyn_requests_made() + 1);
  }

  if (decision.release && decision.release->at < decision.finish_at) {
    const DynRelease rel = *decision.release;
    DBS_REQUIRE(rel.cores > 0, "release must give back cores");
    DBS_REQUIRE(rel.at >= sim_.now(), "release cannot be in the past");
    arm_release(rt, id, rel);
  }
}

std::vector<MomManager::RuntimeState> MomManager::save_state() const {
  std::vector<RuntimeState> out;
  out.reserve(running_.size());
  for (const auto& [id, rt] : running_) {
    DBS_REQUIRE(rt.completion.valid() && rt.finish_at != Time::far_future(),
                "snapshot at an unsafe point: job has no applied decision");
    RuntimeState rs;
    rs.job = id;
    rs.cores = rt.cores;
    rs.finish_at = rt.finish_at;
    if (rt.pending_ask.has_value()) {
      rs.has_ask = true;
      rs.ask = *rt.pending_ask;
      rs.ask_attempt = rt.ask_attempt;
    }
    if (rt.pending_release.has_value()) {
      rs.has_release = true;
      rs.release = *rt.pending_release;
    }
    out.push_back(rs);
  }
  std::sort(out.begin(), out.end(),
            [](const RuntimeState& a, const RuntimeState& b) {
              return a.job < b.job;
            });
  return out;
}

void MomManager::restore_runtime(const RuntimeState& rs) {
  DBS_REQUIRE(!running_.contains(rs.job), "job already has a runtime");
  DBS_REQUIRE(rs.finish_at >= sim_.now(), "restored completion in the past");
  JobRuntime rt;
  rt.cores = rs.cores;
  auto [it, inserted] = running_.emplace(rs.job, rt);
  (void)inserted;
  arm_completion(it->second, rs.job, rs.finish_at);
  if (rs.has_ask) arm_ask(it->second, rs.job, rs.ask, rs.ask_attempt);
  if (rs.has_release) arm_release(it->second, rs.job, rs.release);
}

cluster::Placement MomManager::choose_release(const Job& job,
                                              CoreCount cores) const {
  return job.placement().select_release(cores);
}

void MomManager::deliver_reshape(const Job& job) {
  const JobId id = job.id();
  sim_.schedule_after(latency_.server_to_mom, [this, id] {
    auto it = running_.find(id);
    if (it == running_.end()) return;
    it->second.cores = server_.job(id).allocated_cores();
    const AppDecision d =
        server_.job(id).app().on_reshaped(sim_.now(), it->second.cores);
    apply_decision(id, d);
  });
}

}  // namespace dbs::rms
