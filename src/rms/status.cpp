#include "rms/status.hpp"

#include <algorithm>
#include <sstream>

#include "common/table.hpp"

namespace dbs::rms {

std::string format_qstat(const Server& server, bool include_finished) {
  TextTable table({"Job", "Name", "User", "State", "Cores", "Wait", "Run"});
  const Time now = server.simulator().now();
  for (const Job* job : server.jobs().all()) {
    if (!include_finished && job->finished()) continue;
    std::string wait = "-";
    std::string run = "-";
    if (job->started()) {
      wait = (job->start_time() - job->submit_time()).to_hms();
      run = ((job->finished() ? job->end_time() : now) - job->start_time())
                .to_hms();
    } else if (!job->finished()) {
      wait = (now - job->submit_time()).to_hms();
    }
    std::string cores = std::to_string(job->spec().cores);
    if (job->is_running() &&
        job->allocated_cores() != job->spec().cores)
      cores += "->" + std::to_string(job->allocated_cores());
    table.add_row({std::to_string(job->id().value()), job->spec().name,
                   job->spec().cred.user, std::string(to_string(job->state())),
                   cores, wait, run});
  }
  return table.to_string();
}

std::string format_pbsnodes(const Server& server) {
  TextTable table({"Node", "State", "Used/Total", "Jobs"});
  std::vector<JobId> holders;
  for (const cluster::Node& node : server.cluster().nodes()) {
    // The node's own hold map lists its occupants directly — no scan over
    // all running jobs per node. Sorted by id to match the submission
    // order the job-queue scan used to produce.
    holders.clear();
    for (const auto& [id, cores] : node.held()) holders.push_back(id);
    std::sort(holders.begin(), holders.end());
    std::string jobs;
    for (const JobId id : holders) {
      if (!jobs.empty()) jobs += ",";
      jobs += std::to_string(id.value());
    }
    const char* state = node.state() == cluster::NodeState::Up ? "up"
                        : node.state() == cluster::NodeState::Down ? "down"
                                                                   : "offline";
    table.add_row({std::to_string(node.id().value()), state,
                   std::to_string(node.used_cores()) + "/" +
                       std::to_string(node.total_cores()),
                   jobs.empty() ? "-" : jobs});
  }
  return table.to_string();
}

std::string format_load_summary(const Server& server) {
  std::size_t running = 0, dynqueued = 0, queued = 0;
  for (const Job* job : server.jobs().all()) {
    switch (job->state()) {
      case JobState::Running: ++running; break;
      case JobState::DynQueued: ++dynqueued; break;
      case JobState::Queued: ++queued; break;
      default: break;
    }
  }
  std::ostringstream os;
  os << "cores " << server.cluster().used_cores() << "/"
     << server.cluster().total_cores() << " used | jobs: " << running
     << " running, " << dynqueued << " dynqueued, " << queued
     << " queued | pending dynamic requests: "
     << server.jobs().dyn_requests().size();
  return os.str();
}

}  // namespace dbs::rms
