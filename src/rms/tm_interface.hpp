// The extended TM interface of the paper (§III-B): tm_dynget() and
// tm_dynfree(). In the real system these are C functions an MPI application
// calls on its mother-superior node; here they are a thin façade over the
// mom→server protocol so examples and tests can drive the dynamic
// (de)allocation path directly, outside an Application model.
#pragma once

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::rms {

class Server;

class TmInterface {
 public:
  /// Binds the interface to a job's mother superior.
  TmInterface(Server& server, JobId job);

  /// Requests `extra_cores` more cores. The request travels to the server
  /// with mom→server latency and is decided in the next scheduling
  /// iteration. A non-zero `timeout` enables negotiation: the request stays
  /// queued until granted or the timeout expires.
  /// Precondition: the job is Running with no pending dynamic request.
  void tm_dynget(CoreCount extra_cores, Duration timeout = Duration::zero());

  /// Releases `cores` of the job's current allocation (any subset — the
  /// flexibility the paper highlights over SLURM's all-or-nothing rule).
  /// Precondition: the job is Running and keeps at least one core.
  void tm_dynfree(CoreCount cores);

  [[nodiscard]] JobId job() const { return job_; }

 private:
  Server& server_;
  JobId job_;
};

}  // namespace dbs::rms
