// The contract between the batch system and the (simulated) application it
// runs. An Application answers, at each lifecycle event, when it will finish
// with its current allocation and whether/when it wants to grow or shrink.
// This mirrors what a real evolving MPI code does through the extended TM
// interface (tm_dynget / tm_dynfree) of the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::rms {

/// Serializable application-model state for durable snapshots. `kind`
/// identifies the concrete model (apps::AppStateKind); `ints`/`doubles`
/// carry its fields in a model-defined order. Flat arrays keep the codec
/// model-agnostic: the state store never learns per-model layouts.
struct AppState {
  std::uint32_t kind = 0;
  std::vector<std::int64_t> ints;
  std::vector<double> doubles;

  [[nodiscard]] bool operator==(const AppState&) const = default;
};

/// A planned tm_dynget call: at absolute time `at`, ask for `extra_cores`.
/// A non-zero `timeout` opts into the negotiation extension: the server may
/// keep the request queued until `at + timeout` before finally rejecting.
struct DynAsk {
  Time at;
  CoreCount extra_cores = 0;
  Duration timeout = Duration::zero();

  [[nodiscard]] bool operator==(const DynAsk&) const = default;
};

/// A planned tm_dynfree call: at absolute time `at`, give back `cores`.
struct DynRelease {
  Time at;
  CoreCount cores = 0;

  [[nodiscard]] bool operator==(const DynRelease&) const = default;
};

/// What the application intends to do next, given its current allocation.
/// `finish_at` is always meaningful; `ask`/`release` are optional and must
/// lie strictly before `finish_at` to take effect.
struct AppDecision {
  Time finish_at;
  std::optional<DynAsk> ask;
  std::optional<DynRelease> release;
};

/// Simulated application behaviour. Implementations live in dbs::apps
/// (rigid, ESP-evolving, Quadflow); the mother superior drives the calls.
class Application {
 public:
  virtual ~Application() = default;

  /// The job's processes started on `cores` cores at `now`.
  virtual AppDecision on_start(Time now, CoreCount cores) = 0;

  /// A tm_dynget succeeded; the job now holds `total_cores`.
  virtual AppDecision on_grant(Time now, CoreCount total_cores) = 0;

  /// A tm_dynget was (finally) rejected; allocation unchanged.
  virtual AppDecision on_reject(Time now, CoreCount total_cores) = 0;

  /// A tm_dynfree completed; the job now holds `total_cores`.
  virtual AppDecision on_released(Time now, CoreCount total_cores) = 0;

  /// The scheduler shrank this malleable job to `total_cores` (a
  /// scheduler-initiated reshape, not a reply to any request of ours).
  /// Only jobs submitted with malleable_min > 0 ever receive this. The
  /// default forwards to on_released, which suits work-conserving models.
  virtual AppDecision on_reshaped(Time now, CoreCount total_cores) {
    return on_released(now, total_cores);
  }

  /// A node failure took `lost_cores` of the job's allocation away; the job
  /// still holds `total_cores` (> 0). Return a decision to survive on the
  /// remaining cores (typically with an immediate DynAsk for spare nodes —
  /// the fault-tolerance use of dynamic allocation the paper motivates), or
  /// nullopt if the application cannot survive the loss, in which case the
  /// server requeues the job (restart from scratch).
  virtual std::optional<AppDecision> on_nodes_lost(Time now,
                                                   CoreCount lost_cores,
                                                   CoreCount total_cores) {
    (void)now;
    (void)lost_cores;
    (void)total_cores;
    return std::nullopt;
  }

  [[nodiscard]] virtual const char* name() const { return "app"; }

  /// Captures this model's full state into `out` for a durable snapshot;
  /// returns false when the model does not support snapshotting (scripted
  /// and stochastic models — the service loop rejects those up front).
  [[nodiscard]] virtual bool save_state(AppState& out) const {
    (void)out;
    return false;
  }
};

}  // namespace dbs::rms
