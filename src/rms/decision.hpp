// The typed decision vocabulary between the scheduler and the server.
//
// Pipeline stages never mutate the server directly; they emit Decisions
// through a DecisionApplier (decision_applier.hpp), which executes them and
// keeps the per-iteration stream. The stream is the scheduler's command
// log: replayable, printable (dbsim --dry-run-iteration), and the natural
// seam for a future distributed decide/commit split.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::rms {

enum class DecisionKind {
  StartJob,         ///< start a queued static job (possibly backfilled)
  GrantDyn,         ///< grant a pending dynamic request
  RejectDyn,        ///< reject (or defer, under negotiation) a request
  Preempt,          ///< preempt a running job to free cores for a request
  ShrinkMalleable,  ///< shrink a running malleable job for a request
  Reserve,          ///< keep a StartLater reservation (no server action)
};

[[nodiscard]] std::string_view to_string(DecisionKind kind);

/// One scheduler decision. Which fields are meaningful depends on `kind`;
/// unused ids stay invalid() and unused counts stay 0.
struct Decision {
  DecisionKind kind = DecisionKind::Reserve;
  /// The job acted on: started, granted/rejected owner, preemption or
  /// shrink victim, or reserved.
  JobId job;
  /// The dynamic request's owner for Preempt/ShrinkMalleable (the job the
  /// cores are freed for).
  JobId for_job;
  /// The dynamic request (GrantDyn/RejectDyn).
  RequestId request;
  /// Extra cores granted/rejected, cores shrunk, or cores reserved.
  CoreCount cores = 0;
  /// Reserve: the planned start time.
  Time start;
  /// StartJob: planned out of priority order.
  bool backfilled = false;
  /// Outcome of executing the decision (true in dry-run, where execution is
  /// assumed to succeed). StartJob/GrantDyn can fail on node-level
  /// fragmentation.
  bool applied = true;
  /// RejectDyn: the request stayed queued (negotiation deferral).
  bool deferred = false;
  /// RejectDyn: audit reason (static string; "granted" elsewhere).
  std::string_view reason = "granted";
  /// RejectDyn: availability hint returned to the application, if any.
  std::optional<Time> hint;
};

/// Appends one decision as a JSON object (stable key order; the dry-run
/// printer and tests rely on it).
void decision_to_json(const Decision& decision, std::string& out);

/// JSON array of a whole stream.
[[nodiscard]] std::string decisions_to_json(
    const std::vector<Decision>& decisions);

}  // namespace dbs::rms
