// Executes the scheduler's typed decision stream against the server — the
// single seam through which scheduling decisions become server actions.
//
// Live mode forwards each decision to the matching Server command in the
// order it is emitted (deciding stays interleaved with acting exactly as
// Algorithm 2 requires: a grant changes what later requests are measured
// against). Dry-run mode records the stream without touching the server,
// assuming every action succeeds, which turns the whole pipeline into a
// what-if iteration (dbsim --dry-run-iteration).
#pragma once

#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "rms/decision.hpp"
#include "rms/server.hpp"

namespace dbs::rms {

class DecisionApplier {
 public:
  explicit DecisionApplier(Server& server) : server_(server) {}

  DecisionApplier(const DecisionApplier&) = delete;
  DecisionApplier& operator=(const DecisionApplier&) = delete;

  /// Write-ahead hook: invoked once per executed decision (after the
  /// server action, with the outcome filled in), never during dry runs.
  /// The service layer appends each to the WAL; null disables.
  void set_decision_sink(std::function<void(const Decision&)> sink) {
    sink_ = std::move(sink);
  }

  /// Clears the stream for a new iteration. Storage is reused.
  void begin_iteration(bool dry_run) {
    dry_run_ = dry_run;
    decisions_.clear();
  }

  [[nodiscard]] bool dry_run() const { return dry_run_; }

  /// The decisions emitted since begin_iteration(), in emission order.
  [[nodiscard]] const std::vector<Decision>& decisions() const {
    return decisions_;
  }

  /// Starts a queued job. False when node-level fragmentation defeats the
  /// aggregate plan (the job stays queued; dry-run assumes success).
  bool start_job(JobId job, bool backfilled);

  /// Grants a pending dynamic request. False when the cores are no longer
  /// allocatable (dry-run assumes success).
  bool grant_dyn(const DynRequest& request);

  /// Rejects a pending dynamic request with an availability hint and the
  /// audit `reason`. Returns true when the request stayed queued
  /// (negotiation deferral) — in dry-run, decided from the request's
  /// deadline, mirroring Server::reject_dyn.
  bool reject_dyn(const DynRequest& request, std::optional<Time> hint,
                  std::string_view reason);

  /// Preempts a running job to free cores for `for_job`'s request.
  void preempt(JobId victim, JobId for_job);

  /// Shrinks a running malleable job by `cores` for `for_job`'s request.
  void shrink_malleable(JobId victim, CoreCount cores, JobId for_job);

  /// Records a StartLater reservation (no server action; the reservation
  /// lives in the scheduler's plan).
  void reserve(JobId job, CoreCount cores, Time start);

 private:
  /// Records the decision and feeds the write-ahead sink (live mode only).
  void emit(const Decision& d) {
    decisions_.push_back(d);
    if (sink_ && !dry_run_) sink_(d);
  }

  Server& server_;
  bool dry_run_ = false;
  std::vector<Decision> decisions_;
  std::function<void(const Decision&)> sink_;
};

}  // namespace dbs::rms
