// Latency model for daemon communication. The paper's Fig. 12 measures the
// wall-clock cost of a dynamic allocation on a real Torque deployment; in
// the simulator every daemon hop and join operation costs virtual time
// according to this model, so the same experiment can be expressed in
// virtual time (and the scheduler computation itself is measured separately
// with google-benchmark).
#pragma once

#include "common/time.hpp"

namespace dbs::rms {

struct LatencyModel {
  /// qsub → pbs_server.
  Duration client_to_server = Duration::millis(1);
  /// pbs_server → mother superior (job dispatch, grant/reject replies).
  Duration server_to_mom = Duration::millis(1);
  /// mom → pbs_server (dyn requests, completion reports).
  Duration mom_to_server = Duration::millis(1);
  /// Fixed part of the initial join of all sister moms.
  Duration join_base = Duration::millis(2);
  /// Serial per-node part of the initial join.
  Duration join_per_node = Duration::micros(300);
  /// Fixed part of dyn_join / dyn_disjoin.
  Duration dyn_join_base = Duration::millis(1);
  /// Serial per-newly-added-node part of dyn_join / dyn_disjoin.
  Duration dyn_join_per_node = Duration::micros(300);
  /// Delay between a server state change and the scheduler iteration it
  /// triggers (Maui wakes up on job/resource state changes).
  Duration scheduler_delay = Duration::millis(1);

  /// Duration of the initial join across `nodes` nodes.
  [[nodiscard]] Duration join(std::size_t nodes) const;
  /// Duration of a dyn_join/dyn_disjoin across `nodes` new nodes.
  [[nodiscard]] Duration dyn_join(std::size_t nodes) const;

  /// Throws precondition_error if any latency is negative.
  void validate() const;

  /// A model where every hop is free — useful for algorithm-only tests.
  [[nodiscard]] static LatencyModel zero();
};

}  // namespace dbs::rms
