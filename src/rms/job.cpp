#include "rms/job.hpp"

#include <new>
#include <utility>
#include <vector>

#include "common/assert.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define DBS_JOB_POOL_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define DBS_JOB_POOL_DISABLED 1
#endif
#endif

namespace dbs::rms {

namespace {

/// Per-thread freelist of Job-sized blocks. Capped so an allocation burst
/// (e.g. a full queue draining at simulation end) does not pin memory
/// forever; blocks are genuinely freed at thread exit.
struct JobPool {
  std::vector<void*> blocks;
  ~JobPool() {
    for (void* p : blocks) ::operator delete(p);
  }
};

constexpr std::size_t kJobPoolCap = 4096;

JobPool& job_pool() {
  thread_local JobPool pool;
  return pool;
}

}  // namespace

void* Job::operator new(std::size_t size) {
#ifndef DBS_JOB_POOL_DISABLED
  if (size == sizeof(Job)) {
    auto& pool = job_pool();
    if (!pool.blocks.empty()) {
      void* p = pool.blocks.back();
      pool.blocks.pop_back();
      return p;
    }
  }
#endif
  return ::operator new(size);
}

void Job::operator delete(void* p, std::size_t size) noexcept {
#ifndef DBS_JOB_POOL_DISABLED
  if (p != nullptr && size == sizeof(Job)) {
    auto& pool = job_pool();
    if (pool.blocks.size() < kJobPoolCap) {
      pool.blocks.push_back(p);
      return;
    }
  }
#endif
  ::operator delete(p);
}

// Unsized fallback: pooled blocks all come from ::operator new, so
// releasing one here (without recycling) is still correct.
void Job::operator delete(void* p) noexcept { ::operator delete(p); }

std::string_view to_string(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::DynQueued: return "dynqueued";
    case JobState::Completed: return "completed";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

Job::Job(JobId id, JobSpec spec, std::unique_ptr<Application> app, Time submit)
    : id_(id), spec_(std::move(spec)), app_(std::move(app)), submit_(submit) {
  DBS_REQUIRE(id_.valid(), "job needs a valid id");
  DBS_REQUIRE(app_ != nullptr, "job needs an application model");
  DBS_REQUIRE(spec_.cores > 0, "job must request at least one core");
  DBS_REQUIRE(spec_.walltime > Duration::zero(), "walltime must be positive");
  DBS_REQUIRE(!spec_.cred.user.empty(), "job needs a user");
}

std::unique_ptr<Job> Job::restore(JobId id, JobSpec spec,
                                  std::unique_ptr<Application> app, Time submit,
                                  const Restore& r) {
  auto job = std::make_unique<Job>(id, std::move(spec), std::move(app), submit);
  job->state_ = r.state;
  job->start_ = r.start;
  job->end_ = r.end;
  job->placement_ = r.placement;
  job->backfilled_ = r.backfilled;
  job->dyn_requests_made_ = r.dyn_requests_made;
  job->dyn_grants_ = r.dyn_grants;
  job->dyn_rejects_ = r.dyn_rejects;
  return job;
}

Time Job::start_time() const {
  DBS_REQUIRE(start_.has_value(), "job has not started");
  return *start_;
}

Time Job::end_time() const {
  DBS_REQUIRE(end_.has_value(), "job has not ended");
  return *end_;
}

Time Job::walltime_end() const {
  return start_time() + spec_.walltime;
}

void Job::mark_started(Time at, cluster::Placement placement, bool backfilled) {
  DBS_REQUIRE(state_ == JobState::Queued, "start requires Queued state");
  DBS_REQUIRE(placement.total_cores() == spec_.cores,
              "initial placement must match requested cores");
  state_ = JobState::Running;
  start_ = at;
  placement_ = std::move(placement);
  backfilled_ = backfilled;
}

void Job::mark_dynqueued() {
  DBS_REQUIRE(state_ == JobState::Running, "dynqueued requires Running state");
  state_ = JobState::DynQueued;
}

void Job::mark_running_again() {
  DBS_REQUIRE(state_ == JobState::DynQueued,
              "resume requires DynQueued state");
  state_ = JobState::Running;
}

void Job::expand(const cluster::Placement& extra) {
  DBS_REQUIRE(is_running(), "expand requires a running job");
  placement_.merge(extra);
}

void Job::shrink(const cluster::Placement& freed) {
  DBS_REQUIRE(is_running(), "shrink requires a running job");
  for (const auto& share : freed.shares) {
    bool found = false;
    for (auto& mine : placement_.shares) {
      if (mine.node == share.node) {
        DBS_REQUIRE(mine.cores >= share.cores,
                    "shrinking cores the job does not hold");
        mine.cores -= share.cores;
        found = true;
        break;
      }
    }
    DBS_REQUIRE(found, "shrinking a node the job does not use");
  }
  std::erase_if(placement_.shares,
                [](const cluster::NodeShare& s) { return s.cores == 0; });
  DBS_REQUIRE(allocated_cores() > 0, "job cannot shrink to zero cores");
}

void Job::mark_completed(Time at) {
  DBS_REQUIRE(is_running(), "completion requires a running job");
  state_ = JobState::Completed;
  end_ = at;
}

void Job::mark_cancelled(Time at) {
  DBS_REQUIRE(!finished(), "job already finished");
  state_ = JobState::Cancelled;
  end_ = at;
}

void Job::mark_requeued() {
  DBS_REQUIRE(is_running(), "requeue requires a running job");
  state_ = JobState::Queued;
  start_.reset();
  placement_ = {};
  backfilled_ = false;
}

}  // namespace dbs::rms
