// Job records kept by the server.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "cluster/allocation_policy.hpp"
#include "common/time.hpp"
#include "common/types.hpp"
#include "rms/application.hpp"

namespace dbs::rms {

/// Server-side job lifecycle. `DynQueued` is the paper's special state a
/// running job enters while one of its dynamic requests awaits scheduling.
enum class JobState {
  Queued,     ///< submitted, awaiting first allocation
  Running,    ///< processes executing
  DynQueued,  ///< running, with a dynamic request pending at the server
  Completed,  ///< finished normally
  Cancelled,  ///< removed by qdel or preemption-without-requeue
};

[[nodiscard]] std::string_view to_string(JobState s);

/// Everything the user supplies at qsub time.
struct JobSpec {
  std::string name;
  Credentials cred;
  CoreCount cores = 1;          ///< initial (static) allocation size
  /// Torque-style processes-per-node: the request is placed as
  /// ceil(cores/ppn) chunks on distinct nodes. 0 = the cluster's
  /// cores-per-node (whole-node chunks, the common qsub nodes=N:ppn=all).
  CoreCount ppn = 0;
  Duration walltime;            ///< requested time slice
  bool exclusive_priority = false;  ///< ESP Z-job drain rule
  bool preemptible = false;     ///< may be preempted to serve dynamic requests
  /// Malleable jobs: the scheduler may shrink the running job down to this
  /// many cores at its discretion (and the cores can serve dynamic
  /// requests, §II-B). 0 = rigid (not malleable).
  CoreCount malleable_min = 0;
  std::string type_tag;         ///< free-form label (e.g. ESP job type letter)

  [[nodiscard]] bool malleable() const { return malleable_min > 0; }
  [[nodiscard]] bool operator==(const JobSpec&) const = default;
};

/// One pending dynamic (tm_dynget) request at the server.
struct DynRequest {
  RequestId id;
  JobId job;
  CoreCount extra_cores = 0;
  Time submitted;
  int attempt = 1;              ///< 1 = first ask, 2 = retry, ...
  Time deadline;                ///< == submitted when no negotiation timeout

  [[nodiscard]] bool operator==(const DynRequest&) const = default;
};

/// A job record. Owned by the JobQueue; identity is the JobId.
class Job {
 public:
  Job(JobId id, JobSpec spec, std::unique_ptr<Application> app, Time submit);

  Job(const Job&) = delete;
  Job& operator=(const Job&) = delete;

  /// Job storage is pooled: streaming replay churns through millions of
  /// short-lived records, and the allocator round-trip would dominate the
  /// submit/retire hot path. Blocks are recycled through a per-thread
  /// freelist (each ParallelRunner replication runs single-threaded, so
  /// thread_local is race-free). Disabled under ASan so use-after-retire
  /// stays detectable.
  static void* operator new(std::size_t size);
  static void operator delete(void* p, std::size_t size) noexcept;
  static void operator delete(void* p) noexcept;

  [[nodiscard]] JobId id() const { return id_; }
  [[nodiscard]] const JobSpec& spec() const { return spec_; }
  [[nodiscard]] JobState state() const { return state_; }
  [[nodiscard]] Application& app() const { return *app_; }

  [[nodiscard]] Time submit_time() const { return submit_; }
  [[nodiscard]] Time start_time() const;
  [[nodiscard]] Time end_time() const;
  [[nodiscard]] bool started() const { return start_.has_value(); }
  [[nodiscard]] bool finished() const {
    return state_ == JobState::Completed || state_ == JobState::Cancelled;
  }
  [[nodiscard]] bool is_running() const {
    return state_ == JobState::Running || state_ == JobState::DynQueued;
  }

  /// Reservation horizon: resources are held until start + walltime.
  [[nodiscard]] Time walltime_end() const;

  [[nodiscard]] const cluster::Placement& placement() const { return placement_; }
  [[nodiscard]] CoreCount allocated_cores() const { return placement_.total_cores(); }

  [[nodiscard]] bool was_backfilled() const { return backfilled_; }
  [[nodiscard]] int dyn_requests_made() const { return dyn_requests_made_; }
  [[nodiscard]] int dyn_grants() const { return dyn_grants_; }
  [[nodiscard]] int dyn_rejects() const { return dyn_rejects_; }
  /// A job whose every dynamic request succeeded (and made at least one)
  /// counts as a "satisfied" evolving job in Table II. Any final rejection
  /// disqualifies the job, even alongside grants.
  [[nodiscard]] bool dyn_satisfied() const {
    return dyn_requests_made_ > 0 && dyn_rejects_ == 0;
  }

  // --- state transitions (server-internal; validated) ------------------
  void mark_started(Time at, cluster::Placement placement, bool backfilled);
  void mark_dynqueued();
  void mark_running_again();
  void expand(const cluster::Placement& extra);
  void shrink(const cluster::Placement& freed);
  void mark_completed(Time at);
  void mark_cancelled(Time at);
  /// Preemption: back to Queued, all progress and placement dropped.
  void mark_requeued();

  void count_dyn_request() { ++dyn_requests_made_; }
  void count_dyn_grant() { ++dyn_grants_; }
  void count_dyn_reject() { ++dyn_rejects_; }

  /// Full mid-lifecycle state, for durable snapshots. Unlike the
  /// transition methods above this performs no validation sequencing: the
  /// state store re-creates a job exactly as the saved one was.
  struct Restore {
    JobState state = JobState::Queued;
    std::optional<Time> start;
    std::optional<Time> end;
    cluster::Placement placement;
    bool backfilled = false;
    int dyn_requests_made = 0;
    int dyn_grants = 0;
    int dyn_rejects = 0;

    [[nodiscard]] bool operator==(const Restore&) const = default;
  };
  [[nodiscard]] static std::unique_ptr<Job> restore(
      JobId id, JobSpec spec, std::unique_ptr<Application> app, Time submit,
      const Restore& r);

 private:
  JobId id_;
  JobSpec spec_;
  std::unique_ptr<Application> app_;
  JobState state_ = JobState::Queued;
  Time submit_;
  std::optional<Time> start_;
  std::optional<Time> end_;
  cluster::Placement placement_;
  bool backfilled_ = false;
  int dyn_requests_made_ = 0;
  int dyn_grants_ = 0;
  int dyn_rejects_ = 0;
};

}  // namespace dbs::rms
