// The pbs_mom analogue. One MomManager drives all per-node mom daemons and
// the mother-superior role of each job: it performs join / dyn_join /
// dyn_disjoin operations (costing virtual time), runs the Application state
// machine, and forwards tm_dynget / tm_dynfree to the server.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/allocation_policy.hpp"
#include "common/types.hpp"
#include "rms/application.hpp"
#include "rms/comm.hpp"
#include "sim/simulator.hpp"

namespace dbs::obs {
class Tracer;
class Registry;
struct Sinks;
}

namespace dbs::rms {

class Server;
class Job;

class MomManager {
 public:
  MomManager(sim::Simulator& simulator, Server& server, LatencyModel latency);

  MomManager(const MomManager&) = delete;
  MomManager& operator=(const MomManager&) = delete;

  // --- server-facing -------------------------------------------------------
  /// Dispatches a freshly started job: sister moms join, then the
  /// application starts.
  void launch(const Job& job);

  /// Delivers a successful tm_dynget: dyn_join over the new nodes, then the
  /// application's on_grant runs.
  void deliver_grant(const Job& job, const cluster::Placement& extra);

  /// Delivers a final tm_dynget rejection.
  void deliver_reject(const Job& job);

  /// Informs the application of a scheduler-initiated malleable shrink
  /// (the job record already reflects the reduced allocation).
  void deliver_reshape(const Job& job);

  /// Informs the application that a node failure removed `lost_cores` from
  /// its allocation. The application either survives (new decision, often
  /// with an immediate spare-node request) or the job is reported failed
  /// back to the server for requeueing.
  void deliver_node_loss(const Job& job, CoreCount lost_cores);

  /// Kills a job's processes (preemption / qdel): all pending application
  /// events are cancelled.
  void kill(JobId id);

  /// Number of jobs with live application state.
  [[nodiscard]] std::size_t active_jobs() const { return running_.size(); }

  /// Serializable per-job mom runtime for durable snapshots, sorted by job
  /// id. Valid only at a quiescent point of a zero-latency system: every
  /// protocol cascade (join, hop, disjoin) has drained, so the remaining
  /// pending events are exactly the completion plus the not-yet-fired
  /// ask/release descriptors captured here.
  struct RuntimeState {
    JobId job;
    CoreCount cores = 0;
    Time finish_at;
    bool has_ask = false;
    DynAsk ask;
    int ask_attempt = 0;
    bool has_release = false;
    DynRelease release;

    [[nodiscard]] bool operator==(const RuntimeState&) const = default;
  };
  [[nodiscard]] std::vector<RuntimeState> save_state() const;
  /// Re-creates the runtime of a restored running job and re-arms its
  /// events at their recorded absolute times (all >= the restored clock).
  void restore_runtime(const RuntimeState& rs);

  /// Observability sinks: the tracer (nullable) receives join / dyn_join /
  /// dyn_disjoin protocol trace events; protocol-step counters land in the
  /// registry (null selects the global one).
  void set_sinks(const obs::Sinks& sinks);

 private:
  struct JobRuntime {
    CoreCount cores = 0;
    EventId completion = EventId::invalid();
    EventId next_ask = EventId::invalid();
    EventId next_release = EventId::invalid();
    std::uint64_t generation = 0;  ///< invalidates in-flight events
    // Snapshot descriptors mirroring the armed events; each is cleared the
    // moment its event fires so a restore never double-arms one.
    Time finish_at = Time::far_future();
    std::optional<DynAsk> pending_ask;
    int ask_attempt = 0;
    std::optional<DynRelease> pending_release;
  };

  /// Installs a fresh AppDecision: (re)schedules completion, the next
  /// tm_dynget and the next tm_dynfree.
  void apply_decision(JobId id, const AppDecision& decision);
  void cancel_events(JobRuntime& rt);
  // Event-arming primitives shared by apply_decision and restore_runtime;
  // each records the matching snapshot descriptor on `rt`.
  void arm_completion(JobRuntime& rt, JobId id, Time finish_at);
  void arm_ask(JobRuntime& rt, JobId id, const DynAsk& ask, int attempt);
  void arm_release(JobRuntime& rt, JobId id, const DynRelease& rel);
  /// Picks which of the job's node shares to give back for a release of
  /// `cores` cores (vacates the fullest shares last, freeing whole nodes
  /// where possible).
  [[nodiscard]] cluster::Placement choose_release(const Job& job,
                                                  CoreCount cores) const;

  sim::Simulator& sim_;
  Server& server_;
  LatencyModel latency_;
  std::unordered_map<JobId, JobRuntime> running_;
  obs::Tracer* tracer_ = nullptr;
  obs::Registry* registry_;  ///< never null; defaults to the global one
};

}  // namespace dbs::rms
