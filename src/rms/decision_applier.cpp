#include "rms/decision_applier.hpp"

namespace dbs::rms {

bool DecisionApplier::start_job(JobId job, bool backfilled) {
  Decision d;
  d.kind = DecisionKind::StartJob;
  d.job = job;
  d.backfilled = backfilled;
  d.cores = server_.job(job).spec().cores;
  if (!dry_run_) d.applied = server_.start_job(job, backfilled);
  emit(d);
  return d.applied;
}

bool DecisionApplier::grant_dyn(const DynRequest& request) {
  Decision d;
  d.kind = DecisionKind::GrantDyn;
  d.job = request.job;
  d.request = request.id;
  d.cores = request.extra_cores;
  if (!dry_run_) d.applied = server_.grant_dyn(request.id);
  emit(d);
  return d.applied;
}

bool DecisionApplier::reject_dyn(const DynRequest& request,
                                 std::optional<Time> hint,
                                 std::string_view reason) {
  Decision d;
  d.kind = DecisionKind::RejectDyn;
  d.job = request.job;
  d.request = request.id;
  d.cores = request.extra_cores;
  d.reason = reason;
  d.hint = hint;
  if (dry_run_) {
    // Mirrors Server::reject_dyn: a live negotiation deadline keeps the
    // request queued instead of finalizing the rejection.
    d.deferred = server_.simulator().now() < request.deadline;
  } else {
    server_.reject_dyn(request.id, hint);
    d.deferred = server_.jobs().dyn_request_of(request.job) != nullptr;
  }
  emit(d);
  return d.deferred;
}

void DecisionApplier::preempt(JobId victim, JobId for_job) {
  Decision d;
  d.kind = DecisionKind::Preempt;
  d.job = victim;
  d.for_job = for_job;
  d.cores = server_.job(victim).allocated_cores();
  if (!dry_run_) server_.preempt(victim);
  emit(d);
}

void DecisionApplier::shrink_malleable(JobId victim, CoreCount cores,
                                       JobId for_job) {
  Decision d;
  d.kind = DecisionKind::ShrinkMalleable;
  d.job = victim;
  d.for_job = for_job;
  d.cores = cores;
  if (!dry_run_) server_.shrink_job(victim, cores);
  emit(d);
}

void DecisionApplier::reserve(JobId job, CoreCount cores, Time start) {
  Decision d;
  d.kind = DecisionKind::Reserve;
  d.job = job;
  d.cores = cores;
  d.start = start;
  emit(d);
}

}  // namespace dbs::rms
