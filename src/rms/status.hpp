// Human-readable status rendering, in the spirit of Torque's `qstat` and
// `pbsnodes` client commands.
#pragma once

#include <string>

#include "rms/server.hpp"

namespace dbs::rms {

/// One line per job: id, name, user, state, cores (requested->held),
/// elapsed wait/run time. `include_finished` adds completed/cancelled jobs.
[[nodiscard]] std::string format_qstat(const Server& server,
                                       bool include_finished = false);

/// One line per node: id, state, used/total cores, resident job ids.
[[nodiscard]] std::string format_pbsnodes(const Server& server);

/// A one-line load summary: used/total cores, running/queued/dynqueued
/// counts, pending dynamic requests.
[[nodiscard]] std::string format_load_summary(const Server& server);

}  // namespace dbs::rms
