// The two Quadflow test cases of the paper (§IV-A), reproduced with the
// quadtree AMR substrate:
//  - FlatPlate: laminar boundary layer over a flat plate at Mach 2.6;
//    2 grid adaptations; a dynamic request is warranted when an adaptation
//    leaves more than 3000 cells per process.
//  - Cylinder: supersonic flow around a 2D cylinder at Mach 5.28 (bow
//    shock); 5 adaptations; threshold 15000 cells per process.
// In both cases the threshold is crossed by the final adaptation only.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "amr/refinement.hpp"

namespace dbs::amr {

struct QuadflowCase {
  std::string name;
  std::vector<std::size_t> cells_per_phase;  ///< adaptations + 1 entries
  /// tm_dynget trigger: request more cores when cells/process exceeds this
  /// after an adaptation (paper: 3000 for FlatPlate, 15000 for Cylinder).
  double threshold_cells_per_proc = 0.0;
  /// Iterations solved per phase (between adaptations).
  double iterations_per_phase = 0.0;
  /// Seconds one core needs per cell per iteration ("computational
  /// intensity"; the paper notes FlatPlate's is 4-5x the Cylinder's).
  double seconds_per_cell_iter = 0.0;
  /// Strong-scaling grain: adding cores stops helping once a process holds
  /// fewer than this many cells (models the paper's underloaded-resources
  /// observation: FlatPlate ran no faster on 32 than on 16 cores until the
  /// final adaptation).
  double min_cells_per_proc = 1.0;
};

/// Runs the AMR engine and returns the calibrated FlatPlate case
/// (2 adaptations).
[[nodiscard]] QuadflowCase flat_plate_case();

/// Runs the AMR engine and returns the calibrated Cylinder case
/// (5 adaptations).
[[nodiscard]] QuadflowCase cylinder_case();

/// Reduced-size variants for fast unit tests (same shape, smaller grids).
[[nodiscard]] QuadflowCase flat_plate_case_small();
[[nodiscard]] QuadflowCase cylinder_case_small();

}  // namespace dbs::amr
