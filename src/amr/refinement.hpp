// The adaptation driver: runs successive sensor-driven refinement passes
// and records the cell-count trajectory — the quantity that makes Quadflow
// an *evolving* application.
#pragma once

#include <cstddef>
#include <vector>

#include "amr/quadtree.hpp"
#include "amr/sensor.hpp"

namespace dbs::amr {

struct AdaptationTrace {
  /// cells_per_phase[0] is the initial grid; entry p > 0 is the grid after
  /// adaptation p. Size = adaptations + 1.
  std::vector<std::size_t> cells_per_phase;
  /// Cells split in each adaptation (size = adaptations).
  std::vector<std::size_t> refined_per_adaptation;
};

struct RefinementOptions {
  int adaptations = 2;
  int max_depth = 10;
  /// Refine where sensor(cell) * cell.size > threshold. The scale-weighted
  /// criterion stops refinement automatically once cells resolve the
  /// feature.
  double threshold = 1e-3;
};

/// Runs `options.adaptations` passes on `grid`.
[[nodiscard]] AdaptationTrace run_adaptations(QuadTree& grid,
                                              const Sensor& sensor,
                                              const RefinementOptions& options);

}  // namespace dbs::amr
