// A quadtree grid over the unit square — the adaptive-mesh substrate that
// stands in for Quadflow's locally refined B-spline grids. Only the part
// that matters for the paper is modelled: sensor-driven local refinement
// producing a cell-count trajectory across adaptation phases.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace dbs::amr {

/// A leaf cell: centre coordinates, edge length, refinement depth.
struct Cell {
  double x = 0.5;
  double y = 0.5;
  double size = 1.0;
  int depth = 0;
};

class QuadTree {
 public:
  /// Starts from a uniform grid of depth `initial_depth`
  /// (4^initial_depth cells).
  explicit QuadTree(int initial_depth = 0);

  /// Number of leaf cells.
  [[nodiscard]] std::size_t cell_count() const { return leaf_count_; }

  /// Deepest refinement level present.
  [[nodiscard]] int depth() const;

  /// Splits every leaf with depth < max_depth for which `pred` holds.
  /// Returns the number of cells split. One call = one adaptation pass.
  std::size_t refine_where(const std::function<bool(const Cell&)>& pred,
                           int max_depth);

  /// Visits every leaf cell.
  void for_each_leaf(const std::function<void(const Cell&)>& fn) const;

 private:
  struct Node {
    Cell cell;
    // Index of the first of four consecutive children; -1 for leaves.
    std::ptrdiff_t first_child = -1;
  };

  void split(std::size_t index);

  std::vector<Node> nodes_;
  std::size_t leaf_count_ = 0;
};

}  // namespace dbs::amr
