#include "amr/sensor.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace dbs::amr {

Sensor boundary_layer_sensor(double delta) {
  DBS_REQUIRE(delta > 0.0, "boundary layer thickness must be positive");
  return [delta](const Cell& c) {
    const double wall_distance = std::max(0.0, c.y - c.size / 2.0);
    return std::exp(-wall_distance / delta);
  };
}

Sensor bow_shock_sensor(double cx, double cy, double shock_radius,
                        double width) {
  DBS_REQUIRE(shock_radius > 0.0 && width > 0.0, "invalid shock geometry");
  return [cx, cy, shock_radius, width](const Cell& c) {
    if (c.x > cx) return 0.0;  // shock only upstream of the body
    const double r = std::hypot(c.x - cx, c.y - cy);
    // Distance from the shock front, reduced by the cell's own extent so a
    // coarse cell overlapping the front still registers.
    const double d =
        std::max(0.0, std::abs(r - shock_radius) - 0.7 * c.size);
    const double t = d / width;
    return std::exp(-t * t);
  };
}

Sensor combine_max(Sensor a, Sensor b) {
  DBS_REQUIRE(a != nullptr && b != nullptr, "sensors required");
  return [a = std::move(a), b = std::move(b)](const Cell& c) {
    return std::max(a(c), b(c));
  };
}

}  // namespace dbs::amr
