#include "amr/cases.hpp"

#include "common/assert.hpp"

namespace dbs::amr {

namespace {
QuadflowCase make_case(std::string name, int initial_depth, const Sensor& sensor,
                       const RefinementOptions& options, double threshold,
                       double iters, double sec_per_cell_iter, double grain) {
  QuadTree grid(initial_depth);
  const AdaptationTrace trace = run_adaptations(grid, sensor, options);
  QuadflowCase out;
  out.name = std::move(name);
  out.cells_per_phase = trace.cells_per_phase;
  out.threshold_cells_per_proc = threshold;
  out.iterations_per_phase = iters;
  out.seconds_per_cell_iter = sec_per_cell_iter;
  out.min_cells_per_proc = grain;
  return out;
}
}  // namespace

QuadflowCase flat_plate_case() {
  // Boundary layer of thickness 0.08 above the plate (y = 0); the
  // scale-weighted criterion keeps refining a shrinking near-wall band.
  // Realized cells/phase: 16384 / 25216 / 49024 — the 16-process trigger
  // (16 x 3000 = 48000) is crossed by the final adaptation only.
  // Timing calibration (grain 1900, 260 iters, 35.5 ms/cell-iter) places
  // the 16-core static run near the paper's ~17.6 h with a ~17 % dynamic
  // saving; FlatPlate's per-cell intensity is ~4x the Cylinder's (§IV-A).
  RefinementOptions opt;
  opt.adaptations = 2;
  opt.max_depth = 10;
  opt.threshold = 9e-4;
  return make_case("FlatPlate", 7, boundary_layer_sensor(0.08), opt,
                   /*threshold=*/3000.0, /*iters=*/260.0,
                   /*sec_per_cell_iter=*/3.55e-2, /*grain=*/1900.0);
}

QuadflowCase cylinder_case() {
  // Bow shock arc ahead of a cylinder at (0.70, 0.50); five adaptations
  // chase the shock front. Realized cells/phase: 4096 / 6118 / 12988 /
  // 35662 / 107518 / 299614 — only the final adaptation exceeds
  // 16 x 15000 = 240000. Calibration (grain 500, 420 iters,
  // 8.8 ms/cell-iter) lands near the paper's ~30 h static-16 run with a
  // ~32 % dynamic saving (paper: 33 %, 10 h).
  RefinementOptions opt;
  opt.adaptations = 5;
  opt.max_depth = 12;
  opt.threshold = 5.5e-4;
  return make_case("Cylinder", 6, bow_shock_sensor(0.70, 0.50, 0.28, 0.045),
                   opt,
                   /*threshold=*/15000.0, /*iters=*/420.0,
                   /*sec_per_cell_iter=*/8.8e-3, /*grain=*/500.0);
}

QuadflowCase flat_plate_case_small() {
  // Cells/phase: 256 / 544 / 1504; trigger 16 x 60 = 960 crossed last.
  RefinementOptions opt;
  opt.adaptations = 2;
  opt.max_depth = 7;
  opt.threshold = 9e-4;
  return make_case("FlatPlate-small", 4, boundary_layer_sensor(0.08), opt,
                   /*threshold=*/60.0, /*iters=*/40.0,
                   /*sec_per_cell_iter=*/1e-3, /*grain=*/40.0);
}

QuadflowCase cylinder_case_small() {
  // Cells/phase: 256 / 454 / 1042 / 2992 / 9622 / 31696; trigger
  // 16 x 700 = 11200 crossed by the final adaptation only.
  RefinementOptions opt;
  opt.adaptations = 5;
  opt.max_depth = 9;
  opt.threshold = 5.5e-4;
  return make_case("Cylinder-small", 4,
                   bow_shock_sensor(0.70, 0.50, 0.28, 0.045), opt,
                   /*threshold=*/700.0, /*iters=*/40.0,
                   /*sec_per_cell_iter=*/1e-3, /*grain=*/30.0);
}

}  // namespace dbs::amr
