#include "amr/quadtree.hpp"

#include "common/assert.hpp"

namespace dbs::amr {

QuadTree::QuadTree(int initial_depth) {
  DBS_REQUIRE(initial_depth >= 0 && initial_depth <= 12,
              "initial depth out of range");
  nodes_.push_back(Node{Cell{0.5, 0.5, 1.0, 0}, -1});
  leaf_count_ = 1;
  for (int d = 0; d < initial_depth; ++d)
    refine_where([](const Cell&) { return true; }, initial_depth);
}

void QuadTree::split(std::size_t index) {
  DBS_ASSERT(nodes_[index].first_child == -1, "splitting a non-leaf");
  const Cell parent = nodes_[index].cell;
  const double h = parent.size / 2.0;
  const double q = parent.size / 4.0;
  nodes_[index].first_child = static_cast<std::ptrdiff_t>(nodes_.size());
  const double xs[4] = {parent.x - q, parent.x + q, parent.x - q, parent.x + q};
  const double ys[4] = {parent.y - q, parent.y - q, parent.y + q, parent.y + q};
  for (int c = 0; c < 4; ++c)
    nodes_.push_back(Node{Cell{xs[c], ys[c], h, parent.depth + 1}, -1});
  leaf_count_ += 3;  // one leaf became four
}

std::size_t QuadTree::refine_where(const std::function<bool(const Cell&)>& pred,
                                   int max_depth) {
  DBS_REQUIRE(pred != nullptr, "predicate required");
  // Collect first, split afterwards: splitting grows nodes_, and a single
  // adaptation pass must not re-examine freshly created children.
  std::vector<std::size_t> to_split;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i];
    if (n.first_child == -1 && n.cell.depth < max_depth && pred(n.cell))
      to_split.push_back(i);
  }
  for (const std::size_t i : to_split) split(i);
  return to_split.size();
}

void QuadTree::for_each_leaf(const std::function<void(const Cell&)>& fn) const {
  for (const Node& n : nodes_)
    if (n.first_child == -1) fn(n.cell);
}

int QuadTree::depth() const {
  int deepest = 0;
  for (const Node& n : nodes_)
    if (n.first_child == -1 && n.cell.depth > deepest) deepest = n.cell.depth;
  return deepest;
}

}  // namespace dbs::amr
