#include "amr/refinement.hpp"

#include "common/assert.hpp"

namespace dbs::amr {

AdaptationTrace run_adaptations(QuadTree& grid, const Sensor& sensor,
                                const RefinementOptions& options) {
  DBS_REQUIRE(options.adaptations >= 0, "adaptation count cannot be negative");
  DBS_REQUIRE(options.threshold > 0.0, "threshold must be positive");
  DBS_REQUIRE(sensor != nullptr, "sensor required");

  AdaptationTrace trace;
  trace.cells_per_phase.push_back(grid.cell_count());
  for (int a = 0; a < options.adaptations; ++a) {
    const std::size_t refined = grid.refine_where(
        [&](const Cell& c) { return sensor(c) * c.size > options.threshold; },
        options.max_depth);
    trace.refined_per_adaptation.push_back(refined);
    trace.cells_per_phase.push_back(grid.cell_count());
  }
  return trace;
}

}  // namespace dbs::amr
