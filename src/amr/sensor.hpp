// Analytic refinement sensors standing in for Quadflow's multiscale
// analysis. A sensor returns a local feature strength in [0,1]; the
// refinement driver refines cells where strength x cell size exceeds a
// threshold (so finer cells need stronger features to refine further —
// the usual scale-weighted criterion).
#pragma once

#include <functional>

#include "amr/quadtree.hpp"

namespace dbs::amr {

using Sensor = std::function<double(const Cell&)>;

/// Laminar boundary layer over a flat plate at y = 0: feature strength
/// decays exponentially away from the wall with thickness `delta`.
[[nodiscard]] Sensor boundary_layer_sensor(double delta);

/// Detached bow shock in front of a cylinder: a thin arc at distance
/// `shock_radius` from (cx, cy), of characteristic width `width`, covering
/// the upstream half (x < cx).
[[nodiscard]] Sensor bow_shock_sensor(double cx, double cy,
                                      double shock_radius, double width);

/// Pointwise maximum of two sensors (e.g. shock + wall layer).
[[nodiscard]] Sensor combine_max(Sensor a, Sensor b);

}  // namespace dbs::amr
