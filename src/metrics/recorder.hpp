// Event-driven metrics collection: per-job lifecycle records plus the
// cluster-usage timeline, from which utilization, throughput and waiting
// times are computed.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/time.hpp"
#include "rms/server.hpp"
#include "sim/simulator.hpp"

namespace dbs::metrics {

struct JobRecord {
  JobId id;
  std::string name;
  std::string user;
  std::string type_tag;
  CoreCount cores_requested = 0;
  CoreCount cores_peak = 0;
  Time submit;
  std::optional<Time> start;
  std::optional<Time> end;
  bool backfilled = false;
  bool evolving = false;     ///< made at least one dynamic request
  int dyn_requests = 0;
  int dyn_grants = 0;
  int dyn_rejects = 0;
  int requeues = 0;
  int malleable_shrinks = 0;

  [[nodiscard]] bool completed() const { return end.has_value(); }
  [[nodiscard]] Duration wait_time() const;
  [[nodiscard]] Duration turnaround() const;
  /// All dynamic requests granted, and at least one made (Table II's
  /// "satisfied" evolving job). A single final rejection disqualifies the
  /// job even if other requests were granted.
  [[nodiscard]] bool dyn_satisfied() const {
    return dyn_requests > 0 && dyn_rejects == 0;
  }
};

class Recorder final : public rms::ServerObserver {
 public:
  Recorder(sim::Simulator& simulator, const cluster::Cluster& cluster);

  // rms::ServerObserver
  void on_submit(const rms::Job& job) override;
  void on_job_start(const rms::Job& job) override;
  void on_job_finish(const rms::Job& job) override;
  void on_dyn_request(const rms::Job& job, const rms::DynRequest&) override;
  void on_dyn_grant(const rms::Job& job, const rms::DynRequest&,
                    CoreCount extra) override;
  void on_dyn_reject(const rms::Job& job, const rms::DynRequest&) override;
  void on_dyn_release(const rms::Job& job, CoreCount cores) override;
  void on_malleable_shrink(const rms::Job& job, CoreCount cores) override;
  void on_requeue(const rms::Job& job) override;

  /// Records, in submission order.
  [[nodiscard]] std::vector<JobRecord> records() const;
  [[nodiscard]] const JobRecord& record(JobId id) const;

  /// (time, used cores) step series; one point per change.
  [[nodiscard]] const std::vector<std::pair<Time, CoreCount>>& usage_series()
      const {
    return usage_;
  }

  [[nodiscard]] Time first_submit() const { return first_submit_; }
  [[nodiscard]] Time last_finish() const { return last_finish_; }
  [[nodiscard]] CoreCount capacity() const { return capacity_; }

  /// Integral of used cores over [from, to] in core-seconds.
  [[nodiscard]] double used_core_seconds(Time from, Time to) const;

 private:
  void sample_usage();
  JobRecord& rec(JobId id);

  sim::Simulator& sim_;
  const cluster::Cluster& cluster_;
  CoreCount capacity_;
  std::unordered_map<JobId, JobRecord> jobs_;
  std::vector<JobId> order_;
  std::vector<std::pair<Time, CoreCount>> usage_;
  Time first_submit_ = Time::far_future();
  Time last_finish_ = Time::epoch();
};

}  // namespace dbs::metrics
