// Event-driven metrics collection: per-job lifecycle records plus the
// cluster-usage timeline, from which utilization, throughput and waiting
// times are computed.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/time.hpp"
#include "rms/server.hpp"
#include "sim/simulator.hpp"

namespace dbs::metrics {

struct JobRecord {
  [[nodiscard]] bool operator==(const JobRecord&) const = default;

  JobId id;
  std::string name;
  std::string user;
  std::string type_tag;
  CoreCount cores_requested = 0;
  CoreCount cores_peak = 0;
  Time submit;
  std::optional<Time> start;
  std::optional<Time> end;
  bool backfilled = false;
  bool evolving = false;     ///< made at least one dynamic request
  int dyn_requests = 0;
  int dyn_grants = 0;
  int dyn_rejects = 0;
  int requeues = 0;
  int malleable_shrinks = 0;

  [[nodiscard]] bool completed() const { return end.has_value(); }
  [[nodiscard]] Duration wait_time() const;
  [[nodiscard]] Duration turnaround() const;
  /// All dynamic requests granted, and at least one made (Table II's
  /// "satisfied" evolving job). A single final rejection disqualifies the
  /// job even if other requests were granted.
  [[nodiscard]] bool dyn_satisfied() const {
    return dyn_requests > 0 && dyn_rejects == 0;
  }
};

class Recorder final : public rms::ServerObserver {
 public:
  Recorder(sim::Simulator& simulator, const cluster::Cluster& cluster);

  // rms::ServerObserver
  void on_submit(const rms::Job& job) override;
  void on_job_start(const rms::Job& job) override;
  void on_job_finish(const rms::Job& job) override;
  void on_dyn_request(const rms::Job& job, const rms::DynRequest&) override;
  void on_dyn_grant(const rms::Job& job, const rms::DynRequest&,
                    CoreCount extra) override;
  void on_dyn_reject(const rms::Job& job, const rms::DynRequest&) override;
  void on_dyn_release(const rms::Job& job, CoreCount cores) override;
  void on_malleable_shrink(const rms::Job& job, CoreCount cores) override;
  void on_requeue(const rms::Job& job) override;

  /// Streaming mode: a finished job is folded into running totals and its
  /// record destroyed, so recorder memory stays O(live jobs) across a
  /// million-job replay instead of O(all jobs ever). The usage timeline
  /// collapses to an incrementally maintained integral that accumulates
  /// exactly the terms used_core_seconds() would fold, so the summary is
  /// identical to the materialized one when the replay drains completely.
  /// Must be enabled before the first submission; records()/record() are
  /// unavailable in this mode.
  void set_streaming(bool on);
  [[nodiscard]] bool streaming() const { return streaming_; }

  /// Running aggregates over finished jobs (streaming mode).
  struct StreamTotals {
    [[nodiscard]] bool operator==(const StreamTotals&) const = default;

    std::size_t submitted = 0;
    std::size_t completed = 0;
    std::size_t backfilled = 0;
    std::size_t evolving = 0;
    std::size_t satisfied_dyn = 0;
    std::size_t granted_dyn_requests = 0;
    Duration wait_sum;
    Duration turnaround_sum;
    Duration max_wait;
  };
  [[nodiscard]] const StreamTotals& totals() const { return totals_; }

  /// Integral of used cores (core-seconds) from simulation start to the
  /// last usage event. Equals used_core_seconds(first_submit, last_finish)
  /// once every job has finished (usage is zero outside that window).
  [[nodiscard]] double streaming_used_core_seconds() const {
    return usage_integral_;
  }

  /// Still-live records, keyed by id (streaming mode: jobs not yet
  /// finished — summarize() folds their dyn counters on top of totals()).
  [[nodiscard]] const std::unordered_map<JobId, JobRecord>& live() const {
    return jobs_;
  }

  /// Records, in submission order. Materialized mode only.
  [[nodiscard]] std::vector<JobRecord> records() const;
  [[nodiscard]] const JobRecord& record(JobId id) const;

  /// (time, used cores) step series; one point per change.
  [[nodiscard]] const std::vector<std::pair<Time, CoreCount>>& usage_series()
      const {
    return usage_;
  }

  [[nodiscard]] Time first_submit() const { return first_submit_; }
  [[nodiscard]] Time last_finish() const { return last_finish_; }
  [[nodiscard]] CoreCount capacity() const { return capacity_; }

  /// Integral of used cores over [from, to] in core-seconds.
  [[nodiscard]] double used_core_seconds(Time from, Time to) const;

  /// Serializable streaming-mode state for durable snapshots: the running
  /// totals, the incremental usage integral, and the still-live job
  /// records (sorted by id so the encoded form is byte-stable).
  struct State {
    [[nodiscard]] bool operator==(const State&) const = default;

    StreamTotals totals;
    double usage_integral = 0.0;
    Time last_usage_t;
    CoreCount last_used = 0;
    Time first_submit = Time::far_future();
    Time last_finish;
    std::vector<JobRecord> live;
  };
  /// Streaming mode only (materialized runs keep every record; snapshots
  /// are a service-mode concern and service mode requires streaming).
  [[nodiscard]] State save_state() const;
  /// Streaming mode only, and only into a recorder that saw no events yet.
  void restore_state(const State& s);

 private:
  void sample_usage();
  JobRecord& rec(JobId id);

  sim::Simulator& sim_;
  const cluster::Cluster& cluster_;
  CoreCount capacity_;
  std::unordered_map<JobId, JobRecord> jobs_;
  std::vector<JobId> order_;
  std::vector<std::pair<Time, CoreCount>> usage_;
  Time first_submit_ = Time::far_future();
  Time last_finish_ = Time::epoch();
  bool streaming_ = false;
  StreamTotals totals_;
  double usage_integral_ = 0.0;
  Time last_usage_t_ = Time::epoch();
  CoreCount last_used_ = 0;
};

}  // namespace dbs::metrics
