// Time-series analytics over a recorded run.
//
// fold_timeseries() streams a flight-recorder file once (constant memory
// in the record count) and folds the lifecycle events into per-interval
// curves: cluster utilization, queue depth, per-user fairshare usage and
// per-user cumulative waiting — fairness evaluated as trajectories over
// time rather than end-of-run snapshots, which is what the
// finish-time-fairness comparisons need.
//
// Semantics: each bucket reports the time integral over its interval
// (used core-seconds, the time-averaged queue depth), so curves are exact
// under the event-step model, not sampled. Per-user waiting accumulates
// queued-job-seconds and is exported as a cumulative (monotone) curve.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dbs::obs::rec {
class RecordReader;
}

namespace dbs::metrics {

struct TimeseriesOptions {
  /// Bucket width in seconds.
  std::int64_t bucket_s = 60;
  /// Override the capacity stored in the file (0 = use the header's).
  std::int64_t capacity = 0;
};

struct TimeseriesBucket {
  std::int64_t start_us = 0;
  double utilization = 0.0;        ///< used core-time / (capacity * width)
  double used_core_s = 0.0;        ///< integral of used cores, core-seconds
  double avg_queue_depth = 0.0;    ///< time-averaged queued job count
  /// Per-user used core-seconds within this bucket.
  std::map<std::string, double> user_usage_core_s;
  /// Per-user cumulative queued-job-seconds up to the END of this bucket
  /// (prefix-summed: the Shockwave-style cumulative-delay curve).
  std::map<std::string, double> user_cum_delay_s;
};

struct Timeseries {
  std::int64_t bucket_s = 0;
  std::int64_t capacity = 0;
  std::vector<TimeseriesBucket> buckets;
  /// Every user seen, sorted (the column set for CSV export).
  std::vector<std::string> users;
};

/// Folds the record stream into per-interval curves. The reader must be
/// open; the scan is sequential and does not disturb later index lookups.
[[nodiscard]] Timeseries fold_timeseries(obs::rec::RecordReader& reader,
                                         const TimeseriesOptions& options);

/// JSON document: options + one object per bucket (stable key order).
void write_timeseries_json(const Timeseries& ts, std::ostream& os);

/// CSV with fixed leading columns and two columns per user
/// (usage_core_s:<user>, cum_delay_s:<user>).
void write_timeseries_csv(const Timeseries& ts, std::ostream& os);

}  // namespace dbs::metrics
