// Aggregation of recorder data into the quantities the paper reports:
// workload makespan, satisfied evolving jobs, utilization, throughput and
// waiting-time series.
#pragma once

#include <string>
#include <vector>

#include "common/table.hpp"
#include "metrics/recorder.hpp"

namespace dbs::metrics {

struct WorkloadSummary {
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;
  std::size_t evolving_jobs = 0;     ///< jobs that issued >= 1 dyn request
  /// Jobs whose every dynamic request was granted (Table II "satisfied").
  std::size_t satisfied_dyn_jobs = 0;
  /// Total granted dynamic requests across all jobs (request-level view:
  /// a job with grants and one final rejection still contributes here).
  std::size_t granted_dyn_requests = 0;
  std::size_t backfilled_jobs = 0;
  Duration makespan;                 ///< first submit -> last finish
  double utilization = 0.0;          ///< percent of capacity over makespan
  double throughput_jobs_per_min = 0.0;
  Duration avg_wait;
  Duration max_wait;
  Duration avg_turnaround;
};

/// Aggregates over all completed jobs in the recorder.
[[nodiscard]] WorkloadSummary summarize(const Recorder& recorder);

/// Merges per-shard summaries into one machine-wide view (sharded runs:
/// each shard schedules its own cluster slice and produces its own
/// summary). Count fields sum; avg_wait/avg_turnaround re-weight by
/// completed jobs; makespan is the longest shard makespan (shards start
/// together, the run ends when the last one drains); utilization and
/// throughput are recomputed over the merged makespan with
/// `capacities[i]` = shard i's cores, so the merged numbers are what a
/// whole-machine observer would have measured. Deterministic: pure
/// left-to-right arithmetic over the inputs in index order.
[[nodiscard]] WorkloadSummary merge_summaries(
    const std::vector<WorkloadSummary>& parts,
    const std::vector<CoreCount>& capacities);

/// Waiting time of each completed job, in submission order. When
/// `type_tag` is non-empty, only jobs of that type are included.
struct WaitPoint {
  std::size_t submit_index;  ///< position in submission order (0-based)
  std::string name;
  Duration wait;
};
[[nodiscard]] std::vector<WaitPoint> wait_series(const Recorder& recorder,
                                                 const std::string& type_tag = "");

/// A Table-II-style row.
[[nodiscard]] std::vector<std::string> performance_row(
    const std::string& config_name, const WorkloadSummary& summary,
    double baseline_throughput /* <= 0: print '-' for the increase */);

/// Header matching performance_row.
[[nodiscard]] std::vector<std::string> performance_header();

}  // namespace dbs::metrics
