#include "metrics/timeseries.hpp"

#include <algorithm>
#include <ostream>
#include <set>
#include <unordered_map>

#include "common/assert.hpp"
#include "obs/json.hpp"
#include "obs/recorder/reader.hpp"

namespace dbs::metrics {
namespace {

using obs::rec::PackedRecord;
using obs::rec::RecordType;

/// Folding state: an event sweep integrating step functions (used cores,
/// queued jobs, their per-user splits) into time buckets.
class Fold {
 public:
  Fold(std::int64_t bucket_us, std::int64_t capacity)
      : bucket_us_(bucket_us), capacity_(capacity) {}

  void on_record(const PackedRecord& r, const std::string& user) {
    if (obs::rec::is_decision(r.type)) return;  // resource-neutral here
    advance_to(r.t_us);
    JobState& job = jobs_[r.job];
    switch (r.type) {
      case RecordType::Submit:
        job.user = user;
        set_queued(job, true);
        users_.insert(user);
        break;
      case RecordType::Start:
        set_queued(job, false);
        add_alloc(job, r.cores);
        break;
      case RecordType::Finish:
        add_alloc(job, -job.alloc);
        break;
      case RecordType::DynGrant:
        add_alloc(job, r.cores);
        break;
      case RecordType::DynRelease:
      case RecordType::MalleableShrink:
      case RecordType::NodesLost:
        add_alloc(job, -r.cores);
        break;
      case RecordType::Requeue:
        add_alloc(job, -job.alloc);
        set_queued(job, true);
        break;
      case RecordType::Cancel:
        add_alloc(job, -job.alloc);
        set_queued(job, false);
        break;
      case RecordType::DynRequest:
      case RecordType::DynReject:
        break;  // no resource or queue change
      default:
        break;
    }
  }

  Timeseries finish(std::int64_t bucket_s) {
    Timeseries ts;
    ts.bucket_s = bucket_s;
    ts.capacity = capacity_;
    ts.users.assign(users_.begin(), users_.end());
    const double width_s = static_cast<double>(bucket_us_) / 1e6;
    std::map<std::string, double> cum_delay;
    for (Bucket& b : buckets_) {
      TimeseriesBucket out;
      out.start_us = b.start_us;
      out.used_core_s = b.used_core_us / 1e6;
      out.avg_queue_depth = b.queued_us / 1e6 / width_s;
      if (capacity_ > 0)
        out.utilization =
            out.used_core_s / (static_cast<double>(capacity_) * width_s);
      for (auto& [user, core_us] : b.user_used_core_us)
        out.user_usage_core_s[user] = core_us / 1e6;
      for (auto& [user, queued_us] : b.user_queued_us)
        cum_delay[user] += queued_us / 1e6;
      out.user_cum_delay_s = cum_delay;
      ts.buckets.push_back(std::move(out));
    }
    return ts;
  }

 private:
  struct JobState {
    std::string user;
    std::int64_t alloc = 0;
    bool queued = false;
  };
  struct Bucket {
    std::int64_t start_us = 0;
    double used_core_us = 0.0;
    double queued_us = 0.0;
    std::map<std::string, double> user_used_core_us;
    std::map<std::string, double> user_queued_us;
  };

  /// Integrates the current step values from now_us_ to `t`, splitting
  /// across bucket boundaries.
  void advance_to(std::int64_t t) {
    if (!started_) {
      started_ = true;
      now_us_ = t;
      new_bucket((t / bucket_us_) * bucket_us_);
      return;
    }
    while (now_us_ < t) {
      Bucket& b = buckets_.back();
      const std::int64_t bucket_end = b.start_us + bucket_us_;
      if (now_us_ == bucket_end) {
        new_bucket(bucket_end);
        continue;
      }
      const std::int64_t seg_end = std::min(t, bucket_end);
      const auto dt = static_cast<double>(seg_end - now_us_);
      b.used_core_us += static_cast<double>(used_) * dt;
      b.queued_us += static_cast<double>(queued_) * dt;
      for (const auto& [user, cores] : user_used_)
        if (cores > 0)
          b.user_used_core_us[user] += static_cast<double>(cores) * dt;
      for (const auto& [user, count] : user_queued_)
        if (count > 0)
          b.user_queued_us[user] += static_cast<double>(count) * dt;
      now_us_ = seg_end;
    }
  }

  void new_bucket(std::int64_t start_us) {
    Bucket b;
    b.start_us = start_us;
    buckets_.push_back(std::move(b));
  }

  void set_queued(JobState& job, bool queued) {
    if (job.queued == queued) return;
    job.queued = queued;
    queued_ += queued ? 1 : -1;
    user_queued_[job.user] += queued ? 1 : -1;
  }

  void add_alloc(JobState& job, std::int64_t delta) {
    if (delta == 0) return;
    job.alloc += delta;
    used_ += delta;
    user_used_[job.user] += delta;
  }

  std::int64_t bucket_us_;
  std::int64_t capacity_;
  bool started_ = false;
  std::int64_t now_us_ = 0;
  std::int64_t used_ = 0;
  std::int64_t queued_ = 0;
  std::map<std::string, std::int64_t> user_used_;
  std::map<std::string, std::int64_t> user_queued_;
  std::unordered_map<std::uint32_t, JobState> jobs_;
  std::set<std::string> users_;
  std::vector<Bucket> buckets_;
};

}  // namespace

Timeseries fold_timeseries(obs::rec::RecordReader& reader,
                           const TimeseriesOptions& options) {
  DBS_REQUIRE(options.bucket_s > 0, "bucket width must be positive");
  const std::int64_t capacity =
      options.capacity > 0 ? options.capacity : reader.capacity();
  Fold fold(options.bucket_s * 1'000'000, capacity);
  reader.scan_all([&](const PackedRecord& r) {
    fold.on_record(r, reader.string_at(r.user));
  });
  return fold.finish(options.bucket_s);
}

void write_timeseries_json(const Timeseries& ts, std::ostream& os) {
  os << "{\n  \"bucket_s\": " << ts.bucket_s
     << ",\n  \"capacity\": " << ts.capacity << ",\n  \"users\": [";
  for (std::size_t i = 0; i < ts.users.size(); ++i)
    os << (i == 0 ? "" : ", ") << obs::json_quote(ts.users[i]);
  os << "],\n  \"buckets\": [";
  for (std::size_t i = 0; i < ts.buckets.size(); ++i) {
    const TimeseriesBucket& b = ts.buckets[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"start_us\": " << b.start_us
       << ", \"utilization\": " << obs::json_number(b.utilization)
       << ", \"used_core_s\": " << obs::json_number(b.used_core_s)
       << ", \"avg_queue_depth\": " << obs::json_number(b.avg_queue_depth)
       << ", \"user_usage_core_s\": {";
    bool first = true;
    for (const auto& [user, v] : b.user_usage_core_s) {
      os << (first ? "" : ", ") << obs::json_quote(user) << ": "
         << obs::json_number(v);
      first = false;
    }
    os << "}, \"user_cum_delay_s\": {";
    first = true;
    for (const auto& [user, v] : b.user_cum_delay_s) {
      os << (first ? "" : ", ") << obs::json_quote(user) << ": "
         << obs::json_number(v);
      first = false;
    }
    os << "}}";
  }
  os << (ts.buckets.empty() ? "]" : "\n  ]") << "\n}\n";
}

void write_timeseries_csv(const Timeseries& ts, std::ostream& os) {
  os << "start_us,utilization,used_core_s,avg_queue_depth";
  for (const std::string& user : ts.users)
    os << ",usage_core_s:" << user << ",cum_delay_s:" << user;
  os << "\n";
  for (const TimeseriesBucket& b : ts.buckets) {
    os << b.start_us << "," << obs::json_number(b.utilization) << ","
       << obs::json_number(b.used_core_s) << ","
       << obs::json_number(b.avg_queue_depth);
    for (const std::string& user : ts.users) {
      const auto usage = b.user_usage_core_s.find(user);
      const auto delay = b.user_cum_delay_s.find(user);
      os << ","
         << obs::json_number(
                usage == b.user_usage_core_s.end() ? 0.0 : usage->second)
         << ","
         << obs::json_number(
                delay == b.user_cum_delay_s.end() ? 0.0 : delay->second);
    }
    os << "\n";
  }
}

}  // namespace dbs::metrics
