#include "metrics/recorder.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::metrics {

Duration JobRecord::wait_time() const {
  DBS_REQUIRE(start.has_value(), "job never started");
  return *start - submit;
}

Duration JobRecord::turnaround() const {
  DBS_REQUIRE(end.has_value(), "job never finished");
  return *end - submit;
}

Recorder::Recorder(sim::Simulator& simulator, const cluster::Cluster& cluster)
    : sim_(simulator), cluster_(cluster), capacity_(cluster.total_cores()) {}

JobRecord& Recorder::rec(JobId id) {
  auto it = jobs_.find(id);
  DBS_REQUIRE(it != jobs_.end(), "event for an unknown job");
  return it->second;
}

void Recorder::set_streaming(bool on) {
  DBS_REQUIRE(jobs_.empty() && order_.empty() && usage_.empty(),
              "streaming mode must be set before any submission");
  streaming_ = on;
}

void Recorder::sample_usage() {
  const Time now = sim_.now();
  const CoreCount used = cluster_.used_cores();
  if (streaming_) {
    // Incremental integral: these are exactly the terms the materialized
    // used_core_seconds() fold would add, in the same order (a same-time
    // resample contributes a zero-width term, which adds +0.0 exactly).
    usage_integral_ +=
        static_cast<double>(last_used_) * (now - last_usage_t_).as_seconds();
    last_usage_t_ = now;
    last_used_ = used;
    return;
  }
  if (!usage_.empty() && usage_.back().first == now)
    usage_.back().second = used;
  else
    usage_.emplace_back(now, used);
}

void Recorder::on_submit(const rms::Job& job) {
  JobRecord r;
  r.id = job.id();
  r.name = job.spec().name;
  r.user = job.spec().cred.user;
  r.type_tag = job.spec().type_tag;
  r.cores_requested = job.spec().cores;
  r.submit = job.submit_time();
  jobs_.emplace(job.id(), std::move(r));
  if (!streaming_) order_.push_back(job.id());
  ++totals_.submitted;
  first_submit_ = min(first_submit_, job.submit_time());
}

void Recorder::on_job_start(const rms::Job& job) {
  JobRecord& r = rec(job.id());
  r.start = job.start_time();
  r.backfilled = job.was_backfilled();
  r.cores_peak = std::max(r.cores_peak, job.allocated_cores());
  sample_usage();
}

void Recorder::on_job_finish(const rms::Job& job) {
  JobRecord& r = rec(job.id());
  r.end = job.end_time();
  last_finish_ = max(last_finish_, job.end_time());
  sample_usage();
  if (streaming_) {
    ++totals_.completed;
    if (r.backfilled) ++totals_.backfilled;
    if (r.evolving) ++totals_.evolving;
    if (r.dyn_satisfied()) ++totals_.satisfied_dyn;
    totals_.granted_dyn_requests += static_cast<std::size_t>(r.dyn_grants);
    totals_.wait_sum += r.wait_time();
    totals_.max_wait = max(totals_.max_wait, r.wait_time());
    totals_.turnaround_sum += r.turnaround();
    jobs_.erase(job.id());
  }
}

void Recorder::on_dyn_request(const rms::Job& job, const rms::DynRequest&) {
  JobRecord& r = rec(job.id());
  r.evolving = true;
  ++r.dyn_requests;
}

void Recorder::on_dyn_grant(const rms::Job& job, const rms::DynRequest&,
                            CoreCount) {
  JobRecord& r = rec(job.id());
  ++r.dyn_grants;
  r.cores_peak = std::max(r.cores_peak, job.allocated_cores());
  sample_usage();
}

void Recorder::on_dyn_reject(const rms::Job& job, const rms::DynRequest&) {
  ++rec(job.id()).dyn_rejects;
}

void Recorder::on_dyn_release(const rms::Job& job, CoreCount) {
  rec(job.id());
  sample_usage();
}

void Recorder::on_malleable_shrink(const rms::Job& job, CoreCount) {
  ++rec(job.id()).malleable_shrinks;
  sample_usage();
}

void Recorder::on_requeue(const rms::Job& job) {
  JobRecord& r = rec(job.id());
  ++r.requeues;
  r.start.reset();
  sample_usage();
}

std::vector<JobRecord> Recorder::records() const {
  DBS_REQUIRE(!streaming_,
              "per-job records are not kept in streaming mode");
  std::vector<JobRecord> out;
  out.reserve(order_.size());
  for (const JobId id : order_) out.push_back(jobs_.at(id));
  return out;
}

const JobRecord& Recorder::record(JobId id) const {
  auto it = jobs_.find(id);
  DBS_REQUIRE(it != jobs_.end(), "unknown job id");
  return it->second;
}

Recorder::State Recorder::save_state() const {
  DBS_REQUIRE(streaming_, "snapshots require streaming mode");
  State s;
  s.totals = totals_;
  s.usage_integral = usage_integral_;
  s.last_usage_t = last_usage_t_;
  s.last_used = last_used_;
  s.first_submit = first_submit_;
  s.last_finish = last_finish_;
  s.live.reserve(jobs_.size());
  for (const auto& [id, record] : jobs_) s.live.push_back(record);
  std::sort(s.live.begin(), s.live.end(),
            [](const JobRecord& a, const JobRecord& b) { return a.id < b.id; });
  return s;
}

void Recorder::restore_state(const State& s) {
  DBS_REQUIRE(streaming_, "snapshots require streaming mode");
  DBS_REQUIRE(jobs_.empty() && totals_.submitted == 0,
              "restore requires a fresh recorder");
  totals_ = s.totals;
  usage_integral_ = s.usage_integral;
  last_usage_t_ = s.last_usage_t;
  last_used_ = s.last_used;
  first_submit_ = s.first_submit;
  last_finish_ = s.last_finish;
  for (const JobRecord& record : s.live) jobs_.emplace(record.id, record);
}

double Recorder::used_core_seconds(Time from, Time to) const {
  DBS_REQUIRE(from <= to, "empty window");
  double total = 0.0;
  CoreCount current = 0;
  Time cursor = from;
  for (const auto& [t, used] : usage_) {
    if (t <= from) {
      current = used;
      continue;
    }
    if (t >= to) break;
    total += static_cast<double>(current) * (t - cursor).as_seconds();
    cursor = t;
    current = used;
  }
  total += static_cast<double>(current) * (to - cursor).as_seconds();
  return total;
}

}  // namespace dbs::metrics
