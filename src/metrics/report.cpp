#include "metrics/report.hpp"

#include "common/assert.hpp"

namespace dbs::metrics {

namespace {

/// Makespan-derived quantities shared by both recorder modes.
void finish_summary(const Recorder& recorder, Duration wait_sum,
                    Duration turnaround_sum, double used_core_seconds,
                    WorkloadSummary& s) {
  if (s.jobs_completed == 0) return;
  const auto n = static_cast<std::int64_t>(s.jobs_completed);
  s.avg_wait = wait_sum / n;
  s.avg_turnaround = turnaround_sum / n;
  s.makespan = recorder.last_finish() - recorder.first_submit();
  if (s.makespan > Duration::zero()) {
    const double capacity_core_seconds =
        static_cast<double>(recorder.capacity()) * s.makespan.as_seconds();
    s.utilization = 100.0 * used_core_seconds / capacity_core_seconds;
    s.throughput_jobs_per_min =
        static_cast<double>(s.jobs_completed) / s.makespan.as_minutes();
  }
}

}  // namespace

WorkloadSummary summarize(const Recorder& recorder) {
  WorkloadSummary s;

  if (recorder.streaming()) {
    // Finished jobs were folded into the running totals as they completed;
    // jobs still live at the end (never finished) contribute only their
    // dynamic-protocol counters, exactly as in the materialized path.
    const Recorder::StreamTotals& t = recorder.totals();
    s.jobs_submitted = t.submitted;
    s.jobs_completed = t.completed;
    s.backfilled_jobs = t.backfilled;
    s.evolving_jobs = t.evolving;
    s.satisfied_dyn_jobs = t.satisfied_dyn;
    s.granted_dyn_requests = t.granted_dyn_requests;
    s.max_wait = t.max_wait;
    for (const auto& [id, r] : recorder.live()) {
      if (r.evolving) ++s.evolving_jobs;
      if (r.dyn_satisfied()) ++s.satisfied_dyn_jobs;
      s.granted_dyn_requests += static_cast<std::size_t>(r.dyn_grants);
    }
    finish_summary(recorder, t.wait_sum, t.turnaround_sum,
                   recorder.streaming_used_core_seconds(), s);
    return s;
  }

  const std::vector<JobRecord> records = recorder.records();
  s.jobs_submitted = records.size();

  Duration wait_sum, turnaround_sum;
  for (const JobRecord& r : records) {
    if (r.evolving) ++s.evolving_jobs;
    if (r.dyn_satisfied()) ++s.satisfied_dyn_jobs;
    s.granted_dyn_requests += static_cast<std::size_t>(r.dyn_grants);
    if (!r.completed()) continue;
    ++s.jobs_completed;
    if (r.backfilled) ++s.backfilled_jobs;
    wait_sum += r.wait_time();
    s.max_wait = max(s.max_wait, r.wait_time());
    turnaround_sum += r.turnaround();
  }
  finish_summary(recorder, wait_sum, turnaround_sum,
                 s.jobs_completed > 0
                     ? recorder.used_core_seconds(recorder.first_submit(),
                                                  recorder.last_finish())
                     : 0.0,
                 s);
  return s;
}

WorkloadSummary merge_summaries(const std::vector<WorkloadSummary>& parts,
                                const std::vector<CoreCount>& capacities) {
  DBS_REQUIRE(parts.size() == capacities.size(),
              "merge_summaries needs one capacity per summary");
  WorkloadSummary m;
  Duration wait_sum, turnaround_sum;
  double used_core_seconds = 0.0;
  CoreCount total_capacity = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const WorkloadSummary& s = parts[i];
    m.jobs_submitted += s.jobs_submitted;
    m.jobs_completed += s.jobs_completed;
    m.evolving_jobs += s.evolving_jobs;
    m.satisfied_dyn_jobs += s.satisfied_dyn_jobs;
    m.granted_dyn_requests += s.granted_dyn_requests;
    m.backfilled_jobs += s.backfilled_jobs;
    m.makespan = max(m.makespan, s.makespan);
    m.max_wait = max(m.max_wait, s.max_wait);
    const auto n = static_cast<std::int64_t>(s.jobs_completed);
    wait_sum += s.avg_wait * n;
    turnaround_sum += s.avg_turnaround * n;
    used_core_seconds += s.utilization / 100.0 *
                         static_cast<double>(capacities[i]) *
                         s.makespan.as_seconds();
    total_capacity += capacities[i];
  }
  if (m.jobs_completed == 0) return m;
  const auto n = static_cast<std::int64_t>(m.jobs_completed);
  m.avg_wait = wait_sum / n;
  m.avg_turnaround = turnaround_sum / n;
  if (m.makespan > Duration::zero()) {
    m.utilization = 100.0 * used_core_seconds /
                    (static_cast<double>(total_capacity) *
                     m.makespan.as_seconds());
    m.throughput_jobs_per_min =
        static_cast<double>(m.jobs_completed) / m.makespan.as_minutes();
  }
  return m;
}

std::vector<WaitPoint> wait_series(const Recorder& recorder,
                                   const std::string& type_tag) {
  std::vector<WaitPoint> out;
  const std::vector<JobRecord> records = recorder.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JobRecord& r = records[i];
    if (!type_tag.empty() && r.type_tag != type_tag) continue;
    if (!r.start.has_value()) continue;
    out.push_back(WaitPoint{i, r.name, r.wait_time()});
  }
  return out;
}

std::vector<std::string> performance_header() {
  return {"Config",          "Time [mins]",       "Satisfied Dyn Jobs",
          "Util [%]",        "Throughput [Jobs/min]", "Throughput [% Increase]"};
}

std::vector<std::string> performance_row(const std::string& config_name,
                                         const WorkloadSummary& summary,
                                         double baseline_throughput) {
  std::string increase = "-";
  if (baseline_throughput > 0.0) {
    const double pct = 100.0 *
                       (summary.throughput_jobs_per_min - baseline_throughput) /
                       baseline_throughput;
    increase = TextTable::num(pct, 1);
  }
  return {config_name,
          TextTable::num(summary.makespan.as_minutes(), 2),
          TextTable::num(static_cast<std::int64_t>(summary.satisfied_dyn_jobs)),
          TextTable::num(summary.utilization, 2),
          TextTable::num(summary.throughput_jobs_per_min, 2),
          increase};
}

}  // namespace dbs::metrics
