#include "metrics/report.hpp"

#include "common/assert.hpp"

namespace dbs::metrics {

WorkloadSummary summarize(const Recorder& recorder) {
  WorkloadSummary s;
  const std::vector<JobRecord> records = recorder.records();
  s.jobs_submitted = records.size();

  Duration wait_sum, turnaround_sum;
  for (const JobRecord& r : records) {
    if (r.evolving) ++s.evolving_jobs;
    if (r.dyn_satisfied()) ++s.satisfied_dyn_jobs;
    s.granted_dyn_requests += static_cast<std::size_t>(r.dyn_grants);
    if (!r.completed()) continue;
    ++s.jobs_completed;
    if (r.backfilled) ++s.backfilled_jobs;
    wait_sum += r.wait_time();
    s.max_wait = max(s.max_wait, r.wait_time());
    turnaround_sum += r.turnaround();
  }
  if (s.jobs_completed > 0) {
    const auto n = static_cast<std::int64_t>(s.jobs_completed);
    s.avg_wait = wait_sum / n;
    s.avg_turnaround = turnaround_sum / n;
  }

  if (s.jobs_completed > 0) {
    const Time from = recorder.first_submit();
    const Time to = recorder.last_finish();
    s.makespan = to - from;
    if (s.makespan > Duration::zero()) {
      const double capacity_core_seconds =
          static_cast<double>(recorder.capacity()) * s.makespan.as_seconds();
      s.utilization =
          100.0 * recorder.used_core_seconds(from, to) / capacity_core_seconds;
      s.throughput_jobs_per_min =
          static_cast<double>(s.jobs_completed) / s.makespan.as_minutes();
    }
  }
  return s;
}

std::vector<WaitPoint> wait_series(const Recorder& recorder,
                                   const std::string& type_tag) {
  std::vector<WaitPoint> out;
  const std::vector<JobRecord> records = recorder.records();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const JobRecord& r = records[i];
    if (!type_tag.empty() && r.type_tag != type_tag) continue;
    if (!r.start.has_value()) continue;
    out.push_back(WaitPoint{i, r.name, r.wait_time()});
  }
  return out;
}

std::vector<std::string> performance_header() {
  return {"Config",          "Time [mins]",       "Satisfied Dyn Jobs",
          "Util [%]",        "Throughput [Jobs/min]", "Throughput [% Increase]"};
}

std::vector<std::string> performance_row(const std::string& config_name,
                                         const WorkloadSummary& summary,
                                         double baseline_throughput) {
  std::string increase = "-";
  if (baseline_throughput > 0.0) {
    const double pct = 100.0 *
                       (summary.throughput_jobs_per_min - baseline_throughput) /
                       baseline_throughput;
    increase = TextTable::num(pct, 1);
  }
  return {config_name,
          TextTable::num(summary.makespan.as_minutes(), 2),
          TextTable::num(static_cast<std::int64_t>(summary.satisfied_dyn_jobs)),
          TextTable::num(summary.utilization, 2),
          TextTable::num(summary.throughput_jobs_per_min, 2),
          increase};
}

}  // namespace dbs::metrics
