// The discrete-event simulator: a virtual clock plus an event queue.
// All subsystems (server, moms, scheduler, application models) schedule
// callbacks here; the simulator advances time strictly monotonically.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace dbs::sim {

class Simulator {
 public:
  /// Registers this simulator's clock with the logger so log lines carry
  /// the simulated timestamp (the newest simulator wins when several are
  /// alive, e.g. in tests running systems back to back).
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const { return now_; }

  /// Schedules `fn` at absolute time `at` (must not be in the past).
  EventId schedule_at(Time at, EventFn fn);

  /// Schedules `fn` after non-negative delay `d`.
  EventId schedule_after(Duration d, EventFn fn);

  /// Schedules `fn` at `at` on the Submission lane: at equal timestamps it
  /// fires before every normal-lane event, regardless of push order. Used
  /// by workload submission paths so streaming and materialized drivers
  /// produce identical event orderings.
  EventId schedule_submission(Time at, EventFn fn);

  /// Cancels a pending event; false if already fired/cancelled.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue is empty. Returns the number of events fired.
  std::uint64_t run();

  /// Runs until the queue is empty or virtual time would exceed `until`.
  /// Events at exactly `until` are fired.
  std::uint64_t run_until(Time until);

  /// Fires at most one event; false if the queue was empty.
  bool step();

  /// Jumps the clock forward to `at` without firing anything. State
  /// restore only: requires an empty queue (a recovered system re-arms
  /// its events after the jump) and a non-backward jump.
  void restore_clock(Time at);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] const EventQueue& queue() const { return queue_; }

 private:
  /// Advances the clock to `at` and runs `fn` (the one firing path shared
  /// by step/run/run_until).
  void fire(Time at, EventFn fn);

  EventQueue queue_;
  Time now_ = Time::epoch();
  std::uint64_t events_fired_ = 0;
};

}  // namespace dbs::sim
