// Time-ordered event queue with stable FIFO ordering for equal timestamps
// and O(log n) cancellation via tombstones.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::sim {

/// The action executed when an event fires.
using EventFn = std::function<void()>;

class EventQueue {
 public:
  /// Enqueues `fn` to fire at `at`. Events with equal time fire in
  /// insertion order. Returns a handle usable with cancel().
  EventId push(Time at, EventFn fn);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed — and records a tombstone only
  /// for genuinely pending events, so repeated cancels of fired ids do not
  /// accumulate state.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const;
  /// Exact number of pending (non-cancelled) events, O(1).
  [[nodiscard]] std::size_t size() const;

  /// Time of the earliest pending (non-cancelled) event.
  /// Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest event. Precondition: !empty().
  std::pair<Time, EventFn> pop();

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
    // mutable so pop() can move the callable out through the queue's
    // const top() reference without copying.
    mutable EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the front.
  void skip_tombstones() const;

  // Invariant: the heap holds exactly pending_ ∪ cancelled_ (cancelled
  // entries linger as interior tombstones until they surface at the top),
  // so pending_.size() is the exact live count.
  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace dbs::sim
