// Time-ordered event queue with stable FIFO ordering for equal timestamps
// and O(log n) cancellation via tombstones.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"

namespace dbs::sim {

/// The action executed when an event fires.
using EventFn = std::function<void()>;

/// Ordering lane for events that share a timestamp. Submission-lane
/// events (workload arrivals) fire before normal-lane events at the same
/// instant regardless of push order, which is what makes a streaming
/// submission source — which pushes arrivals lazily, interleaved with the
/// run — order-equivalent to materializing the whole workload up front
/// (where every arrival gets an earlier sequence number than anything
/// scheduled during the run).
enum class Lane : std::uint8_t { Submission = 0, Normal = 1 };

class EventQueue {
 public:
  /// Enqueues `fn` to fire at `at`. Events with equal time and lane fire
  /// in insertion order; at equal times the Submission lane fires first.
  /// Returns a handle usable with cancel().
  EventId push(Time at, EventFn fn, Lane lane = Lane::Normal);

  /// Cancels a pending event. Returns false if it already fired, was
  /// already cancelled, or never existed — and records a tombstone only
  /// for genuinely pending events, so repeated cancels of fired ids do not
  /// accumulate state.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const;
  /// Exact number of pending (non-cancelled) events, O(1).
  [[nodiscard]] std::size_t size() const;
  /// Cancelled entries still lingering in the heap as tombstones, O(1).
  [[nodiscard]] std::size_t cancelled_count() const {
    return cancelled_.size();
  }
  /// Times the heap was rebuilt to shed tombstones (observability).
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }

  /// Time of the earliest pending (non-cancelled) event.
  /// Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the earliest event. Precondition: !empty().
  std::pair<Time, EventFn> pop();

  /// Pops every event with time <= `until` in firing order and hands each
  /// to `fire(at, fn)`. Returns the number of events fired. `fire` may
  /// push new events; those landing inside the horizon are drained too.
  /// This is the one drain loop behind Simulator::run/run_until and the
  /// service loop, so the tombstone/ordering subtleties live in one place.
  template <typename Fire>
  std::uint64_t drain_until(Time until, Fire&& fire) {
    std::uint64_t n = 0;
    while (!empty() && next_time() <= until) {
      auto [at, fn] = pop();
      fire(at, std::move(fn));
      ++n;
    }
    return n;
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventId id;
    Lane lane;
    EventFn fn;
  };
  /// Min-heap order via std::*_heap's max-heap convention: `a` sorts
  /// later than `b` when it fires after it — later time, then (equal
  /// times) the Normal lane, then higher sequence number.
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.lane != b.lane) return a.lane > b.lane;
      return a.seq > b.seq;
    }
  };

  /// Drops cancelled entries from the front.
  void skip_tombstones() const;
  /// Rebuilds the heap without the tombstones once they dominate it, so
  /// a workload that cancels most of what it schedules (coalesced
  /// scheduler triggers, negotiation timeouts) keeps the heap at
  /// O(pending) instead of O(pushed).
  void maybe_compact();

  // Invariant: the heap holds exactly pending_ ∪ cancelled_ (cancelled
  // entries linger as interior tombstones until they surface at the top
  // or a compaction sheds them), so pending_.size() is the exact live
  // count.
  mutable std::vector<Entry> heap_;
  mutable std::unordered_set<EventId> cancelled_;
  std::unordered_set<EventId> pending_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace dbs::sim
