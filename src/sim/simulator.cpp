#include "sim/simulator.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace dbs::sim {

Simulator::Simulator() {
  logging::register_sim_clock(this, [](const void* owner) {
    return static_cast<const Simulator*>(owner)->now();
  });
}

Simulator::~Simulator() { logging::unregister_sim_clock(this); }

EventId Simulator::schedule_at(Time at, EventFn fn) {
  DBS_REQUIRE(at >= now_, "cannot schedule into the past");
  return queue_.push(at, std::move(fn));
}

EventId Simulator::schedule_after(Duration d, EventFn fn) {
  DBS_REQUIRE(!d.is_negative(), "delay must be non-negative");
  return queue_.push(now_ + d, std::move(fn));
}

EventId Simulator::schedule_submission(Time at, EventFn fn) {
  DBS_REQUIRE(at >= now_, "cannot schedule into the past");
  return queue_.push(at, std::move(fn), Lane::Submission);
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, fn] = queue_.pop();
  fire(at, std::move(fn));
  return true;
}

std::uint64_t Simulator::run() {
  return queue_.drain_until(Time::far_future(), [this](Time at, EventFn fn) {
    fire(at, std::move(fn));
  });
}

std::uint64_t Simulator::run_until(Time until) {
  const std::uint64_t n =
      queue_.drain_until(until, [this](Time at, EventFn fn) {
        fire(at, std::move(fn));
      });
  // Advance the clock to the horizon even if nothing fires exactly there,
  // so repeated run_until calls observe monotonic time.
  if (now_ < until) now_ = until;
  return n;
}

void Simulator::restore_clock(Time at) {
  DBS_REQUIRE(queue_.empty(),
              "clock restore requires an empty queue; re-arm events after");
  DBS_REQUIRE(at >= now_, "clock cannot move backwards");
  now_ = at;
}

void Simulator::fire(Time at, EventFn fn) {
  DBS_ASSERT(at >= now_, "event queue returned a past event");
  now_ = at;
  fn();
  ++events_fired_;
}

}  // namespace dbs::sim
