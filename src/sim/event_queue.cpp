#include "sim/event_queue.hpp"

#include <utility>

#include "common/assert.hpp"

namespace dbs::sim {

EventId EventQueue::push(Time at, EventFn fn) {
  DBS_REQUIRE(fn != nullptr, "event must have an action");
  const EventId id{next_seq_};
  heap_.push(Entry{at, next_seq_, id, std::move(fn)});
  pending_.insert(id);
  ++next_seq_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only a genuinely pending event can be cancelled. Fired, already
  // cancelled or never-existing ids fail without leaving a tombstone —
  // otherwise a caller retrying cancels of fired ids would grow
  // `cancelled_` without bound.
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  return true;
}

void EventQueue::skip_tombstones() const {
  while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const { return pending_.empty(); }

std::size_t EventQueue::size() const { return pending_.size(); }

Time EventQueue::next_time() const {
  skip_tombstones();
  DBS_REQUIRE(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().at;
}

std::pair<Time, EventFn> EventQueue::pop() {
  skip_tombstones();
  DBS_REQUIRE(!heap_.empty(), "pop() on empty queue");
  const Entry& top = heap_.top();
  std::pair<Time, EventFn> out{top.at, std::move(top.fn)};
  pending_.erase(top.id);
  heap_.pop();
  return out;
}

}  // namespace dbs::sim
