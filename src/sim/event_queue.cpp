#include "sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace dbs::sim {

namespace {
// Compaction is amortized: it only triggers once tombstones outnumber
// live entries AND the heap is big enough that a rebuild is worth the
// bookkeeping. Each rebuild is O(heap) and removes > heap/2 entries, so
// the cost per cancelled event stays O(1) amortized (plus the O(log n)
// of the original push).
constexpr std::size_t kCompactMinHeap = 64;
}  // namespace

EventId EventQueue::push(Time at, EventFn fn, Lane lane) {
  DBS_REQUIRE(fn != nullptr, "event must have an action");
  const EventId id{next_seq_};
  heap_.push_back(Entry{at, next_seq_, id, lane, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_.insert(id);
  ++next_seq_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only a genuinely pending event can be cancelled. Fired, already
  // cancelled or never-existing ids fail without leaving a tombstone —
  // otherwise a caller retrying cancels of fired ids would grow
  // `cancelled_` without bound.
  if (pending_.erase(id) == 0) return false;
  cancelled_.insert(id);
  maybe_compact();
  return true;
}

void EventQueue::maybe_compact() {
  if (heap_.size() < kCompactMinHeap) return;
  if (cancelled_.size() * 2 <= heap_.size()) return;
  std::erase_if(heap_,
                [this](const Entry& e) { return cancelled_.contains(e.id); });
  cancelled_.clear();
  std::make_heap(heap_.begin(), heap_.end(), Later{});
  ++compactions_;
}

void EventQueue::skip_tombstones() const {
  while (!heap_.empty() && cancelled_.contains(heap_.front().id)) {
    cancelled_.erase(heap_.front().id);
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    heap_.pop_back();
  }
}

bool EventQueue::empty() const { return pending_.empty(); }

std::size_t EventQueue::size() const { return pending_.size(); }

Time EventQueue::next_time() const {
  skip_tombstones();
  DBS_REQUIRE(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().at;
}

std::pair<Time, EventFn> EventQueue::pop() {
  skip_tombstones();
  DBS_REQUIRE(!heap_.empty(), "pop() on empty queue");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry& top = heap_.back();
  std::pair<Time, EventFn> out{top.at, std::move(top.fn)};
  pending_.erase(top.id);
  heap_.pop_back();
  return out;
}

}  // namespace dbs::sim
