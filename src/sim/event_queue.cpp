#include "sim/event_queue.hpp"

#include <utility>

#include "common/assert.hpp"

namespace dbs::sim {

EventId EventQueue::push(Time at, EventFn fn) {
  DBS_REQUIRE(fn != nullptr, "event must have an action");
  const EventId id{next_seq_};
  heap_.push(Entry{at, next_seq_, id, std::move(fn)});
  ++next_seq_;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid() || id.value() >= next_seq_) return false;
  // A tombstone for an already-fired event is harmless but reports failure:
  // fired events are not in the heap, and ids are never reused.
  if (cancelled_.contains(id)) return false;
  // We cannot cheaply check heap membership; remember the tombstone and let
  // skip_tombstones() drop it. Report success only if it was plausibly
  // pending — callers track liveness themselves via the returned bool of
  // their own bookkeeping; here pending-ness is approximated by id range.
  cancelled_.insert(id);
  return true;
}

void EventQueue::skip_tombstones() const {
  while (!heap_.empty() && cancelled_.contains(heap_.top().id)) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skip_tombstones();
  return heap_.empty();
}

std::size_t EventQueue::size() const {
  skip_tombstones();
  return heap_.size();  // upper bound: may still contain interior tombstones
}

Time EventQueue::next_time() const {
  skip_tombstones();
  DBS_REQUIRE(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().at;
}

std::pair<Time, EventFn> EventQueue::pop() {
  skip_tombstones();
  DBS_REQUIRE(!heap_.empty(), "pop() on empty queue");
  const Entry& top = heap_.top();
  std::pair<Time, EventFn> out{top.at, std::move(top.fn)};
  heap_.pop();
  return out;
}

}  // namespace dbs::sim
