// Plain-text workload traces (an SWF-inspired format) so workloads can be
// saved, inspected and replayed.
//
// One job per line:
//   <at_us> <name> <user> <group> <class> <cores> <walltime_us> <flags>
//   <runtime_us> <ask_frac> <retry_frac> <ask_cores> <nego_timeout_us>
//   [<malleable_min>]
// flags: '-' or any of E (evolving), X (exclusive priority), P (preemptible).
// Lines starting with '#' and blank lines are ignored.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/esp.hpp"

namespace dbs::wl {

/// Serializes a workload. Includes a header comment with the core count.
void write_trace(std::ostream& os, const Workload& workload);
[[nodiscard]] std::string trace_to_string(const Workload& workload);

/// Parses a trace. Throws precondition_error with a line number on
/// malformed input.
[[nodiscard]] Workload read_trace(std::istream& is);
[[nodiscard]] Workload trace_from_string(const std::string& text);

}  // namespace dbs::wl
