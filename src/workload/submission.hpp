// Submission schedules: when each job of a workload reaches the server.
#pragma once

#include <cstddef>
#include <vector>

#include "common/time.hpp"

namespace dbs::wl {

/// The ESP submission discipline: the first `instant` jobs arrive at t = 0,
/// the rest one by one every `interval`.
[[nodiscard]] std::vector<Time> esp_schedule(std::size_t count,
                                             std::size_t instant,
                                             Duration interval);

/// Poisson-like arrivals: exponential inter-arrival times with the given
/// mean, deterministic via the caller's RNG draws in [0,1).
[[nodiscard]] Time next_poisson_arrival(Time previous, Duration mean,
                                        double uniform_draw);

}  // namespace dbs::wl
