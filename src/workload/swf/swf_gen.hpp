// Deterministic synthetic SWF trace generation for benches and tests.
//
// The generator is integer-only splitmix64 arithmetic so that
// tools/gen_swf.py can reproduce the exact bytes in pure Python (CI
// diffs the two); SwfGenStream exposes the same bytes as a lazy istream
// so a 10M-job bench never materializes the ~600 MB of trace text.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <streambuf>
#include <string>

namespace dbs::wl::swf {

struct SwfGenParams {
  std::uint64_t jobs = 1000;
  std::uint64_t seed = 42;
  /// Header MaxProcs — the machine the trace "ran" on. The default keeps
  /// an ~80% offered load against the interarrival/size/runtime mix
  /// below, so queues stay bounded at any trace length.
  std::uint64_t max_procs = 1024;
  std::uint64_t users = 64;
  /// Interarrival is uniform in [0, 2*mean), integer seconds.
  std::uint64_t mean_interarrival_s = 24;
  /// Runtime is uniform in [min_run_s, min_run_s + run_spread_s).
  std::uint64_t min_run_s = 60;
  std::uint64_t run_spread_s = 3600;
};

/// Writes the whole trace (header + `jobs` records) to `out`.
void generate_swf(std::ostream& out, const SwfGenParams& params);

/// The header + one record, exactly as generate_swf emits them — shared
/// by the eager writer and the lazy stream.
[[nodiscard]] std::string swf_gen_header(const SwfGenParams& params);

/// Generator state for incremental record production.
class SwfGen {
 public:
  explicit SwfGen(const SwfGenParams& params) : params_(params) {}

  /// Appends the next record line (with trailing '\n') to `out`; false
  /// once `jobs` records have been produced.
  bool append_next(std::string& out);

 private:
  SwfGenParams params_;
  std::uint64_t produced_ = 0;
  std::uint64_t state_ = 0;  ///< lazily seeded from params_.seed
  bool seeded_ = false;
  std::uint64_t submit_s_ = 0;
};

/// An istream producing the generated trace lazily, a buffer's worth of
/// lines at a time: O(1) memory for any job count.
class SwfGenStream : public std::istream {
 public:
  explicit SwfGenStream(const SwfGenParams& params);

 private:
  class Buf : public std::streambuf {
   public:
    explicit Buf(const SwfGenParams& params);

   protected:
    int_type underflow() override;

   private:
    SwfGen gen_;
    std::string chunk_;
    bool header_done_ = false;
    SwfGenParams params_;
  };
  Buf buf_;
};

}  // namespace dbs::wl::swf
