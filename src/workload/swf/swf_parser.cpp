#include "workload/swf/swf_parser.hpp"

#include <array>
#include <cmath>

#include "common/assert.hpp"
#include "common/string_util.hpp"

namespace dbs::wl::swf {

namespace {

/// SWF fields are integers in practice, but the definition permits
/// fractional values (average CPU time, fractional seconds); accept both
/// and truncate toward the integer model the simulator uses.
bool parse_field(std::string_view token, std::int64_t& out) {
  if (const auto i = parse_int(token)) {
    out = *i;
    return true;
  }
  // parse_int rejects signs; -1 sentinels and fractional values both land
  // here.
  if (const auto d = parse_double(token)) {
    out = static_cast<std::int64_t>(std::llround(*d));
    return true;
  }
  return false;
}

}  // namespace

bool SwfParser::read_line() {
  if (line_pending_) {
    line_pending_ = false;
    return true;
  }
  if (!std::getline(*in_, line_)) return false;
  ++lines_;
  // CRLF tolerance: archive files circulate with DOS line endings.
  if (!line_.empty() && line_.back() == '\r') line_.pop_back();
  return true;
}

void SwfParser::parse_directive() {
  // "; Key: Value" — keep every directive verbatim, decode the few the
  // replay engine acts on.
  std::string_view body = trim(std::string_view(line_).substr(1));
  std::string key;
  std::string value;
  if (const auto kv = split_once(body, ':')) {
    key = std::string(trim(kv->first));
    value = std::string(trim(kv->second));
  } else {
    key = std::string(body);
  }
  if (key.empty()) return;
  header_.directives.emplace_back(key, value);
  const auto numeric = parse_int(value);
  if (!numeric.has_value()) return;
  if (iequals(key, "MaxJobs")) header_.max_jobs = *numeric;
  if (iequals(key, "MaxProcs")) header_.max_procs = *numeric;
  if (iequals(key, "MaxNodes")) header_.max_nodes = *numeric;
}

bool SwfParser::parse_record(SwfRecord& out) {
  const std::vector<std::string> fields = split(line_);
  if (fields.size() != 18) return false;
  std::array<std::int64_t, 18> v{};
  for (std::size_t i = 0; i < 18; ++i)
    if (!parse_field(fields[i], v[i])) return false;
  out.job_number = v[0];
  out.submit_s = v[1];
  out.wait_s = v[2];
  out.run_s = v[3];
  out.used_procs = v[4];
  out.avg_cpu_s = v[5];
  out.used_mem_kb = v[6];
  out.req_procs = v[7];
  out.req_time_s = v[8];
  out.req_mem_kb = v[9];
  out.status = v[10];
  out.user = v[11];
  out.group = v[12];
  out.executable = v[13];
  out.queue = v[14];
  out.partition = v[15];
  out.preceding_job = v[16];
  out.think_time_s = v[17];
  return true;
}

const SwfHeader& SwfParser::read_header() {
  while (!line_pending_ && read_line()) {
    const std::string_view t = trim(line_);
    if (t.empty()) continue;
    if (t.front() == ';') {
      parse_directive();
      continue;
    }
    // First record line: stash it for the next next() call.
    line_pending_ = true;
  }
  return header_;
}

bool SwfParser::next(SwfRecord& out) {
  while (read_line()) {
    const std::string_view t = trim(line_);
    if (t.empty()) continue;
    if (t.front() == ';') {
      parse_directive();
      continue;
    }
    if (parse_record(out)) {
      ++records_;
      return true;
    }
    DBS_REQUIRE(policy_ != MalformedPolicy::Strict,
                "SWF line " + std::to_string(lines_) +
                    ": malformed record: " + line_);
    ++malformed_;
  }
  return false;
}

}  // namespace dbs::wl::swf
