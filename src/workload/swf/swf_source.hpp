// Streams an SWF trace as a SubmissionSource: each record is mapped to a
// SubmitSpec on the fly (O(1) memory per job), with interned credential
// strings, monotonic submission-time clamping, optional core clamping to
// the simulated cluster, and a seeded evolving overlay that marks a
// deterministic fraction of jobs dynamic — the paper's ESP treatment
// applied to real traces. See DESIGN.md §12.
#pragma once

#include <cstdint>
#include <istream>

#include "common/interner.hpp"
#include "workload/source.hpp"
#include "workload/swf/swf_parser.hpp"

namespace dbs::wl::swf {

struct SwfSourceConfig {
  MalformedPolicy policy = MalformedPolicy::Skip;
  /// Fraction of replayed jobs marked evolving, in [0, 1]. The draw is a
  /// pure function of (overlay_seed, SWF job number), so it is identical
  /// for any window size, replay order or trace prefix.
  double overlay_dynamic_fraction = 0.0;
  std::uint64_t overlay_seed = 2014;
  /// Evolving-overlay shape: the paper's ESP parameters.
  double first_ask_frac = 0.16;
  double retry_frac = 0.25;
  CoreCount ask_cores = 4;
  /// Clamp job sizes to this many cores (0 = no clamp). A trace replayed
  /// on a smaller simulated machine would otherwise deadlock on jobs
  /// wider than the whole cluster.
  CoreCount max_cores = 0;
};

class SwfSource final : public SubmissionSource {
 public:
  /// `in` must outlive the source.
  SwfSource(std::istream& in, SwfSourceConfig config);

  /// Header directives; consumes the input up to the first record, so
  /// callers can size the cluster from MaxProcs before streaming.
  const SwfHeader& header() { return parser_.read_header(); }

  bool next(SubmitSpec& out) override;

  /// Late-bound core clamp, for callers that size the cluster from the
  /// header (which is only known after construction). Must be called
  /// before the first next().
  void set_max_cores(CoreCount max_cores) { config_.max_cores = max_cores; }

  /// Whether the overlay marks SWF job `job_number` evolving — exposed so
  /// tests can verify window/order independence of the draw.
  [[nodiscard]] static bool overlay_marks(std::uint64_t seed, double fraction,
                                          std::int64_t job_number);

  // --- replay statistics -------------------------------------------------
  [[nodiscard]] const SwfParser& parser() const { return parser_; }
  /// Jobs yielded to the driver.
  [[nodiscard]] std::uint64_t yielded() const { return yielded_; }
  /// Well-formed records dropped as unusable (no runtime / no size / no
  /// submit time).
  [[nodiscard]] std::uint64_t unusable() const { return unusable_; }
  /// Jobs whose size was clamped to max_cores.
  [[nodiscard]] std::uint64_t clamped_cores() const { return clamped_cores_; }
  /// Jobs whose submit time was clamped up to keep the stream monotonic.
  [[nodiscard]] std::uint64_t clamped_times() const { return clamped_times_; }
  /// Jobs marked evolving by the overlay.
  [[nodiscard]] std::uint64_t overlay_marked() const { return overlay_marked_; }
  /// Distinct users/groups/queues seen (interner sizes, minus the shared
  /// empty string).
  [[nodiscard]] std::size_t distinct_users() const {
    return users_.size() - 1;
  }
  [[nodiscard]] std::size_t distinct_groups() const {
    return groups_.size() - 1;
  }
  [[nodiscard]] std::size_t distinct_queues() const {
    return queues_.size() - 1;
  }

 private:
  SwfParser parser_;
  SwfSourceConfig config_;
  std::int64_t last_submit_s_ = 0;
  std::uint64_t yielded_ = 0;
  std::uint64_t unusable_ = 0;
  std::uint64_t clamped_cores_ = 0;
  std::uint64_t clamped_times_ = 0;
  std::uint64_t overlay_marked_ = 0;
  std::uint64_t anonymous_ = 0;  ///< records with no job number
  common::StringInterner users_;
  common::StringInterner groups_;
  common::StringInterner queues_;
};

}  // namespace dbs::wl::swf
