// Line-oriented parser for the Standard Workload Format (SWF) of the
// Parallel Workloads Archive: `;` header directives followed by
// whitespace-separated 18-field job records, with -1 marking a missing
// value. The parser is streaming — it holds one line at a time — so a
// multi-gigabyte trace never needs to fit in memory.
#pragma once

#include <cstdint>
#include <istream>
#include <string>
#include <utility>
#include <vector>

namespace dbs::wl::swf {

/// One SWF job record; every field is int64 with -1 = not available.
/// Field numbers follow the SWF definition (1-based).
struct SwfRecord {
  std::int64_t job_number = -1;     ///< 1
  std::int64_t submit_s = -1;       ///< 2: seconds since trace start
  std::int64_t wait_s = -1;         ///< 3
  std::int64_t run_s = -1;          ///< 4
  std::int64_t used_procs = -1;     ///< 5: allocated processors
  std::int64_t avg_cpu_s = -1;      ///< 6
  std::int64_t used_mem_kb = -1;    ///< 7
  std::int64_t req_procs = -1;      ///< 8
  std::int64_t req_time_s = -1;     ///< 9
  std::int64_t req_mem_kb = -1;     ///< 10
  std::int64_t status = -1;         ///< 11
  std::int64_t user = -1;           ///< 12
  std::int64_t group = -1;          ///< 13
  std::int64_t executable = -1;     ///< 14
  std::int64_t queue = -1;          ///< 15
  std::int64_t partition = -1;      ///< 16
  std::int64_t preceding_job = -1;  ///< 17
  std::int64_t think_time_s = -1;   ///< 18
};

/// What to do with a line that is not a directive, not blank and not a
/// well-formed 18-field record.
enum class MalformedPolicy {
  Skip,    ///< count it and move on (archive traces have stray lines)
  Strict,  ///< throw precondition_error with the line number
};

/// Header directives of interest, plus every raw directive in file order.
struct SwfHeader {
  std::int64_t max_jobs = -1;   ///< MaxJobs
  std::int64_t max_procs = -1;  ///< MaxProcs
  std::int64_t max_nodes = -1;  ///< MaxNodes
  std::vector<std::pair<std::string, std::string>> directives;
};

class SwfParser {
 public:
  SwfParser(std::istream& in, MalformedPolicy policy = MalformedPolicy::Skip)
      : in_(&in), policy_(policy) {}

  /// Parses forward to the next job record; false at end of input.
  /// Directives encountered on the way are folded into header().
  bool next(SwfRecord& out);

  /// Consumes directive/blank lines up to (not including) the first job
  /// record, so callers can size the cluster from MaxProcs before
  /// streaming. Idempotent; next() also updates the header lazily.
  const SwfHeader& read_header();

  [[nodiscard]] const SwfHeader& header() const { return header_; }
  /// Well-formed records returned so far.
  [[nodiscard]] std::uint64_t records() const { return records_; }
  /// Malformed lines skipped (always 0 under Strict).
  [[nodiscard]] std::uint64_t malformed() const { return malformed_; }
  /// Physical lines consumed, including directives and blanks.
  [[nodiscard]] std::uint64_t lines() const { return lines_; }

 private:
  /// Reads the next line (CRLF-tolerant); false at EOF.
  bool read_line();
  void parse_directive();
  /// Parses line_ as an 18-field record; false if malformed.
  bool parse_record(SwfRecord& out);

  std::istream* in_;
  MalformedPolicy policy_;
  SwfHeader header_;
  std::string line_;
  bool line_pending_ = false;  ///< read_header stashed a record line
  std::uint64_t records_ = 0;
  std::uint64_t malformed_ = 0;
  std::uint64_t lines_ = 0;
};

}  // namespace dbs::wl::swf
