#include "workload/swf/swf_source.hpp"

#include <algorithm>
#include <string>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace dbs::wl::swf {

namespace {

/// "u17"-style name from an SWF numeric id; empty for the -1 sentinel.
std::string numbered(char prefix, std::int64_t id) {
  if (id < 0) return {};
  return std::string(1, prefix) + std::to_string(id);
}

}  // namespace

SwfSource::SwfSource(std::istream& in, SwfSourceConfig config)
    : parser_(in, config.policy), config_(config) {
  DBS_REQUIRE(config_.overlay_dynamic_fraction >= 0.0 &&
                  config_.overlay_dynamic_fraction <= 1.0,
              "overlay fraction must be in [0, 1]");
}

bool SwfSource::overlay_marks(std::uint64_t seed, double fraction,
                              std::int64_t job_number) {
  if (fraction <= 0.0) return false;
  if (fraction >= 1.0) return true;
  // Two splitmix64 steps over (seed, job number): a pure per-job hash, so
  // the mark does not depend on window size, trace position or how many
  // records were skipped before this one (same construction as
  // replication_seed).
  std::uint64_t state = seed;
  (void)splitmix64_next(state);
  state ^= 0xD1B54A32D192ED03ULL *
           (static_cast<std::uint64_t>(job_number) + 1);
  const std::uint64_t z = splitmix64_next(state);
  const double u = static_cast<double>(z >> 11) * 0x1.0p-53;
  return u < fraction;
}

bool SwfSource::next(SubmitSpec& out) {
  SwfRecord r;
  while (parser_.next(r)) {
    // A record is replayable if it has a submission time, a positive size
    // and a known runtime. Allocated size wins over requested size (it is
    // what actually ran); zero-length jobs are floored to one second, the
    // simulator's resolution for a job that ran at all.
    const std::int64_t procs = r.used_procs > 0 ? r.used_procs : r.req_procs;
    if (r.submit_s < 0 || procs <= 0 || r.run_s < 0) {
      ++unusable_;
      continue;
    }
    std::int64_t submit_s = r.submit_s;
    if (submit_s < last_submit_s_) {
      submit_s = last_submit_s_;
      ++clamped_times_;
    }
    last_submit_s_ = submit_s;

    auto cores = static_cast<CoreCount>(procs);
    if (config_.max_cores > 0 && cores > config_.max_cores) {
      cores = config_.max_cores;
      ++clamped_cores_;
    }
    const Duration runtime = Duration::seconds(std::max<std::int64_t>(
        r.run_s, 1));
    // Requested walltime, floored to the actual runtime: traces contain
    // jobs that overran their request, and the simulator's applications
    // run to completion.
    const Duration walltime =
        std::max(r.req_time_s > 0 ? Duration::seconds(r.req_time_s) : runtime,
                 runtime);

    const std::int64_t number =
        r.job_number >= 0 ? r.job_number
                          : -static_cast<std::int64_t>(++anonymous_);
    // Jobs must carry a user (fair-share needs one); traces with an
    // unknown user all share a synthetic one.
    std::string user = numbered('u', r.user);
    if (user.empty()) user = "u_unknown";

    out.at = Time::epoch() + Duration::seconds(submit_s);
    out.spec = rms::JobSpec{};
    out.spec.name = "j" + std::to_string(number);
    out.spec.cred.user = std::string(users_.view(users_.intern(user)));
    out.spec.cred.group =
        std::string(groups_.view(groups_.intern(numbered('g', r.group))));
    out.spec.cred.job_class =
        std::string(queues_.view(queues_.intern(numbered('q', r.queue))));
    out.spec.cores = cores;
    out.spec.walltime = walltime;

    out.behavior = Behavior{};
    out.behavior.static_runtime = runtime;
    if (overlay_marks(config_.overlay_seed, config_.overlay_dynamic_fraction,
                      number)) {
      out.behavior.evolving = true;
      out.behavior.first_ask_frac = config_.first_ask_frac;
      out.behavior.retry_frac = config_.retry_frac;
      out.behavior.ask_cores = config_.ask_cores;
      ++overlay_marked_;
    }
    ++yielded_;
    return true;
  }
  return false;
}

}  // namespace dbs::wl::swf
