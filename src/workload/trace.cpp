#include "workload/trace.hpp"

#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "common/string_util.hpp"

namespace dbs::wl {

namespace {
std::string flags_of(const SubmitSpec& s) {
  std::string f;
  if (s.behavior.evolving) f += 'E';
  if (s.spec.exclusive_priority) f += 'X';
  if (s.spec.preemptible) f += 'P';
  return f.empty() ? "-" : f;
}

std::string field_or_dash(const std::string& s) { return s.empty() ? "-" : s; }
}  // namespace

void write_trace(std::ostream& os, const Workload& workload) {
  os << "# dbs workload trace v1\n";
  os << "# total_cores " << workload.total_cores << "\n";
  for (const SubmitSpec& s : workload.jobs) {
    os << s.at.as_micros() << ' ' << s.spec.name << ' ' << s.spec.cred.user
       << ' ' << field_or_dash(s.spec.cred.group) << ' '
       << field_or_dash(s.spec.cred.job_class) << ' '
       << s.spec.cores << ' ' << s.spec.walltime.as_micros() << ' '
       << flags_of(s) << ' ' << s.behavior.static_runtime.as_micros() << ' '
       << s.behavior.first_ask_frac << ' ' << s.behavior.retry_frac << ' '
       << s.behavior.ask_cores << ' '
       << s.behavior.negotiation_timeout.as_micros() << ' '
       << s.spec.malleable_min << '\n';
  }
}

std::string trace_to_string(const Workload& workload) {
  std::ostringstream os;
  write_trace(os, workload);
  return os.str();
}

Workload read_trace(std::istream& is) {
  Workload wl;
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view trimmed = trim(line);
    if (trimmed.empty()) continue;
    if (trimmed.front() == '#') {
      const auto fields = split(trimmed.substr(1));
      if (fields.size() == 2 && fields[0] == "total_cores") {
        const auto v = parse_int(fields[1]);
        DBS_REQUIRE(v.has_value(), "trace line " + std::to_string(line_no) +
                                       ": bad total_cores");
        wl.total_cores = static_cast<CoreCount>(*v);
      }
      continue;
    }
    const auto f = split(trimmed);
    DBS_REQUIRE(f.size() == 13 || f.size() == 14,
                "trace line " + std::to_string(line_no) +
                    ": expected 13-14 fields, got " + std::to_string(f.size()));
    const auto at = parse_int(f[0]);
    const auto cores = parse_int(f[5]);
    const auto wall = parse_int(f[6]);
    const auto runtime = parse_int(f[8]);
    const auto ask_frac = parse_double(f[9]);
    const auto retry_frac = parse_double(f[10]);
    const auto ask_cores = parse_int(f[11]);
    const auto nego = parse_int(f[12]);
    DBS_REQUIRE(at && cores && wall && runtime && ask_frac && retry_frac &&
                    ask_cores && nego,
                "trace line " + std::to_string(line_no) + ": malformed field");

    SubmitSpec s;
    s.at = Time::from_micros(*at);
    s.spec.name = f[1];
    s.spec.cred.user = f[2];
    s.spec.cred.group = f[3] == "-" ? "" : f[3];
    s.spec.cred.job_class = f[4] == "-" ? "" : f[4];
    s.spec.cores = static_cast<CoreCount>(*cores);
    s.spec.walltime = Duration::micros(*wall);
    for (const char c : f[7]) {
      if (c == 'E') s.behavior.evolving = true;
      if (c == 'X') s.spec.exclusive_priority = true;
      if (c == 'P') s.spec.preemptible = true;
    }
    s.spec.type_tag = s.spec.name.substr(0, s.spec.name.find('-'));
    s.behavior.static_runtime = Duration::micros(*runtime);
    s.behavior.first_ask_frac = *ask_frac;
    s.behavior.retry_frac = *retry_frac;
    s.behavior.ask_cores = static_cast<CoreCount>(*ask_cores);
    s.behavior.negotiation_timeout = Duration::micros(*nego);
    if (f.size() == 14) {
      const auto malleable = parse_int(f[13]);
      DBS_REQUIRE(malleable.has_value(), "trace line " +
                                             std::to_string(line_no) +
                                             ": malformed malleable_min");
      s.spec.malleable_min = static_cast<CoreCount>(*malleable);
      s.behavior.malleable = s.spec.malleable_min > 0 && !s.behavior.evolving;
    }
    wl.jobs.push_back(std::move(s));
  }
  return wl;
}

Workload trace_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

}  // namespace dbs::wl
