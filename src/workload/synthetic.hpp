// Synthetic random workloads for ablations and property tests: a mix of
// rigid and evolving jobs with configurable size/runtime distributions.
#pragma once

#include <cstdint>

#include "workload/esp.hpp"

namespace dbs::wl {

struct SyntheticParams {
  std::size_t job_count = 100;
  CoreCount total_cores = 128;
  std::uint64_t seed = 1;

  /// Job sizes are 2^k cores, k uniform in [min_size_log2, max_size_log2].
  int min_size_log2 = 0;
  int max_size_log2 = 6;

  /// Runtimes uniform in [min_runtime, max_runtime].
  Duration min_runtime = Duration::minutes(2);
  Duration max_runtime = Duration::minutes(40);

  /// Fraction of jobs that evolve (ask for extra cores mid-run).
  double evolving_fraction = 0.3;
  CoreCount ask_cores = 4;
  double first_ask_frac = 0.16;
  double retry_frac = 0.25;

  /// Mean inter-arrival time (exponential); the first job arrives at t = 0.
  Duration mean_interarrival = Duration::seconds(30);

  /// walltime = runtime * walltime_factor.
  double walltime_factor = 1.0;

  /// Number of distinct users jobs are spread across (round robin).
  std::size_t user_count = 8;

  /// Fraction of jobs marked preemptible (for preemption ablations).
  double preemptible_fraction = 0.0;

  /// Fraction of jobs submitted as malleable (shrinkable to half their
  /// size, for malleable-steal ablations).
  double malleable_fraction = 0.0;
};

/// Deterministic for a given parameter set.
[[nodiscard]] Workload generate_synthetic(const SyntheticParams& params);

}  // namespace dbs::wl
