#include "workload/submission.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace dbs::wl {

std::vector<Time> esp_schedule(std::size_t count, std::size_t instant,
                               Duration interval) {
  DBS_REQUIRE(!interval.is_negative(), "interval cannot be negative");
  std::vector<Time> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i < instant)
      times.push_back(Time::epoch());
    else
      times.push_back(Time::epoch() +
                      interval * static_cast<std::int64_t>(i - instant + 1));
  }
  return times;
}

Time next_poisson_arrival(Time previous, Duration mean, double uniform_draw) {
  DBS_REQUIRE(mean > Duration::zero(), "mean inter-arrival must be positive");
  DBS_REQUIRE(uniform_draw >= 0.0 && uniform_draw < 1.0,
              "draw must be in [0,1)");
  // Inverse-CDF of the exponential distribution.
  const double gap = -std::log(1.0 - uniform_draw);
  return previous + mean.scaled(gap);
}

}  // namespace dbs::wl
