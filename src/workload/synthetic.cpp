#include "workload/synthetic.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "workload/submission.hpp"

namespace dbs::wl {

Workload generate_synthetic(const SyntheticParams& p) {
  DBS_REQUIRE(p.total_cores > 0, "machine needs cores");
  DBS_REQUIRE(p.min_size_log2 >= 0 && p.min_size_log2 <= p.max_size_log2,
              "invalid size range");
  DBS_REQUIRE(p.min_runtime > Duration::zero() &&
                  p.min_runtime <= p.max_runtime,
              "invalid runtime range");
  DBS_REQUIRE(p.evolving_fraction >= 0.0 && p.evolving_fraction <= 1.0,
              "evolving fraction must be in [0,1]");
  DBS_REQUIRE(p.preemptible_fraction >= 0.0 && p.preemptible_fraction <= 1.0,
              "preemptible fraction must be in [0,1]");
  DBS_REQUIRE(p.malleable_fraction >= 0.0 && p.malleable_fraction <= 1.0,
              "malleable fraction must be in [0,1]");
  DBS_REQUIRE(p.walltime_factor >= 1.0, "walltime must cover the runtime");
  DBS_REQUIRE(p.user_count > 0, "need at least one user");

  Rng rng(p.seed);
  Workload wl;
  wl.total_cores = p.total_cores;
  Time arrival = Time::epoch();

  for (std::size_t i = 0; i < p.job_count; ++i) {
    SubmitSpec s;
    const int k = static_cast<int>(
        rng.next_int(p.min_size_log2, p.max_size_log2));
    s.spec.cores = std::min<CoreCount>(p.total_cores, CoreCount{1} << k);
    const std::int64_t run_s = rng.next_int(
        p.min_runtime.as_micros() / 1'000'000,
        p.max_runtime.as_micros() / 1'000'000);
    s.behavior.static_runtime = Duration::seconds(run_s);
    s.spec.walltime = s.behavior.static_runtime.scaled(p.walltime_factor);
    s.spec.name = "syn-" + std::to_string(i);
    s.spec.type_tag = "syn";
    const std::size_t u = i % p.user_count;
    s.spec.cred = {"user" + std::to_string(u), "group" + std::to_string(u / 2),
                   "", "batch", ""};
    s.behavior.evolving = rng.next_double() < p.evolving_fraction;
    s.behavior.ask_cores = p.ask_cores;
    s.behavior.first_ask_frac = p.first_ask_frac;
    s.behavior.retry_frac = p.retry_frac;
    s.spec.preemptible = rng.next_double() < p.preemptible_fraction;
    // Malleable and evolving are mutually exclusive here: malleable jobs
    // use the work-conserving model, evolving ones the ESP model.
    if (rng.next_double() < p.malleable_fraction && !s.behavior.evolving) {
      s.spec.malleable_min = std::max<CoreCount>(1, s.spec.cores / 2);
      s.behavior.malleable = true;
    }
    s.at = arrival;
    arrival =
        next_poisson_arrival(arrival, p.mean_interarrival, rng.next_double());
    wl.jobs.push_back(std::move(s));
  }
  return wl;
}

}  // namespace dbs::wl
