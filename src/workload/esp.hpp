// The dynamic ESP benchmark (paper §IV-B, Table I): the classic ESP
// system-utilization benchmark of Wong et al. modified so that job types
// F, G, H, I and J evolve — each requests 4 extra cores after 16 % of its
// static execution time (modelled on the Quadflow Cylinder case), retries
// at 25 % if rejected, and speeds up linearly on success.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "rms/job.hpp"

namespace dbs::wl {

/// How a job behaves once running — enough to build an Application.
struct Behavior {
  Duration static_runtime;            ///< SET
  bool evolving = false;
  double first_ask_frac = 0.16;       ///< first tm_dynget at this SET fraction
  double retry_frac = 0.25;           ///< second chance at this SET fraction
  CoreCount ask_cores = 4;
  Duration negotiation_timeout = Duration::zero();
  /// Malleable jobs need a work-conserving application model that adapts
  /// to scheduler-initiated reshapes (apps::ResilientApp).
  bool malleable = false;

  [[nodiscard]] bool operator==(const Behavior&) const = default;
};

/// One job to inject into the batch system.
struct SubmitSpec {
  Time at;
  rms::JobSpec spec;
  Behavior behavior;
};

/// A full workload plus bookkeeping for reports.
struct Workload {
  std::vector<SubmitSpec> jobs;  ///< in submission order
  CoreCount total_cores = 0;

  [[nodiscard]] std::size_t evolving_count() const;
  [[nodiscard]] std::size_t rigid_count() const;
};

/// One row of Table I.
struct EspJobType {
  char letter;
  double fraction;        ///< of the machine's cores
  int count;
  std::string user;
  Duration set;           ///< static execution time
  bool evolving;
  Duration paper_det;     ///< Table I's dynamic execution time (zero: rigid)
};

/// The 14 job types of Table I.
[[nodiscard]] const std::vector<EspJobType>& esp_table();

/// Job size in cores on a machine with `total_cores` (nearest integer of
/// fraction * total_cores, at least 1).
[[nodiscard]] CoreCount esp_cores(const EspJobType& type, CoreCount total_cores);

/// Our evolving-job timing model, derived from Table I:
/// DET = SET * S / (S + extra).
[[nodiscard]] Duration model_det(Duration set, CoreCount cores,
                                 CoreCount extra_cores);

struct EspParams {
  CoreCount total_cores = 128;     ///< 16 nodes x 8 cores (see DESIGN.md)
  std::uint64_t seed = 2014;       ///< submission-order shuffle
  bool evolving_enabled = true;    ///< false = the Static configuration
  double first_ask_frac = 0.16;
  double retry_frac = 0.25;
  CoreCount ask_cores = 4;
  std::size_t instant_jobs = 50;   ///< submitted at t = 0
  Duration submit_interval = Duration::seconds(30);
  Duration z_delay = Duration::minutes(30);  ///< Z jobs after the last job
  double walltime_factor = 1.0;    ///< walltime = SET * factor
  Duration negotiation_timeout = Duration::zero();
};

/// Generates the 230-job dynamic ESP workload: 228 shuffled A-M jobs on the
/// ESP submission schedule, then the two full-machine Z jobs (exclusive
/// priority) `z_delay` after the last submission.
[[nodiscard]] Workload generate_esp(const EspParams& params);

}  // namespace dbs::wl
