// Pull-based workload delivery: a SubmissionSource yields jobs one at a
// time, in non-decreasing submission-time order, so a driver can keep a
// bounded look-ahead window of future arrivals scheduled instead of
// materializing a whole trace (BatchSystem::submit_stream).
#pragma once

#include <cstddef>

#include "workload/esp.hpp"

namespace dbs::wl {

class SubmissionSource {
 public:
  virtual ~SubmissionSource() = default;

  /// Yields the next submission into `out`; false when the source is
  /// exhausted (out is untouched). Calls after exhaustion keep returning
  /// false. Successive submissions must have non-decreasing `at` — the
  /// streaming driver schedules each arrival as it is pulled, so an
  /// out-of-order arrival would land in the simulator's past.
  virtual bool next(SubmitSpec& out) = 0;
};

/// Adapter: streams an already-materialized Workload. Exists so the
/// streaming driver can be differentially tested against
/// submit_workload on identical inputs, and as the trivial source for
/// generated workloads that fit in memory anyway.
class WorkloadSource final : public SubmissionSource {
 public:
  explicit WorkloadSource(const Workload& workload) : workload_(&workload) {}

  bool next(SubmitSpec& out) override {
    if (idx_ >= workload_->jobs.size()) return false;
    out = workload_->jobs[idx_++];
    return true;
  }

 private:
  const Workload* workload_;
  std::size_t idx_ = 0;
};

}  // namespace dbs::wl
