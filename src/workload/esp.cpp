#include "workload/esp.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "workload/submission.hpp"

namespace dbs::wl {

std::size_t Workload::evolving_count() const {
  std::size_t n = 0;
  for (const auto& j : jobs) n += j.behavior.evolving ? 1 : 0;
  return n;
}

std::size_t Workload::rigid_count() const {
  return jobs.size() - evolving_count();
}

const std::vector<EspJobType>& esp_table() {
  static const std::vector<EspJobType> table = {
      {'A', 0.03125, 75, "user01", Duration::seconds(267), false, Duration::zero()},
      {'B', 0.06250, 9, "user02", Duration::seconds(322), false, Duration::zero()},
      {'C', 0.50000, 3, "user03", Duration::seconds(534), false, Duration::zero()},
      {'D', 0.25000, 3, "user04", Duration::seconds(616), false, Duration::zero()},
      {'E', 0.50000, 3, "user05", Duration::seconds(315), false, Duration::zero()},
      {'F', 0.06250, 9, "user06", Duration::seconds(1846), true, Duration::seconds(1230)},
      {'G', 0.12500, 6, "user06", Duration::seconds(1334), true, Duration::seconds(1067)},
      {'H', 0.15820, 6, "user06", Duration::seconds(1067), true, Duration::seconds(896)},
      {'I', 0.03125, 24, "user06", Duration::seconds(1432), true, Duration::seconds(716)},
      {'J', 0.06250, 24, "user06", Duration::seconds(725), true, Duration::seconds(483)},
      {'K', 0.09570, 15, "user07", Duration::seconds(487), false, Duration::zero()},
      {'L', 0.12500, 36, "user08", Duration::seconds(366), false, Duration::zero()},
      {'M', 0.25000, 15, "user09", Duration::seconds(187), false, Duration::zero()},
      {'Z', 1.00000, 2, "user10", Duration::seconds(100), false, Duration::zero()},
  };
  return table;
}

CoreCount esp_cores(const EspJobType& type, CoreCount total_cores) {
  DBS_REQUIRE(total_cores > 0, "machine needs cores");
  const auto cores = static_cast<CoreCount>(
      std::llround(type.fraction * static_cast<double>(total_cores)));
  return std::max<CoreCount>(1, cores);
}

Duration model_det(Duration set, CoreCount cores, CoreCount extra_cores) {
  DBS_REQUIRE(cores > 0 && extra_cores >= 0, "invalid core counts");
  return set.scaled(static_cast<double>(cores) /
                    static_cast<double>(cores + extra_cores));
}

Workload generate_esp(const EspParams& params) {
  DBS_REQUIRE(params.walltime_factor >= 1.0,
              "walltime must cover the static execution time");
  DBS_REQUIRE(params.first_ask_frac > 0.0 && params.first_ask_frac < 1.0 &&
                  params.retry_frac > params.first_ask_frac &&
                  params.retry_frac < 1.0,
              "ask fractions must satisfy 0 < first < retry < 1");

  Workload wl;
  wl.total_cores = params.total_cores;

  std::vector<SubmitSpec> regular;
  std::vector<SubmitSpec> z_jobs;
  for (const EspJobType& type : esp_table()) {
    const CoreCount cores = esp_cores(type, params.total_cores);
    for (int i = 0; i < type.count; ++i) {
      SubmitSpec s;
      s.spec.name = std::string(1, type.letter) + "-" +
                    (i + 1 < 10 ? "0" : "") + std::to_string(i + 1);
      s.spec.cred = {type.user, "espgroup", "espacct", "batch", ""};
      s.spec.cores = cores;
      s.spec.walltime = type.set.scaled(params.walltime_factor);
      s.spec.type_tag = std::string(1, type.letter);
      s.spec.exclusive_priority = type.letter == 'Z';
      s.behavior.static_runtime = type.set;
      s.behavior.evolving = type.evolving && params.evolving_enabled;
      s.behavior.first_ask_frac = params.first_ask_frac;
      s.behavior.retry_frac = params.retry_frac;
      s.behavior.ask_cores = params.ask_cores;
      s.behavior.negotiation_timeout = params.negotiation_timeout;
      (type.letter == 'Z' ? z_jobs : regular).push_back(std::move(s));
    }
  }

  // ESP prescribes a fixed pseudo-random submission order; we derive one
  // deterministically from the seed.
  Rng rng(params.seed);
  rng.shuffle(regular);

  const std::vector<Time> schedule =
      esp_schedule(regular.size(), params.instant_jobs, params.submit_interval);
  for (std::size_t i = 0; i < regular.size(); ++i)
    regular[i].at = schedule[i];

  const Time last = schedule.empty() ? Time::epoch() : schedule.back();
  Time z_at = last + params.z_delay;
  for (auto& z : z_jobs) {
    z.at = z_at;
    z_at += params.submit_interval;
  }

  wl.jobs = std::move(regular);
  wl.jobs.insert(wl.jobs.end(), z_jobs.begin(), z_jobs.end());
  return wl;
}

}  // namespace dbs::wl
