// The one observability wiring point. Every component that publishes trace
// events or metrics accepts a single `Sinks` bundle instead of separate
// set_tracer/set_registry pairs, so attaching observability to a system is
// one call threaded top-down (BatchSystem -> Server/Moms/Scheduler ->
// DfsEngine) rather than five parallel setter chains.
#pragma once

#include "obs/registry.hpp"
#include "obs/tracer.hpp"

namespace dbs::obs {

namespace rec {
class FlightRecorder;
}

/// Where a component's observability output lands. Copyable by design: the
/// bundle is a few pointers, handed down by value.
struct Sinks {
  Sinks() = default;
  Sinks(Tracer* tracer_, Registry* registry_,
        rec::FlightRecorder* recorder_ = nullptr)
      : tracer(tracer_), registry(registry_), recorder(recorder_) {}

  /// Structured event stream; nullptr disables tracing (the emission guard
  /// makes a detached tracer cost one pointer test).
  Tracer* tracer = nullptr;
  /// Metrics destination; nullptr selects the process-wide global registry.
  Registry* registry = nullptr;
  /// Binary flight recorder; nullptr disables recording. The server
  /// registers it as an observer, the scheduler feeds it the decision
  /// stream of every applied iteration.
  rec::FlightRecorder* recorder = nullptr;

  /// The registry components should actually record into — components never
  /// store a null registry pointer.
  [[nodiscard]] Registry& registry_or_global() const {
    return registry != nullptr ? *registry : Registry::global();
  }
};

}  // namespace dbs::obs
