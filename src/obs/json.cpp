#include "obs/json.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>

namespace dbs::obs {

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == std::floor(v) && std::abs(v) < 9.0e15)
    return std::to_string(static_cast<std::int64_t>(v));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

}  // namespace dbs::obs
