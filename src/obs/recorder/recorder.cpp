#include "obs/recorder/recorder.hpp"

#include "common/assert.hpp"
#include "obs/recorder/reader.hpp"

namespace dbs::obs::rec {
namespace {

std::uint32_t id32(std::uint64_t raw) {
  if (raw == ~std::uint64_t{0}) return kNoId;
  DBS_REQUIRE(raw < kNoId, "id exceeds the record format's 32-bit space");
  return static_cast<std::uint32_t>(raw);
}

std::uint64_t id64(std::uint32_t packed) {
  return packed == kNoId ? ~std::uint64_t{0} : packed;
}

}  // namespace

PackedRecord FlightRecorder::base(RecordType type, JobId job) const {
  PackedRecord r;
  r.type = type;
  r.t_us = now().as_micros();
  r.job = id32(job.value());
  return r;
}

void FlightRecorder::record_decisions(
    Time at, std::uint64_t iteration,
    const std::vector<rms::Decision>& decisions) {
  if (!writer_.is_open()) return;
  for (const rms::Decision& d : decisions) {
    PackedRecord r;
    r.type = static_cast<RecordType>(16 + static_cast<int>(d.kind));
    r.t_us = at.as_micros();
    r.iteration = static_cast<std::uint32_t>(iteration);
    r.job = id32(d.job.value());
    r.other = id32(d.for_job.value());
    r.request = id32(d.request.value());
    r.cores = d.cores;
    if (d.backfilled) r.flags |= kFlagBackfilled;
    if (d.applied) r.flags |= kFlagApplied;
    if (d.deferred) r.flags |= kFlagDeferred;
    switch (d.kind) {
      case rms::DecisionKind::Reserve:
        r.aux_us = d.start.as_micros();
        break;
      case rms::DecisionKind::RejectDyn:
        r.reason = writer_.intern(d.reason);
        if (d.hint) {
          r.flags |= kFlagHasHint;
          r.aux_us = d.hint->as_micros();
        }
        break;
      default:
        break;
    }
    writer_.append(r);
  }
}

void FlightRecorder::on_submit(const rms::Job& job) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::Submit, job.id());
  r.cores = job.spec().cores;
  r.aux_us = job.spec().walltime.as_micros();
  r.user = writer_.intern(job.spec().cred.user);
  writer_.append(r);
}

void FlightRecorder::on_job_start(const rms::Job& job) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::Start, job.id());
  r.cores = job.allocated_cores();
  r.aux_us = (now() - job.submit_time()).as_micros();
  if (job.was_backfilled()) r.flags |= kFlagBackfilled;
  writer_.append(r);
}

void FlightRecorder::on_job_finish(const rms::Job& job) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::Finish, job.id());
  r.cores = job.allocated_cores();
  writer_.append(r);
}

void FlightRecorder::on_dyn_request(const rms::Job& job,
                                    const rms::DynRequest& req) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::DynRequest, job.id());
  r.request = id32(req.id.value());
  r.cores = req.extra_cores;
  writer_.append(r);
}

void FlightRecorder::on_dyn_grant(const rms::Job& job,
                                  const rms::DynRequest& req, CoreCount extra) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::DynGrant, job.id());
  r.request = id32(req.id.value());
  r.cores = extra;
  writer_.append(r);
}

void FlightRecorder::on_dyn_reject(const rms::Job& job,
                                   const rms::DynRequest& req) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::DynReject, job.id());
  r.request = id32(req.id.value());
  r.cores = req.extra_cores;
  writer_.append(r);
}

void FlightRecorder::on_dyn_release(const rms::Job& job, CoreCount cores) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::DynRelease, job.id());
  r.cores = cores;
  writer_.append(r);
}

void FlightRecorder::on_malleable_shrink(const rms::Job& job,
                                         CoreCount cores) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::MalleableShrink, job.id());
  r.cores = cores;
  writer_.append(r);
}

void FlightRecorder::on_requeue(const rms::Job& job) {
  if (!writer_.is_open()) return;
  // The allocation is already released by requeue time; record the size
  // the job will re-request.
  PackedRecord r = base(RecordType::Requeue, job.id());
  r.cores = job.spec().cores;
  writer_.append(r);
}

void FlightRecorder::on_nodes_lost(const rms::Job& job, CoreCount lost) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::NodesLost, job.id());
  r.cores = lost;
  writer_.append(r);
}

void FlightRecorder::on_cancel(const rms::Job& job, CoreCount released) {
  if (!writer_.is_open()) return;
  PackedRecord r = base(RecordType::Cancel, job.id());
  r.cores = released;
  writer_.append(r);
}

rms::Decision record_to_decision(const PackedRecord& r,
                                 const RecordReader& reader) {
  DBS_REQUIRE(is_decision(r.type), "not a decision record");
  rms::Decision d;
  d.kind =
      static_cast<rms::DecisionKind>(static_cast<std::uint8_t>(r.type) - 16);
  d.job = JobId{id64(r.job)};
  d.for_job = JobId{id64(r.other)};
  d.request = RequestId{id64(r.request)};
  d.cores = r.cores;
  d.backfilled = r.has(kFlagBackfilled);
  d.applied = r.has(kFlagApplied);
  d.deferred = r.has(kFlagDeferred);
  switch (d.kind) {
    case rms::DecisionKind::Reserve:
      d.start = Time::from_micros(r.aux_us);
      break;
    case rms::DecisionKind::RejectDyn:
      d.reason = reader.string_at(r.reason);
      if (r.has(kFlagHasHint)) d.hint = Time::from_micros(r.aux_us);
      break;
    default:
      break;
  }
  return d;
}

}  // namespace dbs::obs::rec
