// Query operations over flight-recorder files — the engine behind the
// dbsq CLI and the round-trip tests.
//
// Lives with the recorder but needs the rms decision vocabulary (records
// reconstruct to rms::Decision and render through decision_to_json, the
// byte-identity contract with the dry-run printer and the JSONL trace).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/recorder/reader.hpp"

namespace dbs::obs::rec {

/// Whole-file totals from one sequential scan.
struct Summary {
  std::uint64_t record_count = 0;
  std::uint64_t lifecycle_records = 0;
  std::uint64_t decision_records = 0;
  std::uint64_t jobs = 0;           ///< distinct jobs in the index
  std::int64_t capacity = 0;        ///< cluster cores from the header
  std::int64_t first_t_us = 0;
  std::int64_t last_t_us = 0;
  /// Count per RecordType, indexed by the on-disk type id.
  std::array<std::uint64_t, 32> by_type{};

  [[nodiscard]] std::uint64_t count(RecordType t) const {
    return by_type[static_cast<std::size_t>(t)];
  }
};

[[nodiscard]] Summary summarize(RecordReader& reader);
void write_summary_json(const Summary& s, std::ostream& os);

/// One JSON line per record touching `job`, in append order: decisions
/// render exactly as rms::decision_to_json (plus a trailing t_us/iteration
/// envelope line is NOT added — the decision object is byte-identical);
/// lifecycle events render as {"event": ..., "t_us": ..., ...}.
struct JobHistoryLine {
  bool is_decision = false;
  std::int64_t t_us = 0;
  std::string json;  ///< the decision object or the lifecycle object
};
[[nodiscard]] std::vector<JobHistoryLine> job_history(RecordReader& reader,
                                                      std::uint64_t job);

/// Renders a lifecycle record as a stable-key-order JSON object.
[[nodiscard]] std::string lifecycle_to_json(const PackedRecord& r,
                                            const RecordReader& reader);

/// Cross-checks the recorded decision stream against a JSONL trace of the
/// same run: every applied decision must line up with its rms lifecycle
/// trace event (start<->job_start, grant<->dyn_grant, final
/// reject<->dyn_reject, deferral<->dyn_defer, preempt<->preempt,
/// shrink<->malleable_shrink) on time, job, request and core fields.
struct VerifyResult {
  std::uint64_t compared = 0;
  std::vector<std::string> mismatches;  ///< first few, human-readable
  [[nodiscard]] bool ok() const { return mismatches.empty(); }
};
[[nodiscard]] VerifyResult verify_against_trace(RecordReader& reader,
                                                const std::string& trace_path);

}  // namespace dbs::obs::rec
