// FlightRecorder — turns the live run into a flight-recorder file.
//
// Two capture paths feed one RecordWriter:
//   * lifecycle events, via rms::ServerObserver (the recorder registers on
//     the server exactly like metrics::Recorder);
//   * the scheduler's typed decision stream, via record_decisions() called
//     by MauiScheduler at the end of every applied (non-dry-run) iteration.
//
// Decision records round-trip: record_to_decision() reconstructs an
// rms::Decision whose decision_to_json rendering is byte-identical to what
// the dry-run printer would have emitted for the original.
//
// Ownership: one recorder per replication, used only from that
// replication's simulation thread (ParallelRunner isolates replications,
// and the scheduler's what-if measurement threads never record).
#pragma once

#include <functional>
#include <string>

#include "obs/recorder/writer.hpp"
#include "rms/decision.hpp"
#include "rms/server.hpp"

namespace dbs::obs::rec {

class RecordReader;

class FlightRecorder : public rms::ServerObserver {
 public:
  FlightRecorder() = default;

  /// Opens the output file. `capacity` is the cluster's total core count.
  bool open(const std::string& path, std::int64_t capacity,
            std::int64_t time_bucket_us = 60'000'000) {
    return writer_.open(path, capacity, time_bucket_us);
  }

  [[nodiscard]] bool is_open() const { return writer_.is_open(); }
  [[nodiscard]] std::uint64_t records_written() const {
    return writer_.records_written();
  }
  [[nodiscard]] const std::string& path() const { return writer_.path(); }
  [[nodiscard]] std::int64_t first_t_us() const { return writer_.first_t_us(); }
  [[nodiscard]] std::int64_t last_t_us() const { return writer_.last_t_us(); }

  /// Writes the indexes + footer and closes the file.
  bool finalize() { return writer_.finalize(); }

  /// Simulated-clock source, wired by BatchSystem::set_sinks (same shape
  /// as Tracer::set_clock). Events recorded before wiring stamp epoch.
  void set_clock(std::function<Time()> clock) { clock_ = std::move(clock); }

  /// Captures one applied iteration's decision stream.
  void record_decisions(Time now, std::uint64_t iteration,
                        const std::vector<rms::Decision>& decisions);

  // --- rms::ServerObserver ----------------------------------------------
  void on_submit(const rms::Job& job) override;
  void on_job_start(const rms::Job& job) override;
  void on_job_finish(const rms::Job& job) override;
  void on_dyn_request(const rms::Job& job, const rms::DynRequest& req) override;
  void on_dyn_grant(const rms::Job& job, const rms::DynRequest& req,
                    CoreCount extra) override;
  void on_dyn_reject(const rms::Job& job, const rms::DynRequest& req) override;
  void on_dyn_release(const rms::Job& job, CoreCount cores) override;
  void on_malleable_shrink(const rms::Job& job, CoreCount cores) override;
  void on_requeue(const rms::Job& job) override;
  void on_nodes_lost(const rms::Job& job, CoreCount lost) override;
  void on_cancel(const rms::Job& job, CoreCount released) override;

 private:
  [[nodiscard]] Time now() const {
    return clock_ ? clock_() : Time::epoch();
  }
  PackedRecord base(RecordType type, JobId job) const;

  RecordWriter writer_;
  std::function<Time()> clock_;
};

/// Reconstructs the typed decision a decision record was written from.
/// `reader` supplies the string table backing `Decision::reason`, so the
/// decision must not outlive it. Precondition: is_decision(r.type).
[[nodiscard]] rms::Decision record_to_decision(const PackedRecord& r,
                                               const RecordReader& reader);

}  // namespace dbs::obs::rec
