#include "obs/recorder/query.hpp"

#include <cstdlib>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>

#include "obs/json.hpp"
#include "obs/recorder/recorder.hpp"
#include "rms/decision.hpp"

namespace dbs::obs::rec {

Summary summarize(RecordReader& reader) {
  Summary s;
  s.capacity = reader.capacity();
  s.jobs = reader.indexed_jobs();
  bool first = true;
  reader.scan_all([&](const PackedRecord& r) {
    ++s.record_count;
    if (is_decision(r.type))
      ++s.decision_records;
    else
      ++s.lifecycle_records;
    const auto type = static_cast<std::size_t>(r.type);
    if (type < s.by_type.size()) ++s.by_type[type];
    if (first) {
      s.first_t_us = r.t_us;
      first = false;
    }
    s.last_t_us = r.t_us;
  });
  return s;
}

void write_summary_json(const Summary& s, std::ostream& os) {
  os << "{\n  \"records\": " << s.record_count
     << ",\n  \"lifecycle\": " << s.lifecycle_records
     << ",\n  \"decisions\": " << s.decision_records
     << ",\n  \"jobs\": " << s.jobs << ",\n  \"capacity\": " << s.capacity
     << ",\n  \"first_t_us\": " << s.first_t_us
     << ",\n  \"last_t_us\": " << s.last_t_us << ",\n  \"by_type\": {";
  bool first = true;
  for (std::size_t i = 0; i < s.by_type.size(); ++i) {
    if (s.by_type[i] == 0) continue;
    os << (first ? "\n" : ",\n") << "    "
       << json_quote(to_string(static_cast<RecordType>(i))) << ": "
       << s.by_type[i];
    first = false;
  }
  os << (first ? "}" : "\n  }") << "\n}\n";
}

std::string lifecycle_to_json(const PackedRecord& r,
                              const RecordReader& reader) {
  std::string out = "{\"event\": \"";
  out += to_string(r.type);
  out += "\", \"t_us\": ";
  out += std::to_string(r.t_us);
  out += ", \"job\": ";
  out += std::to_string(r.job);
  if (r.request != kNoId) {
    out += ", \"request\": ";
    out += std::to_string(r.request);
  }
  if (r.cores != 0) {
    out += ", \"cores\": ";
    out += std::to_string(r.cores);
  }
  switch (r.type) {
    case RecordType::Submit:
      out += ", \"user\": ";
      out += json_quote(reader.string_at(r.user));
      out += ", \"walltime_us\": ";
      out += std::to_string(r.aux_us);
      break;
    case RecordType::Start:
      out += ", \"wait_us\": ";
      out += std::to_string(r.aux_us);
      if (r.has(kFlagBackfilled)) out += ", \"backfilled\": true";
      break;
    default:
      break;
  }
  out += '}';
  return out;
}

std::vector<JobHistoryLine> job_history(RecordReader& reader,
                                        std::uint64_t job) {
  std::vector<JobHistoryLine> lines;
  for (const PackedRecord& r : reader.for_job(job)) {
    JobHistoryLine line;
    line.t_us = r.t_us;
    line.is_decision = is_decision(r.type);
    if (line.is_decision)
      rms::decision_to_json(record_to_decision(r, reader), line.json);
    else
      line.json = lifecycle_to_json(r, reader);
    lines.push_back(std::move(line));
  }
  return lines;
}

namespace {

/// Minimal field extraction from one JSONL trace line. The tracer writes
/// `"key": value` with a single space, stable per-event key order; this
/// looks the key up anywhere in the line, so it stays correct if fields
/// move.
std::optional<std::int64_t> int_field(const std::string& line,
                                      const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const char* begin = line.c_str() + pos + needle.size();
  char* end = nullptr;
  const long long v = std::strtoll(begin, &end, 10);
  if (end == begin) return std::nullopt;
  return v;
}

std::optional<std::string> str_field(const std::string& line,
                                     const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto begin = pos + needle.size();
  const auto end = line.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(begin, end - begin);
}

std::optional<bool> bool_field(const std::string& line,
                               const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  return line.compare(pos + needle.size(), 4, "true") == 0;
}

struct Expect {
  const char* trace_name;
  std::int64_t t_us;
  std::string detail;  ///< rendered decision, for mismatch messages
  std::int64_t job = -1;
  std::int64_t request = -1;
  std::int64_t cores = -1;   ///< -1: don't check
  int backfilled = -1;       ///< -1: don't check, else 0/1
};

}  // namespace

VerifyResult verify_against_trace(RecordReader& reader,
                                  const std::string& trace_path) {
  VerifyResult result;
  // Pass 1: the expected rms event for every applied decision, per event
  // name, in decision order. Decision order within an iteration is
  // execution order, so each per-name queue is ordered like the trace.
  std::map<std::string, std::deque<Expect>> expected;
  reader.scan_all([&](const PackedRecord& r) {
    if (!is_decision(r.type)) return;
    if (!r.has(kFlagApplied) && !r.has(kFlagDeferred)) return;
    Expect e;
    e.t_us = r.t_us;
    e.job = r.job;
    rms::decision_to_json(record_to_decision(r, reader), e.detail);
    switch (r.type) {
      case RecordType::DecStartJob:
        e.trace_name = "job_start";
        e.backfilled = r.has(kFlagBackfilled) ? 1 : 0;
        break;
      case RecordType::DecGrantDyn:
        e.trace_name = "dyn_grant";
        e.request = r.request;
        e.cores = r.cores;
        break;
      case RecordType::DecRejectDyn:
        e.trace_name = r.has(kFlagDeferred) ? "dyn_defer" : "dyn_reject";
        e.request = r.request;
        break;
      case RecordType::DecPreempt:
        e.trace_name = "preempt";
        break;
      case RecordType::DecShrinkMalleable:
        e.trace_name = "malleable_shrink";
        e.cores = r.cores;
        break;
      default:
        return;  // Reserve has no server-side event
    }
    expected[e.trace_name].push_back(std::move(e));
  });

  // Pass 2: consume the trace; every matching rms event must equal the
  // front of its queue.
  std::ifstream in(trace_path);
  if (!in.is_open()) {
    result.mismatches.push_back("cannot open trace " + trace_path);
    return result;
  }
  const auto mismatch = [&](const std::string& message) {
    if (result.mismatches.size() < 16) result.mismatches.push_back(message);
  };
  std::string line;
  while (std::getline(in, line)) {
    const auto cat = str_field(line, "cat");
    const auto name = str_field(line, "name");
    if (!cat || *cat != "rms" || !name) continue;
    const auto it = expected.find(*name);
    if (it == expected.end()) continue;
    if (it->second.empty()) {
      mismatch("trace has extra " + *name + " event: " + line);
      continue;
    }
    const Expect e = std::move(it->second.front());
    it->second.pop_front();
    ++result.compared;
    const auto t = int_field(line, "t_us");
    const auto job = int_field(line, "job");
    const auto request = int_field(line, "request");
    const auto cores = int_field(line, "extra_cores")
                           ? int_field(line, "extra_cores")
                           : int_field(line, "cores");
    const auto backfilled = bool_field(line, "backfilled");
    const bool bad =
        (!t || *t != e.t_us) || (!job || *job != e.job) ||
        (e.request >= 0 && (!request || *request != e.request)) ||
        (e.cores >= 0 && (!cores || *cores != e.cores)) ||
        (e.backfilled >= 0 &&
         (!backfilled || (*backfilled ? 1 : 0) != e.backfilled));
    if (bad)
      mismatch("decision " + e.detail + " does not match trace line: " + line);
  }
  for (auto& [name, queue] : expected)
    if (!queue.empty())
      mismatch(std::to_string(queue.size()) + " recorded " + name +
               " decision(s) missing from the trace, first: " +
               queue.front().detail);
  return result;
}

}  // namespace dbs::obs::rec
