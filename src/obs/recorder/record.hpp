// The flight recorder's on-disk vocabulary: one fixed-size packed record
// per scheduler decision or job-lifecycle event.
//
// A record file is an append-only stream of kRecordSize-byte records
// followed by (at finalize time) a string table, a per-job posting index,
// a time-bucket index and a fixed-size footer locating them — the
// packed-header + indexed-storage idiom. Fixed-size records mean a record
// ordinal converts to a file offset with one multiply, so the job index
// stores bare ordinals and a per-job lookup is "hash the job id, seek the
// postings, seek each record" — never a full-file scan.
//
// All integers are stored little-endian via the explicit store/load
// helpers below, so files are portable across hosts. Strings (user names,
// reject reasons) are interned into the string table and referenced by
// 16-bit id; id 0 is always the empty string.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace dbs::obs::rec {

/// File format version; bump on any layout change. Readers reject files
/// whose major version they do not understand (see DESIGN.md §10).
inline constexpr std::uint32_t kFormatVersion = 1;
/// "DBSR" little-endian.
inline constexpr std::uint32_t kMagic = 0x52534244;
/// Bytes per packed record.
inline constexpr std::size_t kRecordSize = 48;
/// Bytes of the fixed header at offset 0.
inline constexpr std::size_t kHeaderSize = 32;
/// Bytes of the fixed footer at end-of-file.
inline constexpr std::size_t kFooterSize = 64;

/// What one record describes. Values are stable on-disk ids: lifecycle
/// events (from the server's observer paths) live below 16, scheduler
/// decisions (the rms::Decision stream) at 16+kind.
enum class RecordType : std::uint8_t {
  Submit = 0,           ///< qsub accepted; user/cores/walltime in the record
  Start = 1,            ///< job started (aux = wait in us)
  Finish = 2,           ///< job completed (cores = released allocation)
  DynRequest = 3,       ///< tm_dynget arrived (cores = extra asked)
  DynGrant = 4,         ///< request granted by the server (cores = extra)
  DynReject = 5,        ///< request finally rejected
  DynRelease = 6,       ///< application released cores voluntarily
  MalleableShrink = 7,  ///< scheduler-initiated shrink committed
  Requeue = 8,          ///< preemption / failure sent the job back to queued
  NodesLost = 9,        ///< partial allocation lost to a node failure
  Cancel = 10,          ///< qdel (cores = allocation released, 0 if queued)
  DecStartJob = 16,         ///< decision: start a queued job
  DecGrantDyn = 17,         ///< decision: grant a dynamic request
  DecRejectDyn = 18,        ///< decision: reject/defer a dynamic request
  DecPreempt = 19,          ///< decision: preempt a running job
  DecShrinkMalleable = 20,  ///< decision: shrink a malleable job
  DecReserve = 21,          ///< decision: keep a StartLater reservation
};

[[nodiscard]] constexpr bool is_decision(RecordType t) {
  return static_cast<std::uint8_t>(t) >= 16;
}

[[nodiscard]] std::string_view to_string(RecordType t);

/// Record flag bits.
inline constexpr std::uint8_t kFlagBackfilled = 1;  ///< Start/DecStartJob
inline constexpr std::uint8_t kFlagApplied = 2;     ///< decisions
inline constexpr std::uint8_t kFlagDeferred = 4;    ///< DecRejectDyn
inline constexpr std::uint8_t kFlagHasHint = 8;     ///< DecRejectDyn: aux valid

/// Sentinel for "no id" in the 32-bit job/other/request fields.
inline constexpr std::uint32_t kNoId = 0xffffffffu;

/// One decoded record. The meaning of `aux_us` depends on `type`:
/// Start → wait (submit→start) in us; Submit → requested walltime in us;
/// DecReserve → planned start (absolute us); DecRejectDyn → availability
/// hint (absolute us, valid only with kFlagHasHint).
struct PackedRecord {
  std::int64_t t_us = 0;   ///< simulated time of the record
  std::int64_t aux_us = 0;
  std::uint32_t job = kNoId;      ///< the job acted on
  std::uint32_t other = kNoId;    ///< for_job (decisions)
  std::uint32_t request = kNoId;  ///< dynamic request id, if any
  std::int32_t cores = 0;
  std::uint32_t iteration = 0;    ///< scheduler iteration (decisions only)
  std::uint16_t user = 0;         ///< string-table id (Submit)
  std::uint16_t reason = 0;       ///< string-table id (DecRejectDyn)
  RecordType type = RecordType::Submit;
  std::uint8_t flags = 0;

  [[nodiscard]] bool has(std::uint8_t flag) const {
    return (flags & flag) != 0;
  }
};

// --- little-endian scalar helpers -----------------------------------------

template <class T>
inline void store_le(unsigned char* p, T v) {
  static_assert(std::is_integral_v<T> || std::is_enum_v<T>);
  auto u = static_cast<std::uint64_t>(v);
  for (std::size_t i = 0; i < sizeof(T); ++i)
    p[i] = static_cast<unsigned char>((u >> (8 * i)) & 0xff);
}

template <class T>
inline T load_le(const unsigned char* p) {
  std::uint64_t u = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i)
    u |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return static_cast<T>(u);
}

/// Serializes a record into exactly kRecordSize bytes.
inline void encode_record(const PackedRecord& r, unsigned char out[kRecordSize]) {
  store_le<std::int64_t>(out + 0, r.t_us);
  store_le<std::int64_t>(out + 8, r.aux_us);
  store_le<std::uint32_t>(out + 16, r.job);
  store_le<std::uint32_t>(out + 20, r.other);
  store_le<std::uint32_t>(out + 24, r.request);
  store_le<std::int32_t>(out + 28, r.cores);
  store_le<std::uint32_t>(out + 32, r.iteration);
  store_le<std::uint16_t>(out + 36, r.user);
  store_le<std::uint16_t>(out + 38, r.reason);
  out[40] = static_cast<unsigned char>(r.type);
  out[41] = r.flags;
  std::memset(out + 42, 0, kRecordSize - 42);
}

inline PackedRecord decode_record(const unsigned char in[kRecordSize]) {
  PackedRecord r;
  r.t_us = load_le<std::int64_t>(in + 0);
  r.aux_us = load_le<std::int64_t>(in + 8);
  r.job = load_le<std::uint32_t>(in + 16);
  r.other = load_le<std::uint32_t>(in + 20);
  r.request = load_le<std::uint32_t>(in + 24);
  r.cores = load_le<std::int32_t>(in + 28);
  r.iteration = load_le<std::uint32_t>(in + 32);
  r.user = load_le<std::uint16_t>(in + 36);
  r.reason = load_le<std::uint16_t>(in + 38);
  r.type = static_cast<RecordType>(in[40]);
  r.flags = in[41];
  return r;
}

}  // namespace dbs::obs::rec
