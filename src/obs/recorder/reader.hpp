// Random-access reader for flight-recorder files.
//
// open() validates magic/version at both ends of the file, then loads the
// string table, the job-index entry table and the time index into memory —
// O(jobs + strings + buckets), independent of record count. Records and
// posting lists stay on disk and are read on demand:
//
//   for_job(j)        — one hash lookup, one postings seek, k record seeks
//   scan_range(a, b)  — time index gives the start ordinal; reads forward
//   scan_all(fn)      — sequential streaming pass, constant memory
#pragma once

#include <cstdint>
#include <fstream>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/recorder/record.hpp"

namespace dbs::obs::rec {

class RecordReader {
 public:
  RecordReader() = default;

  RecordReader(const RecordReader&) = delete;
  RecordReader& operator=(const RecordReader&) = delete;

  /// Opens and validates `path`. On failure returns false and stores a
  /// human-readable reason in `error()`.
  bool open(const std::string& path);

  [[nodiscard]] bool is_open() const { return in_.is_open(); }
  [[nodiscard]] const std::string& error() const { return error_; }

  [[nodiscard]] std::uint64_t record_count() const { return record_count_; }
  /// Total cluster cores at record time (from the header).
  [[nodiscard]] std::int64_t capacity() const { return capacity_; }
  [[nodiscard]] std::int64_t time_bucket_us() const { return bucket_us_; }
  [[nodiscard]] std::uint64_t indexed_jobs() const {
    return job_index_.size();
  }
  [[nodiscard]] const std::string& string_at(std::uint16_t id) const {
    return id < strings_.size() ? strings_[id] : strings_[0];
  }

  /// Reads the record at `ordinal` (0-based append order).
  [[nodiscard]] PackedRecord at(std::uint64_t ordinal);

  /// All records touching `job`, in append order. O(1) index lookup plus
  /// one seek per posting; empty if the job is unknown.
  [[nodiscard]] std::vector<PackedRecord> for_job(std::uint64_t job);

  /// True if `job` appears in the index (no record reads).
  [[nodiscard]] bool has_job(std::uint64_t job) const {
    return job_index_.find(job) != job_index_.end();
  }

  /// Jobs present in the index, ascending.
  [[nodiscard]] std::vector<std::uint64_t> jobs() const;

  /// Streams records with from_us <= t_us < to_us to `fn`, starting from
  /// the time bucket containing `from_us` (never a full-file scan when
  /// the range starts late). Returns the number of records visited.
  std::uint64_t scan_range(std::int64_t from_us, std::int64_t to_us,
                           const std::function<void(const PackedRecord&)>& fn);

  /// Streams every record in append order.
  std::uint64_t scan_all(const std::function<void(const PackedRecord&)>& fn) {
    return scan_range(std::numeric_limits<std::int64_t>::min(),
                      std::numeric_limits<std::int64_t>::max(), fn);
  }

 private:
  struct JobEntry {
    std::uint64_t postings_start = 0;  ///< offset into the postings array
    std::uint32_t count = 0;
  };

  bool fail(std::string message);
  template <class T>
  [[nodiscard]] T get();

  std::ifstream in_;
  std::string error_;
  std::uint64_t record_count_ = 0;
  std::int64_t capacity_ = 0;
  std::int64_t bucket_us_ = 1;
  std::uint64_t postings_off_ = 0;
  std::int64_t first_bucket_ = 0;
  std::vector<std::string> strings_{""};
  std::unordered_map<std::uint64_t, JobEntry> job_index_;
  std::vector<std::uint64_t> bucket_first_;
};

}  // namespace dbs::obs::rec
