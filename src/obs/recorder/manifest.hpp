// Manifest for multi-replication recordings.
//
// ParallelRunner gives every replication its own recorder (concurrent
// writers to one file would interleave records); the manifest is the
// index-merge artifact tying them back together: a small JSON file next
// to the per-replication record files listing each shard's path, record
// count and time range, written in replication order so tooling can
// iterate shards deterministically.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dbs::obs::rec {

struct ManifestShard {
  std::string path;  ///< record file, relative to the manifest
  std::size_t replication = 0;
  std::uint64_t records = 0;
  std::int64_t first_t_us = 0;
  std::int64_t last_t_us = 0;
};

struct Manifest {
  std::vector<ManifestShard> shards;

  [[nodiscard]] std::uint64_t total_records() const;
  /// Renders the manifest as a stable-key-order JSON document.
  [[nodiscard]] std::string to_json() const;
  /// Writes to_json() to `path`; returns false on I/O error.
  bool write(const std::string& path) const;
};

/// Shard path for replication `index` of a run recording to `base`:
/// base itself for index 0, "<base>.repN" otherwise — a single-replication
/// run records exactly the file the user asked for.
[[nodiscard]] std::string shard_path(const std::string& base,
                                     std::size_t index);

}  // namespace dbs::obs::rec
