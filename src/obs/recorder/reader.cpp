#include "obs/recorder/reader.hpp"

#include <algorithm>
#include <limits>

namespace dbs::obs::rec {

bool RecordReader::fail(std::string message) {
  error_ = std::move(message);
  if (in_.is_open()) in_.close();
  return false;
}

template <class T>
T RecordReader::get() {
  unsigned char tmp[sizeof(T)] = {};
  in_.read(reinterpret_cast<char*>(tmp), sizeof(T));
  return load_le<T>(tmp);
}

bool RecordReader::open(const std::string& path) {
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) return fail("cannot open " + path);
  in_.seekg(0, std::ios::end);
  const auto file_size = static_cast<std::uint64_t>(in_.tellg());
  if (file_size < kHeaderSize + kFooterSize)
    return fail(path + ": truncated (no room for header + footer)");

  in_.seekg(0);
  if (get<std::uint32_t>() != kMagic)
    return fail(path + ": not a flight-recorder file (bad magic)");
  const auto version = get<std::uint32_t>();
  if (version != kFormatVersion)
    return fail(path + ": unsupported format version " +
                std::to_string(version) + " (reader supports " +
                std::to_string(kFormatVersion) + ")");
  if (get<std::uint32_t>() != kRecordSize)
    return fail(path + ": unexpected record size");
  static_cast<void>(get<std::uint32_t>());  // reserved
  capacity_ = get<std::int64_t>();
  bucket_us_ = get<std::int64_t>();
  if (bucket_us_ <= 0) return fail(path + ": invalid time bucket");

  in_.seekg(static_cast<std::streamoff>(file_size - kFooterSize));
  record_count_ = get<std::uint64_t>();
  const auto strings_off = get<std::uint64_t>();
  const auto job_index_off = get<std::uint64_t>();
  postings_off_ = get<std::uint64_t>();
  const auto time_index_off = get<std::uint64_t>();
  const auto job_count = get<std::uint64_t>();
  static_cast<void>(get<std::uint64_t>());  // total postings
  if (get<std::uint32_t>() != kFormatVersion ||
      get<std::uint32_t>() != kMagic)
    return fail(path + ": corrupt footer (run not finalized?)");
  if (strings_off != kHeaderSize + record_count_ * kRecordSize ||
      job_index_off >= file_size || time_index_off >= file_size)
    return fail(path + ": footer offsets out of range");

  in_.seekg(static_cast<std::streamoff>(strings_off));
  const auto string_count = get<std::uint32_t>();
  strings_.clear();
  strings_.reserve(string_count);
  for (std::uint32_t i = 0; i < string_count; ++i) {
    const auto len = get<std::uint16_t>();
    std::string s(len, '\0');
    in_.read(s.data(), len);
    strings_.push_back(std::move(s));
  }
  if (strings_.empty()) strings_.emplace_back();

  in_.seekg(static_cast<std::streamoff>(job_index_off));
  if (get<std::uint32_t>() != job_count)
    return fail(path + ": job index count mismatch");
  job_index_.reserve(job_count);
  for (std::uint64_t i = 0; i < job_count; ++i) {
    const auto job = get<std::uint64_t>();
    JobEntry entry;
    entry.postings_start = get<std::uint64_t>();
    entry.count = get<std::uint32_t>();
    static_cast<void>(get<std::uint32_t>());  // pad
    job_index_.emplace(job, entry);
  }

  in_.seekg(static_cast<std::streamoff>(time_index_off));
  first_bucket_ = get<std::int64_t>();
  const auto bucket_count = get<std::uint32_t>();
  bucket_first_.resize(bucket_count);
  for (std::uint32_t i = 0; i < bucket_count; ++i)
    bucket_first_[i] = get<std::uint64_t>();

  if (!in_.good()) return fail(path + ": read error while loading indexes");
  in_.clear();
  return true;
}

PackedRecord RecordReader::at(std::uint64_t ordinal) {
  unsigned char raw[kRecordSize] = {};
  if (ordinal < record_count_) {
    in_.seekg(static_cast<std::streamoff>(kHeaderSize + ordinal * kRecordSize));
    in_.read(reinterpret_cast<char*>(raw), kRecordSize);
  }
  return decode_record(raw);
}

std::vector<PackedRecord> RecordReader::for_job(std::uint64_t job) {
  std::vector<PackedRecord> records;
  const auto it = job_index_.find(job);
  if (it == job_index_.end()) return records;
  std::vector<std::uint64_t> ordinals(it->second.count);
  in_.seekg(static_cast<std::streamoff>(postings_off_ +
                                        it->second.postings_start * 8));
  for (std::uint64_t& ordinal : ordinals) ordinal = get<std::uint64_t>();
  records.reserve(ordinals.size());
  for (const std::uint64_t ordinal : ordinals) records.push_back(at(ordinal));
  return records;
}

std::vector<std::uint64_t> RecordReader::jobs() const {
  std::vector<std::uint64_t> out;
  out.reserve(job_index_.size());
  for (const auto& [job, entry] : job_index_) out.push_back(job);
  std::sort(out.begin(), out.end());
  return out;
}

std::uint64_t RecordReader::scan_range(
    std::int64_t from_us, std::int64_t to_us,
    const std::function<void(const PackedRecord&)>& fn) {
  if (record_count_ == 0 || from_us >= to_us) return 0;
  std::uint64_t start = 0;
  if (!bucket_first_.empty() && from_us > std::numeric_limits<std::int64_t>::min()) {
    const std::int64_t bucket = from_us / bucket_us_ - first_bucket_;
    if (bucket >= static_cast<std::int64_t>(bucket_first_.size())) return 0;
    if (bucket > 0) start = bucket_first_[static_cast<std::size_t>(bucket)];
  }
  std::uint64_t visited = 0;
  in_.seekg(static_cast<std::streamoff>(kHeaderSize + start * kRecordSize));
  unsigned char raw[kRecordSize];
  for (std::uint64_t ordinal = start; ordinal < record_count_; ++ordinal) {
    in_.read(reinterpret_cast<char*>(raw), kRecordSize);
    const PackedRecord r = decode_record(raw);
    if (r.t_us >= to_us) break;  // timestamps are nondecreasing
    if (r.t_us >= from_us) {
      fn(r);
      ++visited;
    }
  }
  return visited;
}

}  // namespace dbs::obs::rec
