#include "obs/recorder/manifest.hpp"

#include <fstream>
#include <sstream>

#include "obs/json.hpp"

namespace dbs::obs::rec {

std::uint64_t Manifest::total_records() const {
  std::uint64_t total = 0;
  for (const ManifestShard& shard : shards) total += shard.records;
  return total;
}

std::string Manifest::to_json() const {
  std::ostringstream os;
  os << "{\n  \"shards\": [";
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const ManifestShard& s = shards[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"path\": " << json_quote(s.path)
       << ", \"replication\": " << s.replication
       << ", \"records\": " << s.records
       << ", \"first_t_us\": " << s.first_t_us
       << ", \"last_t_us\": " << s.last_t_us << "}";
  }
  os << (shards.empty() ? "]" : "\n  ]") << ",\n  \"total_records\": "
     << total_records() << "\n}\n";
  return os.str();
}

bool Manifest::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out.is_open()) return false;
  out << to_json();
  return out.good();
}

std::string shard_path(const std::string& base, std::size_t index) {
  if (index == 0) return base;
  return base + ".rep" + std::to_string(index);
}

}  // namespace dbs::obs::rec
