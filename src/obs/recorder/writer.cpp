#include "obs/recorder/writer.hpp"

#include <cassert>

namespace dbs::obs::rec {
namespace {

/// Flush the append buffer once it holds this many bytes.
constexpr std::size_t kBufferLimit = 256 * 1024;

}  // namespace

std::string_view to_string(RecordType t) {
  switch (t) {
    case RecordType::Submit: return "submit";
    case RecordType::Start: return "start";
    case RecordType::Finish: return "finish";
    case RecordType::DynRequest: return "dyn_request";
    case RecordType::DynGrant: return "dyn_grant";
    case RecordType::DynReject: return "dyn_reject";
    case RecordType::DynRelease: return "dyn_release";
    case RecordType::MalleableShrink: return "malleable_shrink";
    case RecordType::Requeue: return "requeue";
    case RecordType::NodesLost: return "nodes_lost";
    case RecordType::Cancel: return "cancel";
    case RecordType::DecStartJob: return "dec_start_job";
    case RecordType::DecGrantDyn: return "dec_grant_dyn";
    case RecordType::DecRejectDyn: return "dec_reject_dyn";
    case RecordType::DecPreempt: return "dec_preempt";
    case RecordType::DecShrinkMalleable: return "dec_shrink_malleable";
    case RecordType::DecReserve: return "dec_reserve";
  }
  return "unknown";
}

RecordWriter::~RecordWriter() { finalize(); }

template <class T>
void RecordWriter::put(T v) {
  unsigned char tmp[sizeof(T)];
  store_le<T>(tmp, v);
  buffer_.insert(buffer_.end(), tmp, tmp + sizeof(T));
}

bool RecordWriter::open(const std::string& path, std::int64_t capacity,
                        std::int64_t time_bucket_us) {
  assert(!out_.is_open());
  assert(time_bucket_us > 0);
  out_.open(path, std::ios::binary | std::ios::trunc);
  if (!out_.is_open()) return false;
  path_ = path;
  bucket_us_ = time_bucket_us;
  buffer_.reserve(kBufferLimit + kRecordSize);
  strings_ = {""};
  string_ids_ = {{"", 0}};

  put<std::uint32_t>(kMagic);
  put<std::uint32_t>(kFormatVersion);
  put<std::uint32_t>(static_cast<std::uint32_t>(kRecordSize));
  put<std::uint32_t>(0);  // reserved
  put<std::int64_t>(capacity);
  put<std::int64_t>(bucket_us_);
  assert(buffer_.size() == kHeaderSize);
  return true;
}

std::uint16_t RecordWriter::intern(std::string_view s) {
  if (s.empty()) return 0;
  const auto it = string_ids_.find(std::string(s));
  if (it != string_ids_.end()) return it->second;
  if (strings_.size() > 0xffff) return 0;  // table full; degrade to ""
  const auto id = static_cast<std::uint16_t>(strings_.size());
  strings_.emplace_back(s);
  string_ids_.emplace(strings_.back(), id);
  return id;
}

void RecordWriter::append(const PackedRecord& r) {
  if (!out_.is_open()) return;
  PackedRecord rec = r;
  // The time index assumes nondecreasing timestamps; clamp stragglers
  // into the current bucket instead of corrupting the bucket boundaries.
  if (any_record_ && rec.t_us < max_t_us_) rec.t_us = max_t_us_;

  if (!any_record_) {
    any_record_ = true;
    first_t_us_ = rec.t_us;
    first_bucket_ = rec.t_us / bucket_us_;
    bucket_first_.push_back(count_);
  }
  max_t_us_ = rec.t_us;
  const std::int64_t bucket = rec.t_us / bucket_us_ - first_bucket_;
  // Every bucket up to the record's maps to this ordinal as its first: an
  // empty bucket's scan starts at the next record past it.
  while (static_cast<std::int64_t>(bucket_first_.size()) <= bucket)
    bucket_first_.push_back(count_);

  if (rec.job != kNoId) postings_[rec.job].push_back(count_);
  // A decision also belongs to the job it frees cores for.
  if (rec.other != kNoId && rec.other != rec.job)
    postings_[rec.other].push_back(count_);

  unsigned char encoded[kRecordSize];
  encode_record(rec, encoded);
  buffer_.insert(buffer_.end(), encoded, encoded + kRecordSize);
  ++count_;
  if (buffer_.size() >= kBufferLimit) flush_buffer();
}

void RecordWriter::flush_buffer() {
  if (!buffer_.empty()) {
    out_.write(reinterpret_cast<const char*>(buffer_.data()),
               static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

bool RecordWriter::finalize() {
  if (!out_.is_open()) return false;
  flush_buffer();

  // String table: count, then (len, bytes) per string.
  const auto strings_off =
      kHeaderSize + static_cast<std::uint64_t>(count_) * kRecordSize;
  put<std::uint32_t>(static_cast<std::uint32_t>(strings_.size()));
  for (const std::string& s : strings_) {
    put<std::uint16_t>(static_cast<std::uint16_t>(s.size()));
    buffer_.insert(buffer_.end(), s.begin(), s.end());
  }
  flush_buffer();

  // Job index: entry table (sorted by job — std::map iterates in order)
  // followed by the concatenated posting lists it points into.
  const auto job_index_off = static_cast<std::uint64_t>(out_.tellp());
  put<std::uint32_t>(static_cast<std::uint32_t>(postings_.size()));
  std::uint64_t postings_cursor = 0;
  std::uint64_t total_postings = 0;
  for (const auto& [job, ordinals] : postings_) {
    put<std::uint64_t>(job);
    put<std::uint64_t>(postings_cursor);
    put<std::uint32_t>(static_cast<std::uint32_t>(ordinals.size()));
    put<std::uint32_t>(0);  // pad to 24 bytes/entry
    postings_cursor += ordinals.size();
    total_postings += ordinals.size();
  }
  flush_buffer();
  const auto postings_off = static_cast<std::uint64_t>(out_.tellp());
  for (const auto& [job, ordinals] : postings_) {
    for (const std::uint64_t ordinal : ordinals) put<std::uint64_t>(ordinal);
    if (buffer_.size() >= kBufferLimit) flush_buffer();
  }
  flush_buffer();

  // Time index: first bucket number, then first-ordinal per bucket.
  const auto time_index_off = static_cast<std::uint64_t>(out_.tellp());
  put<std::int64_t>(first_bucket_);
  put<std::uint32_t>(static_cast<std::uint32_t>(bucket_first_.size()));
  for (const std::uint64_t first : bucket_first_) put<std::uint64_t>(first);
  flush_buffer();

  put<std::uint64_t>(count_);
  put<std::uint64_t>(strings_off);
  put<std::uint64_t>(job_index_off);
  put<std::uint64_t>(postings_off);
  put<std::uint64_t>(time_index_off);
  put<std::uint64_t>(postings_.size());
  put<std::uint64_t>(total_postings);
  put<std::uint32_t>(kFormatVersion);
  put<std::uint32_t>(kMagic);
  assert(buffer_.size() == kFooterSize);
  flush_buffer();

  const bool ok = out_.good();
  out_.close();
  postings_.clear();
  string_ids_.clear();
  strings_.clear();
  bucket_first_.clear();
  return ok;
}

}  // namespace dbs::obs::rec
