// Streaming writer for flight-recorder files.
//
// append() buffers packed records and tracks, in memory, only what the
// sidecar indexes need: the string intern table, per-job posting lists
// (record ordinals) and the first ordinal of each time bucket. finalize()
// appends the three index sections plus the footer and closes the file.
// Memory is O(jobs + distinct strings + buckets), never O(records).
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/recorder/record.hpp"

namespace dbs::obs::rec {

class RecordWriter {
 public:
  RecordWriter() = default;
  ~RecordWriter();

  RecordWriter(const RecordWriter&) = delete;
  RecordWriter& operator=(const RecordWriter&) = delete;

  /// Creates `path` (truncating) and writes the fixed header. `capacity`
  /// is the cluster's total core count (stored for utilization curves);
  /// `time_bucket_us` is the index granularity. Returns false if the file
  /// cannot be created (writer stays disabled).
  bool open(const std::string& path, std::int64_t capacity,
            std::int64_t time_bucket_us = 60'000'000);

  [[nodiscard]] bool is_open() const { return out_.is_open(); }

  /// Interns `s` into the string table; returns its stable 16-bit id.
  /// Id 0 is the empty string. Saturates: after 65535 distinct strings,
  /// new ones map to id 0 rather than corrupting the table.
  std::uint16_t intern(std::string_view s);

  /// Appends one record. Records must arrive in nondecreasing `t_us`
  /// order for the time index to be exact; an out-of-order timestamp is
  /// clamped into the current bucket (the scan then over-reads slightly,
  /// it never misses records).
  void append(const PackedRecord& r);

  /// Writes the string table, job index, time index and footer, then
  /// closes the file. Returns false on a write error. Idempotent.
  bool finalize();

  [[nodiscard]] std::uint64_t records_written() const { return count_; }
  [[nodiscard]] const std::string& path() const { return path_; }
  /// Timestamps of the first/last record appended (0 while empty).
  [[nodiscard]] std::int64_t first_t_us() const { return first_t_us_; }
  [[nodiscard]] std::int64_t last_t_us() const { return max_t_us_; }

 private:
  void flush_buffer();
  template <class T>
  void put(T v);

  std::ofstream out_;
  std::string path_;
  std::vector<unsigned char> buffer_;
  std::uint64_t count_ = 0;
  std::int64_t bucket_us_ = 0;
  std::int64_t first_t_us_ = 0;
  std::int64_t max_t_us_ = 0;
  bool any_record_ = false;

  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::uint16_t> string_ids_;
  /// job id -> ordinals of records touching it (ordered map so the index
  /// section is written sorted by job without a separate sort pass).
  std::map<std::uint64_t, std::vector<std::uint64_t>> postings_;
  std::int64_t first_bucket_ = 0;
  std::vector<std::uint64_t> bucket_first_;  ///< first ordinal per bucket
};

}  // namespace dbs::obs::rec
