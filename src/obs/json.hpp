// Tiny JSON formatting helpers shared by the tracer and the metrics
// registry. Emission only — the observability layer never parses JSON.
#pragma once

#include <string>
#include <string_view>

namespace dbs::obs {

/// Escapes and double-quotes `s` per RFC 8259.
[[nodiscard]] std::string json_quote(std::string_view s);

/// Formats a double as a valid JSON number (integers without a trailing
/// ".0"; non-finite values become null, which JSON cannot represent).
[[nodiscard]] std::string json_number(double v);

}  // namespace dbs::obs
