// Structured event tracer for the scheduler and the RMS layer.
//
// Components publish TraceEvents (a timestamp, a category, a name and a
// flat list of typed fields) to one Tracer; the tracer streams them to the
// attached sink in either JSONL (one JSON object per line, grep-friendly)
// or Chrome trace-event format (loadable in chrome://tracing / Perfetto).
//
// Discipline for emission sites (same as DBS_LOG): check `enabled()` —
// via the DBS_TRACE_EVENT macro — *before* building the event, so a
// detached tracer costs one pointer test and nothing else:
//
//   DBS_TRACE_EVENT(tracer_, obs::TraceEvent(tracer_->now(), "sched",
//                   "dyn_grant")
//                       .field("job", job.id().value())
//                       .field_json("delays", delays_json));
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/time.hpp"

namespace dbs::obs {

/// One key/value pair attached to an event. Values are typed so sinks can
/// emit proper JSON numbers/booleans; Json carries a preformatted JSON
/// fragment (e.g. a nested array of per-job delays) verbatim.
struct TraceField {
  enum class Kind { Int, Double, Bool, Str, Json };
  std::string key;
  Kind kind = Kind::Int;
  std::int64_t i = 0;
  double d = 0.0;
  bool b = false;
  std::string s;
};

struct TraceEvent {
  TraceEvent(Time at_, std::string_view cat_, std::string_view name_)
      : at(at_), cat(cat_), name(name_) {}

  Time at;                ///< simulated time of the event
  std::string_view cat;   ///< component ("sched", "dfs", "rms", "mom", ...)
  std::string_view name;  ///< event type within the category
  /// Simulated duration for span events (< 0: instantaneous).
  std::int64_t dur_us = -1;
  std::vector<TraceField> fields;

  TraceEvent& field(std::string key, std::int64_t v) &;
  /// Any other integer type narrows/widens to int64.
  template <class T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  TraceEvent& field(std::string key, T v) & {
    return field(std::move(key), static_cast<std::int64_t>(v));
  }
  TraceEvent& field(std::string key, double v) &;
  TraceEvent& field(std::string key, bool v) &;
  TraceEvent& field(std::string key, std::string_view v) &;
  /// Without this overload a string literal would convert to bool (a
  /// standard conversion) rather than string_view (user-defined).
  TraceEvent& field(std::string key, const char* v) & {
    return field(std::move(key), std::string_view(v));
  }
  /// Attaches a preformatted JSON fragment (array/object) verbatim.
  TraceEvent& field_json(std::string key, std::string json) &;
  TraceEvent& duration(Duration d) &;

  // rvalue overloads so the builder chain works on temporaries.
  template <class T>
  TraceEvent&& field(std::string key, T v) && {
    field(std::move(key), v);
    return std::move(*this);
  }
  TraceEvent&& field_json(std::string key, std::string json) && {
    field_json(std::move(key), std::move(json));
    return std::move(*this);
  }
  TraceEvent&& duration(Duration d) && {
    duration(d);
    return std::move(*this);
  }
};

enum class TraceFormat { Jsonl, Chrome };

/// Parses "jsonl"/"chrome"; returns false on anything else.
bool parse_trace_format(std::string_view text, TraceFormat& out);

class Tracer {
 public:
  Tracer() = default;
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens `path` and attaches it as the sink. Returns false if the file
  /// cannot be created (tracer stays disabled).
  bool open(const std::string& path, TraceFormat format);

  /// Attaches a caller-owned stream (tests). The stream must outlive the
  /// tracer or a close() call.
  void attach_stream(std::ostream& os, TraceFormat format);

  /// Flushes and finalizes the sink (closes the Chrome JSON array).
  /// Harmless if nothing is attached.
  void close();

  /// Drains the internal event buffer to the sink and syncs it. Events
  /// are buffered (not one stream write per event) so multi-million-event
  /// traces don't pay a syscall each; call this at quiescent points
  /// (simulation end, recorder finalize) to make the trace durable
  /// without closing the sink. Harmless if nothing is attached.
  void flush();

  /// True while a sink is attached — the emission guard.
  [[nodiscard]] bool enabled() const { return out_ != nullptr; }

  /// Simulated-clock source for `now()`; wired by the owning system.
  void set_clock(std::function<Time()> clock) { clock_ = std::move(clock); }
  [[nodiscard]] Time now() const {
    return clock_ ? clock_() : Time::epoch();
  }

  void emit(const TraceEvent& ev);

  [[nodiscard]] std::uint64_t events_emitted() const { return emitted_; }

 private:
  void write_jsonl(const TraceEvent& ev);
  void write_chrome(const TraceEvent& ev);
  void close_locked();
  /// Moves the buffer's contents to the sink; `sync` also flushes the
  /// underlying stream. Caller holds emit_mutex_.
  void drain_locked(bool sync);

  /// Serializes emit()/close() across threads: concurrent emitters write
  /// whole events, never interleaved fragments. enabled() stays a plain
  /// read — sinks are attached before, and detached after, any parallel
  /// region.
  std::mutex emit_mutex_;
  std::ostream* out_ = nullptr;       ///< active sink (owned_ or external)
  std::unique_ptr<std::ostream> owned_;
  std::string buffer_;                ///< pending bytes not yet in out_
  TraceFormat format_ = TraceFormat::Jsonl;
  std::function<Time()> clock_;
  std::uint64_t emitted_ = 0;
  bool chrome_open_ = false;  ///< Chrome array header written, "]" pending
};

}  // namespace dbs::obs

/// Emission guard: evaluates the event expression only when `tracer_ptr`
/// is attached to a sink, mirroring DBS_LOG's level check.
#define DBS_TRACE_EVENT(tracer_ptr, ...)                          \
  do {                                                            \
    ::dbs::obs::Tracer* dbs_tr_ = (tracer_ptr);                   \
    if (dbs_tr_ != nullptr && dbs_tr_->enabled())                 \
      dbs_tr_->emit(__VA_ARGS__);                                 \
  } while (0)
