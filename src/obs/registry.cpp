#include "obs/registry.hpp"

#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace dbs::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  DBS_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    DBS_REQUIRE(bounds_[i - 1] < bounds_[i],
                "histogram bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  // Lower_bound over the sorted bounds: first bucket whose `le` >= v.
  std::size_t lo = 0, hi = bounds_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (bounds_[mid] < v)
      lo = mid + 1;
    else
      hi = mid;
  }
  ++buckets_[lo];
  ++count_;
  sum_ += v;
}

Counter& Registry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) { return gauges_[name]; }

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(upper_bounds)))
      .first->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::write_json(std::ostream& os) const {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": "
       << c.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": "
       << json_number(g.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    os << (first ? "\n" : ",\n") << "    " << json_quote(name)
       << ": {\"count\": " << h.count()
       << ", \"sum\": " << json_number(h.sum()) << ", \"buckets\": [";
    const auto& bounds = h.upper_bounds();
    const auto& counts = h.bucket_counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": "
         << (i < bounds.size() ? json_number(bounds[i])
                               : std::string("\"+inf\""))
         << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool Registry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

void Registry::reset() {
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::global() {
  static Registry g;
  return g;
}

}  // namespace dbs::obs
