#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/assert.hpp"
#include "obs/json.hpp"

namespace dbs::obs {

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  DBS_REQUIRE(!bounds_.empty(), "histogram needs at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i)
    DBS_REQUIRE(bounds_[i - 1] < bounds_[i],
                "histogram bounds must be strictly increasing");
}

void Histogram::observe(double v) {
  // Lower_bound over the sorted bounds: first bucket whose `le` >= v.
  std::size_t lo = 0, hi = bounds_.size();
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (bounds_[mid] < v)
      lo = mid + 1;
    else
      hi = mid;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  ++buckets_[lo];
  ++count_;
  sum_ += v;
}

std::uint64_t Histogram::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return count_;
}

double Histogram::sum() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sum_;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_;
}

void Histogram::merge_from(const Histogram& other) {
  DBS_REQUIRE(other.bounds_ == bounds_,
              "histogram merge requires identical bucket bounds");
  std::uint64_t other_count;
  double other_sum;
  std::vector<std::uint64_t> other_buckets;
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    other_count = other.count_;
    other_sum = other.sum_;
    other_buckets = other.buckets_;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other_buckets[i];
  count_ += other_count;
  sum_ += other_sum;
}

double histogram_quantile(const std::vector<double>& upper_bounds,
                          const std::vector<std::uint64_t>& bucket_counts,
                          double q) {
  DBS_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  std::uint64_t total = 0;
  for (const std::uint64_t c : bucket_counts) total += c;
  if (total == 0 || upper_bounds.empty()) return 0.0;
  // The q-th observation by rank (1-based); q=0 maps to the first.
  const double rank = std::max(1.0, q * static_cast<double>(total));
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    if (bucket_counts[i] == 0) continue;
    const std::uint64_t upto = below + bucket_counts[i];
    if (static_cast<double>(upto) >= rank) {
      if (i >= upper_bounds.size()) return upper_bounds.back();  // +inf
      const double lower =
          i == 0 ? std::min(0.0, upper_bounds[0]) : upper_bounds[i - 1];
      const double fraction = (rank - static_cast<double>(below)) /
                              static_cast<double>(bucket_counts[i]);
      return lower + (upper_bounds[i] - lower) * fraction;
    }
    below = upto;
  }
  return upper_bounds.back();
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_[name];
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  return gauges_[name];
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> upper_bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(name, std::move(upper_bounds)).first->second;
}

const Counter* Registry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* Registry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* Registry::find_histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void Registry::write_json(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mutex_);
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    os << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": "
       << c.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : gauges_) {
    os << (first ? "\n" : ",\n") << "    " << json_quote(name) << ": "
       << json_number(g.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : histograms_) {
    const auto& bounds = h.upper_bounds();
    const std::vector<std::uint64_t> counts = h.bucket_counts();
    os << (first ? "\n" : ",\n") << "    " << json_quote(name)
       << ": {\"count\": " << h.count()
       << ", \"sum\": " << json_number(h.sum())
       << ", \"p50\": " << json_number(histogram_quantile(bounds, counts, 0.5))
       << ", \"p95\": " << json_number(histogram_quantile(bounds, counts, 0.95))
       << ", \"p99\": " << json_number(histogram_quantile(bounds, counts, 0.99))
       << ", \"buckets\": [";
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) os << ", ";
      os << "{\"le\": "
         << (i < bounds.size() ? json_number(bounds[i])
                               : std::string("\"+inf\""))
         << ", \"count\": " << counts[i] << "}";
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string Registry::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

bool Registry::write_json_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  write_json(out);
  return static_cast<bool>(out);
}

void Registry::merge_from(const Registry& other) {
  DBS_REQUIRE(&other != this, "cannot merge a registry into itself");
  std::scoped_lock lock(mutex_, other.mutex_);
  for (const auto& [name, c] : other.counters_)
    counters_[name].add(c.value());
  for (const auto& [name, g] : other.gauges_) gauges_[name].set(g.value());
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end())
      it = histograms_.try_emplace(name, h.upper_bounds()).first;
    it->second.merge_from(h);
  }
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Registry& Registry::global() {
  static Registry g;
  return g;
}

}  // namespace dbs::obs
