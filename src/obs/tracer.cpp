#include "obs/tracer.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"

namespace dbs::obs {

TraceEvent& TraceEvent::field(std::string key, std::int64_t v) & {
  fields.push_back({std::move(key), TraceField::Kind::Int, v, 0.0, false, {}});
  return *this;
}

TraceEvent& TraceEvent::field(std::string key, double v) & {
  fields.push_back(
      {std::move(key), TraceField::Kind::Double, 0, v, false, {}});
  return *this;
}

TraceEvent& TraceEvent::field(std::string key, bool v) & {
  fields.push_back({std::move(key), TraceField::Kind::Bool, 0, 0.0, v, {}});
  return *this;
}

TraceEvent& TraceEvent::field(std::string key, std::string_view v) & {
  fields.push_back({std::move(key), TraceField::Kind::Str, 0, 0.0, false,
                    std::string(v)});
  return *this;
}

TraceEvent& TraceEvent::field_json(std::string key, std::string json) & {
  fields.push_back({std::move(key), TraceField::Kind::Json, 0, 0.0, false,
                    std::move(json)});
  return *this;
}

TraceEvent& TraceEvent::duration(Duration d) & {
  dur_us = d.as_micros() < 0 ? 0 : d.as_micros();
  return *this;
}

bool parse_trace_format(std::string_view text, TraceFormat& out) {
  if (text == "jsonl") {
    out = TraceFormat::Jsonl;
    return true;
  }
  if (text == "chrome") {
    out = TraceFormat::Chrome;
    return true;
  }
  return false;
}

Tracer::~Tracer() { close(); }

bool Tracer::open(const std::string& path, TraceFormat format) {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  close_locked();
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) return false;
  owned_ = std::move(file);
  out_ = owned_.get();
  format_ = format;
  return true;
}

void Tracer::attach_stream(std::ostream& os, TraceFormat format) {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  close_locked();
  out_ = &os;
  format_ = format;
}

void Tracer::close() {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  close_locked();
}

void Tracer::flush() {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  drain_locked(/*sync=*/true);
}

void Tracer::drain_locked(bool sync) {
  if (out_ == nullptr) return;
  if (!buffer_.empty()) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  if (sync) out_->flush();
}

void Tracer::close_locked() {
  if (out_ != nullptr && format_ == TraceFormat::Chrome && chrome_open_)
    buffer_ += "\n]}\n";
  drain_locked(/*sync=*/true);
  buffer_.clear();  // drop pending bytes of a never-attached sink
  chrome_open_ = false;
  out_ = nullptr;
  owned_.reset();
}

namespace {

/// Events are serialized into the in-memory buffer, not the stream: one
/// stream write per ~256 KiB instead of one per event.
constexpr std::size_t kFlushBytes = 256 * 1024;

void append_field_value(std::string& out, const TraceField& f) {
  switch (f.kind) {
    case TraceField::Kind::Int: out += std::to_string(f.i); break;
    case TraceField::Kind::Double: out += json_number(f.d); break;
    case TraceField::Kind::Bool: out += f.b ? "true" : "false"; break;
    case TraceField::Kind::Str: out += json_quote(f.s); break;
    case TraceField::Kind::Json: out += f.s; break;
  }
}

}  // namespace

void Tracer::emit(const TraceEvent& ev) {
  // Serializes concurrent emitters (parallel replications sharing one
  // sink): each event is written as one atomic line, never interleaved.
  // Cross-thread event *order* is whatever the interleaving produced —
  // deterministic traces additionally require the callers' ordered
  // reduction (see MauiScheduler's speculative measurement).
  std::lock_guard<std::mutex> lock(emit_mutex_);
  if (out_ == nullptr) return;
  if (format_ == TraceFormat::Jsonl)
    write_jsonl(ev);
  else
    write_chrome(ev);
  ++emitted_;
  if (buffer_.size() >= kFlushBytes) drain_locked(/*sync=*/false);
}

void Tracer::write_jsonl(const TraceEvent& ev) {
  std::string& out = buffer_;
  out += "{\"t_us\": ";
  out += std::to_string(ev.at.as_micros());
  out += ", \"cat\": ";
  out += json_quote(ev.cat);
  out += ", \"name\": ";
  out += json_quote(ev.name);
  if (ev.dur_us >= 0) {
    out += ", \"dur_us\": ";
    out += std::to_string(ev.dur_us);
  }
  for (const TraceField& f : ev.fields) {
    out += ", ";
    out += json_quote(f.key);
    out += ": ";
    append_field_value(out, f);
  }
  out += "}\n";
}

void Tracer::write_chrome(const TraceEvent& ev) {
  std::string& out = buffer_;
  if (!chrome_open_) {
    out += "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    chrome_open_ = true;
  } else {
    out += ",";
  }
  // Instant events use phase "i" (global scope), spans the complete phase
  // "X" with a duration. One process/thread: the simulation is serial.
  out += "\n{\"name\": ";
  out += json_quote(ev.name);
  out += ", \"cat\": ";
  out += json_quote(ev.cat);
  out += ", \"ph\": ";
  out += ev.dur_us >= 0 ? "\"X\"" : "\"i\"";
  out += ", \"ts\": ";
  out += std::to_string(ev.at.as_micros());
  out += ", \"pid\": 1, \"tid\": 1";
  if (ev.dur_us >= 0) {
    out += ", \"dur\": ";
    out += std::to_string(ev.dur_us);
  } else {
    out += ", \"s\": \"g\"";
  }
  out += ", \"args\": {";
  bool first = true;
  for (const TraceField& f : ev.fields) {
    if (!first) out += ", ";
    out += json_quote(f.key);
    out += ": ";
    append_field_value(out, f);
    first = false;
  }
  out += "}}";
}

}  // namespace dbs::obs
