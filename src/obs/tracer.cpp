#include "obs/tracer.hpp"

#include <fstream>
#include <ostream>

#include "obs/json.hpp"

namespace dbs::obs {

TraceEvent& TraceEvent::field(std::string key, std::int64_t v) & {
  fields.push_back({std::move(key), TraceField::Kind::Int, v, 0.0, false, {}});
  return *this;
}

TraceEvent& TraceEvent::field(std::string key, double v) & {
  fields.push_back(
      {std::move(key), TraceField::Kind::Double, 0, v, false, {}});
  return *this;
}

TraceEvent& TraceEvent::field(std::string key, bool v) & {
  fields.push_back({std::move(key), TraceField::Kind::Bool, 0, 0.0, v, {}});
  return *this;
}

TraceEvent& TraceEvent::field(std::string key, std::string_view v) & {
  fields.push_back({std::move(key), TraceField::Kind::Str, 0, 0.0, false,
                    std::string(v)});
  return *this;
}

TraceEvent& TraceEvent::field_json(std::string key, std::string json) & {
  fields.push_back({std::move(key), TraceField::Kind::Json, 0, 0.0, false,
                    std::move(json)});
  return *this;
}

TraceEvent& TraceEvent::duration(Duration d) & {
  dur_us = d.as_micros() < 0 ? 0 : d.as_micros();
  return *this;
}

bool parse_trace_format(std::string_view text, TraceFormat& out) {
  if (text == "jsonl") {
    out = TraceFormat::Jsonl;
    return true;
  }
  if (text == "chrome") {
    out = TraceFormat::Chrome;
    return true;
  }
  return false;
}

Tracer::~Tracer() { close(); }

bool Tracer::open(const std::string& path, TraceFormat format) {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  close_locked();
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file) return false;
  owned_ = std::move(file);
  out_ = owned_.get();
  format_ = format;
  return true;
}

void Tracer::attach_stream(std::ostream& os, TraceFormat format) {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  close_locked();
  out_ = &os;
  format_ = format;
}

void Tracer::close() {
  std::lock_guard<std::mutex> lock(emit_mutex_);
  close_locked();
}

void Tracer::close_locked() {
  if (out_ != nullptr && format_ == TraceFormat::Chrome && chrome_open_)
    *out_ << "\n]}\n";
  if (out_ != nullptr) out_->flush();
  chrome_open_ = false;
  out_ = nullptr;
  owned_.reset();
}

namespace {

void write_field_value(std::ostream& os, const TraceField& f) {
  switch (f.kind) {
    case TraceField::Kind::Int: os << f.i; break;
    case TraceField::Kind::Double: os << json_number(f.d); break;
    case TraceField::Kind::Bool: os << (f.b ? "true" : "false"); break;
    case TraceField::Kind::Str: os << json_quote(f.s); break;
    case TraceField::Kind::Json: os << f.s; break;
  }
}

}  // namespace

void Tracer::emit(const TraceEvent& ev) {
  // Serializes concurrent emitters (parallel replications sharing one
  // sink): each event is written as one atomic line, never interleaved.
  // Cross-thread event *order* is whatever the interleaving produced —
  // deterministic traces additionally require the callers' ordered
  // reduction (see MauiScheduler's speculative measurement).
  std::lock_guard<std::mutex> lock(emit_mutex_);
  if (out_ == nullptr) return;
  if (format_ == TraceFormat::Jsonl)
    write_jsonl(ev);
  else
    write_chrome(ev);
  ++emitted_;
}

void Tracer::write_jsonl(const TraceEvent& ev) {
  std::ostream& os = *out_;
  os << "{\"t_us\": " << ev.at.as_micros() << ", \"cat\": "
     << json_quote(ev.cat) << ", \"name\": " << json_quote(ev.name);
  if (ev.dur_us >= 0) os << ", \"dur_us\": " << ev.dur_us;
  for (const TraceField& f : ev.fields) {
    os << ", " << json_quote(f.key) << ": ";
    write_field_value(os, f);
  }
  os << "}\n";
}

void Tracer::write_chrome(const TraceEvent& ev) {
  std::ostream& os = *out_;
  if (!chrome_open_) {
    os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    chrome_open_ = true;
  } else {
    os << ",";
  }
  // Instant events use phase "i" (global scope), spans the complete phase
  // "X" with a duration. One process/thread: the simulation is serial.
  os << "\n{\"name\": " << json_quote(ev.name) << ", \"cat\": "
     << json_quote(ev.cat) << ", \"ph\": " << (ev.dur_us >= 0 ? "\"X\"" : "\"i\"")
     << ", \"ts\": " << ev.at.as_micros() << ", \"pid\": 1, \"tid\": 1";
  if (ev.dur_us >= 0)
    os << ", \"dur\": " << ev.dur_us;
  else
    os << ", \"s\": \"g\"";
  os << ", \"args\": {";
  bool first = true;
  for (const TraceField& f : ev.fields) {
    os << (first ? "" : ", ") << json_quote(f.key) << ": ";
    write_field_value(os, f);
    first = false;
  }
  os << "}}";
}

}  // namespace dbs::obs
