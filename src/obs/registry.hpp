// Run-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with a JSON snapshot exporter. Instruments register lazily by
// name; references handed out stay valid for the registry's lifetime
// (node-based map storage). Single-threaded like the simulator itself —
// increments are plain integer adds, so instrumentation stays cheap enough
// for the scheduler hot path.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dbs::obs {

/// Monotonically increasing count (events, decisions, protocol steps).
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (queue length, free cores).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. Buckets are cumulative-style on export
/// (Prometheus-like `le` upper bounds) but stored as disjoint counts; an
/// implicit +inf bucket catches everything above the last bound.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Disjoint per-bucket counts; size == upper_bounds().size() + 1, the
  /// last entry being the +inf bucket.
  [[nodiscard]] const std::vector<std::uint64_t>& bucket_counts() const {
    return buckets_;
  }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class Registry {
 public:
  /// Finds or creates the named instrument. References remain valid until
  /// reset()/destruction.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is used only on first registration; later calls with
  /// the same name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Deterministic (name-sorted) JSON snapshot of every instrument.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
  /// Writes the snapshot to a file; returns false if it cannot be opened.
  bool write_json_file(const std::string& path) const;

  /// Drops every instrument (invalidates previously returned references).
  void reset();

  /// The process-wide default registry all components record into unless
  /// explicitly given another one.
  static Registry& global();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dbs::obs
