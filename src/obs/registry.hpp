// Run-wide metrics registry: named counters, gauges and fixed-bucket
// histograms with a JSON snapshot exporter. Instruments register lazily by
// name; references handed out stay valid for the registry's lifetime
// (node-based map storage).
//
// Concurrency: instruments are safe for concurrent writers — counters and
// gauges are relaxed atomics, histograms take a per-histogram mutex, and
// the name→instrument maps are guarded by a registry mutex — so isolated
// per-replication systems may share the global registry, and the parallel
// experiment runner can merge per-replication registries without torn
// state. Counter/gauge updates stay a single atomic add/store, cheap
// enough for the scheduler hot path. Snapshots taken while writers are
// active are internally consistent per instrument, not across instruments;
// deterministic output requires quiescence (which the batch layer's
// index-ordered merge provides).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace dbs::obs {

/// Monotonically increasing count (events, decisions, protocol steps).
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value (queue length, free cores).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram. Buckets are cumulative-style on export
/// (Prometheus-like `le` upper bounds) but stored as disjoint counts; an
/// implicit +inf bucket catches everything above the last bound.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Disjoint per-bucket counts; size == upper_bounds().size() + 1, the
  /// last entry being the +inf bucket. Copied under the histogram lock.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  /// Folds another histogram (same bounds) into this one: bucket counts
  /// and totals add. The sum accumulates `other.sum()` as one addition, so
  /// merging per-replication histograms in a fixed order is deterministic.
  void merge_from(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  mutable std::mutex mutex_;
};

/// Approximate quantile (0 <= q <= 1) of a fixed-bucket distribution:
/// finds the bucket holding the q-th observation and interpolates
/// linearly inside it (Prometheus histogram_quantile behavior). The +inf
/// bucket cannot be interpolated and reports the last finite bound; an
/// empty distribution reports 0. `bucket_counts` are the disjoint counts
/// from Histogram::bucket_counts().
[[nodiscard]] double histogram_quantile(
    const std::vector<double>& upper_bounds,
    const std::vector<std::uint64_t>& bucket_counts, double q);

class Registry {
 public:
  /// Finds or creates the named instrument. References remain valid until
  /// reset()/destruction.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is used only on first registration; later calls with
  /// the same name return the existing histogram unchanged.
  Histogram& histogram(const std::string& name,
                       std::vector<double> upper_bounds);

  [[nodiscard]] const Counter* find_counter(const std::string& name) const;
  [[nodiscard]] const Gauge* find_gauge(const std::string& name) const;
  [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

  /// Deterministic (name-sorted) JSON snapshot of every instrument.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;
  /// Writes the snapshot to a file; returns false if it cannot be opened.
  bool write_json_file(const std::string& path) const;

  /// Folds `other` into this registry: counters add, histograms merge
  /// bucket-wise, gauges take `other`'s value (last-merge-wins, mirroring
  /// the last-writer-wins of sequential runs). Merging the isolated
  /// per-replication registries of a parallel campaign in replication
  /// order yields the same result for every worker count.
  void merge_from(const Registry& other);

  /// Drops every instrument (invalidates previously returned references).
  void reset();

  /// The process-wide default registry all components record into unless
  /// explicitly given another one.
  static Registry& global();

 private:
  mutable std::mutex mutex_;  ///< guards the maps, not instrument updates
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dbs::obs
