#include "cluster/cluster.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace dbs::cluster {

Cluster::Cluster(const ClusterSpec& spec) : cores_per_node_(spec.cores_per_node) {
  DBS_REQUIRE(spec.node_count > 0, "cluster needs at least one node");
  DBS_REQUIRE(spec.cores_per_node > 0, "nodes need at least one core");
  nodes_.reserve(spec.node_count);
  for (std::size_t i = 0; i < spec.node_count; ++i)
    nodes_.emplace_back(NodeId{i}, spec.cores_per_node);
  total_cores_ = static_cast<CoreCount>(spec.node_count) * spec.cores_per_node;
  free_index_.reset(spec.node_count, spec.cores_per_node);
  bind_nodes();
}

void Cluster::bind_nodes() {
  for (Node& n : nodes_) n.bind_indexes(&ledger_, &free_index_, &job_index_);
}

Cluster::Cluster(const Cluster& other)
    : nodes_(other.nodes_),
      cores_per_node_(other.cores_per_node_),
      total_cores_(other.total_cores_),
      ledger_(other.ledger_),
      free_index_(other.free_index_),
      job_index_(other.job_index_) {
  bind_nodes();
}

Cluster::Cluster(Cluster&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      cores_per_node_(other.cores_per_node_),
      total_cores_(other.total_cores_),
      ledger_(other.ledger_),
      free_index_(std::move(other.free_index_)),
      job_index_(std::move(other.job_index_)) {
  bind_nodes();
}

Cluster& Cluster::operator=(const Cluster& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    cores_per_node_ = other.cores_per_node_;
    total_cores_ = other.total_cores_;
    ledger_ = other.ledger_;
    free_index_ = other.free_index_;
    job_index_ = other.job_index_;
    bind_nodes();
  }
  return *this;
}

Cluster& Cluster::operator=(Cluster&& other) noexcept {
  if (this != &other) {
    nodes_ = std::move(other.nodes_);
    cores_per_node_ = other.cores_per_node_;
    total_cores_ = other.total_cores_;
    ledger_ = other.ledger_;
    free_index_ = std::move(other.free_index_);
    job_index_ = std::move(other.job_index_);
    bind_nodes();
  }
  return *this;
}

const Node& Cluster::node(NodeId id) const {
  DBS_REQUIRE(id.valid() && id.value() < nodes_.size(), "unknown node id");
  return nodes_[id.value()];
}

Node& Cluster::node(NodeId id) {
  DBS_REQUIRE(id.valid() && id.value() < nodes_.size(), "unknown node id");
  return nodes_[id.value()];
}

std::optional<Placement> Cluster::allocate(JobId job, CoreCount cores,
                                           AllocationPolicy policy) {
  DBS_REQUIRE(cores > 0, "allocation must be positive");
  if (cores > free_cores()) return std::nullopt;

  // Walk the free-core buckets in policy order instead of building and
  // sorting a candidate vector. Visited nodes are drained completely
  // (except the last), so the bucket mutations caused by Node::allocate
  // only ever clear bits at or before the scan position — the live walk
  // visits exactly the sequence the old scan-and-sort produced (free-core
  // count, then node id).
  Placement placement;
  CoreCount remaining = cores;
  const auto take_from = [&](std::size_t i) {
    Node& n = nodes_[i];
    const CoreCount take = std::min(remaining, n.free_cores());
    n.allocate(job, take);
    placement.shares.push_back({n.id(), take});
    remaining -= take;
  };
  const auto drain_bucket = [&](CoreCount b) {
    const NodeSet& bucket = free_index_.bucket(b);
    for (std::size_t i = bucket.first();
         i != NodeSet::npos && remaining > 0; i = bucket.find_from(i + 1))
      take_from(i);
  };
  switch (policy) {
    case AllocationPolicy::Pack:
      for (CoreCount b = 1; b <= cores_per_node_ && remaining > 0; ++b)
        drain_bucket(b);
      break;
    case AllocationPolicy::Spread:
      for (CoreCount b = cores_per_node_; b >= 1 && remaining > 0; --b)
        drain_bucket(b);
      break;
    case AllocationPolicy::FirstFit: {
      const NodeSet& any = free_index_.any_free();
      for (std::size_t i = any.first();
           i != NodeSet::npos && remaining > 0; i = any.find_from(i + 1))
        take_from(i);
      break;
    }
  }
  DBS_ASSERT(remaining == 0, "free_cores() promised capacity not found");
  return placement;
}

namespace {
/// Chunk sizes for a nodes=N:ppn=P request: full chunks of `ppn`, then the
/// remainder, largest first.
std::vector<CoreCount> chunk_sizes(CoreCount cores, CoreCount ppn) {
  std::vector<CoreCount> chunks(static_cast<std::size_t>(cores / ppn), ppn);
  if (cores % ppn != 0) chunks.push_back(cores % ppn);
  return chunks;
}
}  // namespace

std::optional<std::vector<std::size_t>> Cluster::fit_chunks(
    const std::vector<CoreCount>& chunks, AllocationPolicy policy) const {
  std::vector<std::size_t> picks;
  picks.reserve(chunks.size());
  // cursor[b]: first node index in bucket b not yet considered. Nothing
  // mutates during fitting, so a bucket's picked nodes are exactly those
  // below its cursor: picks always take the lowest remaining id of the
  // bucket they come from, and chunk sizes only shrink (largest first), so
  // a bucket never regains eligible nodes behind its cursor.
  std::vector<std::size_t> cursor(
      static_cast<std::size_t>(cores_per_node_) + 1, 0);
  const auto cur = [&](CoreCount b) -> std::size_t& {
    return cursor[static_cast<std::size_t>(b)];
  };
  const std::size_t exhausted = nodes_.size();
  for (const CoreCount chunk : chunks) {
    std::size_t pick = NodeSet::npos;
    CoreCount pick_bucket = 0;
    switch (policy) {
      case AllocationPolicy::Pack:
        // Fullest fitting node first: lowest bucket >= chunk.
        for (CoreCount b = chunk; b <= cores_per_node_; ++b) {
          const std::size_t i = free_index_.bucket(b).find_from(cur(b));
          if (i == NodeSet::npos) {
            cur(b) = exhausted;
            continue;
          }
          pick = i;
          pick_bucket = b;
          break;
        }
        break;
      case AllocationPolicy::Spread:
        // Emptiest fitting node first: highest bucket >= chunk.
        for (CoreCount b = cores_per_node_; b >= chunk; --b) {
          const std::size_t i = free_index_.bucket(b).find_from(cur(b));
          if (i == NodeSet::npos) {
            cur(b) = exhausted;
            continue;
          }
          pick = i;
          pick_bucket = b;
          break;
        }
        break;
      case AllocationPolicy::FirstFit:
        // Lowest node id across all fitting buckets.
        for (CoreCount b = chunk; b <= cores_per_node_; ++b) {
          const std::size_t i = free_index_.bucket(b).find_from(cur(b));
          cur(b) = (i == NodeSet::npos) ? exhausted : i;
          if (i < pick) {
            pick = i;
            pick_bucket = b;
          }
        }
        break;
    }
    if (pick == NodeSet::npos) return std::nullopt;
    picks.push_back(pick);
    cur(pick_bucket) = pick + 1;
  }
  return picks;
}

std::optional<Placement> Cluster::allocate_chunked(JobId job, CoreCount cores,
                                                   CoreCount ppn,
                                                   AllocationPolicy policy) {
  DBS_REQUIRE(cores > 0, "allocation must be positive");
  DBS_REQUIRE(ppn > 0 && ppn <= cores_per_node_, "invalid ppn");
  const std::vector<CoreCount> chunks = chunk_sizes(cores, ppn);
  const auto picks = fit_chunks(chunks, policy);
  if (!picks) return std::nullopt;

  Placement placement;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    Node& n = nodes_[(*picks)[c]];
    n.allocate(job, chunks[c]);
    placement.shares.push_back({n.id(), chunks[c]});
  }
  return placement;
}

bool Cluster::can_allocate_chunked(CoreCount cores, CoreCount ppn) const {
  DBS_REQUIRE(cores > 0, "query must be positive");
  DBS_REQUIRE(ppn > 0 && ppn <= cores_per_node_, "invalid ppn");
  return fit_chunks(chunk_sizes(cores, ppn), AllocationPolicy::Pack)
      .has_value();
}

void Cluster::release(JobId job, const Placement& placement) {
  for (const auto& share : placement.shares)
    node(share.node).release(job, share.cores);
}

Placement Cluster::release_all(JobId job) {
  Placement freed;
  if (const std::vector<NodeShare>* shares = job_index_.find(job)) {
    // Copy first: releasing mutates the index entry we are reading.
    freed.shares = *shares;
    for (const NodeShare& s : freed.shares)
      nodes_[s.node.value()].release(job, s.cores);
  }
  return freed;
}

CoreCount Cluster::held_by(JobId job) const {
  return job_index_.held_by(job);
}

void Cluster::set_node_state(NodeId id, NodeState s) {
  node(id).set_state(s);
}

void Cluster::check_invariants() const {
  CoreCount used_scan = 0;
  CoreCount free_scan = 0;
  CoreCount unavailable_free_scan = 0;
  std::size_t share_scan = 0;
  std::size_t jobs_scan = 0;
  std::size_t index_shares = 0;
  for (const auto& n : nodes_) {
    DBS_ASSERT(n.used_cores() >= 0, "negative node usage");
    DBS_ASSERT(n.used_cores() <= n.total_cores(), "node oversubscribed");
    used_scan += n.used_cores();
    free_scan += n.free_cores();
    if (!n.available()) unavailable_free_scan += n.total_cores() - n.used_cores();
    // Free-core index: every node sits in exactly the bucket matching its
    // current free-core count, and in any_free iff it has free cores.
    const CoreCount free = n.free_cores();
    for (CoreCount b = 0; b <= cores_per_node_; ++b)
      DBS_ASSERT(free_index_.bucket(b).test(n.id().value()) == (b == free),
                 "free-core index bucket diverged from node scan");
    DBS_ASSERT(free_index_.any_free().test(n.id().value()) == (free > 0),
               "free-node set diverged from node scan");
    // Per-job placement index: each node-level hold appears as exactly the
    // same share in the owning job's sorted entry.
    for (const auto& [job, cores] : n.held()) {
      ++share_scan;
      const std::vector<NodeShare>* shares = job_index_.find(job);
      DBS_ASSERT(shares != nullptr, "job missing from placement index");
      auto it = std::lower_bound(
          shares->begin(), shares->end(), n.id(),
          [](const NodeShare& s, NodeId id) { return s.node < id; });
      DBS_ASSERT(it != shares->end() && it->node == n.id() &&
                     it->cores == cores,
                 "placement index share diverged from node scan");
    }
  }
  // The index must hold nothing beyond what the nodes back: per-job totals
  // and sortedness, the global share count, and the job count.
  for (const auto& n : nodes_) {
    for (const auto& [job, cores] : n.held()) {
      const std::vector<NodeShare>* shares = job_index_.find(job);
      if (shares->front().node != n.id()) continue;  // count each job once
      ++jobs_scan;
      DBS_ASSERT(std::is_sorted(shares->begin(), shares->end(),
                                [](const NodeShare& a, const NodeShare& b) {
                                  return a.node < b.node;
                                }),
                 "placement index shares not sorted by node id");
      CoreCount total = 0;
      for (const NodeShare& s : *shares) total += s.cores;
      DBS_ASSERT(total == job_index_.held_by(job),
                 "placement index total diverged from its shares");
      index_shares += shares->size();
    }
  }
  DBS_ASSERT(job_index_.job_count() == jobs_scan,
             "placement index holds jobs the nodes do not");
  DBS_ASSERT(index_shares == share_scan,
             "placement index holds shares the nodes do not");
  DBS_ASSERT(used_scan == ledger_.used,
             "incremental used-core aggregate diverged from node scan");
  DBS_ASSERT(unavailable_free_scan == ledger_.unavailable_free,
             "incremental unavailable-free aggregate diverged from node scan");
  DBS_ASSERT(free_scan == free_cores(),
             "incremental free-core aggregate diverged from node scan");
  DBS_ASSERT(used_scan + free_scan <= total_cores_,
             "cluster accounting mismatch");
}

}  // namespace dbs::cluster
