#include "cluster/cluster.hpp"

#include <utility>

#include "common/assert.hpp"

namespace dbs::cluster {

Cluster::Cluster(const ClusterSpec& spec) : cores_per_node_(spec.cores_per_node) {
  DBS_REQUIRE(spec.node_count > 0, "cluster needs at least one node");
  DBS_REQUIRE(spec.cores_per_node > 0, "nodes need at least one core");
  nodes_.reserve(spec.node_count);
  for (std::size_t i = 0; i < spec.node_count; ++i)
    nodes_.emplace_back(NodeId{i}, spec.cores_per_node);
  total_cores_ = static_cast<CoreCount>(spec.node_count) * spec.cores_per_node;
  bind_nodes();
}

void Cluster::bind_nodes() {
  for (Node& n : nodes_) n.bind_ledger(&ledger_);
}

Cluster::Cluster(const Cluster& other)
    : nodes_(other.nodes_),
      cores_per_node_(other.cores_per_node_),
      total_cores_(other.total_cores_),
      ledger_(other.ledger_) {
  bind_nodes();
}

Cluster::Cluster(Cluster&& other) noexcept
    : nodes_(std::move(other.nodes_)),
      cores_per_node_(other.cores_per_node_),
      total_cores_(other.total_cores_),
      ledger_(other.ledger_) {
  bind_nodes();
}

Cluster& Cluster::operator=(const Cluster& other) {
  if (this != &other) {
    nodes_ = other.nodes_;
    cores_per_node_ = other.cores_per_node_;
    total_cores_ = other.total_cores_;
    ledger_ = other.ledger_;
    bind_nodes();
  }
  return *this;
}

Cluster& Cluster::operator=(Cluster&& other) noexcept {
  if (this != &other) {
    nodes_ = std::move(other.nodes_);
    cores_per_node_ = other.cores_per_node_;
    total_cores_ = other.total_cores_;
    ledger_ = other.ledger_;
    bind_nodes();
  }
  return *this;
}

const Node& Cluster::node(NodeId id) const {
  DBS_REQUIRE(id.valid() && id.value() < nodes_.size(), "unknown node id");
  return nodes_[id.value()];
}

Node& Cluster::node(NodeId id) {
  DBS_REQUIRE(id.valid() && id.value() < nodes_.size(), "unknown node id");
  return nodes_[id.value()];
}

std::optional<Placement> Cluster::allocate(JobId job, CoreCount cores,
                                           AllocationPolicy policy) {
  DBS_REQUIRE(cores > 0, "allocation must be positive");
  if (cores > free_cores()) return std::nullopt;

  Placement placement;
  CoreCount remaining = cores;
  for (const std::size_t i : order_candidates(nodes_, policy)) {
    if (remaining == 0) break;
    Node& n = nodes_[i];
    const CoreCount take = std::min(remaining, n.free_cores());
    if (take == 0) continue;
    n.allocate(job, take);
    placement.shares.push_back({n.id(), take});
    remaining -= take;
  }
  DBS_ASSERT(remaining == 0, "free_cores() promised capacity not found");
  return placement;
}

namespace {
/// Chunk sizes for a nodes=N:ppn=P request: full chunks of `ppn`, then the
/// remainder, largest first.
std::vector<CoreCount> chunk_sizes(CoreCount cores, CoreCount ppn) {
  std::vector<CoreCount> chunks(static_cast<std::size_t>(cores / ppn), ppn);
  if (cores % ppn != 0) chunks.push_back(cores % ppn);
  return chunks;
}

/// Best-fit chunk assignment onto distinct nodes given free-core counts.
/// Returns node indices per chunk, or nullopt when placement is impossible.
std::optional<std::vector<std::size_t>> fit_chunks(
    const std::vector<CoreCount>& chunks, std::vector<CoreCount> free,
    const std::vector<std::size_t>& candidate_order) {
  std::vector<std::size_t> picks;
  picks.reserve(chunks.size());
  std::vector<bool> taken(free.size(), false);
  // Chunks are sorted largest-first; for each, pick the fullest node that
  // still fits it (best fit keeps big holes for big chunks).
  for (const CoreCount chunk : chunks) {
    bool placed = false;
    for (const std::size_t i : candidate_order) {
      if (taken[i] || free[i] < chunk) continue;
      picks.push_back(i);
      taken[i] = true;
      placed = true;
      break;
    }
    if (!placed) return std::nullopt;
  }
  return picks;
}
}  // namespace

std::optional<Placement> Cluster::allocate_chunked(JobId job, CoreCount cores,
                                                   CoreCount ppn,
                                                   AllocationPolicy policy) {
  DBS_REQUIRE(cores > 0, "allocation must be positive");
  DBS_REQUIRE(ppn > 0 && ppn <= cores_per_node_, "invalid ppn");
  const std::vector<CoreCount> chunks = chunk_sizes(cores, ppn);
  std::vector<CoreCount> free(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    free[i] = nodes_[i].free_cores();
  const auto picks = fit_chunks(chunks, free, order_candidates(nodes_, policy));
  if (!picks) return std::nullopt;

  Placement placement;
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    Node& n = nodes_[(*picks)[c]];
    n.allocate(job, chunks[c]);
    placement.shares.push_back({n.id(), chunks[c]});
  }
  return placement;
}

bool Cluster::can_allocate_chunked(CoreCount cores, CoreCount ppn) const {
  DBS_REQUIRE(cores > 0, "query must be positive");
  DBS_REQUIRE(ppn > 0 && ppn <= cores_per_node_, "invalid ppn");
  const std::vector<CoreCount> chunks = chunk_sizes(cores, ppn);
  std::vector<CoreCount> free(nodes_.size(), 0);
  for (std::size_t i = 0; i < nodes_.size(); ++i)
    free[i] = nodes_[i].free_cores();
  return fit_chunks(chunks, free, order_candidates(nodes_, AllocationPolicy::Pack))
      .has_value();
}

void Cluster::release(JobId job, const Placement& placement) {
  for (const auto& share : placement.shares)
    node(share.node).release(job, share.cores);
}

Placement Cluster::release_all(JobId job) {
  Placement freed;
  for (auto& n : nodes_) {
    const CoreCount cores = n.release_all(job);
    if (cores > 0) freed.shares.push_back({n.id(), cores});
  }
  return freed;
}

CoreCount Cluster::held_by(JobId job) const {
  CoreCount total = 0;
  for (const auto& n : nodes_) total += n.held_by(job);
  return total;
}

void Cluster::set_node_state(NodeId id, NodeState s) {
  node(id).set_state(s);
}

void Cluster::check_invariants() const {
  CoreCount used_scan = 0;
  CoreCount free_scan = 0;
  CoreCount unavailable_free_scan = 0;
  for (const auto& n : nodes_) {
    DBS_ASSERT(n.used_cores() >= 0, "negative node usage");
    DBS_ASSERT(n.used_cores() <= n.total_cores(), "node oversubscribed");
    used_scan += n.used_cores();
    free_scan += n.free_cores();
    if (!n.available()) unavailable_free_scan += n.total_cores() - n.used_cores();
  }
  DBS_ASSERT(used_scan == ledger_.used,
             "incremental used-core aggregate diverged from node scan");
  DBS_ASSERT(unavailable_free_scan == ledger_.unavailable_free,
             "incremental unavailable-free aggregate diverged from node scan");
  DBS_ASSERT(free_scan == free_cores(),
             "incremental free-core aggregate diverged from node scan");
  DBS_ASSERT(used_scan + free_scan <= total_cores_,
             "cluster accounting mismatch");
}

}  // namespace dbs::cluster
