#include "cluster/allocation_policy.hpp"

#include <algorithm>
#include <numeric>

#include "cluster/node.hpp"
#include "common/assert.hpp"

namespace dbs::cluster {

std::string_view to_string(AllocationPolicy p) {
  switch (p) {
    case AllocationPolicy::Pack: return "pack";
    case AllocationPolicy::Spread: return "spread";
    case AllocationPolicy::FirstFit: return "first-fit";
  }
  return "?";
}

CoreCount Placement::total_cores() const {
  CoreCount total = 0;
  for (const auto& s : shares) total += s.cores;
  return total;
}

void Placement::merge(const Placement& other) {
  for (const auto& add : other.shares) {
    auto it = std::find_if(shares.begin(), shares.end(),
                           [&](const NodeShare& s) { return s.node == add.node; });
    if (it != shares.end())
      it->cores += add.cores;
    else
      shares.push_back(add);
  }
}

Placement Placement::select_release(CoreCount cores) const {
  DBS_REQUIRE(cores > 0 && cores < total_cores(),
              "release must keep at least one core");
  std::vector<NodeShare> sorted = shares;
  std::sort(sorted.begin(), sorted.end(),
            [](const NodeShare& a, const NodeShare& b) {
              if (a.cores != b.cores) return a.cores < b.cores;
              return a.node < b.node;
            });
  Placement freed;
  CoreCount remaining = cores;
  for (const NodeShare& s : sorted) {
    if (remaining == 0) break;
    const CoreCount take = std::min(remaining, s.cores);
    freed.shares.push_back({s.node, take});
    remaining -= take;
  }
  DBS_ASSERT(remaining == 0, "placement smaller than total_cores()");
  return freed;
}

std::vector<std::size_t> order_candidates(const std::vector<Node>& nodes,
                                          AllocationPolicy policy) {
  std::vector<std::size_t> idx;
  idx.reserve(nodes.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    if (nodes[i].free_cores() > 0) idx.push_back(i);

  const auto by_free = [&](bool ascending) {
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      const CoreCount fa = nodes[a].free_cores();
      const CoreCount fb = nodes[b].free_cores();
      if (fa != fb) return ascending ? fa < fb : fa > fb;
      return nodes[a].id() < nodes[b].id();
    });
  };

  switch (policy) {
    case AllocationPolicy::Pack:
      by_free(/*ascending=*/true);
      break;
    case AllocationPolicy::Spread:
      by_free(/*ascending=*/false);
      break;
    case AllocationPolicy::FirstFit:
      // idx is already in node-id order.
      break;
  }
  return idx;
}

}  // namespace dbs::cluster
