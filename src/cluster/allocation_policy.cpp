#include "cluster/allocation_policy.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace dbs::cluster {

std::string_view to_string(AllocationPolicy p) {
  switch (p) {
    case AllocationPolicy::Pack: return "pack";
    case AllocationPolicy::Spread: return "spread";
    case AllocationPolicy::FirstFit: return "first-fit";
  }
  return "?";
}

CoreCount Placement::total_cores() const {
  CoreCount total = 0;
  for (const auto& s : shares) total += s.cores;
  return total;
}

namespace {
bool sorted_by_node(const std::vector<NodeShare>& shares) {
  return std::is_sorted(shares.begin(), shares.end(),
                        [](const NodeShare& a, const NodeShare& b) {
                          return a.node < b.node;
                        });
}
}  // namespace

void Placement::merge(const Placement& other) {
  if (other.shares.empty()) {
    if (!sorted_by_node(shares)) {
      std::sort(shares.begin(), shares.end(),
                [](const NodeShare& a, const NodeShare& b) {
                  return a.node < b.node;
                });
    }
    return;
  }
  std::vector<NodeShare> lhs = std::move(shares);
  std::vector<NodeShare> rhs = other.shares;
  const auto by_node = [](const NodeShare& a, const NodeShare& b) {
    return a.node < b.node;
  };
  if (!sorted_by_node(lhs)) std::sort(lhs.begin(), lhs.end(), by_node);
  if (!sorted_by_node(rhs)) std::sort(rhs.begin(), rhs.end(), by_node);
  shares.clear();
  shares.reserve(lhs.size() + rhs.size());
  auto l = lhs.begin();
  auto r = rhs.begin();
  while (l != lhs.end() && r != rhs.end()) {
    if (l->node < r->node)
      shares.push_back(*l++);
    else if (r->node < l->node)
      shares.push_back(*r++);
    else {
      shares.push_back({l->node, l->cores + r->cores});
      ++l;
      ++r;
    }
  }
  shares.insert(shares.end(), l, lhs.end());
  shares.insert(shares.end(), r, rhs.end());
}

Placement Placement::select_release(CoreCount cores) const {
  DBS_REQUIRE(cores > 0 && cores < total_cores(),
              "release must keep at least one core");
  const auto smaller = [](const NodeShare& a, const NodeShare& b) {
    if (a.cores != b.cores) return a.cores < b.cores;
    return a.node < b.node;
  };
  // Fast path: the smallest share alone covers the request — the sorted
  // walk below would stop after it, so skip the full copy + sort.
  const auto min_it = std::min_element(shares.begin(), shares.end(), smaller);
  if (min_it != shares.end() && min_it->cores >= cores)
    return Placement{{{min_it->node, cores}}};
  std::vector<NodeShare> sorted = shares;
  std::sort(sorted.begin(), sorted.end(), smaller);
  Placement freed;
  CoreCount remaining = cores;
  for (const NodeShare& s : sorted) {
    if (remaining == 0) break;
    const CoreCount take = std::min(remaining, s.cores);
    freed.shares.push_back({s.node, take});
    remaining -= take;
  }
  DBS_ASSERT(remaining == 0, "placement smaller than total_cores()");
  return freed;
}

}  // namespace dbs::cluster
