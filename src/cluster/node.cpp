#include "cluster/node.hpp"

#include "cluster/free_core_index.hpp"
#include "cluster/job_placement_index.hpp"
#include "common/assert.hpp"

namespace dbs::cluster {

Node::Node(NodeId id, CoreCount total_cores) : id_(id), total_(total_cores) {
  DBS_REQUIRE(total_cores > 0, "node must have at least one core");
}

CoreCount Node::free_cores() const {
  return available() ? total_ - used_ : 0;
}

void Node::reindex(CoreCount old_free) {
  if (free_index_ != nullptr)
    free_index_->move(id_.value(), old_free, free_cores());
}

void Node::set_state(NodeState s) {
  if (s == state_) return;
  const CoreCount old_free = free_cores();
  if (ledger_ != nullptr) {
    // Free cores on a non-Up node are unavailable; moving in or out of Up
    // shifts this node's idle capacity between the two pools.
    if (state_ == NodeState::Up && s != NodeState::Up)
      ledger_->unavailable_free += total_ - used_;
    else if (state_ != NodeState::Up && s == NodeState::Up)
      ledger_->unavailable_free -= total_ - used_;
  }
  state_ = s;
  reindex(old_free);
}

void Node::allocate(JobId job, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "allocation must be positive");
  DBS_REQUIRE(available(), "cannot allocate on an unavailable node");
  DBS_REQUIRE(cores <= free_cores(), "node oversubscription");
  const CoreCount old_free = free_cores();
  held_[job] += cores;
  used_ += cores;
  if (ledger_ != nullptr) ledger_->used += cores;
  if (job_index_ != nullptr) job_index_->apply(job, id_, cores);
  reindex(old_free);
}

void Node::release(JobId job, CoreCount cores) {
  DBS_REQUIRE(cores > 0, "release must be positive");
  auto it = held_.find(job);
  DBS_REQUIRE(it != held_.end() && it->second >= cores,
              "releasing cores the job does not hold");
  const CoreCount old_free = free_cores();
  it->second -= cores;
  used_ -= cores;
  if (ledger_ != nullptr) {
    ledger_->used -= cores;
    // Cores released on a down node become unavailable-free, not free
    // (the server releases lost allocations after failing the node).
    if (!available()) ledger_->unavailable_free += cores;
  }
  if (job_index_ != nullptr) job_index_->apply(job, id_, -cores);
  if (it->second == 0) held_.erase(it);
  reindex(old_free);
}

CoreCount Node::release_all(JobId job) {
  auto it = held_.find(job);
  if (it == held_.end()) return 0;
  const CoreCount cores = it->second;
  const CoreCount old_free = free_cores();
  used_ -= cores;
  if (ledger_ != nullptr) {
    ledger_->used -= cores;
    if (!available()) ledger_->unavailable_free += cores;
  }
  if (job_index_ != nullptr) job_index_->apply(job, id_, -cores);
  held_.erase(it);
  reindex(old_free);
  return cores;
}

CoreCount Node::held_by(JobId job) const {
  auto it = held_.find(job);
  return it == held_.end() ? 0 : it->second;
}

}  // namespace dbs::cluster
