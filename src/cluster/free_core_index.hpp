// Incremental free-core index: nodes bucketed by free_cores().
//
// The cluster keeps one bucket per possible free-core count
// (cores_per_node + 1 buckets; a Down/Offline node has free_cores() == 0
// and therefore lives in bucket 0). Every Node mutation that changes a
// node's free-core count — allocate, release, release_all, set_state —
// moves the node between buckets through the same hook mechanism that
// keeps CoreLedger consistent, so the index is always exact.
//
// Buckets are node-index bitsets rather than linked rings: membership
// moves are O(1), and word scans iterate a bucket in node-id order, which
// is precisely the determinism contract of the old scan allocator
// (order by free-core count, ties by node id). Walking buckets ascending
// reproduces Pack order, descending reproduces Spread order, and the
// any_free set reproduces FirstFit order — all without building or
// sorting a candidate vector per placement.
#pragma once

#include <cstddef>
#include <vector>

#include "cluster/node_set.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"

namespace dbs::cluster {

class FreeCoreIndex {
 public:
  FreeCoreIndex() = default;

  /// (Re)builds the index for `node_count` nodes of `cores_per_node`
  /// cores, all initially fully free (the state right after construction).
  void reset(std::size_t node_count, CoreCount cores_per_node) {
    DBS_REQUIRE(cores_per_node > 0, "nodes need at least one core");
    cores_per_node_ = cores_per_node;
    buckets_.assign(static_cast<std::size_t>(cores_per_node) + 1, NodeSet{});
    for (auto& b : buckets_) b.reset(node_count);
    any_free_.reset(node_count);
    for (std::size_t i = 0; i < node_count; ++i) {
      buckets_[static_cast<std::size_t>(cores_per_node)].insert(i);
      any_free_.insert(i);
    }
  }

  /// Moves node `i` from the `old_free` bucket to the `new_free` bucket.
  /// Called by Node on every free-core change.
  void move(std::size_t i, CoreCount old_free, CoreCount new_free) {
    DBS_ASSERT(old_free >= 0 && old_free <= cores_per_node_,
               "free count out of range");
    DBS_ASSERT(new_free >= 0 && new_free <= cores_per_node_,
               "free count out of range");
    if (old_free == new_free) return;
    buckets_[static_cast<std::size_t>(old_free)].erase(i);
    buckets_[static_cast<std::size_t>(new_free)].insert(i);
    if (old_free == 0)
      any_free_.insert(i);
    else if (new_free == 0)
      any_free_.erase(i);
  }

  [[nodiscard]] CoreCount cores_per_node() const { return cores_per_node_; }

  /// Nodes whose free-core count is exactly `free`.
  [[nodiscard]] const NodeSet& bucket(CoreCount free) const {
    DBS_ASSERT(free >= 0 && free <= cores_per_node_, "no such bucket");
    return buckets_[static_cast<std::size_t>(free)];
  }

  /// Nodes with at least one free core (the FirstFit scan set).
  [[nodiscard]] const NodeSet& any_free() const { return any_free_; }

 private:
  CoreCount cores_per_node_ = 0;
  std::vector<NodeSet> buckets_;
  NodeSet any_free_;
};

}  // namespace dbs::cluster
