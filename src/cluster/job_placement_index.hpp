// Per-job placement index: JobId -> the node shares the job holds.
//
// Maintained by the same Node-mutation hooks that keep CoreLedger and the
// free-core index consistent, so Cluster::held_by is O(1) and
// Cluster::release_all touches only the nodes the job actually occupies
// instead of scanning every node. Share lists are kept sorted by node id,
// matching the node-scan order the old release_all returned.
#pragma once

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "cluster/allocation_policy.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"

namespace dbs::cluster {

class JobPlacementIndex {
 public:
  /// Applies a per-node delta for `job` on `node` (positive on allocate,
  /// negative on release). Erases empty shares and empty jobs.
  void apply(JobId job, NodeId node, CoreCount delta) {
    DBS_ASSERT(delta != 0, "no-op share delta");
    Entry& e = entries_[job];
    e.total += delta;
    DBS_ASSERT(e.total >= 0, "job share total went negative");
    auto it = std::lower_bound(
        e.shares.begin(), e.shares.end(), node,
        [](const NodeShare& s, NodeId n) { return s.node < n; });
    if (it != e.shares.end() && it->node == node) {
      it->cores += delta;
      DBS_ASSERT(it->cores >= 0, "node share went negative");
      if (it->cores == 0) e.shares.erase(it);
    } else {
      DBS_ASSERT(delta > 0, "releasing a share the index does not know");
      e.shares.insert(it, NodeShare{node, delta});
    }
    if (e.shares.empty()) {
      DBS_ASSERT(e.total == 0, "empty share list with nonzero total");
      entries_.erase(job);
    }
  }

  /// Total cores `job` holds cluster-wide. O(1).
  [[nodiscard]] CoreCount held_by(JobId job) const {
    auto it = entries_.find(job);
    return it == entries_.end() ? 0 : it->second.total;
  }

  /// The job's shares sorted by node id, or nullptr if it holds nothing.
  [[nodiscard]] const std::vector<NodeShare>* find(JobId job) const {
    auto it = entries_.find(job);
    return it == entries_.end() ? nullptr : &it->second.shares;
  }

  [[nodiscard]] std::size_t job_count() const { return entries_.size(); }

  void clear() { entries_.clear(); }

 private:
  struct Entry {
    CoreCount total = 0;
    std::vector<NodeShare> shares;  ///< sorted by node id
  };
  std::unordered_map<JobId, Entry> entries_;
};

}  // namespace dbs::cluster
