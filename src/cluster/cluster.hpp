// The cluster: a set of nodes with core-granular allocation.
#pragma once

#include <optional>
#include <vector>

#include "cluster/allocation_policy.hpp"
#include "cluster/free_core_index.hpp"
#include "cluster/job_placement_index.hpp"
#include "cluster/node.hpp"
#include "common/types.hpp"

namespace dbs::cluster {

/// Static description of a cluster.
struct ClusterSpec {
  std::size_t node_count = 16;
  CoreCount cores_per_node = 8;
};

class Cluster {
 public:
  explicit Cluster(const ClusterSpec& spec);

  // Nodes hold a pointer into ledger_; copies/moves must rebind it.
  Cluster(const Cluster& other);
  Cluster(Cluster&& other) noexcept;
  Cluster& operator=(const Cluster& other);
  Cluster& operator=(Cluster&& other) noexcept;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] CoreCount total_cores() const { return total_cores_; }
  /// O(1): maintained incrementally by every node mutation.
  [[nodiscard]] CoreCount used_cores() const { return ledger_.used; }
  /// O(1): total minus used minus idle capacity on non-Up nodes.
  [[nodiscard]] CoreCount free_cores() const {
    return total_cores_ - ledger_.used - ledger_.unavailable_free;
  }
  [[nodiscard]] CoreCount cores_per_node() const { return cores_per_node_; }
  /// O(1): idle capacity stranded on non-Up nodes (unallocatable until the
  /// node recovers). total == used + free + unavailable_free.
  [[nodiscard]] CoreCount unavailable_free_cores() const {
    return ledger_.unavailable_free;
  }

  [[nodiscard]] const Node& node(NodeId id) const;
  [[nodiscard]] Node& node(NodeId id);
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Attempts to place `cores` for `job` using `policy`. Returns the
  /// placement, or nullopt if fewer than `cores` are free cluster-wide
  /// (in which case nothing is allocated).
  std::optional<Placement> allocate(JobId job, CoreCount cores,
                                    AllocationPolicy policy = AllocationPolicy::Pack);

  /// Torque-style chunked placement (nodes=N:ppn=P): the request is split
  /// into chunks of `ppn` cores (plus one remainder chunk) and every chunk
  /// must fit on a distinct node. Returns nullopt (allocating nothing) when
  /// node-level fragmentation prevents placement even if enough cores are
  /// free in aggregate.
  std::optional<Placement> allocate_chunked(
      JobId job, CoreCount cores, CoreCount ppn,
      AllocationPolicy policy = AllocationPolicy::Pack);

  /// Dry-run of allocate_chunked.
  [[nodiscard]] bool can_allocate_chunked(CoreCount cores, CoreCount ppn) const;

  /// Returns the exact cores of `placement` held by `job`.
  void release(JobId job, const Placement& placement);

  /// Releases everything `job` holds anywhere. Returns the freed placement
  /// (shares in node-id order). O(shares held) via the per-job index.
  Placement release_all(JobId job);

  /// Total cores `job` currently holds across nodes. O(1) via the per-job
  /// index.
  [[nodiscard]] CoreCount held_by(JobId job) const;

  /// The job's current shares sorted by node id, or nullptr if it holds
  /// nothing. O(1) lookup via the per-job index.
  [[nodiscard]] const std::vector<NodeShare>* shares_of(JobId job) const {
    return job_index_.find(job);
  }

  /// Marks a node down (its free cores become unavailable). Jobs' cores on
  /// it remain accounted until released by the caller.
  void set_node_state(NodeId id, NodeState s);

  /// Verifies per-node accounting and that the O(1) aggregates, the
  /// free-core bucket index and the per-job placement index all agree with
  /// a full node scan (throws invariant_error on corruption).
  void check_invariants() const;

 private:
  void bind_nodes();

  /// Best-fit chunk assignment onto distinct nodes via the free-core
  /// index: for each chunk (largest first), the first candidate in policy
  /// order whose bucket is >= the chunk size. Returns node indices per
  /// chunk, or nullopt when placement is impossible. Does not mutate.
  [[nodiscard]] std::optional<std::vector<std::size_t>> fit_chunks(
      const std::vector<CoreCount>& chunks, AllocationPolicy policy) const;

  std::vector<Node> nodes_;
  CoreCount cores_per_node_;
  CoreCount total_cores_ = 0;
  CoreLedger ledger_;
  FreeCoreIndex free_index_;
  JobPlacementIndex job_index_;
};

}  // namespace dbs::cluster
