// Node-selection policies used when mapping a core request onto nodes.
#pragma once

#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace dbs::cluster {

/// How to pick nodes when several could satisfy a request.
enum class AllocationPolicy {
  /// Fill the busiest (fewest free cores) eligible nodes first, minimizing
  /// the number of partially used nodes (default; matches typical
  /// node-packing behaviour of production RMs).
  Pack,
  /// Use the emptiest nodes first, spreading load.
  Spread,
  /// Lowest node id first.
  FirstFit,
};

[[nodiscard]] std::string_view to_string(AllocationPolicy p);

/// One job's share of one node.
struct NodeShare {
  NodeId node;
  CoreCount cores = 0;

  [[nodiscard]] bool operator==(const NodeShare&) const = default;
};

/// A concrete placement: which cores on which nodes a job holds.
struct Placement {
  std::vector<NodeShare> shares;

  [[nodiscard]] CoreCount total_cores() const;
  [[nodiscard]] std::size_t node_count() const { return shares.size(); }
  [[nodiscard]] bool empty() const { return shares.empty(); }

  /// Merges another placement into this one (summing per-node shares).
  /// The result is sorted by node id; a single linear merge when both
  /// sides already are (the common case — release_all and the per-job
  /// index produce sorted placements), otherwise the inputs are sorted
  /// first. O(n + m) instead of the old O(n * m) find-per-share.
  void merge(const Placement& other);

  /// Selects a sub-placement of `cores` cores to give back, vacating the
  /// smallest shares first (frees whole nodes as early as possible).
  /// Precondition: 0 < cores < total_cores().
  [[nodiscard]] Placement select_release(CoreCount cores) const;

  [[nodiscard]] bool operator==(const Placement&) const = default;
};

}  // namespace dbs::cluster
