// A compute node: a fixed number of cores, tracked per owning job.
#pragma once

#include <unordered_map>

#include "common/types.hpp"

namespace dbs::cluster {

class FreeCoreIndex;
class JobPlacementIndex;

enum class NodeState { Up, Down, Offline };

/// Cluster-wide core aggregates, maintained incrementally by every node
/// mutation so Cluster::free_cores()/used_cores() are O(1) instead of a
/// full node scan on the scheduler's hot path.
struct CoreLedger {
  /// Sum of used cores across all nodes, whatever their state.
  CoreCount used = 0;
  /// Sum of (total - used) over nodes that are not Up: capacity that is
  /// neither used nor allocatable.
  CoreCount unavailable_free = 0;
};

class Node {
 public:
  Node(NodeId id, CoreCount total_cores);

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] CoreCount total_cores() const { return total_; }
  [[nodiscard]] CoreCount used_cores() const { return used_; }
  [[nodiscard]] CoreCount free_cores() const;
  [[nodiscard]] NodeState state() const { return state_; }
  [[nodiscard]] bool available() const { return state_ == NodeState::Up; }

  void set_state(NodeState s);

  /// Gives `cores` of this node to `job` (additive if the job already holds
  /// cores here). Precondition: node is up and has enough free cores.
  void allocate(JobId job, CoreCount cores);

  /// Returns `cores` held by `job`; precondition: the job holds at least
  /// that many here.
  void release(JobId job, CoreCount cores);

  /// Returns everything `job` holds here (no-op if nothing held).
  CoreCount release_all(JobId job);

  /// Cores currently held by `job` on this node.
  [[nodiscard]] CoreCount held_by(JobId job) const;

  /// Number of distinct jobs with cores on this node.
  [[nodiscard]] std::size_t job_count() const { return held_.size(); }

  /// The jobs holding cores here (iteration order is unspecified; callers
  /// needing determinism must sort, e.g. by job id).
  [[nodiscard]] const std::unordered_map<JobId, CoreCount>& held() const {
    return held_;
  }

  /// Attaches the cluster's incremental structures: the aggregate ledger,
  /// the free-core bucket index and the per-job placement index. Every
  /// subsequent mutation (including direct ones, e.g. the server failing a
  /// node) keeps all three consistent. The node's current contribution
  /// must already be counted. Any pointer may be null (standalone nodes in
  /// unit tests bind nothing).
  void bind_indexes(CoreLedger* ledger, FreeCoreIndex* free_index,
                    JobPlacementIndex* job_index) {
    ledger_ = ledger;
    free_index_ = free_index;
    job_index_ = job_index;
  }

 private:
  /// Re-buckets this node after a free-core change.
  void reindex(CoreCount old_free);

  NodeId id_;
  CoreCount total_;
  CoreCount used_ = 0;
  NodeState state_ = NodeState::Up;
  std::unordered_map<JobId, CoreCount> held_;
  CoreLedger* ledger_ = nullptr;          ///< owned by the enclosing Cluster
  FreeCoreIndex* free_index_ = nullptr;   ///< owned by the enclosing Cluster
  JobPlacementIndex* job_index_ = nullptr;  ///< owned by the enclosing Cluster
};

}  // namespace dbs::cluster
