// A fixed-capacity bitset over node indices with fast ordered scans.
//
// This is the storage primitive of the free-core index: one NodeSet per
// free-core bucket plus one for "any free core". Word-level scans with
// countr_zero give node-id-ascending iteration at ~64 nodes per step,
// which is what keeps bucket walks cheap even at 64k nodes.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace dbs::cluster {

class NodeSet {
 public:
  static constexpr std::size_t npos = ~std::size_t{0};

  NodeSet() = default;
  explicit NodeSet(std::size_t capacity) { reset(capacity); }

  /// Clears the set and resizes it to hold indices [0, capacity).
  void reset(std::size_t capacity) {
    capacity_ = capacity;
    words_.assign((capacity + 63) / 64, 0);
    count_ = 0;
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] bool test(std::size_t i) const {
    DBS_ASSERT(i < capacity_, "node index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void insert(std::size_t i) {
    DBS_ASSERT(i < capacity_, "node index out of range");
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    DBS_ASSERT((w & bit) == 0, "node already in set");
    w |= bit;
    ++count_;
  }

  void erase(std::size_t i) {
    DBS_ASSERT(i < capacity_, "node index out of range");
    std::uint64_t& w = words_[i >> 6];
    const std::uint64_t bit = std::uint64_t{1} << (i & 63);
    DBS_ASSERT((w & bit) != 0, "node not in set");
    w &= ~bit;
    --count_;
  }

  /// Lowest member index >= `from`, or npos. O(words) worst case; the
  /// count() == 0 fast path makes skipping empty buckets O(1).
  [[nodiscard]] std::size_t find_from(std::size_t from) const {
    if (count_ == 0 || from >= capacity_) return npos;
    std::size_t w = from >> 6;
    std::uint64_t word = words_[w] & (~std::uint64_t{0} << (from & 63));
    while (true) {
      if (word != 0)
        return (w << 6) + static_cast<std::size_t>(std::countr_zero(word));
      if (++w == words_.size()) return npos;
      word = words_[w];
    }
  }

  [[nodiscard]] std::size_t first() const { return find_from(0); }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t capacity_ = 0;
  std::size_t count_ = 0;
};

}  // namespace dbs::cluster
