#include "svc/sharded_service.hpp"

#include <thread>

#include "common/assert.hpp"

namespace dbs::svc {

std::string shard_state_dir(const std::string& base, std::size_t k) {
  return base + "/shard-" + std::to_string(k);
}

ShardedService::ShardedService(batch::ShardedSystem& system,
                               IngestQueue& ingest,
                               const ServiceConfig& config)
    : system_(system),
      ingest_(ingest),
      config_(config),
      pool_(system.shard_config().threads >= 1 ? system.shard_config().threads
                                               : 1) {
  const std::size_t count = system_.shard_count();
  queues_.reserve(count);
  loops_.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    queues_.push_back(std::make_unique<IngestQueue>());
    ServiceConfig shard_config = config;
    if (!config.state_dir.empty())
      shard_config.state_dir = shard_state_dir(config.state_dir, k);
    // The driver owns wall pacing; shard loops only ever run one tick.
    shard_config.wall_sleep = std::chrono::microseconds{0};
    loops_.push_back(std::make_unique<ServiceLoop>(
        system_.shard(k), *queues_.back(), shard_config));
  }
}

ShardedService::~ShardedService() = default;

bool ShardedService::open() {
  DBS_REQUIRE(!config_.state_dir.empty(),
              "open() is only meaningful with a state_dir");
  // Per-shard parallel recovery: every shard restores its own snapshot and
  // replays its own WAL tail; the shards touch disjoint state.
  const std::vector<char> had = pool_.parallel_map<char>(
      loops_.size(),
      [&](std::size_t k, std::size_t) {
        return static_cast<char>(loops_[k]->open());
      },
      system_.shard_config().grain);
  std::vector<std::uint64_t> cores(loops_.size(), 0);
  std::vector<std::uint64_t> jobs(loops_.size(), 0);
  for (std::size_t k = 0; k < loops_.size(); ++k) {
    cores[k] = loops_[k]->wal_submit_cores();
    jobs[k] = loops_[k]->wal_submit_total();
    if (had[k] != 0) recovered_ = true;
  }
  system_.router().restore(std::move(cores), std::move(jobs));
  return recovered_;
}

void ShardedService::route_pending() {
  route_buf_.clear();
  ingest_.drain(route_buf_);
  for (const IngestRecord& r : route_buf_) {
    DBS_REQUIRE(r.kind == IngestKind::Submit,
                "sharded ingest routes submits only; use "
                "ShardedService::cancel(shard, ...) for qdel");
    const std::size_t k = system_.router().route(r.spec);
    queues_[k]->submit(r.requested, r.spec, r.behavior);
  }
  if (!closed_shards_ && ingest_.closed() && ingest_.depth() == 0) {
    for (auto& q : queues_) q->close();
    closed_shards_ = true;
  }
}

void ShardedService::tick() {
  route_pending();
  pool_.parallel_for(
      loops_.size(), [&](std::size_t k, std::size_t) { loops_[k]->tick(); },
      system_.shard_config().grain);
  ++ticks_;
}

std::uint64_t ShardedService::cancel(std::size_t k, Time requested,
                                     JobId job) {
  return queues_.at(k)->cancel(requested, job);
}

void ShardedService::stop() { stop_.store(true, std::memory_order_release); }

bool ShardedService::drained() const {
  if (!ingest_.closed() || ingest_.depth() != 0) return false;
  for (const auto& loop : loops_)
    if (!loop->drained()) return false;
  return true;
}

std::uint64_t ShardedService::run() {
  const std::uint64_t start = ticks_;
  while (!stop_.load(std::memory_order_acquire)) {
    tick();
    if (drained()) break;
    if (config_.max_ticks != 0 && ticks_ - start >= config_.max_ticks) break;
    if (config_.wall_sleep.count() > 0 && !ingest_.closed())
      std::this_thread::sleep_for(config_.wall_sleep);
  }
  // Final snapshots in shard order (serial: cheap, and keeps any global-
  // registry fallback counters deterministic).
  for (auto& loop : loops_) loop->finalize();
  return ticks_ - start;
}

std::uint64_t ShardedService::wal_ingest_total() const {
  std::uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->wal_ingest_total();
  return total;
}

std::uint64_t ShardedService::wal_decision_total() const {
  std::uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->wal_decision_total();
  return total;
}

std::uint64_t ShardedService::snapshots_written() const {
  std::uint64_t total = 0;
  for (const auto& loop : loops_) total += loop->snapshots_written();
  return total;
}

}  // namespace dbs::svc
