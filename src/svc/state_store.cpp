#include "svc/state_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "apps/app_model.hpp"
#include "batch/batch_system.hpp"
#include "common/assert.hpp"
#include "obs/recorder/record.hpp"

namespace dbs::svc {
namespace {

using obs::rec::load_le;
using obs::rec::store_le;

// --- byte-buffer writer/reader --------------------------------------------
// Same conventions as the flight recorder (DESIGN.md §10): all integers
// little-endian, strings length-prefixed, doubles as their IEEE-754 bit
// pattern. The reader bounds-checks every access and throws, so a
// truncated or corrupt snapshot fails loud instead of restoring garbage.

class Writer {
 public:
  explicit Writer(std::vector<unsigned char>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u32(std::uint32_t v) { scalar(v); }
  void u64(std::uint64_t v) { scalar(v); }
  void i32(std::int32_t v) { scalar(v); }
  void i64(std::int64_t v) { scalar(v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }
  void time(Time t) { i64(t.as_micros()); }
  void duration(Duration d) { i64(d.as_micros()); }
  void opt_time(const std::optional<Time>& t) {
    boolean(t.has_value());
    i64(t ? t->as_micros() : 0);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }

 private:
  template <class T>
  void scalar(T v) {
    unsigned char tmp[sizeof(T)];
    store_le<T>(tmp, v);
    out_.insert(out_.end(), tmp, tmp + sizeof(T));
  }

  std::vector<unsigned char>& out_;
};

class Reader {
 public:
  Reader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::uint8_t u8() { return *take(1); }
  [[nodiscard]] std::uint32_t u32() { return load_le<std::uint32_t>(take(4)); }
  [[nodiscard]] std::uint64_t u64() { return load_le<std::uint64_t>(take(8)); }
  [[nodiscard]] std::int32_t i32() { return load_le<std::int32_t>(take(4)); }
  [[nodiscard]] std::int64_t i64() { return load_le<std::int64_t>(take(8)); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }
  [[nodiscard]] Time time() { return Time::from_micros(i64()); }
  [[nodiscard]] Duration duration() { return Duration::micros(i64()); }
  [[nodiscard]] std::optional<Time> opt_time() {
    const bool has = boolean();
    const std::int64_t us = i64();
    if (!has) return std::nullopt;
    return Time::from_micros(us);
  }
  [[nodiscard]] std::string str() {
    const std::uint32_t n = u32();
    const unsigned char* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  /// Element count for a following array; bounded by the bytes left so a
  /// corrupt length cannot drive a multi-gigabyte reserve.
  [[nodiscard]] std::size_t count(std::size_t min_elem_bytes) {
    const std::uint32_t n = u32();
    DBS_REQUIRE(static_cast<std::size_t>(n) * min_elem_bytes <= remaining(),
                "snapshot array length exceeds the remaining bytes");
    return n;
  }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }
  [[nodiscard]] bool done() const { return pos_ == size_; }

 private:
  const unsigned char* take(std::size_t n) {
    DBS_REQUIRE(n <= remaining(), "snapshot truncated");
    const unsigned char* p = data_ + pos_;
    pos_ += n;
    return p;
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- per-type codecs -------------------------------------------------------

void put_credentials(Writer& w, const Credentials& c) {
  w.str(c.user);
  w.str(c.group);
  w.str(c.account);
  w.str(c.job_class);
  w.str(c.qos);
}

Credentials get_credentials(Reader& r) {
  Credentials c;
  c.user = r.str();
  c.group = r.str();
  c.account = r.str();
  c.job_class = r.str();
  c.qos = r.str();
  return c;
}

void put_spec(Writer& w, const rms::JobSpec& s) {
  w.str(s.name);
  put_credentials(w, s.cred);
  w.i32(s.cores);
  w.i32(s.ppn);
  w.duration(s.walltime);
  w.boolean(s.exclusive_priority);
  w.boolean(s.preemptible);
  w.i32(s.malleable_min);
  w.str(s.type_tag);
}

rms::JobSpec get_spec(Reader& r) {
  rms::JobSpec s;
  s.name = r.str();
  s.cred = get_credentials(r);
  s.cores = r.i32();
  s.ppn = r.i32();
  s.walltime = r.duration();
  s.exclusive_priority = r.boolean();
  s.preemptible = r.boolean();
  s.malleable_min = r.i32();
  s.type_tag = r.str();
  return s;
}

void put_behavior(Writer& w, const wl::Behavior& b) {
  w.duration(b.static_runtime);
  w.boolean(b.evolving);
  w.f64(b.first_ask_frac);
  w.f64(b.retry_frac);
  w.i32(b.ask_cores);
  w.duration(b.negotiation_timeout);
  w.boolean(b.malleable);
}

wl::Behavior get_behavior(Reader& r) {
  wl::Behavior b;
  b.static_runtime = r.duration();
  b.evolving = r.boolean();
  b.first_ask_frac = r.f64();
  b.retry_frac = r.f64();
  b.ask_cores = r.i32();
  b.negotiation_timeout = r.duration();
  b.malleable = r.boolean();
  return b;
}

void put_placement(Writer& w, const cluster::Placement& p) {
  w.u32(static_cast<std::uint32_t>(p.shares.size()));
  for (const auto& share : p.shares) {
    w.u64(share.node.value());
    w.i32(share.cores);
  }
}

cluster::Placement get_placement(Reader& r) {
  cluster::Placement p;
  const std::size_t n = r.count(12);
  p.shares.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    cluster::NodeShare share;
    share.node = NodeId(r.u64());
    share.cores = r.i32();
    p.shares.push_back(share);
  }
  return p;
}

void put_app(Writer& w, const rms::AppState& a) {
  w.u32(a.kind);
  w.u32(static_cast<std::uint32_t>(a.ints.size()));
  for (const auto v : a.ints) w.i64(v);
  w.u32(static_cast<std::uint32_t>(a.doubles.size()));
  for (const auto v : a.doubles) w.f64(v);
}

rms::AppState get_app(Reader& r) {
  rms::AppState a;
  a.kind = r.u32();
  const std::size_t ni = r.count(8);
  a.ints.reserve(ni);
  for (std::size_t i = 0; i < ni; ++i) a.ints.push_back(r.i64());
  const std::size_t nd = r.count(8);
  a.doubles.reserve(nd);
  for (std::size_t i = 0; i < nd; ++i) a.doubles.push_back(r.f64());
  return a;
}

void put_job_entry(Writer& w, const SystemState::JobEntry& e) {
  w.u64(e.id.value());
  put_spec(w, e.spec);
  w.time(e.submit);
  w.u8(static_cast<std::uint8_t>(e.restore.state));
  w.opt_time(e.restore.start);
  w.opt_time(e.restore.end);
  put_placement(w, e.restore.placement);
  w.boolean(e.restore.backfilled);
  w.i32(e.restore.dyn_requests_made);
  w.i32(e.restore.dyn_grants);
  w.i32(e.restore.dyn_rejects);
  put_app(w, e.app);
}

SystemState::JobEntry get_job_entry(Reader& r) {
  SystemState::JobEntry e;
  e.id = JobId(r.u64());
  e.spec = get_spec(r);
  e.submit = r.time();
  const std::uint8_t state = r.u8();
  DBS_REQUIRE(state <= static_cast<std::uint8_t>(rms::JobState::Cancelled),
              "snapshot job state out of range");
  e.restore.state = static_cast<rms::JobState>(state);
  e.restore.start = r.opt_time();
  e.restore.end = r.opt_time();
  e.restore.placement = get_placement(r);
  e.restore.backfilled = r.boolean();
  e.restore.dyn_requests_made = r.i32();
  e.restore.dyn_grants = r.i32();
  e.restore.dyn_rejects = r.i32();
  e.app = get_app(r);
  return e;
}

void put_dyn_request(Writer& w, const rms::DynRequest& d) {
  w.u64(d.id.value());
  w.u64(d.job.value());
  w.i32(d.extra_cores);
  w.time(d.submitted);
  w.i32(d.attempt);
  w.time(d.deadline);
}

rms::DynRequest get_dyn_request(Reader& r) {
  rms::DynRequest d;
  d.id = RequestId(r.u64());
  d.job = JobId(r.u64());
  d.extra_cores = r.i32();
  d.submitted = r.time();
  d.attempt = r.i32();
  d.deadline = r.time();
  return d;
}

void put_mom(Writer& w, const rms::MomManager::RuntimeState& m) {
  w.u64(m.job.value());
  w.i32(m.cores);
  w.time(m.finish_at);
  w.boolean(m.has_ask);
  w.time(m.ask.at);
  w.i32(m.ask.extra_cores);
  w.duration(m.ask.timeout);
  w.i32(m.ask_attempt);
  w.boolean(m.has_release);
  w.time(m.release.at);
  w.i32(m.release.cores);
}

rms::MomManager::RuntimeState get_mom(Reader& r) {
  rms::MomManager::RuntimeState m;
  m.job = JobId(r.u64());
  m.cores = r.i32();
  m.finish_at = r.time();
  m.has_ask = r.boolean();
  m.ask.at = r.time();
  m.ask.extra_cores = r.i32();
  m.ask.timeout = r.duration();
  m.ask_attempt = r.i32();
  m.has_release = r.boolean();
  m.release.at = r.time();
  m.release.cores = r.i32();
  return m;
}

void put_scheduler(Writer& w, const core::MauiScheduler::ServiceState& s) {
  w.u64(s.iterations);
  w.time(s.last_usage_update);
  w.boolean(s.poll_pending);
  w.time(s.poll_at);
  w.time(s.fairshare.window_start);
  w.u32(static_cast<std::uint32_t>(s.fairshare.windows.size()));
  for (const auto& [user, windows] : s.fairshare.windows) {
    w.str(user);
    w.u32(static_cast<std::uint32_t>(windows.size()));
    for (const double v : windows) w.f64(v);
  }
  w.time(s.dfs.interval_start);
  for (const auto& entity : s.dfs.entities) {
    w.u32(static_cast<std::uint32_t>(entity.size()));
    for (const auto& [name, delay] : entity) {
      w.str(name);
      w.duration(delay);
    }
  }
  w.u32(static_cast<std::uint32_t>(s.dfs.job_delays.size()));
  for (const auto& [job, delay] : s.dfs.job_delays) {
    w.u64(job.value());
    w.duration(delay);
  }
}

core::MauiScheduler::ServiceState get_scheduler(Reader& r) {
  core::MauiScheduler::ServiceState s;
  s.iterations = r.u64();
  s.last_usage_update = r.time();
  s.poll_pending = r.boolean();
  s.poll_at = r.time();
  s.fairshare.window_start = r.time();
  const std::size_t nu = r.count(8);
  s.fairshare.windows.reserve(nu);
  for (std::size_t i = 0; i < nu; ++i) {
    std::string user = r.str();
    const std::size_t nw = r.count(8);
    std::vector<double> windows;
    windows.reserve(nw);
    for (std::size_t j = 0; j < nw; ++j) windows.push_back(r.f64());
    s.fairshare.windows.emplace_back(std::move(user), std::move(windows));
  }
  s.dfs.interval_start = r.time();
  for (auto& entity : s.dfs.entities) {
    const std::size_t ne = r.count(12);
    entity.reserve(ne);
    for (std::size_t i = 0; i < ne; ++i) {
      std::string name = r.str();
      const Duration delay = r.duration();
      entity.emplace_back(std::move(name), delay);
    }
  }
  const std::size_t nj = r.count(16);
  s.dfs.job_delays.reserve(nj);
  for (std::size_t i = 0; i < nj; ++i) {
    const JobId job{r.u64()};
    s.dfs.job_delays.emplace_back(job, r.duration());
  }
  return s;
}

void put_job_record(Writer& w, const metrics::JobRecord& j) {
  w.u64(j.id.value());
  w.str(j.name);
  w.str(j.user);
  w.str(j.type_tag);
  w.i32(j.cores_requested);
  w.i32(j.cores_peak);
  w.time(j.submit);
  w.opt_time(j.start);
  w.opt_time(j.end);
  w.boolean(j.backfilled);
  w.boolean(j.evolving);
  w.i32(j.dyn_requests);
  w.i32(j.dyn_grants);
  w.i32(j.dyn_rejects);
  w.i32(j.requeues);
  w.i32(j.malleable_shrinks);
}

metrics::JobRecord get_job_record(Reader& r) {
  metrics::JobRecord j;
  j.id = JobId(r.u64());
  j.name = r.str();
  j.user = r.str();
  j.type_tag = r.str();
  j.cores_requested = r.i32();
  j.cores_peak = r.i32();
  j.submit = r.time();
  j.start = r.opt_time();
  j.end = r.opt_time();
  j.backfilled = r.boolean();
  j.evolving = r.boolean();
  j.dyn_requests = r.i32();
  j.dyn_grants = r.i32();
  j.dyn_rejects = r.i32();
  j.requeues = r.i32();
  j.malleable_shrinks = r.i32();
  return j;
}

void put_metrics(Writer& w, const metrics::Recorder::State& m) {
  w.u64(m.totals.submitted);
  w.u64(m.totals.completed);
  w.u64(m.totals.backfilled);
  w.u64(m.totals.evolving);
  w.u64(m.totals.satisfied_dyn);
  w.u64(m.totals.granted_dyn_requests);
  w.duration(m.totals.wait_sum);
  w.duration(m.totals.turnaround_sum);
  w.duration(m.totals.max_wait);
  w.f64(m.usage_integral);
  w.time(m.last_usage_t);
  w.i32(m.last_used);
  w.time(m.first_submit);
  w.time(m.last_finish);
  w.u32(static_cast<std::uint32_t>(m.live.size()));
  for (const auto& j : m.live) put_job_record(w, j);
}

metrics::Recorder::State get_metrics(Reader& r) {
  metrics::Recorder::State m;
  m.totals.submitted = r.u64();
  m.totals.completed = r.u64();
  m.totals.backfilled = r.u64();
  m.totals.evolving = r.u64();
  m.totals.satisfied_dyn = r.u64();
  m.totals.granted_dyn_requests = r.u64();
  m.totals.wait_sum = r.duration();
  m.totals.turnaround_sum = r.duration();
  m.totals.max_wait = r.duration();
  m.usage_integral = r.f64();
  m.last_usage_t = r.time();
  m.last_used = r.i32();
  m.first_submit = r.time();
  m.last_finish = r.time();
  const std::size_t n = r.count(32);
  m.live.reserve(n);
  for (std::size_t i = 0; i < n; ++i) m.live.push_back(get_job_record(r));
  return m;
}

// --- file helpers ----------------------------------------------------------

void write_all(int fd, const unsigned char* data, std::size_t size,
               const std::string& path) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      DBS_REQUIRE(false, "write failed: " + path);
    }
    done += static_cast<std::size_t>(n);
  }
}

void fsync_checked(int fd, const std::string& path) {
  DBS_REQUIRE(::fsync(fd) == 0, "fsync failed: " + path);
}

/// fsyncs the directory containing `path` so a rename/create within it is
/// durable.
void fsync_parent_dir(const std::string& path) {
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  const std::string d = dir.empty() ? std::string(".") : dir.string();
  const int fd = ::open(d.c_str(), O_RDONLY | O_DIRECTORY);
  DBS_REQUIRE(fd >= 0, "cannot open directory for fsync: " + d);
  fsync_checked(fd, d);
  ::close(fd);
}

[[nodiscard]] std::vector<unsigned char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  DBS_REQUIRE(in.good(), "cannot open file: " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::vector<unsigned char> data(static_cast<std::size_t>(size));
  if (size > 0)
    in.read(reinterpret_cast<char*>(data.data()), size);
  DBS_REQUIRE(in.good(), "read failed: " + path);
  return data;
}

}  // namespace

// --- system capture/restore ------------------------------------------------

SystemState capture_state(batch::BatchSystem& system) {
  SystemState s;
  s.now = system.simulator().now();

  rms::Server& server = system.server();
  s.next_job = server.next_job_id_raw();
  s.next_request = server.next_request_id_raw();
  for (const rms::Job* job : server.jobs().all()) {
    SystemState::JobEntry e;
    e.id = job->id();
    e.spec = job->spec();
    e.submit = job->submit_time();
    e.restore.state = job->state();
    if (job->started()) e.restore.start = job->start_time();
    if (job->finished()) e.restore.end = job->end_time();
    e.restore.placement = job->placement();
    e.restore.backfilled = job->was_backfilled();
    e.restore.dyn_requests_made = job->dyn_requests_made();
    e.restore.dyn_grants = job->dyn_grants();
    e.restore.dyn_rejects = job->dyn_rejects();
    DBS_REQUIRE(job->app().save_state(e.app),
                "application model does not support snapshotting");
    s.jobs.push_back(std::move(e));
  }
  const auto& fifo = server.jobs().dyn_requests();
  s.dyn_fifo.assign(fifo.begin(), fifo.end());
  s.hints = server.save_availability_hints();

  for (const auto& node : system.cluster().nodes())
    s.node_states.push_back(static_cast<std::uint8_t>(node.state()));

  s.moms = system.moms().save_state();
  s.scheduler = system.scheduler().save_service_state();
  s.metrics = system.recorder().save_state();
  return s;
}

void restore_state(batch::BatchSystem& system, const SystemState& s) {
  sim::Simulator& sim = system.simulator();
  rms::Server& server = system.server();
  DBS_REQUIRE(server.jobs().size() == 0 && server.next_job_id_raw() == 0,
              "restore needs a freshly constructed system");
  sim.restore_clock(s.now);
  server.restore_counters(s.next_job, s.next_request);

  // Jobs first (in id order, as encoded): everything else references them.
  for (const auto& e : s.jobs) {
    auto app = apps::restore_application(e.app);
    server.restore_job(
        rms::Job::restore(e.id, e.spec, std::move(app), e.submit, e.restore));
  }
  for (const auto& d : s.dyn_fifo) server.restore_dyn_request(d);
  for (const auto& [job, at] : s.hints)
    server.restore_availability_hint(job, at);

  // Cluster: replay the running jobs' placements while every node is still
  // Up (Node::allocate requires an available node), then apply the saved
  // node states. Completed/cancelled jobs keep their historical placement
  // on the Job record but hold nothing in the cluster.
  cluster::Cluster& cl = system.cluster();
  for (const rms::Job* job : server.jobs().all()) {
    if (!job->is_running()) continue;
    for (const auto& share : job->placement().shares)
      cl.node(share.node).allocate(job->id(), share.cores);
  }
  DBS_REQUIRE(s.node_states.size() == cl.node_count(),
              "snapshot node count does not match the cluster");
  for (std::size_t i = 0; i < s.node_states.size(); ++i) {
    DBS_REQUIRE(
        s.node_states[i] <= static_cast<std::uint8_t>(
                                cluster::NodeState::Offline),
        "snapshot node state out of range");
    const auto state = static_cast<cluster::NodeState>(s.node_states[i]);
    if (state != cluster::NodeState::Up)
      cl.set_node_state(NodeId(i), state);
  }
  cl.check_invariants();

  // Re-arm every reconstructible pending event: mom completions and
  // ask/release descriptors, deferred retirements, the scheduler poll.
  for (const auto& m : s.moms) system.moms().restore_runtime(m);
  server.rearm_retirements();
  system.scheduler().restore_service_state(s.scheduler);
  system.recorder_mut().restore_state(s.metrics);
}

// --- snapshot codec --------------------------------------------------------

std::vector<unsigned char> encode_state(const SystemState& s) {
  std::vector<unsigned char> out;
  Writer w(out);
  w.u32(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.time(s.now);
  w.u64(s.next_job);
  w.u64(s.next_request);
  w.u32(static_cast<std::uint32_t>(s.jobs.size()));
  for (const auto& e : s.jobs) put_job_entry(w, e);
  w.u32(static_cast<std::uint32_t>(s.dyn_fifo.size()));
  for (const auto& d : s.dyn_fifo) put_dyn_request(w, d);
  w.u32(static_cast<std::uint32_t>(s.hints.size()));
  for (const auto& [job, at] : s.hints) {
    w.u64(job.value());
    w.time(at);
  }
  w.u32(static_cast<std::uint32_t>(s.node_states.size()));
  for (const auto v : s.node_states) w.u8(v);
  w.u32(static_cast<std::uint32_t>(s.moms.size()));
  for (const auto& m : s.moms) put_mom(w, m);
  put_scheduler(w, s.scheduler);
  put_metrics(w, s.metrics);
  w.time(s.last_admitted);
  w.u64(s.wal_ingest);
  w.u64(s.wal_decisions);
  for (const auto v : s.rng) w.u64(v);
  return out;
}

SystemState decode_state(const unsigned char* data, std::size_t size) {
  Reader r(data, size);
  DBS_REQUIRE(r.u32() == kSnapshotMagic, "not a DBSS snapshot");
  const std::uint32_t version = r.u32();
  DBS_REQUIRE(version == kSnapshotVersion,
              "unsupported snapshot version " + std::to_string(version));
  SystemState s;
  s.now = r.time();
  s.next_job = r.u64();
  s.next_request = r.u64();
  const std::size_t nj = r.count(1);
  s.jobs.reserve(nj);
  for (std::size_t i = 0; i < nj; ++i) s.jobs.push_back(get_job_entry(r));
  const std::size_t nd = r.count(40);
  s.dyn_fifo.reserve(nd);
  for (std::size_t i = 0; i < nd; ++i)
    s.dyn_fifo.push_back(get_dyn_request(r));
  const std::size_t nh = r.count(16);
  s.hints.reserve(nh);
  for (std::size_t i = 0; i < nh; ++i) {
    const JobId job{r.u64()};
    s.hints.emplace_back(job, r.time());
  }
  const std::size_t nn = r.count(1);
  s.node_states.reserve(nn);
  for (std::size_t i = 0; i < nn; ++i) s.node_states.push_back(r.u8());
  const std::size_t nm = r.count(8);
  s.moms.reserve(nm);
  for (std::size_t i = 0; i < nm; ++i) s.moms.push_back(get_mom(r));
  s.scheduler = get_scheduler(r);
  s.metrics = get_metrics(r);
  s.last_admitted = r.time();
  s.wal_ingest = r.u64();
  s.wal_decisions = r.u64();
  for (auto& v : s.rng) v = r.u64();
  DBS_REQUIRE(r.done(), "trailing bytes after snapshot");
  return s;
}

SystemState decode_state(const std::vector<unsigned char>& b) {
  return decode_state(b.data(), b.size());
}

// --- WAL payload codecs ----------------------------------------------------

std::vector<unsigned char> encode_decision(Time at, std::uint64_t iteration,
                                           const rms::Decision& d) {
  std::vector<unsigned char> out;
  Writer w(out);
  w.time(at);
  w.u64(iteration);
  w.u8(static_cast<std::uint8_t>(d.kind));
  w.u64(d.job.value());
  w.u64(d.for_job.value());
  w.u64(d.request.value());
  w.i32(d.cores);
  w.time(d.start);
  w.boolean(d.backfilled);
  w.boolean(d.applied);
  w.boolean(d.deferred);
  w.str(d.reason);
  w.opt_time(d.hint);
  return out;
}

std::vector<unsigned char> encode_ingest(const IngestRecord& r) {
  std::vector<unsigned char> out;
  Writer w(out);
  w.u64(r.seq);
  w.u8(static_cast<std::uint8_t>(r.kind));
  w.time(r.requested);
  w.time(r.admitted);
  put_spec(w, r.spec);
  put_behavior(w, r.behavior);
  w.u64(r.job.value());
  return out;
}

IngestRecord decode_ingest(const unsigned char* data, std::size_t size) {
  Reader r(data, size);
  IngestRecord rec;
  rec.seq = r.u64();
  const std::uint8_t kind = r.u8();
  DBS_REQUIRE(kind == static_cast<std::uint8_t>(IngestKind::Submit) ||
                  kind == static_cast<std::uint8_t>(IngestKind::Cancel),
              "WAL ingest kind out of range");
  rec.kind = static_cast<IngestKind>(kind);
  rec.requested = r.time();
  rec.admitted = r.time();
  rec.spec = get_spec(r);
  rec.behavior = get_behavior(r);
  rec.job = JobId(r.u64());
  DBS_REQUIRE(r.done(), "trailing bytes after WAL ingest record");
  return rec;
}

// --- WAL writer ------------------------------------------------------------

WalWriter::WalWriter(const std::string& path, std::uint64_t keep_bytes)
    : path_(path) {
  if (keep_bytes == 0) {
    fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    DBS_REQUIRE(fd_ >= 0, "cannot create WAL: " + path);
    unsigned char header[kWalHeaderSize];
    store_le<std::uint32_t>(header, kWalMagic);
    store_le<std::uint32_t>(header + 4, kWalVersion);
    write_all(fd_, header, sizeof(header), path_);
    fsync_checked(fd_, path_);
    fsync_parent_dir(path_);
  } else {
    DBS_REQUIRE(keep_bytes >= kWalHeaderSize,
                "WAL keep offset inside the header");
    fd_ = ::open(path.c_str(), O_WRONLY, 0644);
    DBS_REQUIRE(fd_ >= 0, "cannot open WAL: " + path);
    DBS_REQUIRE(::ftruncate(fd_, static_cast<off_t>(keep_bytes)) == 0,
                "cannot truncate WAL: " + path);
    DBS_REQUIRE(::lseek(fd_, 0, SEEK_END) ==
                    static_cast<off_t>(keep_bytes),
                "cannot seek WAL: " + path);
    fsync_checked(fd_, path_);
  }
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    if (!buffer_.empty())
      write_all(fd_, buffer_.data(), buffer_.size(), path_);
    ::fsync(fd_);
    ::close(fd_);
  }
}

void WalWriter::append_record(std::uint8_t type,
                              const std::vector<unsigned char>& payload) {
  buffer_.push_back(type);
  unsigned char len[4];
  store_le<std::uint32_t>(len, static_cast<std::uint32_t>(payload.size()));
  buffer_.insert(buffer_.end(), len, len + 4);
  buffer_.insert(buffer_.end(), payload.begin(), payload.end());
}

void WalWriter::append_ingest(const IngestRecord& r) {
  append_record(kWalIngest, encode_ingest(r));
  ++ingest_;
}

void WalWriter::append_decision(Time at, std::uint64_t iteration,
                                const rms::Decision& d) {
  append_record(kWalDecision, encode_decision(at, iteration, d));
  ++decisions_;
}

void WalWriter::sync() {
  if (!buffer_.empty()) {
    write_all(fd_, buffer_.data(), buffer_.size(), path_);
    buffer_.clear();
  }
  fsync_checked(fd_, path_);
}

// --- WAL reader ------------------------------------------------------------

WalContents read_wal(const std::string& path) {
  WalContents out;
  if (!std::filesystem::exists(path)) {
    out.valid_bytes = 0;
    return out;
  }
  const std::vector<unsigned char> data = read_file(path);
  DBS_REQUIRE(data.size() >= kWalHeaderSize, "WAL shorter than its header");
  DBS_REQUIRE(load_le<std::uint32_t>(data.data()) == kWalMagic,
              "not a DBSW WAL");
  const std::uint32_t version = load_le<std::uint32_t>(data.data() + 4);
  DBS_REQUIRE(version == kWalVersion,
              "unsupported WAL version " + std::to_string(version));

  std::size_t pos = kWalHeaderSize;
  // Anything that fails to parse past this point is a torn tail from a
  // crash mid-append: stop at the last complete record rather than throw.
  while (pos + 5 <= data.size()) {
    const std::uint8_t type = data[pos];
    const std::uint32_t len = load_le<std::uint32_t>(data.data() + pos + 1);
    if (type != kWalIngest && type != kWalDecision) break;
    if (pos + 5 + len > data.size()) break;
    const unsigned char* payload = data.data() + pos + 5;
    if (type == kWalIngest) {
      IngestRecord rec;
      try {
        rec = decode_ingest(payload, len);
      } catch (const precondition_error&) {
        break;
      }
      out.ingest.push_back(std::move(rec));
    } else {
      if (len < 16) break;
      WalDecision d;
      d.at = Time::from_micros(load_le<std::int64_t>(payload));
      d.iteration = load_le<std::uint64_t>(payload + 8);
      d.payload.assign(payload, payload + len);
      out.decisions.push_back(std::move(d));
    }
    pos += 5 + len;
  }
  out.valid_bytes = pos;
  return out;
}

// --- state directory layout ------------------------------------------------

std::string wal_path(const std::string& state_dir) {
  return state_dir + "/wal.dbsw";
}

std::string snapshot_path(const std::string& state_dir,
                          std::uint64_t decisions) {
  return state_dir + "/snapshot-" + std::to_string(decisions) + ".dbss";
}

void write_snapshot(const std::string& state_dir, const SystemState& s) {
  const std::vector<unsigned char> bytes = encode_state(s);
  const std::string final_path = snapshot_path(state_dir, s.wal_decisions);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  DBS_REQUIRE(fd >= 0, "cannot create snapshot: " + tmp_path);
  write_all(fd, bytes.data(), bytes.size(), tmp_path);
  fsync_checked(fd, tmp_path);
  ::close(fd);
  DBS_REQUIRE(::rename(tmp_path.c_str(), final_path.c_str()) == 0,
              "cannot rename snapshot into place: " + final_path);
  fsync_parent_dir(final_path);
}

std::optional<SystemState> load_best_snapshot(const std::string& state_dir,
                                              std::uint64_t wal_ingest,
                                              std::uint64_t wal_decisions) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(state_dir)) return std::nullopt;

  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(state_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("snapshot-") || !name.ends_with(".dbss")) continue;
    const std::string digits =
        name.substr(9, name.size() - 9 - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    candidates.emplace_back(std::stoull(digits), entry.path().string());
  }
  // Newest (most decisions already covered) first; the WAL-consistency
  // check below skips snapshots from a future the truncated WAL no longer
  // reaches.
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  for (const auto& [decisions, path] : candidates) {
    SystemState s;
    try {
      s = decode_state(read_file(path));
    } catch (const precondition_error&) {
      continue;  // unreadable/corrupt snapshot: an older one still works
    }
    if (s.wal_decisions <= wal_decisions && s.wal_ingest <= wal_ingest)
      return s;
  }
  return std::nullopt;
}

std::size_t prune_snapshots(const std::string& state_dir, std::size_t keep) {
  namespace fs = std::filesystem;
  if (keep == 0 || !fs::is_directory(state_dir)) return 0;

  std::vector<std::pair<std::uint64_t, std::string>> candidates;
  for (const auto& entry : fs::directory_iterator(state_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (!name.starts_with("snapshot-") || !name.ends_with(".dbss")) continue;
    const std::string digits = name.substr(9, name.size() - 9 - 5);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    candidates.emplace_back(std::stoull(digits), entry.path().string());
  }
  if (candidates.size() <= keep) return 0;
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  std::size_t removed = 0;
  std::error_code ec;
  for (std::size_t i = keep; i < candidates.size(); ++i)
    if (fs::remove(candidates[i].second, ec)) ++removed;
  return removed;
}

}  // namespace dbs::svc
