// Durable service state: versioned binary snapshots plus a write-ahead
// log, giving the always-on service crash recovery with deterministic
// re-execution.
//
// A snapshot captures the full SystemState at a quiescent point (between
// drain cycles of a zero-latency system: every protocol cascade has fired,
// so the remaining pending events are exactly reconstructible — mom
// completions and armed ask/release descriptors, the scheduler poll, and
// deferred retirements). The WAL records two things, both little-endian
// framed as [type u8][len u32][payload]:
//
//   ingest records   appended and fsynced in drain order BEFORE admission,
//                    so every input that can influence a decision is
//                    durable first;
//   decisions        the typed rms::Decision stream, appended as each is
//                    executed — a verification trail, not an input.
//
// Recovery = load the newest snapshot consistent with the WAL (its
// recorded WAL counts must not exceed what the log actually holds — a
// crash can lose a snapshot's tail but never un-write the log), re-arm
// pending events, re-schedule the WAL's unfired ingest tail at the
// RECORDED admitted times, then re-run. Determinism makes the re-made
// decisions byte-identical to the logged ones, which the service loop
// verifies record by record before switching the WAL back to append mode.
// Format details: DESIGN.md §13.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/maui_scheduler.hpp"
#include "metrics/recorder.hpp"
#include "rms/decision.hpp"
#include "rms/job.hpp"
#include "rms/mom.hpp"
#include "svc/ingest.hpp"

namespace dbs::batch {
class BatchSystem;
}

namespace dbs::svc {

/// Snapshot file format version; bump on any layout change.
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// "DBSS" little-endian.
inline constexpr std::uint32_t kSnapshotMagic = 0x53534244;
/// WAL file format version.
inline constexpr std::uint32_t kWalVersion = 1;
/// "DBSW" little-endian.
inline constexpr std::uint32_t kWalMagic = 0x57534244;
/// Bytes of the WAL header (magic + version).
inline constexpr std::uint64_t kWalHeaderSize = 8;

// --- the full serializable system image -----------------------------------

/// Everything the service must persist to resurrect a system mid-flight.
/// Derived planning state (reservation tables, plan/priority caches,
/// availability profiles) is deliberately absent: it is rebuilt from this
/// image on the first post-recovery iteration.
struct SystemState {
  Time now;

  // rms::Server
  std::uint64_t next_job = 0;
  std::uint64_t next_request = 0;
  struct JobEntry {
    JobId id;
    rms::JobSpec spec;
    Time submit;
    rms::Job::Restore restore;
    rms::AppState app;

    [[nodiscard]] bool operator==(const JobEntry&) const = default;
  };
  std::vector<JobEntry> jobs;                       ///< id order
  std::vector<rms::DynRequest> dyn_fifo;            ///< FIFO order
  std::vector<std::pair<JobId, Time>> hints;        ///< id order

  // cluster::Cluster (allocations are recovered from job placements)
  std::vector<std::uint8_t> node_states;

  // rms::MomManager
  std::vector<rms::MomManager::RuntimeState> moms;  ///< job-id order

  // core::MauiScheduler
  core::MauiScheduler::ServiceState scheduler;

  // metrics::Recorder (streaming mode)
  metrics::Recorder::State metrics;

  // service loop
  Time last_admitted;
  std::uint64_t wal_ingest = 0;     ///< WAL ingest records at capture
  std::uint64_t wal_decisions = 0;  ///< WAL decision records at capture
  /// Attached service RNG (e.g. a synthetic feeder's); all-zero = none.
  std::array<std::uint64_t, 4> rng{};

  [[nodiscard]] bool operator==(const SystemState&) const = default;
};

/// Captures the component state of `system` (the service-loop fields —
/// last_admitted, WAL counts, rng — are the caller's to fill). Requires a
/// quiescent zero-latency system with streaming metrics.
[[nodiscard]] SystemState capture_state(batch::BatchSystem& system);

/// Restores a snapshot into a freshly constructed system (same config,
/// nothing submitted yet): jumps the clock, re-creates jobs/applications,
/// replays allocations into the cluster, re-arms mom/poll/retirement
/// events and reloads the fairshare/DFS/metrics ledgers.
void restore_state(batch::BatchSystem& system, const SystemState& s);

// --- snapshot codec --------------------------------------------------------

[[nodiscard]] std::vector<unsigned char> encode_state(const SystemState& s);
/// Throws precondition_error on bad magic/version/truncation.
[[nodiscard]] SystemState decode_state(const unsigned char* data,
                                       std::size_t size);
[[nodiscard]] SystemState decode_state(const std::vector<unsigned char>& b);

// --- WAL -------------------------------------------------------------------

/// WAL record types (the framing byte).
inline constexpr std::uint8_t kWalIngest = 1;
inline constexpr std::uint8_t kWalDecision = 2;

/// Encodes one decision (with its execution time and iteration) into the
/// WAL payload form; byte-compared during recovery verification.
[[nodiscard]] std::vector<unsigned char> encode_decision(
    Time at, std::uint64_t iteration, const rms::Decision& d);
[[nodiscard]] std::vector<unsigned char> encode_ingest(const IngestRecord& r);
[[nodiscard]] IngestRecord decode_ingest(const unsigned char* data,
                                         std::size_t size);

/// Append-only WAL writer. `truncate_to` reopens an existing log cut to a
/// byte offset (recovery drops a torn tail); 0 starts a fresh log.
class WalWriter {
 public:
  /// Creates (or truncates to `keep_bytes` and appends to) `path`.
  /// keep_bytes == 0 writes a fresh header.
  WalWriter(const std::string& path, std::uint64_t keep_bytes = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  void append_ingest(const IngestRecord& r);
  void append_decision(Time at, std::uint64_t iteration,
                       const rms::Decision& d);
  /// Flushes buffered records and fsyncs the file.
  void sync();

  /// Records appended through this writer (excludes any kept prefix).
  [[nodiscard]] std::uint64_t appended_ingest() const { return ingest_; }
  [[nodiscard]] std::uint64_t appended_decisions() const {
    return decisions_;
  }

 private:
  void append_record(std::uint8_t type,
                     const std::vector<unsigned char>& payload);

  int fd_ = -1;
  std::string path_;
  std::vector<unsigned char> buffer_;
  std::uint64_t ingest_ = 0;
  std::uint64_t decisions_ = 0;
};

/// One decision as read back from the WAL: the raw payload (for the
/// byte-identical recovery check) plus the decoded execution time.
struct WalDecision {
  Time at;
  std::uint64_t iteration = 0;
  std::vector<unsigned char> payload;
};

/// A fully parsed WAL. `valid_bytes` is the offset just past the last
/// complete record — a torn tail (partial record after a crash mid-write)
/// is tolerated and cut there on reopen.
struct WalContents {
  std::vector<IngestRecord> ingest;
  std::vector<WalDecision> decisions;
  std::uint64_t valid_bytes = kWalHeaderSize;
};

/// Reads `path`; a missing file yields empty contents with valid_bytes 0
/// (recovery then cold-starts). Throws on bad magic/version.
[[nodiscard]] WalContents read_wal(const std::string& path);

// --- state directory layout ------------------------------------------------

/// Paths inside a service state directory.
[[nodiscard]] std::string wal_path(const std::string& state_dir);
[[nodiscard]] std::string snapshot_path(const std::string& state_dir,
                                        std::uint64_t decisions);

/// Writes `s` as snapshot-<wal_decisions>.dbss (write-to-temp + rename so
/// a crash mid-write never leaves a half snapshot under the final name).
void write_snapshot(const std::string& state_dir, const SystemState& s);

/// The newest on-disk snapshot consistent with a WAL holding
/// `wal_ingest`/`wal_decisions` complete records, or nullopt (cold start).
/// Unreadable or inconsistent snapshot files are skipped, not fatal: the
/// WAL can always re-derive from an older image.
[[nodiscard]] std::optional<SystemState> load_best_snapshot(
    const std::string& state_dir, std::uint64_t wal_ingest,
    std::uint64_t wal_decisions);

/// Deletes all but the `keep` newest snapshot files (by decision count).
/// Returns how many were removed. keep == 0 is a no-op: the caller must
/// always retain at least one image.
std::size_t prune_snapshots(const std::string& state_dir, std::size_t keep);

}  // namespace dbs::svc
