// The sharded always-on service: one ServiceLoop per scheduler shard, fed
// from a single global IngestQueue through the deterministic ShardRouter.
//
// Layout: the driver thread drains the global queue (total ticket order),
// routes every submission to its shard, and pushes it into that shard's
// private IngestQueue; then all K shard loops tick concurrently on a
// thread pool. Each shard owns its whole world — simulator, WAL
// (state_dir/shard-K/), snapshots, metrics registry — so the fan-out
// shares nothing mutable and a run at any thread count produces the same
// per-shard WAL bytes, decision streams and metrics as ticking the loops
// one after another.
//
// Recovery is per-shard and parallel: every shard restores its own
// snapshot and replays its own WAL tail independently. The router's
// least-loaded ledger is rebuilt from the per-shard WAL submit totals
// (cumulative, never decremented — exactly why the ledger only grows), so
// a reopened service routes every future job to the same shard a
// never-restarted one would have picked.
//
// Cancels: a JobId is only meaningful inside the shard that issued it, so
// cancels do not ride the global queue (route() has nothing to hash).
// Callers cancel through cancel(shard, ...), naming the shard the submit
// was routed to.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "batch/sharded_system.hpp"
#include "svc/service_loop.hpp"

namespace dbs::svc {

class ShardedService {
 public:
  /// Wires one ServiceLoop per shard of `system`. `config.state_dir` is
  /// the base directory: shard k persists under <state_dir>/shard-<k>
  /// (empty = non-durable). `snapshot_every`, `tick`, `max_ticks` etc.
  /// apply per shard; the driver owns wall_sleep pacing.
  ShardedService(batch::ShardedSystem& system, IngestQueue& ingest,
                 const ServiceConfig& config);
  ~ShardedService();

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Durable config only: recovers every shard (snapshot + WAL replay),
  /// concurrently on the system's shard pool, then seeds the router ledger
  /// from the recovered WALs. Returns true when any shard had prior state.
  bool open();

  /// Drives the service until the global ingest is closed and every shard
  /// drains — or stop()/max_ticks intervenes. Each cycle: route the global
  /// queue into the shard queues, then tick all K loops concurrently.
  /// Durable shards write their final snapshot on the way out. Returns
  /// driver cycles executed.
  std::uint64_t run();

  /// One driver cycle (route + parallel shard ticks).
  void tick();

  /// qdel on shard `k` (see the header comment on cancel routing).
  std::uint64_t cancel(std::size_t k, Time requested, JobId job);

  /// Thread-safe: makes run() return after the current cycle.
  void stop();

  [[nodiscard]] bool drained() const;
  [[nodiscard]] std::size_t shard_count() const { return loops_.size(); }
  [[nodiscard]] ServiceLoop& loop(std::size_t k) { return *loops_.at(k); }
  [[nodiscard]] IngestQueue& shard_queue(std::size_t k) {
    return *queues_.at(k);
  }
  /// Sum of per-shard WAL ingest records (the feeder-resume skip count).
  [[nodiscard]] std::uint64_t wal_ingest_total() const;
  [[nodiscard]] std::uint64_t wal_decision_total() const;
  [[nodiscard]] std::uint64_t snapshots_written() const;
  [[nodiscard]] bool recovered() const { return recovered_; }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }

 private:
  /// Drains the global queue and routes every record into its shard's
  /// private queue; propagates close() once the global stream ends.
  void route_pending();

  batch::ShardedSystem& system_;
  IngestQueue& ingest_;
  ServiceConfig config_;
  exec::ThreadPool pool_;
  std::vector<std::unique_ptr<IngestQueue>> queues_;
  std::vector<std::unique_ptr<ServiceLoop>> loops_;
  std::vector<IngestRecord> route_buf_;
  bool closed_shards_ = false;
  bool recovered_ = false;
  std::uint64_t ticks_ = 0;
  std::atomic<bool> stop_{false};
};

/// The per-shard durable-state directory: <base>/shard-<k>.
[[nodiscard]] std::string shard_state_dir(const std::string& base,
                                          std::size_t k);

}  // namespace dbs::svc
