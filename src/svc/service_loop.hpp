// The always-on service core: turns a one-shot BatchSystem into a daemon.
//
// One thread (the service loop) owns the simulation; any number of
// producer threads feed an IngestQueue. Each tick the loop
//
//   1. drains the queue, stamps each record's admission time
//      (monotone: max(requested, now + 1us, previous admission)),
//   2. appends + fsyncs the records to the WAL — inputs become durable
//      BEFORE they can influence any decision,
//   3. schedules them on the simulator's Submission lane,
//   4. advances virtual time by one tick — while the ingest is open, never
//      up to the admission watermark: staying strictly below it keeps
//      every simulated instant atomic, so a later drain can never stamp a
//      record onto an instant whose events already fired,
//   5. snapshots once enough decisions accumulated since the last one.
//
// Admission-time determinism: step 4's pacing keeps now() strictly below
// last_admitted whenever anything was admitted, so the stamp reduces to
// max(requested, last_admitted) — a pure function of the drained record
// sequence. Atomic instants make the rest deterministic too: the set of
// events sharing a timestamp (and with it the scheduler-iteration
// structure) is fixed once the instant fires, never split by a drain
// boundary. A crash replay that re-feeds the WAL's ingest tail therefore
// reproduces the admission times the live run chose, and with them the
// same decisions (verified byte-for-byte against the logged stream).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "svc/ingest.hpp"
#include "svc/state_store.hpp"

namespace dbs::batch {
class BatchSystem;
}

namespace dbs::svc {

struct ServiceConfig {
  /// Durable-state directory (WAL + snapshots). Empty = run without
  /// durability (pure in-memory service). Durability requires the system
  /// to use LatencyModel::zero() and streaming metrics (snapshots are
  /// taken at drain-cycle quiescence, which only zero latency guarantees).
  std::string state_dir;
  /// Take a snapshot once this many decisions accumulated since the last
  /// one (0 = only the final shutdown snapshot).
  std::uint64_t snapshot_every = 4096;
  /// On-disk snapshot files retained after each new one (0 = keep all).
  /// Older images stay recoverable only through the WAL-from-snapshot
  /// replay of whatever survives, so >= 2 is recommended.
  std::size_t keep_snapshots = 4;
  /// Virtual time the simulation advances per drain cycle.
  Duration tick = Duration::seconds(1);
  /// Wall-clock pause between drain cycles while the ingest is open
  /// (zero = free-running, e.g. trace replay at full speed).
  std::chrono::microseconds wall_sleep{0};
  /// Hard bound on drain cycles (0 = none); tests use it as a backstop.
  std::uint64_t max_ticks = 0;
};

class ServiceLoop {
 public:
  /// Wires the loop between `system` (not yet run) and `ingest`. With a
  /// durable config, requires zero latency and streaming metrics.
  ServiceLoop(batch::BatchSystem& system, IngestQueue& ingest,
              ServiceConfig config);
  ~ServiceLoop();

  ServiceLoop(const ServiceLoop&) = delete;
  ServiceLoop& operator=(const ServiceLoop&) = delete;

  /// Registers a generator whose state rides in every snapshot (e.g. a
  /// synthetic feeder's Rng). Call before open().
  void attach_rng(Rng* rng) { rng_ = rng; }

  /// Recovers durable state (durable config only; call once, before
  /// run()): restores the newest usable snapshot, re-feeds the WAL's
  /// unfired ingest tail at the recorded admission times, re-runs it while
  /// byte-comparing every re-made decision against the logged stream, then
  /// truncates the torn tail (if any) and reopens the WAL for appending.
  /// Returns true when prior state was found (false = cold start).
  bool open();

  /// Drain cycles until the ingest is closed and fully drained and the
  /// simulation runs dry — or stop()/max_ticks intervenes. A durable loop
  /// writes a final snapshot on the way out. Returns ticks executed.
  std::uint64_t run();

  /// One drain cycle (steps 1-5 above). Exposed for tests and custom
  /// drivers; run() is this in a loop.
  void tick();

  /// What run() does on the way out: the final (forced) snapshot. Custom
  /// drivers that call tick() directly (e.g. the sharded service fanning
  /// ticks across loops) call this once when their run ends.
  void finalize();

  /// Thread-safe: makes run() return after the current cycle.
  void stop() { stop_.store(true, std::memory_order_release); }

  /// True once the loop owes no more work: ingest closed and drained,
  /// simulation idle.
  [[nodiscard]] bool drained() const;

  [[nodiscard]] bool recovered() const { return recovered_; }
  /// Ingest records in the WAL (recovered + appended). A restarted trace
  /// feeder skips this many records to resume where it left off.
  [[nodiscard]] std::uint64_t wal_ingest_total() const {
    return wal_ingest_total_;
  }
  [[nodiscard]] std::uint64_t wal_decision_total() const {
    return wal_decision_total_;
  }
  /// Submit records in the WAL (recovered + appended), and their summed
  /// core weight (max(cores, 1) per submit — the router's charging rule).
  /// A sharded service seeds its router ledger from these after recovery,
  /// so a reopened service keeps routing exactly where a never-restarted
  /// one would.
  [[nodiscard]] std::uint64_t wal_submit_total() const {
    return wal_submit_total_;
  }
  [[nodiscard]] std::uint64_t wal_submit_cores() const {
    return wal_submit_cores_;
  }
  [[nodiscard]] std::uint64_t snapshots_written() const {
    return snapshots_written_;
  }
  [[nodiscard]] std::uint64_t ticks() const { return ticks_; }
  [[nodiscard]] Time last_admitted() const { return last_admitted_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  /// Stamps, logs and schedules everything currently queued. Returns the
  /// number of records admitted.
  std::size_t admit_pending();
  /// Schedules one (already admitted) record on the Submission lane.
  void schedule_record(const IngestRecord& r);
  /// DecisionApplier sink: verify against the recovery tail, then append.
  void on_decision(const rms::Decision& d);
  /// Maintains the wal_submit_* counters for one WAL-bound record.
  void count_submit(const IngestRecord& r);
  void maybe_snapshot(bool force);
  [[nodiscard]] SystemState capture_full() const;

  batch::BatchSystem& system_;
  IngestQueue& ingest_;
  ServiceConfig config_;
  bool durable_ = false;
  Rng* rng_ = nullptr;

  std::unique_ptr<WalWriter> wal_;
  Time last_admitted_;
  /// Admission times of WAL-logged records whose submission event has not
  /// fired yet (monotone). A snapshot only counts an ingest record as
  /// "covered" once its event fired; the rest form the replayable tail.
  std::deque<Time> pending_admits_;
  std::uint64_t ingest_fired_total_ = 0;
  std::uint64_t wal_ingest_total_ = 0;
  std::uint64_t wal_submit_total_ = 0;
  std::uint64_t wal_submit_cores_ = 0;
  std::uint64_t wal_decision_total_ = 0;
  std::uint64_t decisions_at_snapshot_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::uint64_t ticks_ = 0;
  bool opened_ = false;
  bool recovered_ = false;

  /// Recovery verification window: logged decisions not yet re-made.
  std::vector<WalDecision> expected_;
  std::size_t expected_next_ = 0;

  std::vector<IngestRecord> drain_buf_;
  std::atomic<bool> stop_{false};
};

}  // namespace dbs::svc
