// BatchSystem's service-mode members. They live in the svc layer (not
// batch_system.cpp) so the one-shot core library carries no dependency on
// the service code; linking dbs_svc is what makes these symbols exist.
#include "batch/batch_system.hpp"
#include "common/assert.hpp"
#include "svc/ingest.hpp"
#include "svc/service_loop.hpp"

namespace dbs::batch {

svc::ServiceLoop& BatchSystem::attach_ingest(svc::IngestQueue& ingest,
                                             const svc::ServiceConfig& config) {
  DBS_REQUIRE(!service_, "a service loop is already attached");
  service_ = std::make_shared<svc::ServiceLoop>(*this, ingest, config);
  return *service_;
}

bool BatchSystem::open_state() {
  DBS_REQUIRE(service_, "attach_ingest before open_state");
  return service_->open();
}

std::uint64_t BatchSystem::run_service() {
  DBS_REQUIRE(service_, "attach_ingest before run_service");
  return service_->run();
}

}  // namespace dbs::batch
