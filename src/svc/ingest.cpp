#include "svc/ingest.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace dbs::svc {

IngestQueue::IngestQueue(std::size_t shards) {
  DBS_REQUIRE(shards > 0, "ingest queue needs at least one shard");
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

std::uint64_t IngestQueue::push(IngestRecord&& r) {
  DBS_REQUIRE(!closed(), "push after close");
  // The ticket is drawn before the shard lock so the total order exists
  // independently of lock acquisition order; the drain sorts by it.
  const std::uint64_t seq = ticket_.fetch_add(1, std::memory_order_relaxed);
  r.seq = seq;
  Shard& shard = *shards_[seq % shards_.size()];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.items.push_back(std::move(r));
  }
  depth_.fetch_add(1, std::memory_order_relaxed);
  return seq;
}

std::uint64_t IngestQueue::submit(Time requested, rms::JobSpec spec,
                                  wl::Behavior behavior) {
  IngestRecord r;
  r.kind = IngestKind::Submit;
  r.requested = requested;
  r.spec = std::move(spec);
  r.behavior = behavior;
  return push(std::move(r));
}

std::uint64_t IngestQueue::cancel(Time requested, JobId job) {
  DBS_REQUIRE(job.valid(), "cancel needs a valid job id");
  IngestRecord r;
  r.kind = IngestKind::Cancel;
  r.requested = requested;
  r.job = job;
  return push(std::move(r));
}

std::size_t IngestQueue::drain(std::vector<IngestRecord>& out) {
  for (auto& shard_ptr : shards_) {
    std::vector<IngestRecord> taken;
    {
      std::lock_guard<std::mutex> lock(shard_ptr->mutex);
      taken.swap(shard_ptr->items);
    }
    for (auto& r : taken) stash_.push_back(std::move(r));
  }
  std::sort(stash_.begin(), stash_.end(),
            [](const IngestRecord& a, const IngestRecord& b) {
              return a.seq < b.seq;
            });
  // Release only the seq-contiguous prefix. A producer that drew ticket n
  // but lost the CPU before landing it in its shard must not be overtaken
  // by ticket n+1 from another shard: a drain that skipped n would hand
  // the service loop a reordered sequence, and the admission stamps (and
  // with them the whole schedule) would depend on that race. Records past
  // the gap wait in the stash; the straggler's push completes in bounded
  // time, so the next drain releases them.
  std::size_t k = 0;
  while (k < stash_.size() && stash_[k].seq == next_seq_ + k) ++k;
  for (std::size_t i = 0; i < k; ++i) out.push_back(std::move(stash_[i]));
  stash_.erase(stash_.begin(), stash_.begin() + static_cast<std::ptrdiff_t>(k));
  next_seq_ += k;
  if (k > 0) depth_.fetch_sub(k, std::memory_order_relaxed);
  return k;
}

}  // namespace dbs::svc
