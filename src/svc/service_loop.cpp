#include "svc/service_loop.hpp"

#include <algorithm>
#include <filesystem>
#include <thread>

#include "apps/app_model.hpp"
#include "batch/batch_system.hpp"
#include "common/assert.hpp"
#include "obs/registry.hpp"

namespace dbs::svc {
namespace {

[[nodiscard]] bool is_zero_latency(const rms::LatencyModel& m) {
  return m.client_to_server.is_zero() && m.server_to_mom.is_zero() &&
         m.mom_to_server.is_zero() && m.join_base.is_zero() &&
         m.join_per_node.is_zero() && m.dyn_join_base.is_zero() &&
         m.dyn_join_per_node.is_zero() && m.scheduler_delay.is_zero();
}

}  // namespace

ServiceLoop::ServiceLoop(batch::BatchSystem& system, IngestQueue& ingest,
                         ServiceConfig config)
    : system_(system), ingest_(ingest), config_(std::move(config)) {
  durable_ = !config_.state_dir.empty();
  if (durable_) {
    // Snapshots are taken at drain-cycle boundaries and assume quiescence:
    // every protocol cascade has fired, leaving only reconstructible
    // pending events. Only a zero-latency model guarantees that, and only
    // streaming metrics have a bounded, serializable state.
    DBS_REQUIRE(is_zero_latency(system_.config().latency),
                "durable service mode requires LatencyModel::zero()");
    DBS_REQUIRE(system_.config().streaming_metrics,
                "durable service mode requires streaming metrics");
    system_.scheduler().set_decision_sink(
        [this](const rms::Decision& d) { on_decision(d); });
  }
}

ServiceLoop::~ServiceLoop() = default;

bool ServiceLoop::open() {
  DBS_REQUIRE(durable_, "open() is only meaningful with a state_dir");
  DBS_REQUIRE(!opened_, "open() called twice");
  DBS_REQUIRE(ticks_ == 0, "open() must precede the first tick");
  opened_ = true;

  std::filesystem::create_directories(config_.state_dir);
  const std::string wal_file = wal_path(config_.state_dir);
  WalContents wal = read_wal(wal_file);
  const bool had_state = wal.valid_bytes != 0;

  std::optional<SystemState> snap =
      load_best_snapshot(config_.state_dir, wal.ingest.size(),
                         wal.decisions.size());
  std::uint64_t done_ingest = 0;
  std::uint64_t done_decisions = 0;
  if (snap) {
    restore_state(system_, *snap);
    last_admitted_ = snap->last_admitted;
    done_ingest = snap->wal_ingest;
    done_decisions = snap->wal_decisions;
    if (rng_ && snap->rng != std::array<std::uint64_t, 4>{})
      rng_->set_state(snap->rng);
  }

  // Reopen the WAL for appending, cut to the last complete record (a
  // crash mid-append leaves a torn tail; everything before it is law).
  wal_ = std::make_unique<WalWriter>(wal_file,
                                     had_state ? wal.valid_bytes : 0);
  wal_ingest_total_ = wal.ingest.size();
  for (const IngestRecord& r : wal.ingest) count_submit(r);
  wal_decision_total_ = done_decisions;
  decisions_at_snapshot_ = done_decisions;
  ingest_fired_total_ = done_ingest;

  // Re-feed the unfired ingest tail at its RECORDED admission times: the
  // admission stamp is a pure function of the drained sequence (see the
  // header), so these are exactly the times the crashed process chose.
  for (std::size_t i = done_ingest; i < wal.ingest.size(); ++i) {
    const IngestRecord& r = wal.ingest[i];
    schedule_record(r);
    pending_admits_.push_back(r.admitted);
    last_admitted_ = max(last_admitted_, r.admitted);
  }

  // Deterministic re-execution: run the tail forward and byte-compare
  // every re-made decision against the log before trusting the recovery.
  // Each horizon is the next logged decision's own timestamp — never a
  // tick-sized overshoot, which would run the clock past the admission
  // watermark and shift the stamps of everything admitted after recovery.
  expected_.assign(wal.decisions.begin() +
                       static_cast<std::ptrdiff_t>(done_decisions),
                   wal.decisions.end());
  expected_next_ = 0;
  while (expected_next_ < expected_.size()) {
    DBS_REQUIRE(!system_.simulator().idle(),
                "recovery ran dry before re-making every WAL decision");
    const std::size_t before = expected_next_;
    system_.run_until(expected_[expected_next_].at);
    DBS_REQUIRE(expected_next_ > before,
                "recovery diverged: no decision re-made at a logged time");
  }
  expected_.clear();
  expected_next_ = 0;

  recovered_ = had_state;
  return had_state;
}

std::size_t ServiceLoop::admit_pending() {
  drain_buf_.clear();
  const std::size_t n = ingest_.drain(drain_buf_);
  if (n == 0) return 0;

  const Time now = system_.simulator().now();
  for (auto& r : drain_buf_) {
    // Monotone admission: never before a previously admitted record and
    // always on an instant the simulator has not yet fired. The tick
    // pacing keeps now < last_admitted_ once anything was admitted, so
    // past bootstrap this reduces to max(requested, last_admitted_) — a
    // pure function of the drained sequence, reproducible from the WAL.
    const Time admitted =
        max(r.requested, max(now + Duration::micros(1), last_admitted_));
    r.admitted = admitted;
    last_admitted_ = admitted;
    if (wal_) wal_->append_ingest(r);
  }
  if (wal_) wal_->sync();  // durable BEFORE any of them can fire

  for (const auto& r : drain_buf_) {
    schedule_record(r);
    count_submit(r);
    if (durable_) pending_admits_.push_back(r.admitted);
  }
  wal_ingest_total_ += n;

  // Svc counters land in the system's own registry (falling back to the
  // global one): concurrently ticking shard loops must never share one.
  obs::Registry& reg = system_.scheduler().sinks().registry_or_global();
  reg.counter("svc.ingest.admitted").add(n);
  reg.gauge("svc.ingest.depth").set(static_cast<double>(ingest_.depth()));
  return n;
}

void ServiceLoop::schedule_record(const IngestRecord& r) {
  sim::Simulator& sim = system_.simulator();
  const Time fire_at =
      r.admitted + system_.config().latency.client_to_server;
  // Everything rides the Submission lane — the same lane the one-shot
  // workload drivers use — so live ingest, WAL replay and a
  // single-threaded re-run of the drained sequence produce identical
  // event orderings.
  if (r.kind == IngestKind::Submit) {
    sim.schedule_submission(
        fire_at, [this, spec = r.spec, behavior = r.behavior]() mutable {
          system_.server().submit(
              std::move(spec),
              apps::make_application(behavior, system_.config().speedup));
        });
  } else {
    sim.schedule_submission(fire_at, [this, job = r.job]() {
      system_.server().cancel(job);  // false (unknown/finished) is fine
    });
  }
}

void ServiceLoop::on_decision(const rms::Decision& d) {
  const Time now = system_.simulator().now();
  const std::uint64_t iteration = system_.scheduler().iterations();
  if (expected_next_ < expected_.size()) {
    const std::vector<unsigned char> bytes = encode_decision(now, iteration, d);
    DBS_REQUIRE(
        bytes == expected_[expected_next_].payload,
        "recovery divergence: a re-made decision differs from the WAL");
    ++expected_next_;
    ++wal_decision_total_;
    return;
  }
  wal_->append_decision(now, iteration, d);
  ++wal_decision_total_;
}

void ServiceLoop::tick() {
  DBS_REQUIRE(!durable_ || opened_,
              "durable service must open() before ticking");
  admit_pending();

  sim::Simulator& sim = system_.simulator();
  Time target = sim.now() + config_.tick;
  // Unclamped advance is only safe once no admission can ever happen
  // again: closed AND drained. Testing closed() alone races with a
  // producer that pushes records and then closes between our drain and
  // this check — the clock would run a tick ahead of queued records.
  if (!ingest_.closed() || ingest_.depth() != 0) {
    // Watermark pacing: while producers are live, virtual time stays
    // STRICTLY below the newest admission. The margin makes simulated
    // instants atomic — a later drain can never stamp a record onto an
    // instant whose events already fired (which would split one instant's
    // scheduler work across two iterations, an ordering the WAL cannot
    // reproduce on replay).
    target = min(target, last_admitted_ - Duration::micros(1));
    target = max(target, sim.now());
  }
  system_.run_until(target);
  ++ticks_;
  maybe_snapshot(false);
}

bool ServiceLoop::drained() const {
  return ingest_.closed() && ingest_.depth() == 0 &&
         system_.simulator().idle();
}

std::uint64_t ServiceLoop::run() {
  DBS_REQUIRE(!durable_ || opened_,
              "durable service must open() before run()");
  const std::uint64_t start_ticks = ticks_;
  while (!stop_.load(std::memory_order_acquire)) {
    tick();
    if (drained()) break;
    if (config_.max_ticks != 0 && ticks_ - start_ticks >= config_.max_ticks)
      break;
    if (config_.wall_sleep.count() > 0 && !ingest_.closed())
      std::this_thread::sleep_for(config_.wall_sleep);
  }
  maybe_snapshot(true);
  return ticks_ - start_ticks;
}

SystemState ServiceLoop::capture_full() const {
  SystemState s = capture_state(system_);
  s.last_admitted = last_admitted_;
  s.wal_ingest = ingest_fired_total_;
  s.wal_decisions = wal_decision_total_;
  if (rng_) s.rng = rng_->state();
  return s;
}

void ServiceLoop::maybe_snapshot(bool force) {
  if (!durable_ || !wal_) return;
  const std::uint64_t since = wal_decision_total_ - decisions_at_snapshot_;
  if (!force && (config_.snapshot_every == 0 || since < config_.snapshot_every))
    return;
  // Push buffered decision records out first: a snapshot must never claim
  // WAL counts the file does not yet durably hold, or recovery would
  // (correctly, but wastefully) refuse to use it.
  wal_->sync();
  // A WAL ingest record is part of the snapshot image only once its
  // submission event fired; the rest stay in the replayable tail.
  const Time now = system_.simulator().now();
  while (!pending_admits_.empty() && pending_admits_.front() <= now) {
    pending_admits_.pop_front();
    ++ingest_fired_total_;
  }
  write_snapshot(config_.state_dir, capture_full());
  decisions_at_snapshot_ = wal_decision_total_;
  ++snapshots_written_;
  system_.scheduler().sinks().registry_or_global().counter("svc.snapshots")
      .add(1);
  prune_snapshots(config_.state_dir, config_.keep_snapshots);
}

void ServiceLoop::finalize() { maybe_snapshot(true); }

void ServiceLoop::count_submit(const IngestRecord& r) {
  if (r.kind != IngestKind::Submit) return;
  ++wal_submit_total_;
  wal_submit_cores_ +=
      static_cast<std::uint64_t>(std::max<CoreCount>(r.spec.cores, 1));
}

}  // namespace dbs::svc
