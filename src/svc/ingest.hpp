// Concurrent submission ingest: the always-on service's front door.
//
// N producer threads (qsub shims, trace feeders, RPC handlers) push
// submissions and cancels; the single-threaded scheduler loop drains them
// in batches at iteration boundaries. A global atomic ticket gives every
// record a total order, so a drain — whatever the thread interleaving that
// produced it — yields one canonical sequence, and replaying that sequence
// single-threaded through the same Submission lane is byte-identical to
// the live run (the differential test in tests/svc exercises exactly
// this). Mutex-sharded MPSC: producers contend only per shard (ticket %
// shards), the consumer swaps each shard's vector out under its lock and
// merges by ticket outside any lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "common/time.hpp"
#include "common/types.hpp"
#include "rms/job.hpp"
#include "workload/esp.hpp"

namespace dbs::svc {

enum class IngestKind : std::uint8_t {
  Submit = 1,  ///< qsub: spec + behavior
  Cancel = 2,  ///< qdel: job
};

/// One ingested client command. `requested` is the client's submission
/// time on the service clock; `admitted` is stamped by the drain loop
/// (monotone, never in the sim's past) and is the time the event actually
/// fires — the WAL records it so a replay reproduces the admission
/// schedule exactly.
struct IngestRecord {
  std::uint64_t seq = 0;  ///< global ticket: total order across producers
  IngestKind kind = IngestKind::Submit;
  Time requested;
  Time admitted;
  rms::JobSpec spec;      ///< Submit
  wl::Behavior behavior;  ///< Submit
  JobId job;              ///< Cancel

  [[nodiscard]] bool operator==(const IngestRecord&) const = default;
};

class IngestQueue {
 public:
  explicit IngestQueue(std::size_t shards = 8);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  // --- producer side (thread-safe) ----------------------------------------
  /// qsub. Returns the record's ticket.
  std::uint64_t submit(Time requested, rms::JobSpec spec,
                       wl::Behavior behavior);
  /// qdel. Returns the record's ticket.
  std::uint64_t cancel(Time requested, JobId job);
  /// Signals end-of-stream: no further pushes will arrive. Producers call
  /// this once they are done; the service loop drains what remains, then
  /// runs the system dry and exits.
  void close() { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const {
    return closed_.load(std::memory_order_acquire);
  }

  // --- consumer side (single-threaded) ------------------------------------
  /// Moves the seq-contiguous prefix of everything queued into `out`
  /// (appended), in ticket order. Records that arrived past a gap — a
  /// producer drew an earlier ticket but has not landed it in its shard
  /// yet — are held back until the straggler arrives, so successive drains
  /// always yield the exact ticket sequence 0,1,2,… regardless of thread
  /// interleaving. Returns the number of records released.
  std::size_t drain(std::vector<IngestRecord>& out);

  /// Records currently queued (approximate under concurrent pushes).
  [[nodiscard]] std::size_t depth() const {
    return depth_.load(std::memory_order_relaxed);
  }
  /// Tickets issued so far.
  [[nodiscard]] std::uint64_t pushed() const {
    return ticket_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    std::mutex mutex;
    std::vector<IngestRecord> items;
  };

  std::uint64_t push(IngestRecord&& r);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> ticket_{0};
  std::atomic<std::size_t> depth_{0};
  std::atomic<bool> closed_{false};
  /// Consumer-private: records swept from the shards but not yet
  /// releasable because an earlier ticket is still in flight.
  std::vector<IngestRecord> stash_;
  /// Consumer-private: the next ticket drain() will release.
  std::uint64_t next_seq_ = 0;
};

}  // namespace dbs::svc
