// dbsq — query a flight-recorder file written by `dbsim --record-out`.
//
//   dbsq summary  run.dbsr
//   dbsq jobs     run.dbsr [--job ID]
//   dbsq range    run.dbsr --from S --to S
//   dbsq timeline run.dbsr [--metric M] [--bucket S] [--format json|csv]
//   dbsq verify   run.dbsr --trace events.jsonl
//
// summary prints whole-file totals (one scan). jobs prints every record
// touching a job — an O(1) index lookup, not a file scan — as JSON lines;
// decision records render exactly like `dbsim --dry-run-iteration` output.
// Without --job it lists the indexed job ids. range streams the records in
// [--from, --to) seconds (time-bucket index positions the scan). timeline
// folds the run into per-bucket curves: --metric all (default) emits the
// full time-series document, or pick one of utilization, queue_depth,
// used_core_s, user_usage, user_delay for a compact table. verify
// cross-checks the recorded decision stream against the run's JSONL trace
// and exits nonzero on any mismatch.
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "metrics/timeseries.hpp"
#include "obs/recorder/query.hpp"
#include "obs/recorder/reader.hpp"
#include "obs/recorder/recorder.hpp"

using namespace dbs;

namespace {

int usage(const char* argv0, int code) {
  std::cerr
      << "usage: " << argv0 << " COMMAND FILE [options]\n"
         "  summary  FILE                     whole-file totals as JSON\n"
         "  jobs     FILE [--job ID]          one job's records (or the id list)\n"
         "  range    FILE --from S --to S     records in a time window\n"
         "  timeline FILE [--metric all|utilization|queue_depth|used_core_s|\n"
         "                 user_usage|user_delay] [--bucket S] [--format json|csv]\n"
         "  verify   FILE --trace JSONL       diff decisions vs a run trace\n";
  return code;
}

int cmd_timeline(obs::rec::RecordReader& reader, const std::string& metric,
                 std::int64_t bucket_s, const std::string& format) {
  metrics::TimeseriesOptions options;
  options.bucket_s = bucket_s;
  const metrics::Timeseries ts = metrics::fold_timeseries(reader, options);
  if (metric == "all") {
    if (format == "csv")
      metrics::write_timeseries_csv(ts, std::cout);
    else
      metrics::write_timeseries_json(ts, std::cout);
    return 0;
  }
  // Single-metric table: CSV-shaped either way (grep/plot-friendly).
  if (metric == "utilization" || metric == "queue_depth" ||
      metric == "used_core_s") {
    std::cout << "start_us," << metric << "\n";
    for (const auto& b : ts.buckets)
      std::cout << b.start_us << ","
                << (metric == "utilization"
                        ? b.utilization
                        : metric == "queue_depth" ? b.avg_queue_depth
                                                  : b.used_core_s)
                << "\n";
    return 0;
  }
  if (metric == "user_usage" || metric == "user_delay") {
    std::cout << "start_us";
    for (const auto& user : ts.users) std::cout << "," << user;
    std::cout << "\n";
    for (const auto& b : ts.buckets) {
      std::cout << b.start_us;
      const auto& per_user = metric == "user_usage" ? b.user_usage_core_s
                                                    : b.user_cum_delay_s;
      for (const auto& user : ts.users) {
        const auto it = per_user.find(user);
        std::cout << "," << (it == per_user.end() ? 0.0 : it->second);
      }
      std::cout << "\n";
    }
    return 0;
  }
  std::cerr << "unknown metric '" << metric << "'\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage(argv[0], argc == 2 ? 2 : 2);
  const std::string command = argv[1];
  const std::string file = argv[2];

  std::uint64_t job = ~std::uint64_t{0};
  bool have_job = false;
  double from_s = 0.0, to_s = 0.0;
  bool have_from = false, have_to = false;
  std::string metric = "all";
  std::int64_t bucket_s = 60;
  std::string format = "json";
  std::string trace_path;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) std::exit(usage(argv[0], 2));
      return argv[++i];
    };
    if (arg == "--job") {
      job = std::stoull(next());
      have_job = true;
    } else if (arg == "--from") {
      from_s = std::stod(next());
      have_from = true;
    } else if (arg == "--to") {
      to_s = std::stod(next());
      have_to = true;
    } else if (arg == "--metric") metric = next();
    else if (arg == "--bucket") bucket_s = std::stoll(next());
    else if (arg == "--format") format = next();
    else if (arg == "--trace") trace_path = next();
    else return usage(argv[0], 2);
  }

  obs::rec::RecordReader reader;
  if (!reader.open(file)) {
    std::cerr << reader.error() << "\n";
    return 1;
  }

  if (command == "summary") {
    obs::rec::write_summary_json(obs::rec::summarize(reader), std::cout);
    return 0;
  }
  if (command == "jobs") {
    if (!have_job) {
      for (const std::uint64_t id : reader.jobs()) std::cout << id << "\n";
      return 0;
    }
    if (!reader.has_job(job)) {
      std::cerr << "job " << job << " not in the index\n";
      return 1;
    }
    for (const auto& line : obs::rec::job_history(reader, job))
      std::cout << line.json << "\n";
    return 0;
  }
  if (command == "range") {
    if (!have_from || !have_to) return usage(argv[0], 2);
    reader.scan_range(
        static_cast<std::int64_t>(from_s * 1e6),
        static_cast<std::int64_t>(to_s * 1e6),
        [&](const obs::rec::PackedRecord& r) {
          if (obs::rec::is_decision(r.type)) {
            std::string out;
            rms::decision_to_json(obs::rec::record_to_decision(r, reader),
                                  out);
            std::cout << out << "\n";
          } else {
            std::cout << obs::rec::lifecycle_to_json(r, reader) << "\n";
          }
        });
    return 0;
  }
  if (command == "timeline") {
    if (bucket_s <= 0) {
      std::cerr << "--bucket must be positive\n";
      return 2;
    }
    if (format != "json" && format != "csv") {
      std::cerr << "unknown format '" << format << "'\n";
      return 2;
    }
    return cmd_timeline(reader, metric, bucket_s, format);
  }
  if (command == "verify") {
    if (trace_path.empty()) return usage(argv[0], 2);
    const obs::rec::VerifyResult result =
        obs::rec::verify_against_trace(reader, trace_path);
    std::cout << "compared " << result.compared
              << " decision/event pairs, " << result.mismatches.size()
              << " mismatches\n";
    for (const std::string& m : result.mismatches) std::cout << m << "\n";
    return result.ok() ? 0 : 1;
  }
  return usage(argv[0], 2);
}
