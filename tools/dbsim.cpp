// dbsim — run a workload trace through the dynamic batch system.
//
//   dbsim --trace workload.trace [--config maui.cfg] [--nodes 16]
//           [--cores-per-node 8] [--qstat] [--dry-run-iteration]
//           [--csv waits.csv]
//           [--trace-out events.jsonl] [--trace-format jsonl|chrome]
//           [--metrics-json metrics.json] [--record-out run.dbsr]
//           [--replications R] [--jobs N]
//           [--measure-threads M] [--stage-breakdown]
//           [--shards K] [--shard-by hash|user|partition|least]
//           [--shard-map range|hash] [--shard-threads T]
//
// The trace format is documented in src/workload/trace.hpp (write one with
// `esp_campaign --trace`). The config file uses the Maui-style syntax of
// the paper's Fig. 6 (see src/config/maui_config.hpp). --trace-out captures
// a structured scheduler event trace (--trace-format chrome emits Chrome
// trace-event JSON loadable in Perfetto / chrome://tracing); --metrics-json
// snapshots the run's metrics registry on exit (`-` writes it to stdout).
// --record-out captures the run as a binary flight-recorder file (every
// lifecycle event + every applied scheduler decision, indexed by job and
// time; query it with dbsq). With --replications R > 1 each replication
// records its own shard (<file>, <file>.rep1, ...) and an index-ordered
// manifest lands in <file>.manifest.json.
//
// Parallel execution: --replications R re-runs the trace R times as
// independent replications (isolated simulator + registry each) and
// --jobs N executes them on N threads; the merged metrics snapshot is
// byte-identical for every N (the trace goes to replication 0 only).
// --measure-threads M sets the scheduler's internal what-if measurement
// parallelism (MEASURETHREADS), overriding the config file; decisions are
// bit-identical at every M.
//
// Sharded scheduling: --shards K partitions the cluster's nodes into K
// shards (--shard-map range|hash), each scheduled by its own independent
// scheduler stack, and routes every submission to exactly one shard
// (--shard-by: hash/user = fnv1a(user) % K, partition = job class name
// matched against shard names part0..partK-1, least = deterministic
// least-loaded). --shard-threads T runs the K shard simulations on T
// threads; the output (summary, metrics, per-shard records) is
// byte-identical for every T. With --record-out each shard records its own
// file (<file>, <file>.rep1, ...) plus a manifest, exactly like
// --replications.
//
// --dry-run-iteration pauses mid-run (same snapshot point as --qstat),
// runs the scheduler pipeline once in dry-run mode and prints the decision
// stream it would execute (one JSON object per line) without applying any
// of it, then resumes the simulation. --stage-breakdown prints the mean
// per-stage wall time of a scheduler iteration after the run.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "batch/experiment.hpp"
#include "batch/parallel_runner.hpp"
#include "batch/sharded_system.hpp"
#include "config/maui_config.hpp"
#include "core/pipeline/iteration_context.hpp"
#include "obs/recorder/manifest.hpp"
#include "obs/recorder/recorder.hpp"
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "rms/decision.hpp"
#include "rms/status.hpp"
#include "svc/ingest.hpp"
#include "svc/service_loop.hpp"
#include "workload/swf/swf_source.hpp"
#include "workload/trace.hpp"

using namespace dbs;

namespace {

int usage(const char* argv0, int code) {
  std::cerr << "usage: " << argv0
            << " (--trace FILE | --swf FILE) [--config FILE] [--nodes N]\n"
               "       [--cores-per-node N] [--qstat] [--dry-run-iteration]\n"
               "       [--csv FILE]\n"
               "       [--trace-out FILE] [--trace-format jsonl|chrome]\n"
               "       [--metrics-json FILE|-] [--record-out FILE]\n"
               "       [--replications R] [--jobs N]\n"
               "       [--measure-threads M] [--stage-breakdown]\n"
               "       [--swf-window N] [--swf-overlay-dynamic PCT]\n"
               "       [--swf-seed S] [--swf-policy skip|strict]\n"
               "       [--swf-materialize] [--serve]\n"
               "       [--shards K] [--shard-by hash|user|partition|least]\n"
               "       [--shard-map range|hash] [--shard-threads T]\n";
  return code;
}

/// Mean per-stage wall time from the run's merged registry, one line,
/// plus the plan-cache effectiveness counters of the incremental planner:
/// how many per-job verdicts were recomputed vs answered from cache.
void print_stage_breakdown(const obs::Registry& registry) {
  std::cout << "stage breakdown (mean us/iteration):";
  for (const std::string_view name : core::stage_names()) {
    const obs::Histogram* h = registry.find_histogram(
        std::string("scheduler.stage_iteration_us.") + std::string(name));
    std::cout << " " << name << "=";
    if (h == nullptr || h->count() == 0)
      std::cout << "n/a";
    else
      std::cout << TextTable::num(h->sum() / static_cast<double>(h->count()),
                                  3);
  }
  const obs::Counter* replanned =
      registry.find_counter("scheduler.replanned_jobs");
  const obs::Counter* hits = registry.find_counter("scheduler.plan_cache_hits");
  std::cout << " replanned_jobs="
            << (replanned == nullptr ? 0 : replanned->value())
            << " cache_hits=" << (hits == nullptr ? 0 : hits->value());
  std::cout << "\n";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(1);
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path;
  std::string swf_path;
  std::size_t swf_window = 1024;
  double swf_overlay_pct = 0.0;
  std::uint64_t swf_seed = 2014;
  bool swf_strict = false;
  bool swf_materialize = false;
  bool serve = false;
  std::string config_path;
  std::string csv_path;
  std::string trace_out_path;
  std::string metrics_json_path;
  std::string record_out_path;
  obs::TraceFormat trace_format = obs::TraceFormat::Jsonl;
  std::size_t nodes = 0;
  CoreCount cores_per_node = 8;
  bool qstat = false;
  bool dry_run_iteration = false;
  bool stage_breakdown = false;
  std::size_t replications = 1;
  std::size_t run_jobs = 1;
  std::size_t measure_threads = 0;  // 0: keep the config-file value
  std::size_t shards = 1;
  std::size_t shard_threads = 1;
  core::RoutePolicy shard_by = core::RoutePolicy::UserHash;
  batch::ShardMapKind shard_map = batch::ShardMapKind::Range;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) std::exit(usage(argv[0], 2));
      return argv[++i];
    };
    if (arg == "--trace") trace_path = next();
    else if (arg == "--swf") swf_path = next();
    else if (arg == "--swf-window")
      swf_window = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--swf-overlay-dynamic") swf_overlay_pct = std::stod(next());
    else if (arg == "--swf-seed") swf_seed = std::stoull(next());
    else if (arg == "--swf-policy") {
      const std::string policy = next();
      if (policy == "strict") swf_strict = true;
      else if (policy == "skip") swf_strict = false;
      else {
        std::cerr << "unknown --swf-policy '" << policy
                  << "' (expected skip or strict)\n";
        return 2;
      }
    }
    else if (arg == "--swf-materialize") swf_materialize = true;
    else if (arg == "--serve") serve = true;
    else if (arg == "--config") config_path = next();
    else if (arg == "--nodes") nodes = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--cores-per-node") cores_per_node = std::stoi(next());
    else if (arg == "--qstat") qstat = true;
    else if (arg == "--dry-run-iteration") dry_run_iteration = true;
    else if (arg == "--stage-breakdown") stage_breakdown = true;
    else if (arg == "--csv") csv_path = next();
    else if (arg == "--trace-out") trace_out_path = next();
    else if (arg == "--trace-format") {
      const std::string fmt = next();
      if (!obs::parse_trace_format(fmt, trace_format)) {
        std::cerr << "unknown trace format '" << fmt
                  << "' (expected jsonl or chrome)\n";
        return 2;
      }
    }
    else if (arg == "--metrics-json") metrics_json_path = next();
    else if (arg == "--record-out") record_out_path = next();
    else if (arg == "--replications")
      replications = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--jobs")
      run_jobs = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--measure-threads")
      measure_threads = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--shards")
      shards = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--shard-threads")
      shard_threads = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--shard-by") {
      const std::string by = next();
      if (by == "hash" || by == "user") shard_by = core::RoutePolicy::UserHash;
      else if (by == "partition") shard_by = core::RoutePolicy::Partition;
      else if (by == "least" || by == "least-loaded")
        shard_by = core::RoutePolicy::LeastLoaded;
      else {
        std::cerr << "unknown --shard-by '" << by
                  << "' (expected hash, user, partition or least)\n";
        return 2;
      }
    }
    else if (arg == "--shard-map") {
      const std::string kind = next();
      if (kind == "range") shard_map = batch::ShardMapKind::Range;
      else if (kind == "hash") shard_map = batch::ShardMapKind::Hash;
      else {
        std::cerr << "unknown --shard-map '" << kind
                  << "' (expected range or hash)\n";
        return 2;
      }
    }
    else if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    else return usage(argv[0], 2);
  }
  if (trace_path.empty() == swf_path.empty()) {
    std::cerr << "exactly one of --trace and --swf is required\n";
    return usage(argv[0], 2);
  }
  if (!swf_path.empty()) {
    if (replications > 1) {
      std::cerr << "--swf streams from one file and supports --replications 1 "
                   "only\n";
      return 2;
    }
    if (qstat || dry_run_iteration) {
      std::cerr << "--qstat/--dry-run-iteration are not supported with --swf\n";
      return 2;
    }
    if (!csv_path.empty() && !swf_materialize) {
      std::cerr << "--csv needs per-job records; use --swf-materialize (the "
                   "streaming path folds finished jobs into aggregates)\n";
      return 2;
    }
    if (swf_window == 0) {
      std::cerr << "--swf-window must be >= 1\n";
      return 2;
    }
    if (swf_overlay_pct < 0.0 || swf_overlay_pct > 100.0) {
      std::cerr << "--swf-overlay-dynamic must be a percentage in [0, 100]\n";
      return 2;
    }
    if (serve && swf_materialize) {
      std::cerr << "--serve uses the streaming ingest path; drop "
                   "--swf-materialize\n";
      return 2;
    }
  }
  if (serve && swf_path.empty()) {
    std::cerr << "--serve requires --swf\n";
    return 2;
  }
  if (replications < 1 || run_jobs < 1) {
    std::cerr << "--replications and --jobs must be >= 1\n";
    return 2;
  }
  // `-` conventionally means stdout; the recorder writes an indexed binary
  // file and cannot stream, so reject it instead of creating a file
  // literally named "-". (--trace-out stays file-only: its formats are
  // stream-shaped but the tracer owns the file lifecycle.)
  if (record_out_path == "-") {
    std::cerr << "--record-out cannot write to stdout (`-`): the recorder "
                 "emits an indexed binary file; give it a path\n";
    return 2;
  }
  if ((qstat || dry_run_iteration) && replications > 1) {
    std::cerr << "--qstat and --dry-run-iteration are only supported with "
                 "--replications 1\n";
    return 2;
  }
  if (shards < 1 || shard_threads < 1) {
    std::cerr << "--shards and --shard-threads must be >= 1\n";
    return 2;
  }
  if (shards > 1) {
    if (qstat || dry_run_iteration || serve || replications > 1 ||
        !csv_path.empty()) {
      std::cerr << "--shards is incompatible with --qstat, "
                   "--dry-run-iteration, --serve, --replications > 1 and "
                   "--csv (per-shard job indices are not comparable; use "
                   "dbsd for a sharded service)\n";
      return 2;
    }
  }

  wl::Workload workload;
  if (!trace_path.empty()) {
    workload = wl::trace_from_string(slurp(trace_path));
    if (workload.jobs.empty()) {
      std::cerr << "trace contains no jobs\n";
      return 1;
    }
  }

  batch::SystemConfig system_config;
  if (!config_path.empty()) {
    const cfg::ParseResult parsed = cfg::parse_maui_config(slurp(config_path));
    for (const cfg::ParseIssue& issue : parsed.issues)
      std::cerr << config_path << ":" << issue.line << ": " << issue.message
                << "\n";
    if (!parsed.ok()) return 1;
    system_config.scheduler = parsed.config;
  }
  // Streaming SWF replay: open the trace and read its header directives
  // now, so --nodes 0 can size the cluster from MaxProcs.
  std::ifstream swf_in;
  std::unique_ptr<wl::swf::SwfSource> swf_source;
  if (!swf_path.empty()) {
    swf_in.open(swf_path, std::ios::binary);
    if (!swf_in) {
      std::cerr << "cannot open " << swf_path << "\n";
      return 1;
    }
    wl::swf::SwfSourceConfig swf_config;
    swf_config.policy = swf_strict ? wl::swf::MalformedPolicy::Strict
                                   : wl::swf::MalformedPolicy::Skip;
    swf_config.overlay_dynamic_fraction = swf_overlay_pct / 100.0;
    swf_config.overlay_seed = swf_seed;
    swf_source = std::make_unique<wl::swf::SwfSource>(swf_in, swf_config);
    const wl::swf::SwfHeader& header = swf_source->header();
    if (nodes == 0) {
      const CoreCount total =
          header.max_procs > 0 ? static_cast<CoreCount>(header.max_procs)
                               : 128;
      nodes = static_cast<std::size_t>((total + cores_per_node - 1) /
                                       cores_per_node);
    }
    swf_source->set_max_cores(static_cast<CoreCount>(
        static_cast<std::int64_t>(nodes) * cores_per_node));
    // Multi-month traces only fit if finished jobs release their storage
    // and metrics fold into aggregates as the replay advances.
    system_config.retire_finished_jobs = !swf_materialize;
    system_config.streaming_metrics = !swf_materialize;
  }
  if (nodes == 0) {
    const CoreCount total =
        workload.total_cores > 0 ? workload.total_cores : 128;
    nodes = static_cast<std::size_t>((total + cores_per_node - 1) /
                                     cores_per_node);
  }
  if (measure_threads > 0)
    system_config.scheduler.measure_threads = measure_threads;
  // Operator tooling always records the per-stage breakdown; the span
  // overhead only matters in benchmark hot loops.
  system_config.scheduler.stage_timing = true;
  system_config.cluster.node_count = nodes;
  system_config.cluster.cores_per_node = cores_per_node;

  obs::Registry registry;
  obs::Tracer tracer;
  if (!trace_out_path.empty()) {
    if (!tracer.open(trace_out_path, trace_format)) {
      std::cerr << "cannot open " << trace_out_path << "\n";
      return 1;
    }
  }

  // Every replication (even a single one) owns an isolated system +
  // registry; registries merge into `registry` in replication order, so
  // the metrics snapshot is byte-identical for every --jobs value. The
  // event trace is attached to replication 0 only: other replications are
  // identical re-runs and concurrent writers would interleave events.
  const auto capacity =
      static_cast<std::int64_t>(nodes) * static_cast<std::int64_t>(cores_per_node);
  obs::rec::Manifest manifest;
  metrics::WorkloadSummary summary;
  std::vector<metrics::WaitPoint> waits;
  std::vector<metrics::WorkloadSummary> shard_summaries;
  std::vector<std::uint64_t> shard_routed_jobs;
  if (shards > 1) {
    batch::ShardConfig shard_config;
    shard_config.shards = shards;
    shard_config.map = shard_map;
    shard_config.policy = shard_by;
    shard_config.threads = shard_threads;
    batch::ShardedSystem sharded(system_config, shard_config);
    std::vector<std::unique_ptr<obs::rec::FlightRecorder>> recorders;
    if (!record_out_path.empty()) {
      for (std::size_t k = 0; k < shards; ++k) {
        recorders.push_back(std::make_unique<obs::rec::FlightRecorder>());
        const std::string path = obs::rec::shard_path(record_out_path, k);
        if (!recorders.back()->open(path, capacity)) {
          std::cerr << "cannot open " << path << "\n";
          return 1;
        }
      }
    }
    // The event trace attaches to shard 0 only — concurrent shard writers
    // would interleave events nondeterministically.
    for (std::size_t k = 0; k < shards; ++k) {
      obs::Tracer* shard_tracer =
          k == 0 && !trace_out_path.empty() ? &tracer : nullptr;
      obs::rec::FlightRecorder* shard_recorder =
          recorders.empty() ? nullptr : recorders[k].get();
      if (shard_tracer != nullptr || shard_recorder != nullptr)
        sharded.set_shard_sinks(k, shard_tracer, shard_recorder);
    }
    if (swf_source != nullptr && !swf_materialize) {
      sharded.submit_stream(*swf_source, swf_window);
    } else {
      if (swf_source != nullptr) {
        wl::SubmitSpec s;
        while (swf_source->next(s)) workload.jobs.push_back(s);
      }
      sharded.submit_workload(workload);
    }
    sharded.run();
    summary = sharded.summary();
    sharded.merge_registries(registry);
    for (std::size_t k = 0; k < shards; ++k) {
      shard_summaries.push_back(sharded.shard_summary(k));
      shard_routed_jobs.push_back(sharded.router().routed_jobs(k));
    }
    for (std::size_t k = 0; k < recorders.size(); ++k) {
      obs::rec::FlightRecorder& recorder = *recorders[k];
      obs::rec::ManifestShard shard;
      shard.path = recorder.path();
      shard.replication = k;
      shard.records = recorder.records_written();
      shard.first_t_us = recorder.first_t_us();
      shard.last_t_us = recorder.last_t_us();
      if (!recorder.finalize()) {
        std::cerr << "cannot finalize " << shard.path << "\n";
        return 1;
      }
      manifest.shards.push_back(std::move(shard));
    }
  } else if (qstat || dry_run_iteration || swf_source != nullptr) {
    obs::rec::FlightRecorder recorder;
    if (!record_out_path.empty() &&
        !recorder.open(record_out_path, capacity)) {
      std::cerr << "cannot open " << record_out_path << "\n";
      return 1;
    }
    svc::IngestQueue ingest;  // --serve only; declared first to outlive
                              // the system's service loop
    batch::BatchSystem system(system_config);
    system.set_sinks({trace_out_path.empty() ? nullptr : &tracer, &registry,
                      recorder.is_open() ? &recorder : nullptr});
    if (swf_source != nullptr) {
      if (swf_materialize) {
        // Debug/equivalence path: drain the source into a Workload and
        // submit it the classic way (per-job records retained).
        wl::SubmitSpec s;
        while (swf_source->next(s)) workload.jobs.push_back(s);
        system.submit_workload(workload);
      } else if (serve) {
        // Service-mode smoke path: the same jobs flow through the
        // concurrent ingest queue + service loop (in-memory, no state
        // dir) instead of submit_stream, proving the service core
        // reproduces the one-shot replay.
        svc::ServiceConfig service_config;
        service_config.tick = Duration::seconds(3600);
        system.attach_ingest(ingest, service_config);
        std::thread producer([&]() {
          wl::SubmitSpec s;
          while (swf_source->next(s))
            ingest.submit(s.at, std::move(s.spec), s.behavior);
          ingest.close();
        });
        system.run_service();
        producer.join();
      } else {
        system.submit_stream(*swf_source, swf_window);
      }
    } else {
      system.submit_workload(workload);
    }
    // Pause mid-run (after the first quarter of the submission window) for
    // the status snapshot / what-if pass before finishing the simulation.
    const Time snapshot =
        swf_source != nullptr
            ? Time::epoch()
            : workload.jobs.back().at - (workload.jobs.back().at -
                                         workload.jobs.front().at) / 4 * 3;
    if (qstat || dry_run_iteration) system.run_until(snapshot);
    if (qstat)
      std::cout << "--- qstat @ " << snapshot.to_string() << " ---\n"
                << rms::format_qstat(system.server()) << "\n"
                << rms::format_pbsnodes(system.server()) << "\n"
                << rms::format_load_summary(system.server()) << "\n\n";
    if (dry_run_iteration) {
      const std::vector<rms::Decision> decisions =
          system.scheduler().dry_run_iteration();
      std::cout << "--- dry-run iteration @ " << snapshot.to_string() << " ("
                << decisions.size() << " decisions, not applied) ---\n";
      std::string line;
      for (const rms::Decision& d : decisions) {
        line.clear();
        rms::decision_to_json(d, line);
        std::cout << line << "\n";
      }
      std::cout << "\n";
    }
    system.run();
    summary = metrics::summarize(system.recorder());
    if (!system.recorder().streaming())
      waits = metrics::wait_series(system.recorder());
    if (recorder.is_open()) {
      obs::rec::ManifestShard shard;
      shard.path = recorder.path();
      shard.records = recorder.records_written();
      shard.first_t_us = recorder.first_t_us();
      shard.last_t_us = recorder.last_t_us();
      if (!recorder.finalize()) {
        std::cerr << "cannot finalize " << record_out_path << "\n";
        return 1;
      }
      manifest.shards.push_back(std::move(shard));
    }
  } else {
    batch::ParallelRunner runner(run_jobs);
    const auto run_one = [&](std::size_t index,
                             obs::Registry& replication_registry,
                             obs::rec::FlightRecorder* recorder) {
      batch::BatchSystem system(system_config);
      system.set_sinks({index == 0 && !trace_out_path.empty() ? &tracer
                                                              : nullptr,
                        &replication_registry, recorder});
      system.submit_workload(workload);
      system.run();
      batch::RunResult result;
      result.label = trace_path;
      result.summary = metrics::summarize(system.recorder());
      result.waits = metrics::wait_series(system.recorder());
      result.scheduler_iterations = system.scheduler().iterations();
      result.events = system.simulator().events_fired();
      return result;
    };
    std::vector<batch::RunResult> results;
    if (record_out_path.empty()) {
      results = runner.map<batch::RunResult>(
          replications,
          [&](std::size_t index, obs::Registry& replication_registry) {
            return run_one(index, replication_registry, nullptr);
          },
          &registry);
    } else {
      try {
        results = runner.map_recorded<batch::RunResult>(
            replications, record_out_path, capacity,
            [&](std::size_t index, obs::Registry& replication_registry,
                obs::rec::FlightRecorder& recorder) {
              return run_one(index, replication_registry, &recorder);
            },
            &registry, manifest);
      } catch (const std::exception& e) {
        std::cerr << e.what() << "\n";
        return 1;
      }
    }
    summary = results.front().summary;
    waits = std::move(results.front().waits);
  }

  const std::string& workload_label =
      trace_path.empty() ? swf_path : trace_path;
  TextTable table(metrics::performance_header());
  table.add_row(metrics::performance_row(workload_label, summary, 0.0));
  std::cout << table.to_string();
  std::cout << "avg wait " << summary.avg_wait.to_hms() << ", max wait "
            << summary.max_wait.to_hms() << ", backfilled "
            << summary.backfilled_jobs << ", evolving "
            << summary.evolving_jobs << " (satisfied "
            << summary.satisfied_dyn_jobs << ")\n";
  if (swf_source != nullptr) {
    const wl::swf::SwfParser& parser = swf_source->parser();
    std::cout << "swf replay: " << swf_source->yielded() << " jobs from "
              << parser.records() << " records (" << parser.malformed()
              << " malformed, " << swf_source->unusable() << " unusable, "
              << swf_source->clamped_cores() << " width-clamped, "
              << swf_source->clamped_times() << " time-clamped), overlay "
              << swf_source->overlay_marked() << " dynamic, "
              << swf_source->distinct_users() << " users / "
              << swf_source->distinct_groups() << " groups / "
              << swf_source->distinct_queues() << " queues, window "
              << (swf_materialize ? std::string("materialized")
                                  : std::to_string(swf_window))
              << "\n";
  }
  if (shards > 1) {
    TextTable shard_table(metrics::performance_header());
    for (std::size_t k = 0; k < shard_summaries.size(); ++k)
      shard_table.add_row(metrics::performance_row(
          "part" + std::to_string(k), shard_summaries[k], 0.0));
    std::cout << shard_table.to_string();
    std::cout << "shard routing (" << core::to_string(shard_by) << "):";
    for (std::size_t k = 0; k < shard_routed_jobs.size(); ++k)
      std::cout << " part" << k << "=" << shard_routed_jobs[k];
    std::cout << "; metrics merged across " << shards << " shards\n";
  }
  if (replications > 1)
    std::cout << replications << " replications on " << run_jobs
              << " thread(s); metrics merged across replications\n";
  if (stage_breakdown) print_stage_breakdown(registry);

  if (!csv_path.empty()) {
    TextTable csv({"submit_index", "name", "wait_seconds"});
    for (const auto& w : waits)
      csv.add_row({std::to_string(w.submit_index), w.name,
                   TextTable::num(w.wait.as_seconds(), 3)});
    std::ofstream out(csv_path);
    out << csv.to_csv();
    std::cout << "wrote per-job waits to " << csv_path << "\n";
  }

  if (!record_out_path.empty()) {
    // Shards are finalized; make the trace durable alongside them so the
    // record/trace pair on disk is consistent at this point.
    tracer.flush();
    std::cout << "recorded " << manifest.total_records() << " records to "
              << record_out_path;
    if (manifest.shards.size() > 1) {
      const std::string manifest_path = record_out_path + ".manifest.json";
      if (!manifest.write(manifest_path)) {
        std::cerr << "cannot open " << manifest_path << "\n";
        return 1;
      }
      std::cout << " (" << manifest.shards.size() << " shards, manifest "
                << manifest_path << ")";
    }
    std::cout << "\n";
  }
  if (!trace_out_path.empty()) {
    tracer.close();
    std::cout << "wrote " << tracer.events_emitted() << " trace events to "
              << trace_out_path << "\n";
  }
  if (!metrics_json_path.empty()) {
    if (metrics_json_path == "-") {
      registry.write_json(std::cout);
    } else if (!registry.write_json_file(metrics_json_path)) {
      std::cerr << "cannot open " << metrics_json_path << "\n";
      return 1;
    } else {
      std::cout << "wrote metrics snapshot to " << metrics_json_path << "\n";
    }
  }
  return 0;
}
