#!/usr/bin/env python3
"""Compare a google-benchmark JSON result file against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.20]

For every benchmark name present in both files, the current real_time may
exceed the baseline by at most `tolerance` (fractional, default 0.20 = 20%,
overridable via --tolerance or the DBS_BENCH_TOLERANCE env var). Benchmarks
only present on one side are reported as "new" (current only) or "removed"
(baseline only) and do not fail the check, so adding or retiring benchmarks
never requires touching the gate — a current file containing only new
benchmarks passes with exit 0. Malformed entries (missing name/real_time)
are skipped with a warning. Exit status: 0 OK, 1 if at least one shared
benchmark regressed beyond tolerance (or a scaling/RSS gate fired), 2 if
the current file has no usable benchmarks at all, 3 if either JSON file is
missing or unparseable (one-line error, no traceback).

CI runners are noisy; the tolerance is deliberately loose. It is meant to
catch order-of-magnitude mistakes (an accidental O(n^2) loop, a debug build
slipping into the bench job), not single-digit-percent drift.

Sweep benchmarks whose names end in a numeric size label (e.g.
`bm_scale_alloc_release/indexed/65536`) can additionally be compared ACROSS
labels of the current file with --scaling-report: benchmarks are grouped by
the name without the trailing label and the growth from the smallest to the
largest label is printed per group. With --max-scaling F the check fails if
any group matching --scaling-filter (a substring, default: every group)
grows by more than F× from its smallest to its largest label — this is how
CI catches an accidentally reintroduced O(nodes) term in the indexed
allocation kernels, independent of absolute machine speed. Trailing
google-benchmark modifiers (`/iterations:N`, `/manual_time`, ...) are part
of the group name, not the label, so `bm_replay_stream/1000000/manual_time`
groups with its 100000 and 10000000 siblings.

The `bench_shard` family (any benchmark whose leading name segment contains
"shard", e.g. `bm_shard_iter/4/256`) inverts the label rule: the FIRST
numeric path segment is the shard count and becomes the scaling label, and
the remaining segments (the fixed per-shard queue depth, modifiers) join
the group name — `bm_shard_iter/4/256` lands in group `bm_shard_iter/256`
with label 4. bench_shard is a weak-scaling sweep reporting per-shard
iteration wall time as manual time, so `--max-scaling` over these groups
gates flatness of the per-shard cost across shard counts — a machine-
independent check that sharding stays share-nothing — rather than absolute
times.

Memory counters — any user counter whose name contains "rss" (case
insensitive, e.g. bench_replay's `peak_rss_mb`) — are bytes, not
nanoseconds, so they are reported in their own table and gated by their
own knobs, never by the time tolerance: --rss-tolerance bounds growth
against the baseline's matching counter (default 0.50 — RSS depends on
allocator and kernel version far more than wall time does), and
--max-rss-scaling bounds growth across size labels of the current file.
The latter is how CI enforces bounded-memory replay: a 100x bigger trace
may not cost more than the given factor in peak RSS.
"""

import argparse
import json
import os
import re
import sys


# google-benchmark entry keys that are never user counters.
_STANDARD_FIELDS = {
    "name", "run_name", "run_type", "family_index", "per_family_instance_index",
    "repetitions", "repetition_index", "threads", "iterations", "real_time",
    "cpu_time", "time_unit", "items_per_second", "bytes_per_second", "label",
    "error_occurred", "error_message", "aggregate_name", "aggregate_unit",
}


class BenchFileError(Exception):
    """A result file is missing or not valid benchmark JSON."""


def load_benchmarks(path):
    """Returns (times, rss): {name: real_time ns} and, separately,
    {(name, counter): value} for every user counter whose name mentions
    RSS — memory numbers must never land in the time comparison.

    Raises BenchFileError (one line, no traceback) when the file cannot
    be read or parsed: a vanished baseline is an infrastructure problem,
    not a benchmark regression, and gets its own exit code (3)."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except OSError as e:
        raise BenchFileError(f"cannot read benchmark file: {path}: "
                             f"{e.strerror or e}") from e
    except json.JSONDecodeError as e:
        raise BenchFileError(f"invalid JSON in benchmark file: {path}: "
                             f"{e}") from e
    if not isinstance(doc, dict):
        raise BenchFileError(
            f"invalid benchmark file: {path}: top level is not an object"
        )
    times = {}
    rss = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is None or real_time is None:
            print(f"warning: {path}: skipping entry without name/real_time")
            continue
        try:
            times[name] = float(real_time)
        except (TypeError, ValueError):
            print(f"warning: {path}: non-numeric real_time for '{name}'")
            continue
        for key, value in bench.items():
            if key in _STANDARD_FIELDS or "rss" not in key.lower():
                continue
            if isinstance(value, (int, float)):
                rss[(name, key)] = float(value)
    return times, rss


def scaling_groups(benchmarks):
    """Groups `name/LABEL` entries by name; labels must be integers.

    Trailing non-numeric modifier segments (`/iterations:1`,
    `/manual_time`) belong to the group name, so the label is the LAST
    all-digit path segment. Exception: the shard family (leading segment
    containing "shard") labels by the FIRST numeric segment — the shard
    count — and folds the rest (fixed per-shard depth, modifiers) into
    the group, so scaling is measured across shard counts at equal
    per-shard load. Returns {base_name: [(label, time), ...]}
    sorted by label, for groups with at least two labels (a single size
    has no scaling to measure).
    """
    groups = {}
    for name, time in benchmarks.items():
        match = re.fullmatch(r"([^/]*shard[^/]*)/(\d+)((?:/[^/]+)*)", name)
        if match is None:
            match = re.fullmatch(r"(.+)/(\d+)((?:/[^/]+)*)", name)
        if not match:
            continue
        base = match.group(1) + match.group(3)
        groups.setdefault(base, []).append((int(match.group(2)), time))
    return {
        base: sorted(points)
        for base, points in groups.items()
        if len(points) >= 2
    }


def check_rss(base_rss, curr_rss, tolerance):
    """Baseline comparison for RSS counters; returns the offenders.

    Same shape as the time table but a separate gate: memory regressions
    and time regressions fail for different reasons and tolerate
    different noise.
    """
    shared = sorted(set(base_rss) & set(curr_rss))
    for name, counter in sorted(set(curr_rss) - set(base_rss)):
        print(f"note: new RSS counter '{name}[{counter}]' (no baseline yet)")
    if not shared:
        return []
    grown = []
    width = max(len(f"{n}[{c}]") for n, c in shared)
    print(f"\npeak RSS vs baseline (gate: --rss-tolerance {tolerance:.0%}):")
    print(f"{'counter':<{width}}  {'base':>12}  {'curr':>12}  ratio")
    for key in shared:
        name, counter = key
        ratio = (
            curr_rss[key] / base_rss[key] if base_rss[key] > 0 else float("inf")
        )
        flag = ""
        if ratio > 1.0 + tolerance:
            grown.append((f"{name}[{counter}]", ratio))
            flag = "  << RSS REGRESSION"
        print(
            f"{f'{name}[{counter}]':<{width}}  {base_rss[key]:>12.1f}"
            f"  {curr_rss[key]:>12.1f}  {ratio:5.2f}x{flag}"
        )
    return grown


def check_rss_scaling(curr_rss, max_rss_scaling):
    """Growth of each RSS counter across size labels; returns offenders.

    This is the bounded-memory gate: for a streaming replay, peak RSS
    across a 100x trace-size sweep must stay within --max-rss-scaling.
    """
    by_counter = {}
    for (name, counter), value in curr_rss.items():
        by_counter.setdefault(counter, {})[name] = value
    violations = []
    rows = []
    for counter in sorted(by_counter):
        for base, points in sorted(scaling_groups(by_counter[counter]).items()):
            (lo, v_lo), (hi, v_hi) = points[0], points[-1]
            growth = v_hi / v_lo if v_lo > 0 else float("inf")
            label = f"{base}[{counter}]"
            flag = ""
            if max_rss_scaling is not None and growth > max_rss_scaling:
                violations.append((label, growth))
                flag = "  << RSS SCALING"
            rows.append(
                (label, f"{lo:>7}..{hi:<7}", f"{v_lo:>9.1f}..{v_hi:<9.1f}",
                 f"{growth:6.1f}x{flag}")
            )
    if not rows:
        print("note: no RSS counters with numeric size labels")
        return []
    width = max(len(r[0]) for r in rows)
    print(f"\npeak RSS across size labels (growth = largest / smallest):")
    print(f"{'group':<{width}}  {'range':>16}  {'rss':>20}  growth")
    for label, rng, vals, growth in rows:
        print(f"{label:<{width}}  {rng}  {vals}  {growth}")
    return violations


def check_scaling(benchmarks, max_scaling, scaling_filter):
    """Prints the per-group scaling table; returns names growing too much."""
    groups = scaling_groups(benchmarks)
    if not groups:
        print("note: no benchmarks with numeric size labels; nothing to scale")
        return []
    violations = []
    width = max(len(n) for n in groups)
    print(f"\nscaling across size labels (growth = largest / smallest label):")
    print(f"{'group':<{width}}  {'range':>16}  {'time ns':>24}  growth")
    for base in sorted(groups):
        points = groups[base]
        (lo, t_lo), (hi, t_hi) = points[0], points[-1]
        growth = t_hi / t_lo if t_lo > 0 else float("inf")
        gated = max_scaling is not None and scaling_filter in base
        flag = ""
        if gated and growth > max_scaling:
            violations.append((base, growth))
            flag = "  << SCALING"
        print(
            f"{base:<{width}}  {lo:>7}..{hi:<7}  {t_lo:>11.1f}..{t_hi:<11.1f}"
            f"  {growth:6.1f}x{flag}"
        )
    return violations


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter
    )
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("DBS_BENCH_TOLERANCE", "0.20")),
        help="allowed fractional slowdown per benchmark (default 0.20)",
    )
    parser.add_argument(
        "--scaling-report",
        action="store_true",
        help="also print how each benchmark group in CURRENT grows across "
        "its numeric size labels",
    )
    parser.add_argument(
        "--max-scaling",
        type=float,
        default=None,
        help="fail if a group's largest-label time exceeds its "
        "smallest-label time by more than this factor (implies "
        "--scaling-report)",
    )
    parser.add_argument(
        "--scaling-filter",
        default="",
        help="only gate --max-scaling on groups whose name contains this "
        "substring (default: all groups)",
    )
    parser.add_argument(
        "--rss-tolerance",
        type=float,
        default=float(os.environ.get("DBS_BENCH_RSS_TOLERANCE", "0.50")),
        help="allowed fractional peak-RSS growth vs the baseline's matching "
        "counter (default 0.50; separate from the time tolerance)",
    )
    parser.add_argument(
        "--max-rss-scaling",
        type=float,
        default=None,
        help="fail if an RSS counter grows by more than this factor from "
        "the smallest to the largest size label of the current file "
        "(the bounded-memory gate)",
    )
    args = parser.parse_args()

    try:
        base, base_rss = load_benchmarks(args.baseline)
        curr, curr_rss = load_benchmarks(args.current)
    except BenchFileError as e:
        print(f"error: {e}", file=sys.stderr)
        return 3

    if not curr:
        print("error: current file has no usable benchmarks", file=sys.stderr)
        return 2

    shared = sorted(set(base) & set(curr))
    for name in sorted(set(base) - set(curr)):
        print(f"note: removed benchmark '{name}' (baseline only, skipped)")
    for name in sorted(set(curr) - set(base)):
        print(f"note: new benchmark '{name}' (no baseline yet, skipped)")

    regressed = []
    if not shared:
        # Every current benchmark is new — nothing to gate against yet.
        print(f"OK: {len(curr)} new benchmark(s), no shared baseline entries")
    else:
        width = max(len(n) for n in shared)
        print(f"{'benchmark':<{width}}  {'base ns':>12}  {'curr ns':>12}  ratio")
        for name in shared:
            ratio = curr[name] / base[name] if base[name] > 0 else float("inf")
            flag = ""
            if ratio > 1.0 + args.tolerance:
                regressed.append((name, ratio))
                flag = "  << REGRESSION"
            print(
                f"{name:<{width}}  {base[name]:>12.1f}  {curr[name]:>12.1f}"
                f"  {ratio:5.2f}x{flag}"
            )

    violations = []
    if args.scaling_report or args.max_scaling is not None:
        violations = check_scaling(curr, args.max_scaling, args.scaling_filter)

    rss_regressed = check_rss(base_rss, curr_rss, args.rss_tolerance)
    rss_violations = []
    if args.max_rss_scaling is not None:
        rss_violations = check_rss_scaling(curr_rss, args.max_rss_scaling)

    if regressed:
        print(
            f"\nFAIL: {len(regressed)}/{len(shared)} benchmark(s) slower than "
            f"baseline by more than {args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for name, ratio in regressed:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
    if violations:
        print(
            f"\nFAIL: {len(violations)} group(s) grow by more than "
            f"{args.max_scaling:.1f}x across size labels:",
            file=sys.stderr,
        )
        for name, growth in violations:
            print(f"  {name}: {growth:.1f}x", file=sys.stderr)
    if rss_regressed:
        print(
            f"\nFAIL: {len(rss_regressed)} RSS counter(s) above baseline by "
            f"more than {args.rss_tolerance:.0%}:",
            file=sys.stderr,
        )
        for name, ratio in rss_regressed:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
    if rss_violations:
        print(
            f"\nFAIL: {len(rss_violations)} RSS counter(s) grow by more than "
            f"{args.max_rss_scaling:.1f}x across size labels:",
            file=sys.stderr,
        )
        for name, growth in rss_violations:
            print(f"  {name}: {growth:.1f}x", file=sys.stderr)
    if regressed or violations or rss_regressed or rss_violations:
        return 1

    if shared:
        print(
            f"\nOK: {len(shared)} benchmark(s) within "
            f"{args.tolerance:.0%} of baseline"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
