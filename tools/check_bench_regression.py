#!/usr/bin/env python3
"""Compare a google-benchmark JSON result file against a committed baseline.

Usage:
    check_bench_regression.py BASELINE.json CURRENT.json [--tolerance 0.20]

For every benchmark name present in both files, the current real_time may
exceed the baseline by at most `tolerance` (fractional, default 0.20 = 20%,
overridable via --tolerance or the DBS_BENCH_TOLERANCE env var). Benchmarks
only present on one side are reported as "new" (current only) or "removed"
(baseline only) and do not fail the check, so adding or retiring benchmarks
never requires touching the gate — a current file containing only new
benchmarks passes with exit 0. Malformed entries (missing name/real_time)
are skipped with a warning. Exit status is non-zero iff at least one shared
benchmark regressed beyond tolerance, or the current file has no usable
benchmarks at all.

CI runners are noisy; the tolerance is deliberately loose. It is meant to
catch order-of-magnitude mistakes (an accidental O(n^2) loop, a debug build
slipping into the bench job), not single-digit-percent drift.
"""

import argparse
import json
import os
import sys


def load_benchmarks(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev) if repetitions were used.
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        real_time = bench.get("real_time")
        if name is None or real_time is None:
            print(f"warning: {path}: skipping entry without name/real_time")
            continue
        try:
            out[name] = float(real_time)
        except (TypeError, ValueError):
            print(f"warning: {path}: non-numeric real_time for '{name}'")
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("DBS_BENCH_TOLERANCE", "0.20")),
        help="allowed fractional slowdown per benchmark (default 0.20)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    curr = load_benchmarks(args.current)

    if not curr:
        print("error: current file has no usable benchmarks", file=sys.stderr)
        return 2

    shared = sorted(set(base) & set(curr))
    for name in sorted(set(base) - set(curr)):
        print(f"note: removed benchmark '{name}' (baseline only, skipped)")
    for name in sorted(set(curr) - set(base)):
        print(f"note: new benchmark '{name}' (no baseline yet, skipped)")
    if not shared:
        # Every current benchmark is new — nothing to gate against yet.
        print(f"OK: {len(curr)} new benchmark(s), no shared baseline entries")
        return 0

    regressed = []
    width = max(len(n) for n in shared)
    print(f"{'benchmark':<{width}}  {'base ns':>12}  {'curr ns':>12}  ratio")
    for name in shared:
        ratio = curr[name] / base[name] if base[name] > 0 else float("inf")
        flag = ""
        if ratio > 1.0 + args.tolerance:
            regressed.append((name, ratio))
            flag = "  << REGRESSION"
        print(
            f"{name:<{width}}  {base[name]:>12.1f}  {curr[name]:>12.1f}"
            f"  {ratio:5.2f}x{flag}"
        )

    if regressed:
        print(
            f"\nFAIL: {len(regressed)}/{len(shared)} benchmark(s) slower than "
            f"baseline by more than {args.tolerance:.0%}:",
            file=sys.stderr,
        )
        for name, ratio in regressed:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1

    print(f"\nOK: {len(shared)} benchmark(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
