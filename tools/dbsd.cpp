// `dbsd`: the always-on batch service daemon.
//
//   dbsd --swf FILE --state-dir DIR [--config FILE] [--nodes N]
//        [--cores-per-node N] [--snapshot-every N] [--tick-ms MS]
//        [--throttle-ms MS] [--max-jobs N] [--max-ticks N]
//        [--swf-overlay-dynamic PCT] [--swf-seed S]
//        [--summary-json FILE|-] [--quiet]
//        [--shards K] [--shard-by hash|user|partition|least]
//        [--shard-map range|hash] [--shard-threads T]
//
// Unlike dbsim (one-shot: submit a workload, run, report) dbsd runs a
// service: a producer thread feeds the SWF trace through the concurrent
// ingest queue — exactly as qsub shims would — while the service loop
// drains, appends to the write-ahead log, schedules and snapshots. Kill it
// at any moment (SIGKILL included) and restart with the same --state-dir:
// it recovers from the newest snapshot, replays the WAL tail, verifies the
// re-made decisions byte-for-byte against the log, skips the trace records
// it already ingested, and continues. SIGTERM/SIGINT stop cleanly (final
// snapshot written).
//
// --state-dir "" runs the service without durability (ingest path only).
// --throttle-ms paces the producer (gives a crash window to CI);
// --max-jobs bounds the trace prefix; --summary-json emits the final
// workload summary with stable keys, so an interrupted-and-recovered run
// can be diffed against an uninterrupted one.
//
// --shards K runs the sharded service: the cluster's nodes split into K
// shards (each with its own scheduler, WAL and snapshots under
// <state-dir>/shard-<k>), submissions route deterministically by
// --shard-by, and the K shard loops tick concurrently on --shard-threads
// workers. Recovery stays per-shard and parallel; the summary JSON is the
// capacity-weighted merge and is byte-identical for every --shard-threads.
#include <atomic>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <thread>

#include "batch/batch_system.hpp"
#include "batch/sharded_system.hpp"
#include "config/maui_config.hpp"
#include "metrics/report.hpp"
#include "svc/ingest.hpp"
#include "svc/service_loop.hpp"
#include "svc/sharded_service.hpp"
#include "workload/swf/swf_source.hpp"

using namespace dbs;

namespace {

svc::ServiceLoop* g_service = nullptr;
svc::ShardedService* g_sharded = nullptr;
std::atomic<bool> g_stop{false};

void handle_signal(int) {
  // All flags are plain atomic stores: async-signal-safe.
  g_stop.store(true);
  if (g_service != nullptr) g_service->stop();
  if (g_sharded != nullptr) g_sharded->stop();
}

int usage(const char* argv0, int code) {
  std::cerr
      << "usage: " << argv0
      << " --swf FILE [--state-dir DIR] [--config FILE] [--nodes N]\n"
         "       [--cores-per-node N] [--snapshot-every N] [--tick-ms MS]\n"
         "       [--throttle-ms MS] [--max-jobs N] [--max-ticks N]\n"
         "       [--swf-overlay-dynamic PCT] [--swf-seed S]\n"
         "       [--summary-json FILE|-] [--quiet]\n"
         "       [--shards K] [--shard-by hash|user|partition|least]\n"
         "       [--shard-map range|hash] [--shard-threads T]\n";
  return code;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_summary_json(std::ostream& os, const metrics::WorkloadSummary& s,
                        std::uint64_t wal_ingest, std::uint64_t wal_decisions,
                        bool recovered) {
  os << "{\n"
     << "  \"jobs_submitted\": " << s.jobs_submitted << ",\n"
     << "  \"jobs_completed\": " << s.jobs_completed << ",\n"
     << "  \"evolving_jobs\": " << s.evolving_jobs << ",\n"
     << "  \"satisfied_dyn_jobs\": " << s.satisfied_dyn_jobs << ",\n"
     << "  \"granted_dyn_requests\": " << s.granted_dyn_requests << ",\n"
     << "  \"backfilled_jobs\": " << s.backfilled_jobs << ",\n"
     << "  \"makespan_us\": " << s.makespan.as_micros() << ",\n"
     << "  \"avg_wait_us\": " << s.avg_wait.as_micros() << ",\n"
     << "  \"max_wait_us\": " << s.max_wait.as_micros() << ",\n"
     << "  \"avg_turnaround_us\": " << s.avg_turnaround.as_micros() << ",\n"
     << "  \"wal_ingest\": " << wal_ingest << ",\n"
     << "  \"wal_decisions\": " << wal_decisions << ",\n"
     << "  \"recovered\": " << (recovered ? "true" : "false") << "\n"
     << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string swf_path;
  std::string state_dir;
  std::string config_path;
  std::string summary_json;
  std::size_t nodes = 0;
  CoreCount cores_per_node = 8;
  std::uint64_t snapshot_every = 256;
  std::int64_t tick_ms = 3'600'000;  // accelerated replay: 1 h per cycle
  std::int64_t throttle_ms = 0;
  std::uint64_t max_jobs = 0;
  std::uint64_t max_ticks = 0;
  double overlay_pct = 0.0;
  std::uint64_t overlay_seed = 2014;
  bool quiet = false;
  std::size_t shards = 1;
  std::size_t shard_threads = 1;
  core::RoutePolicy shard_by = core::RoutePolicy::UserHash;
  batch::ShardMapKind shard_map = batch::ShardMapKind::Range;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--swf") swf_path = next();
    else if (arg == "--state-dir") state_dir = next();
    else if (arg == "--config") config_path = next();
    else if (arg == "--nodes") nodes = std::stoul(next());
    else if (arg == "--cores-per-node") cores_per_node = std::stoi(next());
    else if (arg == "--snapshot-every") snapshot_every = std::stoull(next());
    else if (arg == "--tick-ms") tick_ms = std::stoll(next());
    else if (arg == "--throttle-ms") throttle_ms = std::stoll(next());
    else if (arg == "--max-jobs") max_jobs = std::stoull(next());
    else if (arg == "--max-ticks") max_ticks = std::stoull(next());
    else if (arg == "--swf-overlay-dynamic") overlay_pct = std::stod(next());
    else if (arg == "--swf-seed") overlay_seed = std::stoull(next());
    else if (arg == "--summary-json") summary_json = next();
    else if (arg == "--quiet") quiet = true;
    else if (arg == "--shards") shards = std::stoul(next());
    else if (arg == "--shard-threads") shard_threads = std::stoul(next());
    else if (arg == "--shard-by") {
      const std::string by = next();
      if (by == "hash" || by == "user") shard_by = core::RoutePolicy::UserHash;
      else if (by == "partition") shard_by = core::RoutePolicy::Partition;
      else if (by == "least" || by == "least-loaded")
        shard_by = core::RoutePolicy::LeastLoaded;
      else {
        std::cerr << "unknown --shard-by '" << by
                  << "' (expected hash, user, partition or least)\n";
        return 2;
      }
    }
    else if (arg == "--shard-map") {
      const std::string kind = next();
      if (kind == "range") shard_map = batch::ShardMapKind::Range;
      else if (kind == "hash") shard_map = batch::ShardMapKind::Hash;
      else {
        std::cerr << "unknown --shard-map '" << kind
                  << "' (expected range or hash)\n";
        return 2;
      }
    }
    else if (arg == "--help" || arg == "-h") return usage(argv[0], 0);
    else {
      std::cerr << "unknown argument '" << arg << "'\n";
      return usage(argv[0], 2);
    }
  }
  if (swf_path.empty()) return usage(argv[0], 2);
  if (tick_ms <= 0) {
    std::cerr << "--tick-ms must be >= 1\n";
    return 2;
  }
  if (shards < 1 || shard_threads < 1) {
    std::cerr << "--shards and --shard-threads must be >= 1\n";
    return 2;
  }

  std::ifstream swf_in(swf_path, std::ios::binary);
  if (!swf_in) {
    std::cerr << "cannot open " << swf_path << "\n";
    return 1;
  }
  wl::swf::SwfSourceConfig swf_config;
  swf_config.overlay_dynamic_fraction = overlay_pct / 100.0;
  swf_config.overlay_seed = overlay_seed;
  wl::swf::SwfSource source(swf_in, swf_config);
  const wl::swf::SwfHeader& header = source.header();
  if (nodes == 0) {
    const CoreCount total =
        header.max_procs > 0 ? static_cast<CoreCount>(header.max_procs) : 128;
    nodes = static_cast<std::size_t>((total + cores_per_node - 1) /
                                     cores_per_node);
  }
  source.set_max_cores(static_cast<CoreCount>(
      static_cast<std::int64_t>(nodes) * cores_per_node));

  batch::SystemConfig system_config;
  if (!config_path.empty()) {
    const cfg::ParseResult parsed = cfg::parse_maui_config(slurp(config_path));
    for (const cfg::ParseIssue& issue : parsed.issues)
      std::cerr << config_path << ":" << issue.line << ": " << issue.message
                << "\n";
    if (!parsed.ok()) return 1;
    system_config.scheduler = parsed.config;
  }
  system_config.cluster.node_count = nodes;
  system_config.cluster.cores_per_node = cores_per_node;
  // The durable service requires both: snapshots are taken at quiescent
  // drain boundaries (zero latency) and must stay bounded (streaming).
  system_config.latency = rms::LatencyModel::zero();
  system_config.streaming_metrics = true;
  system_config.retire_finished_jobs = true;

  svc::ServiceConfig service_config;
  service_config.state_dir = state_dir;
  service_config.snapshot_every = snapshot_every;
  service_config.tick = Duration::millis(tick_ms);
  service_config.wall_sleep = std::chrono::microseconds(100);
  service_config.max_ticks = max_ticks;

  if (shards > 1) {
    batch::ShardConfig shard_config;
    shard_config.shards = shards;
    shard_config.map = shard_map;
    shard_config.policy = shard_by;
    shard_config.threads = shard_threads;
    batch::ShardedSystem sharded(system_config, shard_config);
    svc::IngestQueue ingest;
    svc::ShardedService service(sharded, ingest, service_config);

    bool recovered = false;
    if (!state_dir.empty()) {
      recovered = service.open();
      if (!quiet && recovered)
        std::cerr << "dbsd: recovered state from " << state_dir << "/shard-* ("
                  << service.wal_ingest_total() << " ingested, "
                  << service.wal_decision_total() << " decisions)\n";
    }

    g_sharded = &service;
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);

    // Routing is deterministic and the driver routes in global ticket
    // order (= trace order), so the first `skip` trace records are exactly
    // the ones the shard WALs already hold.
    const std::uint64_t skip = service.wal_ingest_total();
    std::thread producer([&]() {
      wl::SubmitSpec s;
      std::uint64_t yielded = 0;
      while (!g_stop.load(std::memory_order_acquire)) {
        if (!source.next(s)) break;
        ++yielded;
        if (yielded <= skip) continue;  // already in a shard WAL
        if (max_jobs != 0 && yielded > max_jobs) break;
        ingest.submit(s.at, std::move(s.spec), s.behavior);
        if (throttle_ms > 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(throttle_ms));
      }
      ingest.close();
    });

    const std::uint64_t ticks = service.run();
    g_stop.store(true);
    producer.join();

    const metrics::WorkloadSummary summary = sharded.summary();
    if (!quiet) {
      std::cerr << "dbsd: " << summary.jobs_submitted << " submitted, "
                << summary.jobs_completed << " completed, "
                << service.wal_decision_total() << " decisions, "
                << service.snapshots_written() << " snapshots, " << ticks
                << " ticks across " << shards << " shards"
                << (service.drained() ? "" : " (stopped before drain)")
                << "\n";
    }
    if (!summary_json.empty()) {
      if (summary_json == "-") {
        write_summary_json(std::cout, summary, service.wal_ingest_total(),
                           service.wal_decision_total(), recovered);
      } else {
        std::ofstream out(summary_json);
        if (!out) {
          std::cerr << "cannot open " << summary_json << "\n";
          return 1;
        }
        write_summary_json(out, summary, service.wal_ingest_total(),
                           service.wal_decision_total(), recovered);
      }
    }
    return 0;
  }

  batch::BatchSystem system(system_config);
  svc::IngestQueue ingest;
  svc::ServiceLoop& service = system.attach_ingest(ingest, service_config);

  bool recovered = false;
  if (!state_dir.empty()) {
    recovered = system.open_state();
    if (!quiet && recovered)
      std::cerr << "dbsd: recovered state from " << state_dir << " ("
                << service.wal_ingest_total() << " ingested, "
                << service.wal_decision_total() << " decisions)\n";
  }

  g_service = &service;
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);

  // The producer: replays the trace through the ingest queue the way qsub
  // shims would, skipping what a previous life already made durable.
  const std::uint64_t skip = service.wal_ingest_total();
  std::thread producer([&]() {
    wl::SubmitSpec s;
    std::uint64_t yielded = 0;
    while (!g_stop.load(std::memory_order_acquire)) {
      if (!source.next(s)) break;
      ++yielded;
      if (yielded <= skip) continue;  // already in the WAL
      if (max_jobs != 0 && yielded > max_jobs) break;
      ingest.submit(s.at, std::move(s.spec), s.behavior);
      if (throttle_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(throttle_ms));
    }
    ingest.close();
  });

  const std::uint64_t ticks = system.run_service();
  g_stop.store(true);
  producer.join();

  const metrics::WorkloadSummary summary = metrics::summarize(system.recorder());
  if (!quiet) {
    std::cerr << "dbsd: " << summary.jobs_submitted << " submitted, "
              << summary.jobs_completed << " completed, "
              << service.wal_decision_total() << " decisions, "
              << service.snapshots_written() << " snapshots, " << ticks
              << " ticks"
              << (service.drained() ? "" : " (stopped before drain)") << "\n";
  }
  if (!summary_json.empty()) {
    if (summary_json == "-") {
      write_summary_json(std::cout, summary, service.wal_ingest_total(),
                         service.wal_decision_total(), recovered);
    } else {
      std::ofstream out(summary_json);
      if (!out) {
        std::cerr << "cannot open " << summary_json << "\n";
        return 1;
      }
      write_summary_json(out, summary, service.wal_ingest_total(),
                         service.wal_decision_total(), recovered);
    }
  }
  return 0;
}
