// swfgen: emit a deterministic synthetic SWF trace on stdout (or to a
// file), for bench scales and CI parity checks against tools/gen_swf.py.
//
//   swfgen --jobs N [--seed S] [--max-procs P] [--users U]
//          [--mean-interarrival SEC] [--min-run SEC] [--run-spread SEC]
//          [--out FILE]
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "workload/swf/swf_gen.hpp"

namespace {

void usage() {
  std::cerr
      << "usage: swfgen [--jobs N] [--seed S] [--max-procs P] [--users U]\n"
         "              [--mean-interarrival SEC] [--min-run SEC]\n"
         "              [--run-spread SEC] [--out FILE]\n";
}

}  // namespace

int main(int argc, char** argv) {
  dbs::wl::swf::SwfGenParams params;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--jobs") {
      params.jobs = std::stoull(next());
    } else if (arg == "--seed") {
      params.seed = std::stoull(next());
    } else if (arg == "--max-procs") {
      params.max_procs = std::stoull(next());
    } else if (arg == "--users") {
      params.users = std::stoull(next());
    } else if (arg == "--mean-interarrival") {
      params.mean_interarrival_s = std::stoull(next());
    } else if (arg == "--min-run") {
      params.min_run_s = std::stoull(next());
    } else if (arg == "--run-spread") {
      params.run_spread_s = std::stoull(next());
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "unknown argument: " << arg << "\n";
      usage();
      return 2;
    }
  }
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "cannot open " << out_path << "\n";
      return 1;
    }
    dbs::wl::swf::generate_swf(out, params);
    return out.good() ? 0 : 1;
  }
  dbs::wl::swf::generate_swf(std::cout, params);
  return 0;
}
