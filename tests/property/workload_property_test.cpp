// Workload-level properties: ESP integrity across machine sizes and seeds,
// trace round-trips for arbitrary synthetic workloads.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.hpp"
#include "workload/esp.hpp"
#include "workload/trace.hpp"
#include "workload/synthetic.hpp"

namespace dbs::wl {
namespace {

class EspAcrossMachines : public testing::TestWithParam<CoreCount> {};

TEST_P(EspAcrossMachines, CompositionInvariant) {
  EspParams p;
  p.total_cores = GetParam();
  const Workload wl = generate_esp(p);
  EXPECT_EQ(wl.jobs.size(), 230u);
  EXPECT_EQ(wl.evolving_count(), 69u);
  std::size_t z_count = 0;
  for (const auto& j : wl.jobs) {
    EXPECT_GE(j.spec.cores, 1);
    EXPECT_LE(j.spec.cores, GetParam());
    EXPECT_GE(j.spec.walltime, j.behavior.static_runtime);
    if (j.spec.exclusive_priority) {
      ++z_count;
      EXPECT_EQ(j.spec.cores, GetParam());  // Z uses the whole machine
    }
  }
  EXPECT_EQ(z_count, 2u);
  // Submission times are non-decreasing.
  for (std::size_t i = 1; i < wl.jobs.size(); ++i)
    EXPECT_GE(wl.jobs[i].at, wl.jobs[i - 1].at);
}

INSTANTIATE_TEST_SUITE_P(MachineSizes, EspAcrossMachines,
                         testing::Values(64, 120, 128, 256, 512));

class EspSeeds : public testing::TestWithParam<std::uint64_t> {};

TEST_P(EspSeeds, ShuffleIsPermutationOfTypes) {
  EspParams p;
  p.seed = GetParam();
  const Workload wl = generate_esp(p);
  std::map<std::string, int> counts;
  for (const auto& j : wl.jobs) ++counts[j.spec.type_tag];
  for (const auto& t : esp_table())
    EXPECT_EQ(counts[std::string(1, t.letter)], t.count) << t.letter;
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspSeeds,
                         testing::Values(1u, 2014u, 31337u, 7u));

class TraceRoundTrip : public testing::TestWithParam<std::uint64_t> {};

TEST_P(TraceRoundTrip, SyntheticSurvivesSerialization) {
  SyntheticParams p;
  p.seed = GetParam();
  p.job_count = 80;
  p.evolving_fraction = 0.4;
  p.preemptible_fraction = 0.2;
  const Workload original = generate_synthetic(p);
  const Workload copy =
      trace_from_string(trace_to_string(original));
  ASSERT_EQ(copy.jobs.size(), original.jobs.size());
  for (std::size_t i = 0; i < original.jobs.size(); ++i) {
    const auto& a = original.jobs[i];
    const auto& b = copy.jobs[i];
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.spec.cores, b.spec.cores);
    EXPECT_EQ(a.spec.walltime, b.spec.walltime);
    EXPECT_EQ(a.spec.preemptible, b.spec.preemptible);
    EXPECT_EQ(a.behavior.evolving, b.behavior.evolving);
    EXPECT_EQ(a.behavior.static_runtime, b.behavior.static_runtime);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceRoundTrip,
                         testing::Values(5u, 6u, 7u, 8u));

}  // namespace
}  // namespace dbs::wl
