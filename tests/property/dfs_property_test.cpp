// Property tests for DFS accounting: monotonicity, conservation across
// commits, decay bounds, and admit/commit consistency under random delay
// batches.
#include <gtest/gtest.h>

#include "../testutil.hpp"
#include "common/rng.hpp"
#include "core/dfs_engine.hpp"

namespace dbs::core {
namespace {

struct World {
  std::vector<std::unique_ptr<rms::Job>> storage;
  std::vector<const rms::Job*> jobs;

  explicit World(Rng& rng, int job_count) {
    for (int i = 0; i < job_count; ++i) {
      rms::JobSpec s =
          test::spec("j" + std::to_string(i), 4, Duration::minutes(10),
                     "user" + std::to_string(rng.next_int(0, 4)));
      s.cred.group = "group" + std::to_string(rng.next_int(0, 2));
      storage.push_back(std::make_unique<rms::Job>(
          JobId{static_cast<std::uint64_t>(i)}, s,
          test::rigid(Duration::minutes(1)), Time::epoch()));
      jobs.push_back(storage.back().get());
    }
  }
};

class DfsProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(DfsProperty, AdmittedBatchesNeverExceedTargets) {
  Rng rng(GetParam());
  World world(rng, 20);

  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;
  cfg.defaults.target_delay = Duration::seconds(1000);
  DfsEngine engine(cfg);
  const Credentials requester{"evolver", "egrp", "", "", ""};

  std::unordered_map<std::string, Duration> charged;
  for (int round = 0; round < 200; ++round) {
    std::vector<DelayedJob> batch;
    const int n = static_cast<int>(rng.next_int(1, 4));
    for (int i = 0; i < n; ++i) {
      const auto idx = static_cast<std::size_t>(
          rng.next_int(0, static_cast<std::int64_t>(world.jobs.size()) - 1));
      batch.push_back(
          {world.jobs[idx], Duration::seconds(rng.next_int(0, 400))});
    }
    if (engine.admit(requester, batch) != DfsVerdict::Allowed) continue;
    engine.commit(requester, batch);
    for (const auto& d : batch)
      if (d.delay > Duration::zero())
        charged[d.job->spec().cred.user] += d.delay;
  }
  // Mirror accounting agrees and never exceeds the target.
  for (const auto& [user, total] : charged) {
    EXPECT_EQ(engine.accumulated(DfsEntityKind::User, user), total);
    EXPECT_LE(total, Duration::seconds(1000));
  }
}

TEST_P(DfsProperty, AccumulatedDelayIsMonotonicWithinInterval) {
  Rng rng(GetParam() + 7);
  World world(rng, 10);
  DfsConfig cfg;
  cfg.policy = DfsPolicy::TargetDelay;  // unlimited targets by default
  DfsEngine engine(cfg);
  const Credentials requester{"evolver", "", "", "", ""};
  Duration previous;
  for (int round = 0; round < 100; ++round) {
    const auto idx = static_cast<std::size_t>(rng.next_int(0, 9));
    engine.commit(requester, {{world.jobs[idx],
                               Duration::seconds(rng.next_int(0, 100))}});
    Duration total;
    for (int u = 0; u < 5; ++u)
      total += engine.accumulated(DfsEntityKind::User,
                                  "user" + std::to_string(u));
    EXPECT_GE(total, previous);
    previous = total;
  }
}

TEST_P(DfsProperty, DecayNeverIncreasesAccumulation) {
  Rng rng(GetParam() + 13);
  World world(rng, 10);
  for (const double decay : {0.0, 0.2, 0.5, 0.9, 1.0}) {
    DfsConfig cfg;
    cfg.policy = DfsPolicy::TargetDelay;
    cfg.interval = Duration::hours(1);
    cfg.decay = decay;
    DfsEngine engine(cfg);
    const Credentials requester{"evolver", "", "", "", ""};
    for (int i = 0; i < 20; ++i) {
      const auto idx = static_cast<std::size_t>(rng.next_int(0, 9));
      engine.commit(requester,
                    {{world.jobs[idx], Duration::seconds(rng.next_int(1, 500))}});
    }
    Duration before;
    for (int u = 0; u < 5; ++u)
      before += engine.accumulated(DfsEntityKind::User,
                                   "user" + std::to_string(u));
    engine.advance_to(Time::from_seconds(3601));
    Duration after;
    for (int u = 0; u < 5; ++u)
      after += engine.accumulated(DfsEntityKind::User,
                                  "user" + std::to_string(u));
    EXPECT_LE(after, before);
    // Exact scaling within rounding (each entity rounds once).
    EXPECT_NEAR(after.as_seconds(), before.as_seconds() * decay, 1e-3);
  }
}

TEST_P(DfsProperty, AdmitIsPureAndDeterministic) {
  Rng rng(GetParam() + 21);
  World world(rng, 8);
  DfsConfig cfg;
  cfg.policy = DfsPolicy::SingleAndTargetDelay;
  cfg.defaults.target_delay = Duration::seconds(300);
  cfg.defaults.single_delay = Duration::seconds(200);
  DfsEngine engine(cfg);
  const Credentials requester{"evolver", "", "", "", ""};
  std::vector<DelayedJob> batch;
  for (int i = 0; i < 3; ++i) {
    const auto idx = static_cast<std::size_t>(rng.next_int(0, 7));
    batch.push_back({world.jobs[idx], Duration::seconds(rng.next_int(0, 400))});
  }
  const DfsVerdict v1 = engine.admit(requester, batch);
  const DfsVerdict v2 = engine.admit(requester, batch);
  EXPECT_EQ(v1, v2);  // admit never mutates state
}

INSTANTIATE_TEST_SUITE_P(Seeds, DfsProperty,
                         testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace dbs::core
