// Property tests for the event engine: random event storms with
// cancellations must fire in exact time/FIFO order, exactly once.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "sim/simulator.hpp"

namespace dbs::sim {
namespace {

class SimProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(SimProperty, EventStormFiresInOrderExactlyOnce) {
  Rng rng(GetParam());
  Simulator sim;
  struct Fired {
    Time at;
    int id;
  };
  std::vector<Fired> fired;
  std::vector<EventId> handles;
  std::vector<Time> times;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    // Deliberately collide many timestamps to stress FIFO ordering.
    const Time t = Time::from_seconds(rng.next_int(0, 50));
    times.push_back(t);
    handles.push_back(
        sim.schedule_at(t, [&fired, &sim, i] { fired.push_back({sim.now(), i}); }));
  }
  // Cancel a random ~25%.
  std::vector<bool> cancelled(n, false);
  for (int i = 0; i < n; ++i) {
    if (rng.next_double() < 0.25) {
      EXPECT_TRUE(sim.cancel(handles[static_cast<std::size_t>(i)]));
      cancelled[static_cast<std::size_t>(i)] = true;
    }
  }
  sim.run();

  // Exactly the non-cancelled events fired, at their scheduled times.
  std::size_t expected = 0;
  for (int i = 0; i < n; ++i)
    if (!cancelled[static_cast<std::size_t>(i)]) ++expected;
  ASSERT_EQ(fired.size(), expected);
  std::vector<bool> seen(n, false);
  Time previous = Time::epoch();
  int previous_id = -1;
  for (const Fired& f : fired) {
    ASSERT_GE(f.id, 0);
    ASSERT_LT(f.id, n);
    EXPECT_FALSE(seen[static_cast<std::size_t>(f.id)]) << "double fire";
    seen[static_cast<std::size_t>(f.id)] = true;
    EXPECT_FALSE(cancelled[static_cast<std::size_t>(f.id)]);
    EXPECT_EQ(f.at, times[static_cast<std::size_t>(f.id)]);
    // Monotonic time; FIFO (insertion order) within equal timestamps.
    EXPECT_GE(f.at, previous);
    if (f.at == previous) EXPECT_GT(f.id, previous_id);
    previous = f.at;
    previous_id = f.id;
  }
}

TEST_P(SimProperty, NestedSchedulingKeepsOrder) {
  Rng rng(GetParam() + 5);
  Simulator sim;
  std::vector<Time> observed;
  // Events that spawn follow-up events at random future offsets.
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(Time::from_seconds(rng.next_int(0, 20)), [&, i] {
      observed.push_back(sim.now());
      const auto extra = rng.next_int(1, 30);
      if (i % 3 == 0)
        sim.schedule_after(Duration::seconds(extra),
                           [&] { observed.push_back(sim.now()); });
    });
  }
  sim.run();
  for (std::size_t i = 1; i < observed.size(); ++i)
    EXPECT_GE(observed[i], observed[i - 1]);
  EXPECT_TRUE(sim.idle());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimProperty,
                         testing::Values(3u, 17u, 555u, 90210u));

}  // namespace
}  // namespace dbs::sim
