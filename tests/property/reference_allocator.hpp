// The original scan-based cluster allocator, kept verbatim as a reference
// implementation for differential testing of the index-based Cluster
// (mirroring reference_profile.hpp for the availability profile). Slow but
// simple: every placement scans all nodes and stable-sorts candidates by
// (free cores, node id), release_all/held_by scan every node per job.
// Agreement — byte-identical placements, identical accounting — transfers
// the old allocator's auditability to the optimized production class.
#pragma once

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/allocation_policy.hpp"
#include "common/assert.hpp"
#include "common/types.hpp"

namespace dbs::cluster::testing {

class ReferenceCluster {
 public:
  ReferenceCluster(std::size_t node_count, CoreCount cores_per_node)
      : cores_per_node_(cores_per_node) {
    DBS_REQUIRE(node_count > 0, "cluster needs at least one node");
    DBS_REQUIRE(cores_per_node > 0, "nodes need at least one core");
    nodes_.resize(node_count);
    total_cores_ = static_cast<CoreCount>(node_count) * cores_per_node;
  }

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] CoreCount total_cores() const { return total_cores_; }
  [[nodiscard]] CoreCount cores_per_node() const { return cores_per_node_; }

  [[nodiscard]] CoreCount used_cores() const {
    CoreCount used = 0;
    for (const auto& n : nodes_) used += n.used;
    return used;
  }

  [[nodiscard]] CoreCount free_cores() const {
    CoreCount free = 0;
    for (const auto& n : nodes_) free += free_of(n);
    return free;
  }

  [[nodiscard]] CoreCount held_by(JobId job) const {
    CoreCount total = 0;
    for (const auto& n : nodes_) {
      auto it = n.held.find(job);
      if (it != n.held.end()) total += it->second;
    }
    return total;
  }

  std::optional<Placement> allocate(JobId job, CoreCount cores,
                                    AllocationPolicy policy) {
    DBS_REQUIRE(cores > 0, "allocation must be positive");
    if (cores > free_cores()) return std::nullopt;
    Placement placement;
    CoreCount remaining = cores;
    for (const std::size_t i : order_candidates(policy)) {
      if (remaining == 0) break;
      RefNode& n = nodes_[i];
      const CoreCount take = std::min(remaining, free_of(n));
      if (take == 0) continue;
      node_allocate(n, job, take);
      placement.shares.push_back({NodeId{i}, take});
      remaining -= take;
    }
    DBS_ASSERT(remaining == 0, "free_cores() promised capacity not found");
    return placement;
  }

  std::optional<Placement> allocate_chunked(JobId job, CoreCount cores,
                                            CoreCount ppn,
                                            AllocationPolicy policy) {
    DBS_REQUIRE(cores > 0, "allocation must be positive");
    DBS_REQUIRE(ppn > 0 && ppn <= cores_per_node_, "invalid ppn");
    const std::vector<CoreCount> chunks = chunk_sizes(cores, ppn);
    std::vector<CoreCount> free(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) free[i] = free_of(nodes_[i]);
    const auto picks = fit_chunks(chunks, free, order_candidates(policy));
    if (!picks) return std::nullopt;
    Placement placement;
    for (std::size_t c = 0; c < chunks.size(); ++c) {
      const std::size_t i = (*picks)[c];
      node_allocate(nodes_[i], job, chunks[c]);
      placement.shares.push_back({NodeId{i}, chunks[c]});
    }
    return placement;
  }

  [[nodiscard]] bool can_allocate_chunked(CoreCount cores, CoreCount ppn) const {
    DBS_REQUIRE(cores > 0, "query must be positive");
    DBS_REQUIRE(ppn > 0 && ppn <= cores_per_node_, "invalid ppn");
    const std::vector<CoreCount> chunks = chunk_sizes(cores, ppn);
    std::vector<CoreCount> free(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) free[i] = free_of(nodes_[i]);
    return fit_chunks(chunks, free,
                      order_candidates(AllocationPolicy::Pack))
        .has_value();
  }

  void release(JobId job, const Placement& placement) {
    for (const auto& share : placement.shares) {
      RefNode& n = nodes_[share.node.value()];
      auto it = n.held.find(job);
      DBS_REQUIRE(it != n.held.end() && it->second >= share.cores,
                  "releasing cores the job does not hold");
      it->second -= share.cores;
      n.used -= share.cores;
      if (it->second == 0) n.held.erase(it);
    }
  }

  Placement release_all(JobId job) {
    Placement freed;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      RefNode& n = nodes_[i];
      auto it = n.held.find(job);
      if (it == n.held.end()) continue;
      freed.shares.push_back({NodeId{i}, it->second});
      n.used -= it->second;
      n.held.erase(it);
    }
    return freed;
  }

  void set_node_state(NodeId id, bool up) { nodes_[id.value()].up = up; }

 private:
  struct RefNode {
    CoreCount used = 0;
    bool up = true;
    std::unordered_map<JobId, CoreCount> held;
  };

  [[nodiscard]] CoreCount free_of(const RefNode& n) const {
    return n.up ? cores_per_node_ - n.used : 0;
  }

  void node_allocate(RefNode& n, JobId job, CoreCount cores) {
    DBS_REQUIRE(n.up && cores <= free_of(n), "node oversubscription");
    n.held[job] += cores;
    n.used += cores;
  }

  /// The old order_candidates: all nodes with free cores, stable-sorted by
  /// free-core count (ascending for Pack, descending for Spread) with node
  /// id as the tie-break; FirstFit keeps plain node-id order.
  [[nodiscard]] std::vector<std::size_t> order_candidates(
      AllocationPolicy policy) const {
    std::vector<std::size_t> idx;
    idx.reserve(nodes_.size());
    for (std::size_t i = 0; i < nodes_.size(); ++i)
      if (free_of(nodes_[i]) > 0) idx.push_back(i);

    const auto by_free = [&](bool ascending) {
      std::stable_sort(idx.begin(), idx.end(),
                       [&](std::size_t a, std::size_t b) {
                         const CoreCount fa = free_of(nodes_[a]);
                         const CoreCount fb = free_of(nodes_[b]);
                         if (fa != fb) return ascending ? fa < fb : fa > fb;
                         return a < b;
                       });
    };

    switch (policy) {
      case AllocationPolicy::Pack:
        by_free(/*ascending=*/true);
        break;
      case AllocationPolicy::Spread:
        by_free(/*ascending=*/false);
        break;
      case AllocationPolicy::FirstFit:
        // idx is already in node-id order.
        break;
    }
    return idx;
  }

  static std::vector<CoreCount> chunk_sizes(CoreCount cores, CoreCount ppn) {
    std::vector<CoreCount> chunks(static_cast<std::size_t>(cores / ppn), ppn);
    if (cores % ppn != 0) chunks.push_back(cores % ppn);
    return chunks;
  }

  /// The old best-fit chunk assignment: for each chunk (largest first),
  /// the first not-yet-taken node in candidate order that fits it.
  static std::optional<std::vector<std::size_t>> fit_chunks(
      const std::vector<CoreCount>& chunks, std::vector<CoreCount> free,
      const std::vector<std::size_t>& candidate_order) {
    std::vector<std::size_t> picks;
    picks.reserve(chunks.size());
    std::vector<bool> taken(free.size(), false);
    for (const CoreCount chunk : chunks) {
      bool placed = false;
      for (const std::size_t i : candidate_order) {
        if (taken[i] || free[i] < chunk) continue;
        picks.push_back(i);
        taken[i] = true;
        placed = true;
        break;
      }
      if (!placed) return std::nullopt;
    }
    return picks;
  }

  std::vector<RefNode> nodes_;
  CoreCount cores_per_node_;
  CoreCount total_cores_ = 0;
};

}  // namespace dbs::cluster::testing
