// Property tests for the availability profile: random hold sets must keep
// the algebraic invariants that planning correctness rests on.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "core/availability_profile.hpp"

namespace dbs::core {
namespace {

struct Hold {
  Time from;
  Time to;
  CoreCount cores;
};

std::vector<Hold> random_holds(Rng& rng, CoreCount capacity, int count) {
  std::vector<Hold> holds;
  for (int i = 0; i < count; ++i) {
    const auto a = rng.next_int(0, 10'000);
    const auto b = rng.next_int(0, 10'000);
    if (a == b) continue;
    holds.push_back({Time::from_seconds(std::min(a, b)),
                     Time::from_seconds(std::max(a, b)),
                     static_cast<CoreCount>(rng.next_int(1, capacity / 4))});
  }
  return holds;
}

/// Reference free-core computation at one instant.
CoreCount reference_free(const std::vector<Hold>& holds, CoreCount capacity,
                         Time t) {
  CoreCount used = 0;
  for (const Hold& h : holds)
    if (h.from <= t && t < h.to) used += h.cores;
  return capacity - used;
}

class ProfileProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileProperty, MatchesReferenceModel) {
  Rng rng(GetParam());
  const CoreCount capacity = 128;
  AvailabilityProfile profile(Time::epoch(), capacity);
  std::vector<Hold> applied;
  for (const Hold& h : random_holds(rng, capacity, 30)) {
    // Only apply holds that stay feasible (as the scheduler does).
    bool fits = true;
    for (std::int64_t s = h.from.as_micros() / 1'000'000;
         s < h.to.as_micros() / 1'000'000 && fits; ++s)
      fits = reference_free(applied, capacity, Time::from_seconds(s)) >=
             h.cores;
    if (!fits) continue;
    profile.subtract(h.from, h.to, h.cores);
    applied.push_back(h);
  }
  // Pointwise agreement at random probe instants.
  for (int probe = 0; probe < 200; ++probe) {
    const Time t = Time::from_seconds(rng.next_int(0, 10'500));
    EXPECT_EQ(profile.free_at(t), reference_free(applied, capacity, t))
        << "at " << t;
  }
}

TEST_P(ProfileProperty, EarliestFitIsCorrectAndMinimal) {
  Rng rng(GetParam() + 1000);
  const CoreCount capacity = 64;
  AvailabilityProfile profile(Time::epoch(), capacity);
  std::vector<Hold> applied;
  for (const Hold& h : random_holds(rng, capacity, 15)) {
    bool fits = true;
    for (std::int64_t s = h.from.as_micros() / 1'000'000;
         s < h.to.as_micros() / 1'000'000 && fits; ++s)
      fits = reference_free(applied, capacity, Time::from_seconds(s)) >= h.cores;
    if (!fits) continue;
    profile.subtract(h.from, h.to, h.cores);
    applied.push_back(h);
  }

  for (int query = 0; query < 20; ++query) {
    const CoreCount cores = static_cast<CoreCount>(rng.next_int(1, capacity));
    const Duration dur = Duration::seconds(rng.next_int(1, 500));
    const Time t = profile.earliest_fit(cores, dur, Time::epoch());
    ASSERT_NE(t, Time::far_future());
    // The window fits...
    EXPECT_GE(profile.min_free(t, t + dur), cores);
    // ...and (second-granularity) no earlier second-aligned start fits a
    // window that ends at a breakpoint-aligned boundary. Probe a sample of
    // earlier instants.
    for (int probe = 0; probe < 20; ++probe) {
      if (t == Time::epoch()) break;
      const std::int64_t span_us = t.as_micros();
      const Time earlier =
          Time::from_micros(rng.next_int(0, span_us - 1));
      EXPECT_LT(profile.min_free(earlier, earlier + dur), cores)
          << "window at " << earlier << " also fits, earliest_fit gave " << t;
    }
  }
}

TEST_P(ProfileProperty, SubtractAddRoundTrips) {
  Rng rng(GetParam() + 2000);
  AvailabilityProfile profile(Time::epoch(), 64);
  const auto holds = random_holds(rng, 64, 10);
  for (const Hold& h : holds) profile.subtract_clamped(h.from, h.to, h.cores);
  const auto before = profile.breakpoints();
  profile.subtract(Time::from_seconds(20'000), Time::from_seconds(30'000), 5);
  profile.add(Time::from_seconds(20'000), Time::from_seconds(30'000), 5);
  // Values agree pointwise with the pre-round-trip profile.
  for (const auto& [t, free] : before)
    EXPECT_EQ(profile.free_at(t), free);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileProperty,
                         testing::Values(1u, 2u, 3u, 4u, 5u, 42u, 1234u,
                                         99999u));

}  // namespace
}  // namespace dbs::core
