// Property tests for the cluster allocator: random chunked
// allocate/release sequences against a reference model.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/rng.hpp"

namespace dbs::cluster {
namespace {

class ClusterProperty : public testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterProperty, AccountingMatchesReferenceModel) {
  Rng rng(GetParam());
  Cluster cluster(ClusterSpec{8, 8});
  std::map<JobId, Placement> live;
  std::map<JobId, CoreCount> expected;
  CoreCount expected_used = 0;
  std::uint64_t next_job = 0;

  for (int step = 0; step < 2000; ++step) {
    const bool allocate = live.empty() || rng.next_double() < 0.55;
    if (allocate) {
      const JobId id{next_job++};
      const auto cores = static_cast<CoreCount>(rng.next_int(1, 24));
      const auto ppn = static_cast<CoreCount>(rng.next_int(1, 8));
      const auto placement = cluster.allocate_chunked(id, cores, ppn);
      // Failure must change nothing.
      if (!placement.has_value()) {
        EXPECT_EQ(cluster.used_cores(), expected_used);
        continue;
      }
      // Success must deliver exactly the request, chunked correctly.
      EXPECT_EQ(placement->total_cores(), cores);
      for (const NodeShare& s : placement->shares) EXPECT_LE(s.cores, ppn);
      const std::size_t full_chunks = static_cast<std::size_t>(cores / ppn);
      EXPECT_EQ(placement->shares.size(),
                full_chunks + (cores % ppn != 0 ? 1 : 0));
      live[id] = *placement;
      expected[id] = cores;
      expected_used += cores;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.next_below(live.size())));
      if (rng.next_double() < 0.3 && it->second.total_cores() > 1) {
        // Partial release of a random subset.
        const auto part = static_cast<CoreCount>(
            rng.next_int(1, it->second.total_cores() - 1));
        const Placement freed = it->second.select_release(part);
        cluster.release(it->first, freed);
        expected_used -= part;
        expected[it->first] -= part;
        // Maintain the local mirror.
        Placement remaining;
        for (const NodeShare& s : it->second.shares) {
          CoreCount kept = s.cores;
          for (const NodeShare& f : freed.shares)
            if (f.node == s.node) kept -= f.cores;
          if (kept > 0) remaining.shares.push_back({s.node, kept});
        }
        it->second = remaining;
      } else {
        const Placement freed = cluster.release_all(it->first);
        EXPECT_EQ(freed.total_cores(), expected[it->first]);
        expected_used -= expected[it->first];
        expected.erase(it->first);
        live.erase(it);
      }
    }
    EXPECT_EQ(cluster.used_cores(), expected_used);
    EXPECT_EQ(cluster.free_cores(), 64 - expected_used);
    cluster.check_invariants();
    for (const auto& [id, cores] : expected)
      EXPECT_EQ(cluster.held_by(id), cores);
  }
}

TEST_P(ClusterProperty, CanAllocateChunkedIsConsistent) {
  Rng rng(GetParam() + 99);
  Cluster cluster(ClusterSpec{4, 8});
  // Random pre-occupancy.
  std::uint64_t next_job = 0;
  for (int i = 0; i < 6; ++i) {
    const auto cores = static_cast<CoreCount>(rng.next_int(1, 8));
    (void)cluster.allocate_chunked(JobId{next_job++}, cores, 8);
  }
  // The dry-run answer must match what allocate_chunked actually does.
  for (int query = 0; query < 100; ++query) {
    const auto cores = static_cast<CoreCount>(rng.next_int(1, 32));
    const auto ppn = static_cast<CoreCount>(rng.next_int(1, 8));
    const bool predicted = cluster.can_allocate_chunked(cores, ppn);
    const JobId id{next_job++};
    const auto placement = cluster.allocate_chunked(id, cores, ppn);
    EXPECT_EQ(predicted, placement.has_value())
        << cores << " cores ppn " << ppn;
    if (placement) cluster.release(id, *placement);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterProperty,
                         testing::Values(1u, 7u, 42u, 1234u));

}  // namespace
}  // namespace dbs::cluster
