// Differential tests: the flat-vector AvailabilityProfile must behave
// identically — breakpoint for breakpoint, answer for answer — to the
// original std::map reference implementation under random operation
// sequences mixing subtract / add / subtract_clamped with interleaved
// free_at / min_free / earliest_fit probes.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "core/availability_profile.hpp"
#include "reference_profile.hpp"

namespace dbs::core {
namespace {

using testing::ReferenceProfile;

constexpr CoreCount kCapacity = 128;

void expect_identical(const AvailabilityProfile& flat,
                      const ReferenceProfile& ref, int step) {
  const auto a = flat.breakpoints();
  const auto b = ref.breakpoints();
  ASSERT_EQ(a.size(), b.size()) << "breakpoint count diverged at op " << step;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "breakpoint time, op " << step;
    EXPECT_EQ(a[i].second, b[i].second)
        << "free cores at " << a[i].first << ", op " << step;
  }
}

class ProfileDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ProfileDifferential, RandomOpSequencesAgree) {
  Rng rng(GetParam());
  AvailabilityProfile flat(Time::epoch(), kCapacity);
  ReferenceProfile ref(Time::epoch(), kCapacity);
  // Track feasibly-subtracted holds so add() can reverse one of them and
  // subtract() never oversubscribes.
  struct Hold {
    Time from, to;
    CoreCount cores;
  };
  std::vector<Hold> reversible;

  for (int op = 0; op < 300; ++op) {
    const auto a = rng.next_int(0, 20'000);
    const auto b = rng.next_int(0, 20'000);
    const Time from = Time::from_seconds(std::min(a, b));
    const Time to = Time::from_seconds(std::max(a, b) + 1);
    const auto cores = static_cast<CoreCount>(rng.next_int(1, kCapacity / 4));

    switch (rng.next_int(0, 3)) {
      case 0:  // feasible subtract (the scheduler's can_fit-guarded path)
        if (ref.min_free(from, to) >= cores) {
          flat.subtract(from, to, cores);
          ref.subtract(from, to, cores);
          reversible.push_back({from, to, cores});
        }
        break;
      case 1:  // add back a previous hold (grant release / replanning)
        if (!reversible.empty()) {
          const std::size_t pick = static_cast<std::size_t>(rng.next_int(
              0, static_cast<int>(reversible.size()) - 1));
          const Hold h = reversible[pick];
          reversible.erase(reversible.begin() +
                           static_cast<std::ptrdiff_t>(pick));
          flat.add(h.from, h.to, h.cores);
          ref.add(h.from, h.to, h.cores);
        }
        break;
      case 2:  // clamped subtract (dynamic partition path) — irreversible
        flat.subtract_clamped(from, to, cores);
        ref.subtract_clamped(from, to, cores);
        reversible.clear();
        break;
      case 3: {  // occasional permanent hold, like a down node
        if (op % 29 == 0) {
          flat.subtract_clamped(from, Time::far_future(), cores);
          ref.subtract_clamped(from, Time::far_future(), cores);
          reversible.clear();
        }
        break;
      }
    }

    // Probe: point, interval and fit queries must agree exactly.
    const Time p = Time::from_seconds(rng.next_int(0, 21'000));
    ASSERT_EQ(flat.free_at(p), ref.free_at(p)) << "free_at, op " << op;
    const Time q0 = Time::from_seconds(rng.next_int(0, 20'000));
    const Time q1 = q0 + Duration::seconds(rng.next_int(1, 2'000));
    ASSERT_EQ(flat.min_free(q0, q1), ref.min_free(q0, q1))
        << "min_free, op " << op;
    const auto fit_cores = static_cast<CoreCount>(rng.next_int(1, kCapacity));
    const Duration dur = Duration::seconds(rng.next_int(1, 3'000));
    const Time nb = Time::from_seconds(rng.next_int(0, 15'000));
    ASSERT_EQ(flat.earliest_fit(fit_cores, dur, nb),
              ref.earliest_fit(fit_cores, dur, nb))
        << "earliest_fit(" << fit_cores << ", " << dur << ", " << nb
        << "), op " << op;
  }
  expect_identical(flat, ref, 300);
}

TEST_P(ProfileDifferential, EdgeIntervalsAgree) {
  Rng rng(GetParam() + 7777);
  AvailabilityProfile flat(Time::from_seconds(100), kCapacity);
  ReferenceProfile ref(Time::from_seconds(100), kCapacity);

  // Origin-clipped, zero-core, empty and far-future intervals.
  flat.subtract(Time::epoch(), Time::from_seconds(150), 10);
  ref.subtract(Time::epoch(), Time::from_seconds(150), 10);
  flat.subtract(Time::from_seconds(200), Time::from_seconds(200), 5);
  ref.subtract(Time::from_seconds(200), Time::from_seconds(200), 5);
  flat.subtract(Time::from_seconds(300), Time::from_seconds(400), 0);
  ref.subtract(Time::from_seconds(300), Time::from_seconds(400), 0);
  flat.subtract(Time::from_seconds(500), Time::far_future(), 7);
  ref.subtract(Time::from_seconds(500), Time::far_future(), 7);
  // Re-subtracting on exact existing breakpoints must not duplicate them.
  flat.subtract(Time::from_seconds(150), Time::from_seconds(500), 3);
  ref.subtract(Time::from_seconds(150), Time::from_seconds(500), 3);
  expect_identical(flat, ref, -1);

  for (int probe = 0; probe < 100; ++probe) {
    const Time t = Time::from_seconds(rng.next_int(100, 1'000));
    ASSERT_EQ(flat.free_at(t), ref.free_at(t)) << t;
    const auto cores = static_cast<CoreCount>(rng.next_int(1, kCapacity));
    const Duration dur = Duration::seconds(rng.next_int(1, 600));
    ASSERT_EQ(flat.earliest_fit(cores, dur, t),
              ref.earliest_fit(cores, dur, t));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProfileDifferential,
                         ::testing::Values(1u, 7u, 13u, 42u, 101u, 555u,
                                           4242u, 31337u, 90210u, 123456u));

}  // namespace
}  // namespace dbs::core
