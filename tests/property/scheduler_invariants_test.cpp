// Whole-system invariants under randomized workloads: no oversubscription,
// conservation of cores, every job completes, waits are non-negative, and
// evolving bookkeeping is consistent.
#include <gtest/gtest.h>

#include "batch/experiment.hpp"
#include "cluster/cluster.hpp"
#include "workload/synthetic.hpp"

namespace dbs::batch {
namespace {

struct Params {
  std::uint64_t seed;
  double evolving_fraction;
  std::size_t reservation_depth;
  bool backfill;
  core::DfsPolicy policy;
};

class SchedulerInvariants : public testing::TestWithParam<Params> {};

TEST_P(SchedulerInvariants, HoldUnderRandomWorkload) {
  const Params p = GetParam();

  wl::SyntheticParams wp;
  wp.job_count = 120;
  wp.total_cores = 64;
  wp.seed = p.seed;
  wp.evolving_fraction = p.evolving_fraction;
  wp.mean_interarrival = Duration::seconds(20);
  const wl::Workload workload = generate_synthetic(wp);

  SystemConfig cfg;
  cfg.cluster.node_count = 8;
  cfg.cluster.cores_per_node = 8;
  cfg.scheduler.reservation_depth = p.reservation_depth;
  cfg.scheduler.reservation_delay_depth = 5;
  cfg.scheduler.enable_backfill = p.backfill;
  cfg.scheduler.dfs.policy = p.policy;
  cfg.scheduler.dfs.defaults.target_delay = Duration::seconds(300);
  cfg.scheduler.dfs.defaults.single_delay = Duration::seconds(600);

  BatchSystem sys(cfg);
  sys.submit_workload(workload);

  // Step through the simulation, checking cluster accounting continuously.
  while (!sys.simulator().idle()) {
    sys.simulator().step();
    sys.cluster().check_invariants();
    ASSERT_GE(sys.cluster().free_cores(), 0);
  }

  // Terminal invariants.
  EXPECT_EQ(sys.cluster().used_cores(), 0);
  const auto records = sys.recorder().records();
  ASSERT_EQ(records.size(), workload.jobs.size());
  for (const auto& r : records) {
    ASSERT_TRUE(r.completed()) << r.name << " never finished";
    EXPECT_GE(r.wait_time(), Duration::zero()) << r.name;
    EXPECT_GE(r.turnaround(), r.wait_time()) << r.name;
    EXPECT_GE(r.cores_peak, r.cores_requested) << r.name;
    EXPECT_LE(r.dyn_grants + r.dyn_rejects, r.dyn_requests) << r.name;
    if (!r.evolving) {
      EXPECT_EQ(r.dyn_requests, 0) << r.name;
      EXPECT_EQ(r.cores_peak, r.cores_requested) << r.name;
    }
  }

  // The usage integral equals the sum of per-job core-time (within the
  // per-interval sampling resolution of the recorder).
  double expected_core_seconds = 0.0;
  for (const auto& r : records) {
    // Lower bound: requested cores for the whole runtime.
    expected_core_seconds +=
        static_cast<double>(r.cores_requested) *
        (*r.end - *r.start).as_seconds();
  }
  const double measured = sys.recorder().used_core_seconds(
      sys.recorder().first_submit(), sys.recorder().last_finish());
  EXPECT_GE(measured + 1.0, expected_core_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SchedulerInvariants,
    testing::Values(
        Params{1, 0.0, 1, true, core::DfsPolicy::None},
        Params{2, 0.3, 5, true, core::DfsPolicy::None},
        Params{3, 0.3, 5, true, core::DfsPolicy::TargetDelay},
        Params{4, 0.5, 2, true, core::DfsPolicy::SingleJobDelay},
        Params{5, 0.5, 5, false, core::DfsPolicy::SingleAndTargetDelay},
        Params{6, 1.0, 3, true, core::DfsPolicy::TargetDelay},
        Params{7, 0.3, 10, true, core::DfsPolicy::SingleAndTargetDelay},
        Params{8, 0.7, 1, false, core::DfsPolicy::None}));

}  // namespace
}  // namespace dbs::batch
